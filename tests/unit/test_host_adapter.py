"""Unit tests for multi-page host requests."""

import pytest

from repro.ftl.ftl import BaseFTL
from repro.sim.host import HostAdapter, HostRequest
from repro.sim.request import OpType
from repro.sim.ssd import SimulatedSSD


def host_write(t, lpn, values):
    return HostRequest(t, OpType.WRITE, lpn, tuple(values))


class TestHostRequest:
    def test_requires_at_least_one_page(self):
        with pytest.raises(ValueError):
            HostRequest(0.0, OpType.WRITE, 0, ())

    def test_pages_are_consecutive(self):
        request = host_write(5.0, 10, [1, 2, 3])
        pages = request.pages()
        assert [p.lpn for p in pages] == [10, 11, 12]
        assert [p.value_id for p in pages] == [1, 2, 3]
        assert all(p.arrival_us == 5.0 for p in pages)
        assert request.size_pages == 3


class TestHostAdapter:
    def test_single_page_matches_device(self, tiny_config):
        adapter = HostAdapter(SimulatedSSD(BaseFTL(tiny_config)))
        done = adapter.submit(host_write(0.0, 0, [1]))
        t = tiny_config.timing
        expected = t.mapping_us + t.channel_xfer_us + t.program_us
        assert done.latency_us == pytest.approx(expected)
        assert done.stripe_skew_us == 0.0

    def test_completion_is_last_page(self, tiny_config):
        adapter = HostAdapter(SimulatedSSD(BaseFTL(tiny_config)))
        done = adapter.submit(host_write(0.0, 0, list(range(100, 108))))
        # 8 pages striped over 4 chips: at least two serialise per chip.
        t = tiny_config.timing
        single = t.mapping_us + t.channel_xfer_us + t.program_us
        assert done.latency_us > single
        assert done.stripe_skew_us > 0.0

    def test_striping_beats_serial_execution(self, tiny_config):
        """A multi-page write finishes far sooner than size x single-page
        latency because pages land on different chips."""
        adapter = HostAdapter(SimulatedSSD(BaseFTL(tiny_config)))
        done = adapter.submit(host_write(0.0, 0, list(range(100, 108))))
        t = tiny_config.timing
        serial = 8 * (t.mapping_us + t.channel_xfer_us + t.program_us)
        assert done.latency_us < serial * 0.75

    def test_host_latency_stats_collected(self, tiny_config):
        adapter = HostAdapter(SimulatedSSD(BaseFTL(tiny_config)))
        stats = adapter.run([
            host_write(0.0, 0, [1, 2]),
            host_write(10_000.0, 8, [3]),
        ])
        assert stats.count == 2
        # device-level stats see every page individually
        assert adapter.device.writes.count == 3

    def test_reads_supported(self, tiny_config):
        device = SimulatedSSD(BaseFTL(tiny_config))
        adapter = HostAdapter(device)
        adapter.submit(host_write(0.0, 0, [1, 2]))
        done = adapter.submit(
            HostRequest(50_000.0, OpType.READ, 0, (0, 0))
        )
        assert done.latency_us > 0
        assert device.reads.count == 2

"""Content-keyed disk cache for per-file flow facts.

Same pattern as :mod:`repro.perf.trace_cache`: the key is the SHA-256
of the file *content* plus a format-version salt, so a cache entry can
never go stale silently — editing a file changes its key, and bumping
:data:`~repro.lint.flow.facts.FACTS_VERSION` invalidates everything at
once.  Writes are atomic (``tmp.<pid>`` + ``os.replace``) so concurrent
lint runs — or a run killed mid-write — can never leave a torn entry.

The cache is what makes the whole-program passes cheap enough for
``make lint``: a warm run re-extracts only the dirty frontier (files
whose content hash has no entry) and re-runs the graph passes over the
full fact set, which is pure dict work.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Dict, Optional

from .facts import FACTS_VERSION, ModuleFacts

__all__ = ["FactsCache", "content_key", "default_cache_dir"]

#: Default cache location, relative to the lint root (gitignored).
_DEFAULT_DIRNAME = ".lint-flow-cache"


def content_key(source: bytes, module: str = "", path: str = "") -> str:
    """Cache key for one file: sha256 over a version salt, the module
    identity and the content.  The module name participates because the
    extracted facts embed it (alias resolution, fq names): two files
    with identical content but different dotted names must not share an
    entry."""
    digest = hashlib.sha256()
    for part in (FACTS_VERSION, module, path):
        digest.update(part.encode("utf-8"))
        digest.update(b"\x00")
    digest.update(source)
    return digest.hexdigest()


def default_cache_dir(root: Optional[str] = None) -> Path:
    base = Path(root) if root is not None else Path(".")
    return base / _DEFAULT_DIRNAME


class FactsCache:
    """Two-tier (memory + disk) facts cache.

    ``dir_path=None`` disables the disk tier — the memory tier still
    dedups within one process, which is what the tests use.
    """

    def __init__(self, dir_path: Optional[Path] = None) -> None:
        self.dir_path = Path(dir_path) if dir_path is not None else None
        self._memory: Dict[str, ModuleFacts] = {}
        self.hits = 0
        self.misses = 0

    # -- lookup --------------------------------------------------------

    def get(self, key: str) -> Optional[ModuleFacts]:
        cached = self._memory.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        if self.dir_path is None:
            self.misses += 1
            return None
        path = self._entry_path(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                obj = json.load(handle)
            facts = ModuleFacts.from_dict(obj)
        except (OSError, ValueError, KeyError, TypeError):
            # Missing, torn, or stale-format entry: treat as a miss and
            # let the caller re-extract (the write below repairs it).
            self.misses += 1
            return None
        self._memory[key] = facts
        self.hits += 1
        return facts

    # -- store ---------------------------------------------------------

    def put(self, key: str, facts: ModuleFacts) -> None:
        self._memory[key] = facts
        if self.dir_path is None:
            return
        path = self._entry_path(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(facts.to_dict(), handle, separators=(",", ":"))
            os.replace(tmp, path)
        except OSError:
            # A read-only or full disk degrades to memory-only caching;
            # the analysis itself must never fail on cache I/O.
            pass

    def _entry_path(self, key: str) -> Path:
        assert self.dir_path is not None
        # Shard by the first byte to keep directories small.
        return self.dir_path / key[:2] / f"{key}.json"

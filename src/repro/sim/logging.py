"""Per-request completion logging for post-hoc latency analysis.

The paper reports means and p99s (Figures 11/12); a completion log keeps
the whole per-request record so the analysis layer can go further: full
latency CDFs, read-vs-write breakdowns, short-circuit shares over time,
and GC-stall episode detection (the "short episodes of high latencies"
of Section VI-B).

Attach a :class:`CompletionLog` to :class:`~repro.sim.ssd.SimulatedSSD`
and every completed request is recorded; memory is bounded by optional
reservoir-style downsampling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

from .request import CompletedRequest, OpType

__all__ = ["LoggedRequest", "CompletionLog"]


@dataclass(frozen=True, slots=True)
class LoggedRequest:
    """The analysable essentials of one completed request."""

    arrival_us: float
    finish_us: float
    op: OpType
    lpn: int
    short_circuited: bool
    dedup_hit: bool

    @property
    def latency_us(self) -> float:
        return self.finish_us - self.arrival_us

    @property
    def is_write(self) -> bool:
        return self.op is OpType.WRITE


class CompletionLog:
    """An append-only request log with optional systematic downsampling.

    ``sample_every=1`` (default) keeps everything; ``sample_every=k``
    keeps every k-th request — deterministic, so two runs of the same
    trace log identical subsets.
    """

    def __init__(self, sample_every: int = 1):
        if sample_every <= 0:
            raise ValueError("sample_every must be positive")
        self.sample_every = sample_every
        self._records: List[LoggedRequest] = []
        self._seen = 0

    def record(self, completed: CompletedRequest) -> None:
        self._seen += 1
        if (self._seen - 1) % self.sample_every != 0:
            return
        request = completed.request
        self._records.append(
            LoggedRequest(
                arrival_us=request.arrival_us,
                finish_us=completed.finish_us,
                op=request.op,
                lpn=request.lpn,
                short_circuited=completed.short_circuited,
                dedup_hit=completed.dedup_hit,
            )
        )

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[LoggedRequest]:
        return iter(self._records)

    @property
    def total_seen(self) -> int:
        """Requests observed (logged or skipped by sampling)."""
        return self._seen

    def records(
        self,
        op: Optional[OpType] = None,
        since_us: float = 0.0,
    ) -> List[LoggedRequest]:
        """Filtered view: by operation type and/or arrival time."""
        out = []
        for record in self._records:
            if op is not None and record.op is not op:
                continue
            if record.arrival_us < since_us:
                continue
            out.append(record)
        return out

    def latencies(self, op: Optional[OpType] = None) -> List[float]:
        return [r.latency_us for r in self.records(op=op)]

"""``repro.lint``: an AST-based determinism & layering linter.

The repo's core contract — bit-identical result digests across serial,
parallel, cached-prefill, checked and recovery runs — is enforced at
runtime by :mod:`repro.check`.  This package moves the most common ways
of *breaking* that contract to commit time: a pure-stdlib static
analyzer whose rules encode repo-specific invariants that generic tools
(ruff, mypy) cannot express.

Rule families (stable dotted codes; DESIGN.md §9 is the catalog):

``det.*``
    Determinism: no wall-clock reads outside the observability/perf
    layers, no draws from the process-global ``random`` state, no
    iteration over bare sets feeding ordered results, no environment
    reads outside the sanctioned config surfaces.
``layer.*``
    Import-DAG enforcement: ``repro.core`` stays pure, the simulator
    and FTL never reach up into ``repro.experiments``, and the
    top-level import graph is acyclic.
``proto.*``
    Protocol surfaces: every dead-value-pool implementation defines the
    full :class:`~repro.core.dvp.DeadValuePool` contract (including
    ``tracked_items``); FTL subclasses override the GC hooks their
    extra state requires.
``frozen.*``
    Frozen-dataclass hygiene: no ``object.__setattr__`` escape hatches
    outside ``__post_init__``; ``RunSpec``/``FaultConfig`` fields stay
    statically picklable so the process-pool engine can ship them.

Violations are suppressed per line with ``# lint: disable=<code>[,<code>...]``
or repo-wide via a baseline file (``lint-baseline.json``) whose every
entry carries a one-line justification.  ``repro lint`` is the CLI;
``--format=jsonl`` is machine-readable, ``--format=github`` emits GitHub
Actions annotations.
"""

from __future__ import annotations

from .baseline import Baseline, BaselineEntry
from .engine import LintEngine, LintResult, Program, lint_paths
from .imports import ImportGraph, build_import_graph, find_cycles
from .registry import (
    Rule,
    all_codes,
    all_rules,
    register_rule,
    rules_by_code,
)
from .report import render_github, render_jsonl, render_text
from .violations import Violation, suppressed_codes

__all__ = [
    "Baseline",
    "BaselineEntry",
    "ImportGraph",
    "LintEngine",
    "LintResult",
    "Program",
    "Rule",
    "Violation",
    "all_codes",
    "all_rules",
    "build_import_graph",
    "find_cycles",
    "lint_paths",
    "register_rule",
    "render_github",
    "render_jsonl",
    "render_text",
    "rules_by_code",
    "suppressed_codes",
]

"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------

``run``
    Simulate one system on one workload and print the result summary.
``compare``
    Run several systems on one workload; print a comparison table
    normalised to the first system.
``figure``
    Regenerate one paper figure/table by id (fig01..fig15, table1,
    table2) and print it.
``characterize``
    The Section II analysis bundle for one workload.
``replicate``
    Multi-seed improvement statistics for one system/metric.
``matrix``
    Run a full (workloads × systems) matrix, optionally in parallel.
``faults``
    Run one system on an unreliable device (seeded fault injection),
    or — with ``--recovery`` — measure the post-crash revival-rate
    warmup against an uninterrupted run.
``fleet``
    Shard one workload across N simulated drives (consistent-hash
    routing), run the shards in parallel, and print the fleet
    aggregate; ``--compare-pool-modes`` contrasts private per-drive
    dead-value pools with the shared-pool upper bound.
``kv``
    Run a keyed (KV-SSD) workload from the zoo (:mod:`repro.kv`) over
    any system: key→LPN translation, small-value inlining, TRIM on
    delete; ``--ablate`` pairs the run with its pool-off counterpart
    and reports the revival / write-amplification delta.
``bench``
    Time the canonical matrix and refresh ``BENCH_matrix.json``.
``serve``
    Run the streaming multi-tenant trace service (:mod:`repro.serve`):
    tenants stream JSONL trace traffic over a socket, sessions
    checkpoint/resume, and every response carries the unified schema.
``lint``
    Run the repo's AST-based determinism/layering linter
    (:mod:`repro.lint`) over the given paths.

All output goes to stdout; ``--json`` switches machine-readable output
where applicable — always one ``repro.api/v1``
:class:`~repro.api.ResultRecord` shape (or a mapping of them), the
same schema the obs/fleet JSONL exporters, the bench harness and the
serve responses emit.  Commands that fan out over independent cells
(``compare``, ``replicate``, ``matrix``, ``bench``) take ``--jobs N``
(0 = all cores); parallel results are bit-identical to ``--jobs 1``.
Shared flag groups (``--scale``, ``--jobs``, ``--seed``, the
``--check`` trio, the fault probabilities, the ``--obs`` pair) are
declared once in :mod:`repro.cliopts` and reused verbatim across
subcommands.  Exit code 0 on success, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from .analysis.characterize import (
    invalidation_cdf,
    reuse_opportunity,
    run_lifecycle,
    value_cdfs,
)
from .analysis.report import render_table
from .api import record_from_run
from .cliopts import (
    add_check_flags,
    add_fault_flags,
    add_jobs,
    add_obs_flags,
    add_scale,
    add_seed,
    build_obs,
    check_kwargs,
    fault_config,
    fault_config_or_none,
)
from .experiments import figures as figures_mod
from .experiments.figures import EvaluationMatrix
from .experiments.config import RunConfig
from .experiments.replication import paired_improvement
from .experiments.runner import ExperimentContext, run_system
from .ftl.dvp_ftl import SYSTEMS
from .traces.profiles import PROFILES
from .traces.synthetic import generate_trace

__all__ = ["main", "build_parser"]

#: figure id → (callable, needs_matrix)
FIGURES = {
    "fig01": (figures_mod.fig01_reuse_opportunity, False),
    "fig02": (figures_mod.fig02_invalidation_cdf, False),
    "fig03": (figures_mod.fig03_value_cdfs, False),
    "fig04": (figures_mod.fig04_lifecycle, False),
    "fig05": (figures_mod.fig05_lru_sweep, False),
    "fig06": (figures_mod.fig06_lru_misses, False),
    "table1": (lambda scale: figures_mod.table1_configuration(), False),
    "table2": (figures_mod.table2_workloads, False),
    "fig09": (figures_mod.fig09_write_reduction, True),
    "fig10": (figures_mod.fig10_erase_reduction, True),
    "fig11": (figures_mod.fig11_mean_latency, True),
    "fig12": (figures_mod.fig12_tail_latency, True),
    "fig14": (figures_mod.fig14_dedup_writes, True),
    "fig15": (figures_mod.fig15_dedup_latency, True),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reviving Zombie Pages on SSDs — reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="simulate one system on one workload")
    run_p.add_argument("--workload", choices=sorted(PROFILES), required=True)
    run_p.add_argument("--system", choices=sorted(SYSTEMS), required=True)
    run_p.add_argument("--pool", type=int, default=200_000,
                       help="pool size in paper-label entries (default 200K)")
    run_p.add_argument("--json", action="store_true")
    add_obs_flags(run_p)
    run_p.add_argument(
        "--profile", action="store_true",
        help="trace wall-clock spans (FTL write/read, GC) and print them",
    )
    add_check_flags(run_p)
    add_fault_flags(run_p)
    add_scale(run_p)

    cmp_p = sub.add_parser("compare", help="compare systems on one workload")
    cmp_p.add_argument("--workload", choices=sorted(PROFILES), required=True)
    cmp_p.add_argument(
        "--systems", default="baseline,mq-dvp,dedup,dvp+dedup",
        help="comma-separated system names (first is the reference)",
    )
    cmp_p.add_argument("--pool", type=int, default=200_000)
    add_check_flags(cmp_p)
    add_scale(cmp_p)
    add_jobs(cmp_p)

    fig_p = sub.add_parser("figure", help="regenerate one paper artifact")
    fig_p.add_argument("id", choices=sorted(FIGURES))
    add_scale(fig_p)

    chr_p = sub.add_parser(
        "characterize", help="Section II analysis for one workload"
    )
    chr_p.add_argument("--workload", choices=sorted(PROFILES), required=True)
    add_scale(chr_p)

    report_p = sub.add_parser(
        "report", help="regenerate every artifact into one document"
    )
    report_p.add_argument("--out", default=None,
                          help="write to this file instead of stdout")
    add_scale(report_p)

    rep_p = sub.add_parser(
        "replicate", help="multi-seed improvement statistics"
    )
    rep_p.add_argument("--workload", choices=sorted(PROFILES), required=True)
    rep_p.add_argument("--system", choices=sorted(SYSTEMS), required=True)
    rep_p.add_argument("--metric", default="flash_writes")
    rep_p.add_argument("--seeds", default="1,2,3",
                       help="comma-separated seeds")
    add_scale(rep_p)
    add_jobs(rep_p)

    mat_p = sub.add_parser(
        "matrix", help="run a (workloads x systems) matrix"
    )
    mat_p.add_argument(
        "--workloads", default="mail,web",
        help="comma-separated workload names",
    )
    mat_p.add_argument(
        "--systems", default="baseline,mq-dvp,dedup",
        help="comma-separated system names",
    )
    mat_p.add_argument("--pool", type=int, default=200_000,
                       help="pool size in paper-label entries")
    mat_p.add_argument("--queue-depth", type=int, default=None,
                       help="device queue depth (default: config value)")
    mat_p.add_argument("--json", action="store_true")
    add_scale(mat_p)
    add_jobs(mat_p)

    flt_p = sub.add_parser(
        "faults",
        help="fault-injection run, or --recovery warmup measurement",
    )
    flt_p.add_argument("--workload", choices=sorted(PROFILES), required=True)
    flt_p.add_argument("--system", choices=sorted(SYSTEMS), required=True)
    flt_p.add_argument("--pool", type=int, default=200_000,
                       help="pool size in paper-label entries (default 200K)")
    add_fault_flags(flt_p)
    add_check_flags(flt_p)
    flt_p.add_argument(
        "--recovery", action="store_true",
        help="run the crash-recovery warmup experiment instead "
             "(crashed vs uninterrupted revival rate)",
    )
    flt_p.add_argument(
        "--crash-fraction", type=float, default=0.5, metavar="F",
        help="--recovery: crash point as a fraction of the trace "
             "(default 0.5)",
    )
    flt_p.add_argument(
        "--window", type=int, default=2000, metavar="N",
        help="--recovery: sampling window in host requests (default 2000)",
    )
    flt_p.add_argument("--json", action="store_true")
    add_scale(flt_p)

    fleet_p = sub.add_parser(
        "fleet",
        help="shard one workload across N simulated drives and "
             "aggregate the fleet",
    )
    fleet_p.add_argument("--workload", choices=sorted(PROFILES),
                         required=True)
    fleet_p.add_argument("--system", choices=sorted(SYSTEMS), required=True)
    fleet_p.add_argument("--shards", type=int, default=4, metavar="N",
                         help="number of simulated drives (default 4)")
    fleet_p.add_argument("--pool", type=int, default=200_000,
                         help="fleet pool budget in paper-label entries "
                              "(default 200K)")
    fleet_p.add_argument(
        "--pool-mode", choices=("per-drive", "shared"), default="per-drive",
        help="per-drive: split the budget across shards; shared: every "
             "shard gets the full budget (fleet-wide-pool upper bound)",
    )
    fleet_p.add_argument(
        "--compare-pool-modes", action="store_true",
        help="run both pool modes and report aggregate flash programs "
             "for each (overrides --pool-mode)",
    )
    add_seed(fleet_p, default=None, help="trace-generator seed override")
    fleet_p.add_argument(
        "--check", action="store_true",
        help="attach the invariant checker + lockstep oracle to every "
             "shard (digests are identical with and without it)",
    )
    add_obs_flags(fleet_p, intervals=False,
                  help="write per-shard + fleet JSONL records to PATH")
    fleet_p.add_argument("--json", action="store_true")
    add_scale(fleet_p)
    add_jobs(fleet_p)

    kv_p = sub.add_parser(
        "kv",
        help="run a keyed (KV-SSD) zoo workload over a system "
             "(see DESIGN.md §13)",
    )
    from .kv.zoo import KV_WORKLOADS

    kv_p.add_argument("--workload", choices=sorted(KV_WORKLOADS),
                      default="ycsb-a",
                      help="zoo workload (default ycsb-a)")
    kv_p.add_argument("--system", choices=sorted(SYSTEMS), default="mq-dvp",
                      help="studied system (default mq-dvp)")
    kv_p.add_argument("--pool", type=int, default=200_000,
                      help="pool size in paper-label entries (default 200K)")
    kv_p.add_argument(
        "--ablate", action="store_true",
        help="also run the system's pool-off counterpart and report "
             "the revival / write-amplification delta",
    )
    kv_p.add_argument("--json", action="store_true")
    add_seed(kv_p, default=None, help="workload generator seed override")
    add_scale(kv_p)
    add_jobs(kv_p)

    bench_p = sub.add_parser(
        "bench", help="time the canonical matrix; refresh BENCH_matrix.json"
    )
    bench_p.add_argument("--out", default="BENCH_matrix.json",
                         help="report path (default BENCH_matrix.json)")
    bench_p.add_argument(
        "--workloads", default=None,
        help="comma-separated workloads (default: canonical slice)",
    )
    bench_p.add_argument(
        "--systems", default=None,
        help="comma-separated systems (default: canonical slice)",
    )
    bench_p.add_argument(
        "--scale", type=float, default=None,
        help="workload scale (default: canonical bench scale)",
    )
    bench_p.add_argument(
        "--jobs", type=int, default=0, metavar="N",
        help="workers for the parallel leg (default 0 = all cores)",
    )

    serve_p = sub.add_parser(
        "serve",
        help="streaming multi-tenant trace service (see DESIGN.md §12)",
    )
    serve_p.add_argument("--host", default=None,
                         help="bind address (default 127.0.0.1, or "
                              "REPRO_SERVE_HOST)")
    serve_p.add_argument("--port", type=int, default=None,
                         help="TCP port, 0 = ephemeral (default 9911, or "
                              "REPRO_SERVE_PORT)")
    serve_p.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                         help="directory for session checkpoints; enables "
                              "kill/resume (default: none)")
    serve_p.add_argument("--max-sessions", type=int, default=None, metavar="N",
                         help="concurrent tenant session cap (default 64)")
    serve_p.add_argument("--batch-requests", type=int, default=None,
                         metavar="N",
                         help="default per-tenant step batch size "
                              "(default 256; open messages may override)")
    serve_p.add_argument("--checkpoint-every", type=int, default=None,
                         metavar="N",
                         help="checkpoint a session every N serviced "
                              "requests (default: only on detach/drain)")
    add_obs_flags(serve_p, intervals=False,
                  help="append every serve.metrics/serve.session record "
                       "to PATH as JSONL")
    add_jobs(serve_p, help="simulation worker threads "
                           "(default 1, 0 = all cores)")
    add_seed(serve_p, default=None,
             help="default trace-generator seed for sessions that do "
                  "not pick one (default: profile seed)")
    add_check_flags(serve_p)

    lint_p = sub.add_parser(
        "lint",
        help="AST-based determinism & layering linter (see DESIGN.md §9)",
    )
    lint_p.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files/directories to lint (default: src/repro)",
    )
    lint_p.add_argument(
        "--format", choices=("text", "jsonl", "github"), default="text",
        help="report format: human text, JSONL records, or GitHub "
             "Actions annotations (default text)",
    )
    lint_p.add_argument(
        "--baseline", default="lint-baseline.json", metavar="PATH",
        help="baseline file of justified grandfathered findings "
             "(default lint-baseline.json; missing file = empty)",
    )
    lint_p.add_argument(
        "--no-baseline", action="store_true",
        help="ignore the baseline file (report everything)",
    )
    lint_p.add_argument(
        "--write-baseline", action="store_true",
        help="rewrite the baseline to cover current findings (new "
             "entries get TODO justifications, entries that no longer "
             "match are pruned) and exit 0",
    )
    lint_p.add_argument(
        "--strict-baseline", action="store_true",
        help="treat stale baseline entries as a failure (exit 1); "
             "used in CI so the baseline only ever shrinks",
    )
    lint_p.add_argument(
        "--select", default=None, metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    lint_p.add_argument(
        "--ignore", default=None, metavar="CODES",
        help="comma-separated rule codes to skip",
    )
    lint_p.add_argument(
        "--rules", action="store_true",
        help="list the rule catalog (code + summary) and exit",
    )
    lint_p.add_argument(
        "--package-root", default=None, metavar="DIR",
        help="map module names relative to this directory instead of "
             "auto-detecting package roots",
    )
    lint_p.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for the whole-program flow analysis "
             "(default: serial; 0 = one per CPU)",
    )
    lint_p.add_argument(
        "--flow-cache-dir", default=".lint-flow-cache", metavar="DIR",
        help="directory for the per-file flow-analysis cache, keyed on "
             "content hashes (default .lint-flow-cache)",
    )
    lint_p.add_argument(
        "--no-flow-cache", action="store_true",
        help="keep the flow analysis in memory only (no on-disk cache)",
    )
    return parser


def _cmd_run(args: argparse.Namespace) -> int:
    context = ExperimentContext.for_workload(args.workload, args.scale)
    try:
        faults = fault_config_or_none(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    obs = build_obs(args)
    if obs is None:
        return 2
    tracer = None
    if args.profile:
        from .obs import Tracer

        tracer = Tracer()
    try:
        result = run_system(
            args.system, context,
            config=RunConfig(
                paper_pool_entries=args.pool, scale=args.scale,
                observer=obs.observer, registry=obs.registry, tracer=tracer,
                faults=faults, **check_kwargs(args),
            ),
        )
    finally:
        obs.close()
    if args.json:
        record = record_from_run(result)
        print(json.dumps(record.to_dict(), indent=2, sort_keys=True))
    else:
        summary = result.summary()
        rows = [(k, v) for k, v in sorted(summary.items())]
        print(render_table(
            ["metric", "value"], rows,
            title=f"{args.system} on {args.workload} (scale {args.scale})",
        ))
    if obs.observer is not None:
        print(f"observability: {obs.observer.sample_count} samples "
              f"-> {args.obs}", file=sys.stderr)
    if tracer is not None:
        print(render_table(
            ["span", "count", "total (s)", "mean (us)", "max (us)"],
            [
                (name, s["count"], f"{s['total_s']:.3f}",
                 f"{s['mean_us']:.1f}", f"{s['max_us']:.1f}")
                for name, s in tracer.summary().items()
            ],
            title="wall-clock profile",
        ))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from .perf.parallel import run_specs
    from .perf.spec import RunSpec

    systems = [s.strip() for s in args.systems.split(",") if s.strip()]
    unknown = [s for s in systems if s not in SYSTEMS]
    if unknown:
        print(f"unknown systems: {', '.join(unknown)}", file=sys.stderr)
        return 2
    check = check_kwargs(args)
    specs = [
        RunSpec(
            workload=args.workload,
            system=system,
            paper_pool_entries=args.pool,
            scale=args.scale,
            check_interval=check.get("check_interval"),
            oracle=check.get("oracle", False),
            trim_every=check["trim_every"],
        )
        for system in systems
    ]
    results = run_specs(specs, jobs=args.jobs)
    rows = []
    reference = None
    for system, result in zip(systems, results):
        summary = result.summary()
        if reference is None:
            reference = summary
        rows.append((
            system,
            f"{summary['flash_writes']:.0f}",
            f"{summary['erases']:.0f}",
            f"{summary['mean_latency_us']:.1f}",
            f"{100 * (1 - summary['mean_latency_us'] / reference['mean_latency_us']):.1f}"
            if reference["mean_latency_us"] else "0.0",
        ))
    print(render_table(
        ["system", "flash writes", "erases", "mean latency (us)",
         f"latency cut vs {systems[0]} (%)"],
        rows, title=f"{args.workload} at scale {args.scale}",
    ))
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    func, needs_matrix = FIGURES[args.id]
    if needs_matrix:
        result = func(EvaluationMatrix(RunConfig(scale=args.scale)))
    else:
        result = func(args.scale)
    print(f"[{args.id}]")
    _print_result(result)
    return 0


def _print_result(result: object) -> None:
    """Best-effort generic rendering of a figure function's return value."""
    if isinstance(result, dict):
        for key, value in result.items():
            print(f"{key}: {value}")
    elif isinstance(result, list):
        for item in result:
            print(item)
    else:
        print(result)


def _cmd_characterize(args: argparse.Namespace) -> int:
    profile = PROFILES[args.workload].scaled(args.scale)
    trace = generate_trace(profile)
    tracker = run_lifecycle(trace)
    reuse = reuse_opportunity(trace, profile.name)
    inval = invalidation_cdf(tracker)
    cdfs = value_cdfs(tracker)
    rows = [
        ("requests", len(trace)),
        ("writes", tracker.stats.total_writes),
        ("unique values written", tracker.unique_value_count()),
        ("deaths", tracker.stats.deaths),
        ("rebirths", tracker.stats.rebirths),
        ("P(reuse), infinite buffer", f"{reuse.without_dedup:.3f}"),
        ("P(reuse) after dedup", f"{reuse.with_dedup:.3f}"),
        ("values never invalidated", f"{inval.never_invalidated_frac:.3f}"),
        ("values live at end", f"{inval.live_value_frac:.3f}"),
        ("write share of top 20% values", f"{cdfs.share_at('write', 0.2):.3f}"),
        ("rebirth share of top 20% values",
         f"{cdfs.share_at('rebirth', 0.2):.3f}"),
    ]
    print(render_table(
        ["metric", "value"], rows,
        title=f"Section II characterisation: {args.workload} "
              f"(scale {args.scale})",
    ))
    return 0


def _cmd_replicate(args: argparse.Namespace) -> int:
    seeds = [int(s) for s in args.seeds.split(",") if s.strip()]
    reps = paired_improvement(
        args.workload, args.system, args.metric, seeds, args.scale,
        jobs=args.jobs,
    )
    print(f"{args.system} vs baseline on {args.workload}, "
          f"{args.metric} improvement: {reps.summary()}")
    return 0


def _cmd_matrix(args: argparse.Namespace) -> int:
    from .experiments.runner import run_matrix

    workloads = [w.strip() for w in args.workloads.split(",") if w.strip()]
    systems = [s.strip() for s in args.systems.split(",") if s.strip()]
    bad_w = [w for w in workloads if w not in PROFILES]
    bad_s = [s for s in systems if s not in SYSTEMS]
    if bad_w or bad_s:
        for name, kind in [(bad_w, "workloads"), (bad_s, "systems")]:
            if name:
                print(f"unknown {kind}: {', '.join(name)}", file=sys.stderr)
        return 2
    results = run_matrix(
        workloads, systems,
        config=RunConfig(
            paper_pool_entries=args.pool, scale=args.scale,
            jobs=args.jobs, queue_depth=args.queue_depth,
        ),
    )
    if args.json:
        payload = {
            workload: {
                system: record_from_run(result).to_dict()
                for system, result in by_system.items()
            }
            for workload, by_system in results.items()
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    rows = [
        (
            workload,
            system,
            f"{result.summary()['flash_writes']:.0f}",
            f"{result.summary()['erases']:.0f}",
            f"{result.summary()['mean_latency_us']:.1f}",
            f"{result.summary()['p99_latency_us']:.1f}",
        )
        for workload, by_system in results.items()
        for system, result in by_system.items()
    ]
    print(render_table(
        ["workload", "system", "flash writes", "erases",
         "mean latency (us)", "p99 (us)"],
        rows,
        title=f"matrix at scale {args.scale} "
              f"(pool {args.pool}, jobs {args.jobs})",
    ))
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    if args.recovery:
        from .experiments.recovery import run_recovery_experiment

        try:
            result = run_recovery_experiment(
                workload=args.workload,
                system=args.system,
                scale=args.scale,
                paper_pool_entries=args.pool,
                crash_fraction=args.crash_fraction,
                window_requests=args.window,
                fault_seed=args.seed,
            )
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if args.json:
            from dataclasses import asdict

            print(json.dumps(asdict(result), indent=2, sort_keys=True))
            return 0
        rows = [
            (
                (i + 1) * result.window_requests,
                f"{warm:.4f}",
                f"{ref:.4f}",
                f"{ref - warm:+.4f}",
            )
            for i, (warm, ref) in enumerate(
                zip(result.warmup_rates, result.reference_rates)
            )
        ]
        print(render_table(
            ["requests since crash", "revival rate (crashed)",
             "revival rate (uninterrupted)", "gap"],
            rows,
            title=f"revival warmup: {args.system} on {args.workload} "
                  f"(crash @ {result.crash_after_requests}, "
                  f"scale {result.scale})",
        ))
        recovery_us = result.fault_summary.get("mean_recovery_us", 0.0)
        print(f"recovery scan: {recovery_us:.0f} us; "
              f"final gap {result.final_gap:+.4f}", file=sys.stderr)
        return 0
    try:
        faults = fault_config(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    context = ExperimentContext.for_workload(args.workload, args.scale)
    result = run_system(
        args.system, context,
        config=RunConfig(
            paper_pool_entries=args.pool, scale=args.scale,
            faults=faults, **check_kwargs(args),
        ),
    )
    if args.json:
        record = record_from_run(result)
        print(json.dumps(record.to_dict(), indent=2, sort_keys=True))
    else:
        summary = dict(result.summary())
        summary.update(result.fault_summary())
        rows = [(k, v) for k, v in sorted(summary.items())]
        print(render_table(
            ["metric", "value"], rows,
            title=f"{args.system} on {args.workload} with faults "
                  f"(seed {args.seed}, scale {args.scale})",
        ))
    return 0


def _cmd_fleet(args: argparse.Namespace) -> int:
    from .fleet import FleetSpec, compare_pool_modes, run_fleet

    try:
        spec = FleetSpec(
            workload=args.workload,
            system=args.system,
            shards=args.shards,
            paper_pool_entries=args.pool,
            scale=args.scale,
            seed=args.seed,
            pool_mode=args.pool_mode,
            oracle=args.check,
            check_interval=None,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.compare_pool_modes:
        comparison = compare_pool_modes(spec, jobs=args.jobs)
        if args.json:
            print(json.dumps(comparison.summary(), indent=2, sort_keys=True))
            return 0
        rows = [
            ("per-drive", f"{comparison.per_drive_programs}",
             f"{comparison.per_drive.write_amplification:.3f}",
             f"{comparison.per_drive.revival_rate:.3f}"),
            ("shared", f"{comparison.shared_programs}",
             f"{comparison.shared.write_amplification:.3f}",
             f"{comparison.shared.revival_rate:.3f}"),
        ]
        print(render_table(
            ["pool mode", "flash programs", "fleet WA", "revival rate"],
            rows,
            title=f"pool modes: {args.system} on {args.workload}, "
                  f"{args.shards} shards (scale {args.scale})",
        ))
        print(f"shared-pool upper bound saves "
              f"{comparison.programs_saved} programs "
              f"({comparison.percent_saved:.1f}%)")
        return 0

    result = run_fleet(spec, jobs=args.jobs)
    if args.obs:
        from .obs import JsonlWriter

        try:
            with JsonlWriter(args.obs) as writer:
                records = result.export_jsonl(writer)
        except OSError as exc:
            print(f"error: cannot open --obs file: {exc}", file=sys.stderr)
            return 2
        print(f"fleet export: {records} records -> {args.obs}",
              file=sys.stderr)
    if args.json:
        from .api import records_from_fleet

        record = records_from_fleet(result)[-1]
        print(json.dumps(record.to_dict(), indent=2, sort_keys=True))
        return 0
    summary = result.summary()
    rows = [(k, v) for k, v in sorted(summary.items())]
    print(render_table(
        ["metric", "value"], rows,
        title=f"fleet: {args.system} on {args.workload}, "
              f"{args.shards} shards, pool {args.pool_mode} "
              f"(scale {args.scale}, jobs {result.jobs})",
    ))
    per_shard = ", ".join(
        f"shard{i}={n}" for i, n in enumerate(result.shard_requests)
    )
    print(f"per-shard requests: {per_shard}", file=sys.stderr)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    from dataclasses import replace

    from .serve import run_server, settings_from_env

    if args.trim_every:
        print("error: --trim-every is a trace transform; serve receives "
              "the trace from its tenants, so apply it client-side",
              file=sys.stderr)
        return 2
    overrides = {
        "host": args.host,
        "port": args.port,
        "checkpoint_dir": args.checkpoint_dir,
        "obs_path": args.obs,
        "max_sessions": args.max_sessions,
        "batch_requests": args.batch_requests,
        "checkpoint_every": args.checkpoint_every,
        "default_seed": args.seed,
        "check_interval": args.check_interval,
    }
    if args.jobs != 1:
        overrides["jobs"] = args.jobs
    if args.check or args.check_interval is not None:
        overrides["oracle"] = True
    try:
        settings = replace(
            settings_from_env(),
            **{k: v for k, v in overrides.items() if v is not None},
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return asyncio.run(run_server(settings))


def _cmd_kv(args: argparse.Namespace) -> int:
    from .api import record_from_kv_run, records_from_kv_ablation
    from .kv import KVSpec, execute_kv_spec, run_kv_ablation

    try:
        spec = KVSpec(
            workload=args.workload,
            system=args.system,
            paper_pool_entries=args.pool,
            scale=args.scale,
            seed=args.seed,
        )
        if args.ablate:
            on, off = run_kv_ablation(spec, jobs=args.jobs)
        else:
            on, off = execute_kv_spec(spec), None
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.json:
        if off is not None:
            record = records_from_kv_ablation(on, off)[-1]
        else:
            record = record_from_kv_run(on)
        print(json.dumps(record.to_dict(), indent=2, sort_keys=True))
        return 0

    def leg_rows(kv):
        counters = kv.result.counters
        return [
            ("flash writes", counters.programs + counters.gc_relocations),
            ("host writes", counters.host_writes),
            ("host trims", counters.host_trims),
            ("write amplification", f"{kv.write_amplification:.3f}"),
            ("revival rate", f"{kv.revival_rate:.3f}"),
            ("pack seals", kv.kv_counters["pack_seals"]),
            ("pack repacks", kv.kv_counters["pack_repacks"]),
            ("digest", kv.digest[:16]),
        ]

    print(render_table(
        ["metric", "value"], leg_rows(on),
        title=f"kv: {args.workload} on {args.system} "
              f"(scale {args.scale}, seed {args.seed})",
    ))
    if off is not None:
        print(render_table(
            ["metric", "value"], leg_rows(off),
            title=f"pool off: {off.spec.system}",
        ))
        on_writes = (on.result.counters.programs
                     + on.result.counters.gc_relocations)
        off_writes = (off.result.counters.programs
                      + off.result.counters.gc_relocations)
        print(f"pool saves {off_writes - on_writes} flash writes "
              f"(revival rate {on.revival_rate:.3f}; WA "
              f"{off.write_amplification:.3f} -> "
              f"{on.write_amplification:.3f})")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from .perf.bench import write_benchmark

    kwargs = {"jobs": args.jobs}
    if args.workloads:
        kwargs["workloads"] = [
            w.strip() for w in args.workloads.split(",") if w.strip()
        ]
    if args.systems:
        kwargs["systems"] = [
            s.strip() for s in args.systems.split(",") if s.strip()
        ]
    if args.scale is not None:
        kwargs["scale"] = args.scale
    report = write_benchmark(args.out, **kwargs)
    second_leg = (
        "serial_fallback"
        if report["serial_fallback"]
        else f"x{report['speedup']}, jobs={report['jobs']}"
    )
    print(
        f"wrote {args.out}: {len(report['cells'])} cells, "
        f"serial {report['serial_seconds']:.2f}s, "
        f"parallel {report['parallel_seconds']:.2f}s "
        f"({second_leg}), "
        f"identical_results={report['identical_results']}"
    )
    ok = report["identical_results"] and (
        report["serial_fallback"] or (report["speedup"] or 0) >= 1.0
    )
    return 0 if ok else 1


def _cmd_lint(args: argparse.Namespace) -> int:
    from .lint import (
        Baseline,
        LintEngine,
        all_rules,
        render_github,
        render_jsonl,
        render_text,
    )

    if args.rules:
        for rule in all_rules():
            print(f"{rule.code:24s} {rule.summary}")
        return 0

    known = {rule.code for rule in all_rules()}

    def parse_codes(raw: Optional[str], flag: str) -> Optional[List[str]]:
        if raw is None:
            return None
        codes = [c.strip() for c in raw.split(",") if c.strip()]
        unknown = [c for c in codes if c not in known]
        if unknown:
            raise ValueError(
                f"{flag}: unknown rule codes {', '.join(unknown)} "
                f"(see repro lint --rules)"
            )
        return codes

    try:
        select = parse_codes(args.select, "--select")
        ignore = parse_codes(args.ignore, "--ignore")
        baseline = (
            Baseline()
            if args.no_baseline or args.write_baseline
            else Baseline.load(args.baseline)
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    from .lint.flow import FlowOptions

    flow_options = FlowOptions(
        jobs=args.jobs,
        cache_dir=None if args.no_flow_cache else args.flow_cache_dir,
    )
    engine = LintEngine(
        select=select,
        ignore=ignore,
        baseline=baseline,
        package_root=args.package_root,
        flow_options=flow_options,
    )
    try:
        result = engine.run(args.paths)
    except (OSError, SyntaxError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        previous = Baseline.load(args.baseline)
        updated = Baseline.from_violations(result.violations, previous)
        updated.save(args.baseline)
        print(
            f"wrote {args.baseline}: {len(updated)} entries "
            f"covering {len(result.violations)} findings "
            "(replace any TODO justifications before committing)"
        )
        return 0

    renderer = {
        "text": render_text,
        "jsonl": render_jsonl,
        "github": render_github,
    }[args.format]
    print(renderer(result))
    if args.strict_baseline and result.stale_baseline:
        print(
            f"error: {len(result.stale_baseline)} stale baseline "
            "entries (run repro lint --write-baseline to prune)",
            file=sys.stderr,
        )
        return 1
    return 0 if result.clean else 1


def _cmd_report(args: argparse.Namespace) -> int:
    from .experiments.report import generate_report

    text = generate_report(args.scale)
    if args.out:
        with open(args.out, "w") as f:
            f.write(text)
        print(f"wrote {args.out}")
    else:
        print(text)
    return 0


COMMANDS = {
    "run": _cmd_run,
    "report": _cmd_report,
    "compare": _cmd_compare,
    "figure": _cmd_figure,
    "characterize": _cmd_characterize,
    "replicate": _cmd_replicate,
    "matrix": _cmd_matrix,
    "faults": _cmd_faults,
    "fleet": _cmd_fleet,
    "kv": _cmd_kv,
    "serve": _cmd_serve,
    "bench": _cmd_bench,
    "lint": _cmd_lint,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())

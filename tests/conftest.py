"""Shared fixtures: small drives, tiny workloads, deterministic traces."""

import pytest

from repro.flash.config import SSDConfig
from repro.traces.profiles import TableIITargets, WorkloadProfile


@pytest.fixture
def tiny_config() -> SSDConfig:
    """A drive small enough to fill within a test: 2x2 chips, 1 plane each,
    8 blocks of 16 pages per plane -> 1024 raw pages."""
    return SSDConfig(
        channels=2,
        chips_per_channel=2,
        dies_per_chip=1,
        planes_per_die=1,
        blocks_per_plane=16,
        pages_per_block=16,
        overprovision=0.15,
    )


@pytest.fixture
def small_config() -> SSDConfig:
    """Bigger than tiny_config, still fast: 4096 raw pages."""
    return SSDConfig(
        channels=2,
        chips_per_channel=2,
        dies_per_chip=1,
        planes_per_die=1,
        blocks_per_plane=32,
        pages_per_block=32,
        overprovision=0.15,
    )


def make_profile(**overrides) -> WorkloadProfile:
    """A small, fast workload profile with sensible defaults."""
    defaults = dict(
        name="test",
        targets=TableIITargets(0.7, 0.3, 0.5),
        new_value_prob=0.3,
        value_zipf_s=1.1,
        lpn_zipf_s=1.1,
        read_zipf_s=1.2,
        cold_read_frac=0.5,
        cold_region_factor=1.5,
        working_set_pages=600,
        num_requests=4000,
        mean_interarrival_us=100.0,
        seed=7,
    )
    defaults.update(overrides)
    return WorkloadProfile(**defaults)


@pytest.fixture
def tiny_profile() -> WorkloadProfile:
    return make_profile()

"""Property tests for the fleet's consistent-hash ring.

The load-bearing property is *stability*: growing a fleet from N to N+1
shards must move only about K/N of K keys (the slices the new shard's
virtual nodes carve out) and never reroute a key between two shards that
existed in both rings.  A naive ``lpn % N`` router moves ~(N-1)/N of the
keys on every resize — exactly what consistent hashing exists to avoid.
"""

import collections

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fleet import HashRing


class TestDeterminism:
    def test_routing_is_stable_across_instances(self):
        a = HashRing(5)
        b = HashRing(5)
        assert [a.shard_of(k) for k in range(2000)] == [
            b.shard_of(k) for k in range(2000)
        ]

    def test_seed_changes_routing(self):
        a = HashRing(5, seed=0)
        b = HashRing(5, seed=1)
        assert [a.shard_of(k) for k in range(500)] != [
            b.shard_of(k) for k in range(500)
        ]

    def test_every_shard_owns_keys(self):
        ring = HashRing(8)
        owners = set(ring.assignments(4000))
        assert owners == set(range(8))

    def test_validation(self):
        with pytest.raises(ValueError):
            HashRing(0)
        with pytest.raises(ValueError):
            HashRing(4, replicas=0)


class TestStability:
    """Changing the shard count moves ~K/N keys, not ~K."""

    @settings(max_examples=20, deadline=None)
    @given(
        shards=st.integers(min_value=2, max_value=12),
        seed=st.integers(min_value=0, max_value=3),
    )
    def test_grow_by_one_moves_about_one_nth(self, shards, seed):
        keys = 6000
        before = HashRing(shards, seed=seed).assignments(keys)
        after = HashRing(shards + 1, seed=seed).assignments(keys)
        moved = sum(1 for b, a in zip(before, after) if b != a)
        expected = keys / (shards + 1)
        # Virtual-node placement is random-ish, so allow generous slack
        # around the ideal 1/(N+1) share — but far below the ~100% a
        # modulo router would move.
        assert moved < 3.0 * expected
        assert moved > 0.2 * expected

    @settings(max_examples=20, deadline=None)
    @given(
        shards=st.integers(min_value=2, max_value=12),
        seed=st.integers(min_value=0, max_value=3),
    )
    def test_moved_keys_only_move_to_the_new_shard(self, shards, seed):
        keys = 3000
        before = HashRing(shards, seed=seed).assignments(keys)
        after = HashRing(shards + 1, seed=seed).assignments(keys)
        for b, a in zip(before, after):
            if b != a:
                # A key that moved must have moved to the newly added
                # shard; keys never shuffle between surviving shards.
                assert a == shards


class TestBalance:
    def test_virtual_nodes_smooth_the_split(self):
        ring = HashRing(4, replicas=64)
        counts = collections.Counter(ring.assignments(20_000))
        mean = 20_000 / 4
        for shard, count in counts.items():
            assert 0.5 * mean < count < 1.6 * mean, (
                f"shard {shard} owns {count} of 20000 keys"
            )

    def test_more_replicas_balance_at_least_roughly_as_well(self):
        def spread(replicas):
            ring = HashRing(4, replicas=replicas)
            counts = collections.Counter(ring.assignments(8000))
            return max(counts.values()) - min(counts.values())

        # Not strictly monotone per-seed, but 256 replicas should never
        # be wildly worse than 4.
        assert spread(256) < 2 * spread(4) + 800

"""Background (idle-time) garbage collection on top of the timeline model.

The paper's simulator — like most FTL studies — runs GC *on demand*: a
write that finds its plane below the watermark performs collection in the
foreground and every queued request eats the erase latency.  Real drives
hide much of this by collecting while the device is idle.

:class:`BackgroundGCSSD` approximates idle-time GC within the trace-driven
timeline model: before servicing each request it probes a few planes in
round-robin order, and any plane below the *background* watermark gets one
block collected, with the flash operations charged to the plane's chip
starting at the current arrival time.  When the drive is genuinely idle
those operations complete inside the gap and cost nothing observable; when
it is busy they queue like any other work (we deliberately do not model
preemption — the remaining pessimism keeps the comparison honest).

The on-demand watermark machinery stays armed underneath, so a burst that
outruns the background collector still cannot strand a plane.

This is an *extension* relative to the paper; the ablation benchmark
(``benchmarks/test_ablation_background_gc.py``) quantifies how much of the
dead-value pool's tail-latency win survives when the baseline is given
this stronger GC.
"""

from __future__ import annotations

from typing import Optional

from ..ftl.ftl import BaseFTL
from .logging import CompletionLog
from .request import CompletedRequest, IORequest
from .ssd import SimulatedSSD

__all__ = ["BackgroundGCSSD"]


class BackgroundGCSSD(SimulatedSSD):
    """SimulatedSSD with opportunistic idle-time collection.

    Parameters
    ----------
    background_watermark:
        Free-block level each plane is kept topped up to (must exceed the
        FTL's on-demand low watermark).
    planes_per_probe:
        How many planes are examined per host request; the probe cursor is
        round-robin, so every plane is visited regularly.
    """

    def __init__(
        self,
        ftl: BaseFTL,
        queue_depth: Optional[int] = None,
        log: Optional[CompletionLog] = None,
        background_watermark: int = 4,
        planes_per_probe: int = 2,
    ):
        super().__init__(ftl, queue_depth=queue_depth, log=log)
        if planes_per_probe <= 0:
            raise ValueError("planes_per_probe must be positive")
        if background_watermark <= ftl.gc.low_watermark:
            raise ValueError(
                "background watermark must exceed the on-demand watermark"
            )
        self.background_watermark = background_watermark
        self.planes_per_probe = planes_per_probe
        self._probe_cursor = 0
        self.background_erases = 0
        self.background_relocations = 0

    def submit(self, request: IORequest) -> CompletedRequest:
        self._background_pass(request.arrival_us)
        return super().submit(request)

    def _background_pass(self, now_us: float) -> None:
        geometry = self.ftl.array.geometry
        total_planes = geometry.total_planes
        planes_per_chip = geometry.planes_per_chip
        for _ in range(self.planes_per_probe):
            plane = self._probe_cursor
            self._probe_cursor = (self._probe_cursor + 1) % total_planes
            # Only collect when the plane's chip is genuinely idle right
            # now — that is what makes this *background* work.
            chip = plane // planes_per_chip
            if self.timelines.chips[chip].busy_until > now_us:
                continue
            work = self.ftl.gc.background_collect(
                plane, self.background_watermark
            )
            if work.erase_count or work.relocation_count:
                self.ftl.counters.gc_erases += work.erase_count
                self.ftl.counters.gc_relocations += work.relocation_count
                self.background_erases += work.erase_count
                self.background_relocations += work.relocation_count
                self._charge_gc(work, now_us)

"""A small synchronous client for the serve protocol.

Used by the integration tests and by scripts that drive a serve
process; plain blocking sockets (no asyncio) so it drops into ordinary
test code.  ``io`` lines are fire-and-forget by protocol design — the
server applies backpressure by not reading ahead — and :meth:`flush` is
the acknowledgement barrier that surfaces any queued error.
"""

from __future__ import annotations

import socket
from typing import Any, Dict, Iterable, Optional

from ..sim.request import IORequest
from ..traces.jsonl import record_of_request
from .protocol import SERVER_TYPES, ProtocolError, decode_message, encode_message

__all__ = ["ServeClientError", "ServeClient"]


class ServeClientError(RuntimeError):
    """An ``error`` reply from the server, raised client-side."""


class ServeClient:
    """One connection to a serve process.  Context-manager friendly."""

    def __init__(self, host: str, port: int, timeout: Optional[float] = 30.0):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._fh = self._sock.makefile("rwb")

    # -- plumbing ------------------------------------------------------

    def _send(self, message: Dict[str, Any]) -> None:
        self._fh.write(encode_message(message))
        self._fh.flush()

    def _recv(self) -> Dict[str, Any]:
        line = self._fh.readline()
        if not line:
            raise ServeClientError("server closed the connection")
        reply = decode_message(line, SERVER_TYPES)
        if reply["type"] == "error":
            raise ServeClientError(reply.get("error", "unknown error"))
        return reply

    def _call(self, message: Dict[str, Any], expect: str) -> Dict[str, Any]:
        self._send(message)
        reply = self._recv()
        if reply["type"] != expect:
            raise ProtocolError(
                f"expected {expect!r} reply, got {reply['type']!r}"
            )
        return reply

    # -- the protocol --------------------------------------------------

    def open(self, **fields: Any) -> Dict[str, Any]:
        """Open (or resume) a session; returns the ``opened`` reply.

        Keyword fields go into the ``open`` message verbatim: ``tenant``,
        ``workload`` and ``system`` are required by the server, the rest
        (``shards``, ``scale``, ``seed``, ...) are optional.
        """
        return self._call(dict(fields, type="open"), "opened")

    def send(self, request: IORequest) -> None:
        """Stream one request (unacknowledged; ``flush`` is the barrier)."""
        self._send(dict(record_of_request(request), type="io"))

    def stream(self, requests: Iterable[IORequest]) -> int:
        """Stream a whole request sequence; returns how many were sent."""
        count = 0
        for request in requests:
            self.send(request)
            count += 1
        return count

    def flush(self) -> Dict[str, Any]:
        """Force buffered requests through; returns the unified
        ``serve.metrics`` record dict."""
        return self._call({"type": "flush"}, "metrics")["record"]

    def close_session(self) -> Dict[str, Any]:
        """Finish the session; returns the final ``serve.session``
        record dict (its ``digest`` is the batch-parity identity)."""
        return self._call({"type": "close"}, "result")["record"]

    def detach(self) -> Dict[str, Any]:
        """Park the session server-side (checkpointed); returns ``bye``."""
        return self._call({"type": "detach"}, "bye")

    def ping(self) -> None:
        self._call({"type": "ping"}, "pong")

    def shutdown_server(self) -> None:
        """Ask the server to drain every session and exit."""
        self._call({"type": "shutdown"}, "draining")

    # -- connection ----------------------------------------------------

    def close(self) -> None:
        try:
            self._fh.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

"""Shared argparse flag groups and their RunConfig translations.

Every subcommand used to re-declare its own copy of ``--scale``,
``--jobs``, the ``--check`` group, the fault flags and the ``--obs``
pair as nested closures inside :func:`repro.cli.build_parser`; the
``fleet`` and ``faults`` parsers had already drifted apart (different
``--seed`` defaults, ``faults`` without ``--jobs``).  This module is
the single source of those flag sets, so a new subcommand (``serve``)
reuses ``--check/--obs/--jobs/--seed`` instead of re-declaring them —
and so the *translation* from parsed args to config objects
(:func:`check_kwargs`, :func:`fault_config_or_none`,
:class:`ObsSetup`) lives next to the flags it interprets.

Nothing here imports the heavy simulation stack at module load; the
helpers lazily import what they build.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .faults.model import FaultConfig
    from .obs.export import JsonlWriter
    from .obs.registry import MetricRegistry
    from .obs.sampler import TimeSeriesSampler

__all__ = [
    "add_scale",
    "add_jobs",
    "add_seed",
    "add_check_flags",
    "add_fault_flags",
    "add_obs_flags",
    "check_kwargs",
    "fault_config",
    "fault_config_or_none",
    "ObsSetup",
    "build_obs",
]


# -- flag groups -------------------------------------------------------


def add_scale(parser: argparse.ArgumentParser) -> None:
    from .experiments.config import DEFAULT_SCALE

    parser.add_argument(
        "--scale", type=float, default=DEFAULT_SCALE,
        help=f"workload scale (default {DEFAULT_SCALE})",
    )


def add_jobs(
    parser: argparse.ArgumentParser,
    help: Optional[str] = None,
) -> None:
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help=help or (
            "worker processes for independent cells "
            "(default 1 = serial, 0 = all cores)"
        ),
    )


def add_seed(
    parser: argparse.ArgumentParser,
    default: Optional[int] = 0,
    help: Optional[str] = None,
) -> None:
    parser.add_argument(
        "--seed", type=int, default=default,
        help=help or f"seed (default {default})",
    )


def add_check_flags(parser: argparse.ArgumentParser) -> None:
    """``--check/--check-interval/--trim-every`` — the lockstep
    correctness-harness group (see DESIGN.md §8)."""
    parser.add_argument(
        "--check", action="store_true",
        help="run the correctness harness in lockstep: full invariant "
             "audits plus the dict-based oracle FTL cross-checking "
             "every read, revival and trim (see DESIGN.md)",
    )
    parser.add_argument(
        "--check-interval", type=int, default=None, metavar="N",
        help="events between full invariant audits (implies --check; "
             "default 1000)",
    )
    parser.add_argument(
        "--trim-every", type=int, default=0, metavar="N",
        help="inject a TRIM after every Nth write (0 = none); "
             "changes the trace, so results differ from the "
             "untrimmed run by construction",
    )


def add_fault_flags(parser: argparse.ArgumentParser) -> None:
    """The seeded fault-injection group (``--seed`` rides along: it is
    the fault-stream seed on ``run``/``faults``)."""
    add_seed(parser, default=0, help="fault-stream seed (default 0)")
    parser.add_argument("--program-failure-prob", type=float, default=0.0,
                        metavar="P", help="per-program failure probability")
    parser.add_argument("--erase-failure-prob", type=float, default=0.0,
                        metavar="P", help="per-erase failure probability")
    parser.add_argument("--read-error-prob", type=float, default=0.0,
                        metavar="P", help="per-read ECC-retry probability")
    parser.add_argument("--crash-after", type=int, default=None, metavar="N",
                        help="power loss after N serviced host requests")


def add_obs_flags(
    parser: argparse.ArgumentParser,
    intervals: bool = True,
    help: Optional[str] = None,
) -> None:
    """``--obs PATH`` (+ optional sampling-cadence pair)."""
    parser.add_argument(
        "--obs", metavar="PATH", default=None,
        help=help or (
            "write a JSONL time series of internal state to PATH "
            "(see DESIGN.md, 'Observability')"
        ),
    )
    if intervals:
        parser.add_argument(
            "--obs-interval", type=int, default=1000, metavar="N",
            help="sample every N completed host requests (default 1000)",
        )
        parser.add_argument(
            "--obs-interval-us", type=float, default=None, metavar="M",
            help="also sample every M simulated microseconds",
        )


# -- args → config objects ---------------------------------------------


def check_kwargs(args: argparse.Namespace) -> dict:
    """RunConfig kwargs from the shared ``--check`` flag group.

    ``--check`` (or an explicit ``--check-interval``) turns on both the
    invariant audits and the lockstep oracle; ``--trim-every`` passes
    through unconditionally since it is a trace transform, not a check.
    """
    kwargs: dict = {"trim_every": args.trim_every}
    if args.check or args.check_interval is not None:
        kwargs["oracle"] = True
        kwargs["check_interval"] = args.check_interval
    return kwargs


def fault_config(args: argparse.Namespace) -> "FaultConfig":
    """A FaultConfig from the shared fault flag group (always built)."""
    from .faults import FaultConfig

    return FaultConfig(
        seed=args.seed,
        program_failure_prob=args.program_failure_prob,
        erase_failure_prob=args.erase_failure_prob,
        read_error_prob=args.read_error_prob,
        crash_after_requests=args.crash_after,
    )


def fault_config_or_none(args: argparse.Namespace) -> Optional["FaultConfig"]:
    """A FaultConfig when any fault flag was actually used, else None.

    ``run`` must stay digest-identical to older builds when no fault
    flag is given, so (unlike ``faults``, which always attaches the
    fault model) an all-default flag set yields the perfect device.
    """
    if (
        args.program_failure_prob == 0.0
        and args.erase_failure_prob == 0.0
        and args.read_error_prob == 0.0
        and args.crash_after is None
    ):
        return None
    return fault_config(args)


@dataclass
class ObsSetup:
    """The live observability trio the ``--obs`` group builds.

    ``close()`` is safe to call unconditionally (and more than once);
    callers wrap the run in ``try/finally`` around it.
    """

    observer: Optional["TimeSeriesSampler"] = None
    writer: Optional["JsonlWriter"] = None
    registry: Optional["MetricRegistry"] = None

    def close(self) -> None:
        if self.writer is not None:
            self.writer.close()
            self.writer = None


def build_obs(args: argparse.Namespace) -> Optional[ObsSetup]:
    """Build the sampler/writer/registry for the ``--obs`` flags.

    Returns an empty :class:`ObsSetup` when ``--obs`` was not given and
    ``None`` on a flag error (after printing it — the caller exits 2).
    The sampling cadence is validated *before* the output file opens,
    so a bad flag value never leaves an empty JSONL behind.
    """
    if not args.obs:
        return ObsSetup()
    from .obs import JsonlWriter, MetricRegistry, TimeSeriesSampler

    registry = MetricRegistry()
    try:
        observer = TimeSeriesSampler(
            interval_requests=args.obs_interval,
            interval_us=args.obs_interval_us,
            registry=registry,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return None
    try:
        writer = JsonlWriter(args.obs)
    except OSError as exc:
        print(f"error: cannot open --obs file: {exc}", file=sys.stderr)
        return None
    observer.sink = writer
    return ObsSetup(observer=observer, writer=writer, registry=registry)

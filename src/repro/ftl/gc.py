"""Garbage collection: victim selection policies and the collection loop.

Two victim-selection policies from the paper:

``GreedyVictimPolicy``
    The classic baseline: pick the full block with the most invalid pages
    (maximum immediate space reclaim, minimum relocation work).

``PopularityAwareVictimPolicy``
    Section IV-D: a popularity-unaware GC "is very likely to obliviously
    select a block with many popular pages (currently garbage but very
    likely to get recycled soon)".  This policy discounts each candidate's
    reclaim benefit by the weighted sum of the popularity degrees of its
    garbage pages, delaying the erasure of popular dead values.

The :class:`GarbageCollector` runs per-plane (relocations stay in-plane)
whenever the plane's free-block count drops below a watermark, relocating
valid pages and erasing the victim.  It reports every physical operation so
the simulator can charge read/program/erase latencies to the chip
timelines, and calls back into the owning FTL for mapping and dead-value
pool bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Protocol, Tuple

from ..flash.array import FlashArray
from .allocator import OutOfSpaceError, PageAllocator
from .mapping import POPULARITY_MAX

__all__ = [
    "GCWork",
    "VictimPolicy",
    "GreedyVictimPolicy",
    "PopularityAwareVictimPolicy",
    "GCDelegate",
    "GarbageCollector",
]


@dataclass(slots=True)
class GCWork:
    """Physical work performed by one collection pass."""

    relocations: List[Tuple[int, int]] = field(default_factory=list)
    erased_blocks: List[int] = field(default_factory=list)
    #: Victims whose erase failed (or that were marked bad): removed from
    #: service instead of being reclaimed.  Fault layer only.
    retired_blocks: List[int] = field(default_factory=list)
    reclaimed_pages: int = 0

    @property
    def erase_count(self) -> int:
        return len(self.erased_blocks)

    @property
    def relocation_count(self) -> int:
        return len(self.relocations)

    def merge(self, other: "GCWork") -> None:
        self.relocations.extend(other.relocations)
        self.erased_blocks.extend(other.erased_blocks)
        self.retired_blocks.extend(other.retired_blocks)
        self.reclaimed_pages += other.reclaimed_pages


#: Immutable-by-convention empty result for collection passes that decline
#: to run (the common case); saves one GCWork + three list allocations per
#: host write.
_NO_WORK = GCWork()


class VictimPolicy(Protocol):
    """Chooses which block a plane should erase next."""

    def select(
        self,
        candidates: List[int],
        array: FlashArray,
        garbage_popularity_of: Callable[[int], int],
    ) -> Optional[int]:
        """Return the victim block (flat index), or ``None`` to decline."""


class GreedyVictimPolicy:
    """Maximise invalid pages reclaimed; break ties toward low wear."""

    def select(
        self,
        candidates: List[int],
        array: FlashArray,
        garbage_popularity_of: Callable[[int], int],
    ) -> Optional[int]:
        best = None
        best_key = None
        for block in candidates:
            b = array.block(block)
            if b.invalid_count == 0:
                continue
            key = (b.invalid_count, -b.erase_count)
            if best_key is None or key > best_key:
                best, best_key = block, key
        return best


class PopularityAwareVictimPolicy:
    """Greedy benefit discounted by garbage-page popularity (Section IV-D).

    The score of a candidate is::

        invalid_count - weight * (popularity_sum / POPULARITY_MAX)

    i.e. each fully-popular garbage page cancels ``weight`` pages' worth of
    reclaim benefit, steering GC away from blocks dense in soon-to-be-reborn
    values.
    """

    def __init__(self, weight: float = 1.0):
        if weight < 0:
            raise ValueError("weight must be non-negative")
        self.weight = weight

    def select(
        self,
        candidates: List[int],
        array: FlashArray,
        garbage_popularity_of: Callable[[int], int],
    ) -> Optional[int]:
        best = None
        best_score = None
        for block in candidates:
            b = array.block(block)
            if b.invalid_count == 0:
                continue
            penalty = self.weight * garbage_popularity_of(block) / POPULARITY_MAX
            score = b.invalid_count - penalty
            key = (score, -b.erase_count)
            if best_score is None or key > best_score:
                best, best_score = block, key
        return best


class GCDelegate(Protocol):
    """Bookkeeping hooks the owning FTL provides to the collector."""

    def relocate_page(self, old_ppn: int, new_ppn: int) -> None:
        """A valid page moved: fix mapping tables and fingerprint indexes."""

    def erase_cleanup(self, block_global: int, invalid_ppns: List[int]) -> None:
        """A block is about to be erased: drop pool entries for its garbage."""


class GarbageCollector:
    """Per-plane watermark-driven collection."""

    def __init__(
        self,
        array: FlashArray,
        allocator: PageAllocator,
        policy: VictimPolicy,
        delegate: GCDelegate,
        garbage_popularity_of: Callable[[int], int],
        low_watermark: int = 2,
        max_blocks_per_invocation: int = 1,
        wear_guard: Optional[Callable[[int], bool]] = None,
    ):
        if low_watermark <= 0:
            raise ValueError("low_watermark must be positive")
        if max_blocks_per_invocation <= 0:
            raise ValueError("max_blocks_per_invocation must be positive")
        self.array = array
        self.allocator = allocator
        self.policy = policy
        self.delegate = delegate
        self.garbage_popularity_of = garbage_popularity_of
        self.low_watermark = low_watermark
        self.max_blocks_per_invocation = max_blocks_per_invocation
        #: Optional wear-levelling predicate (block -> may erase?).  Vetoed
        #: blocks are only excluded while unvetoed candidates exist —
        #: levelling shapes preference, never correctness.
        self.wear_guard = wear_guard
        self.invocations = 0
        #: Optional :class:`~repro.obs.Tracer` wrapping collection passes
        #: in a ``gc.collect`` span (set via ``BaseFTL.attach_observability``).
        self.tracer = None
        #: Optional :class:`~repro.check.InvariantChecker` postcondition
        #: hook (set via ``BaseFTL.attach_checker``).
        self.checker = None

    # ------------------------------------------------------------------

    def needs_collection(self, plane: int) -> bool:
        return self.allocator.free_block_count(plane) < self.low_watermark

    def _candidates(self, plane: int, capacity: int) -> List[int]:
        """Collectible blocks: full, non-active, with garbage to reclaim,
        and whose valid pages fit in the plane's remaining writable space
        (so relocation can never strand the plane)."""
        blocks_per_plane = self.array.geometry.blocks_per_plane
        base = plane * blocks_per_plane
        blocks = self.array.blocks
        active, active_gc = self.allocator.actives_of_plane(plane)
        out = []
        for block in range(base, base + blocks_per_plane):
            b = blocks[block]
            if (
                b.invalid_count > 0
                and b.write_pointer >= b.pages_per_block
                and b.valid_count <= capacity
                and block != active
                and block != active_gc
            ):
                out.append(block)
        if self.wear_guard is not None:
            levelled = [b for b in out if self.wear_guard(b)]
            if levelled:
                return levelled
        return out

    def maybe_collect(self, plane: int) -> GCWork:
        """Incremental collection: when the plane is below the watermark,
        reclaim up to ``max_blocks_per_invocation`` victims.

        Called *before* each page allocation.  Collecting a bounded number
        of blocks per write amortises GC instead of erasing dozens of
        blocks in one burst: every collected victim reclaims at least one
        page while the triggering write consumes exactly one, so free space
        converges without multi-millisecond stop-the-world episodes.
        """
        if len(self.allocator.free_blocks[plane]) >= self.low_watermark:
            # Shared empty result for the common above-watermark path;
            # callers treat returned work as read-only.
            return _NO_WORK
        work = GCWork()
        self.invocations += 1
        if self.tracer is not None:
            with self.tracer.span("gc.collect"):
                self._collect_to_watermark(plane, work)
        else:
            self._collect_to_watermark(plane, work)
        if self.checker is not None:
            self.checker.after_gc(self.delegate, plane, work)
        return work

    def _collect_to_watermark(self, plane: int, work: GCWork) -> None:
        for _ in range(self.max_blocks_per_invocation):
            if not self.needs_collection(plane) or getattr(
                self.delegate, "read_only", False
            ):
                break
            capacity = self.allocator.writable_pages(plane)
            victim = self.policy.select(
                self._candidates(plane, capacity),
                self.array,
                self.garbage_popularity_of,
            )
            if victim is None:
                break
            work.merge(self._collect_block(victim, plane))
        # Emergency mode: the plane must always end an invocation with at
        # least one free block, or the *next* write could strand it (two
        # active blocks — host and relocation — may each need to open one).
        # Keep collecting past the per-invocation bound until that reserve
        # exists or nothing is collectible.  A drive that went read-only
        # mid-invocation stops instead: writes are rejected from here on,
        # so the reserve no longer needs restoring.
        while (
            self.allocator.free_block_count(plane) == 0
            and not getattr(self.delegate, "read_only", False)
        ):
            capacity = self.allocator.writable_pages(plane)
            victim = self.policy.select(
                self._candidates(plane, capacity),
                self.array,
                self.garbage_popularity_of,
            )
            if victim is None:
                break
            work.merge(self._collect_block(victim, plane))

    def background_collect(self, plane: int, watermark: int) -> GCWork:
        """Opportunistic collection during idle time.

        Unlike :meth:`maybe_collect` (which runs only when the plane is
        about to run out), background collection keeps planes topped up to
        a *higher* watermark whenever the device has spare time, so
        foreground writes rarely observe GC at all.  Collects at most one
        block per call; the caller decides when idle time exists.
        """
        if watermark <= self.low_watermark:
            raise ValueError("background watermark must exceed the low one")
        work = GCWork()
        if self.allocator.free_block_count(plane) >= watermark:
            return work
        capacity = self.allocator.writable_pages(plane)
        victim = self.policy.select(
            self._candidates(plane, capacity),
            self.array,
            self.garbage_popularity_of,
        )
        if victim is not None:
            work.merge(self._collect_block(victim, plane))
        if self.checker is not None:
            self.checker.after_gc(self.delegate, plane, work)
        return work

    def _collect_block(self, victim: int, plane: int) -> GCWork:
        work = GCWork()
        geometry = self.array.geometry
        block = self.array.block(victim)
        base_ppn = geometry.first_ppn_of_block(victim)
        # Relocate valid pages within the plane.
        for page in block.valid_page_indexes():
            old_ppn = base_ppn + page
            try:
                new_ppn = self.allocator.allocate_in_plane(plane, for_gc=True)
            except OutOfSpaceError as exc:
                raise OutOfSpaceError(
                    f"plane {plane}: no room to relocate during GC"
                ) from exc
            self.delegate.relocate_page(old_ppn, new_ppn)
            self.array.invalidate(old_ppn)
            work.relocations.append((old_ppn, new_ppn))
        invalid_ppns = [base_ppn + p for p in block.invalid_page_indexes()]
        self.delegate.erase_cleanup(victim, invalid_ppns)
        # Fault layer: a victim marked bad (repeat program failures) or
        # whose erase fails is retired instead of reclaimed.  The delegate
        # attributes are absent on bare FTLs, so the fault-free path pays
        # two getattr calls per victim and nothing else.
        badblocks = getattr(self.delegate, "badblocks", None)
        if badblocks is not None and badblocks.should_retire(
            victim, getattr(self.delegate, "faults", None)
        ):
            if self.allocator.free_block_count(plane) == 0:
                # Retiring this victim would consume the plane's last bit
                # of relocation headroom: a collection pass that ends with
                # zero free blocks leaves the *next* pass unable to open a
                # relocation block (hard OutOfSpaceError mid-GC).  Keep
                # the invariant that every pass returns a block to the
                # plane — degrade to read-only instead and reclaim the
                # victim normally; the bad block staying in rotation is
                # harmless because all future writes are rejected.
                self.delegate.enter_read_only()
                work.reclaimed_pages += self.array.erase(victim)
                self.allocator.release_block(victim)
                work.erased_blocks.append(victim)
            else:
                self.array.retire_block(victim)
                work.retired_blocks.append(victim)
                if not badblocks.retire(victim):
                    # Spare pool exhausted: degrade to read-only.
                    self.delegate.enter_read_only()
        else:
            work.reclaimed_pages += self.array.erase(victim)
            self.allocator.release_block(victim)
            work.erased_blocks.append(victim)
        return work

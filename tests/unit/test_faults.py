"""Unit tests for repro.faults: config, seeded model, bad blocks, recovery."""

import pytest

from repro.core.dvp import MQDeadValuePool
from repro.core.hashing import fingerprint_of_value as fp
from repro.faults import (
    FaultConfig,
    FaultModel,
    FaultStats,
    RecoveryError,
    crash_and_recover,
    rebuild_mapping,
)
from repro.ftl.allocator import BadBlockManager
from repro.ftl.dedup import DedupFTL
from repro.ftl.ftl import BaseFTL


class TestFaultConfig:
    def test_defaults_inject_nothing(self):
        assert not FaultConfig().enabled

    @pytest.mark.parametrize(
        "field", ["program_failure_prob", "erase_failure_prob", "read_error_prob"]
    )
    def test_probabilities_validated(self, field):
        with pytest.raises(ValueError):
            FaultConfig(**{field: -0.1})
        with pytest.raises(ValueError):
            FaultConfig(**{field: 1.5})

    def test_bounds_validated(self):
        with pytest.raises(ValueError):
            FaultConfig(max_read_retries=0)
        with pytest.raises(ValueError):
            FaultConfig(max_program_retries=0)
        with pytest.raises(ValueError):
            FaultConfig(program_failure_retire_threshold=0)
        with pytest.raises(ValueError):
            FaultConfig(spare_block_fraction=1.0)
        with pytest.raises(ValueError):
            FaultConfig(crash_after_requests=0)

    def test_enabled_per_category(self):
        assert FaultConfig(program_failure_prob=0.1).enabled
        assert FaultConfig(erase_failure_prob=0.1).enabled
        assert FaultConfig(read_error_prob=0.1).enabled
        assert FaultConfig(crash_after_requests=100).enabled

    def test_with_seed_replaces_only_seed(self):
        cfg = FaultConfig(program_failure_prob=0.25).with_seed(9)
        assert cfg.seed == 9
        assert cfg.program_failure_prob == 0.25

    def test_frozen_and_picklable(self):
        import pickle

        cfg = FaultConfig(seed=3, read_error_prob=0.5)
        with pytest.raises(Exception):
            cfg.seed = 4  # type: ignore[misc]
        assert pickle.loads(pickle.dumps(cfg)) == cfg


class TestFaultModel:
    def test_same_seed_same_sequence(self):
        cfg = FaultConfig(seed=42, program_failure_prob=0.3)
        a = FaultModel(cfg)
        b = FaultModel(cfg)
        assert [a.program_fails() for _ in range(200)] == [
            b.program_fails() for _ in range(200)
        ]

    def test_streams_are_independent(self):
        """Consulting one category must not perturb another's sequence."""
        cfg = FaultConfig(
            seed=7, program_failure_prob=0.3, read_error_prob=0.3
        )
        lone = FaultModel(cfg)
        reads_alone = [lone.read_retry_rounds() for _ in range(100)]
        mixed = FaultModel(cfg)
        reads_mixed = []
        for _ in range(100):
            mixed.program_fails()  # interleave draws from another stream
            reads_mixed.append(mixed.read_retry_rounds())
        assert reads_alone == reads_mixed

    def test_disabled_category_never_fires(self):
        model = FaultModel(FaultConfig(seed=1))
        assert not any(model.program_fails() for _ in range(50))
        assert not any(model.erase_fails() for _ in range(50))
        assert all(model.read_retry_rounds() == 0 for _ in range(50))
        assert model.stats.summary()["program_failures"] == 0

    def test_stats_count_events(self):
        model = FaultModel(
            FaultConfig(seed=5, read_error_prob=1.0, max_read_retries=3)
        )
        rounds = [model.read_retry_rounds() for _ in range(20)]
        assert all(1 <= r <= 3 for r in rounds)
        assert model.stats.read_errors == 20
        assert model.stats.read_retries == sum(rounds)

    def test_stats_summary_shape(self):
        summary = FaultStats().summary()
        assert summary["recoveries"] == 0
        assert summary["mean_recovery_us"] == 0.0


class TestBadBlockManager:
    def _manager(self, spares=2, planes=4, blocks_per_plane=8):
        return BadBlockManager(
            FaultStats(),
            spares_per_plane=spares,
            retire_threshold=2,
            plane_of_block=lambda b: b // blocks_per_plane,
            planes=planes,
        )

    def test_budget_is_per_plane(self):
        mgr = self._manager(spares=1, planes=2)
        assert mgr.spare_blocks == 2
        assert mgr.retire(0) is True       # plane 0, within share
        assert mgr.exhausted is False
        assert mgr.retire(1) is False      # plane 0 share spent
        assert mgr.exhausted is True
        # Plane 1's captive share cannot absorb plane 0's overdraw.
        assert mgr.retired_in_plane(0) == 2
        assert mgr.retired_in_plane(1) == 0

    def test_spares_remaining_caps_per_plane(self):
        mgr = self._manager(spares=1, planes=2)
        mgr.retire(0)
        mgr.retire(1)
        mgr.retire(2)
        # Plane 0 overspent but only its share counts as spent.
        assert mgr.spares_remaining == 1

    def test_remaps_counted_only_within_share(self):
        mgr = self._manager(spares=1, planes=1)
        mgr.retire(0)
        mgr.retire(1)
        assert mgr.stats.retired_blocks == 2
        assert mgr.stats.remaps == 1

    def test_program_failures_mark_at_threshold(self):
        mgr = self._manager()
        mgr.note_program_failure(3)
        assert not mgr.marked_for_retirement(3)
        mgr.note_program_failure(3)
        assert mgr.marked_for_retirement(3)
        assert mgr.should_retire(3, None)
        assert not mgr.should_retire(4, None)

    def test_erase_failure_triggers_retire(self):
        mgr = self._manager()
        model = FaultModel(FaultConfig(seed=0, erase_failure_prob=1.0))
        assert mgr.should_retire(5, model)

    def test_validation(self):
        with pytest.raises(ValueError):
            BadBlockManager(
                FaultStats(), -1, 2, lambda b: 0, 1
            )
        with pytest.raises(ValueError):
            BadBlockManager(
                FaultStats(), 1, 0, lambda b: 0, 1
            )
        with pytest.raises(ValueError):
            BadBlockManager(
                FaultStats(), 1, 2, lambda b: 0, 0
            )


class TestReadOnlyDegradation:
    def test_read_only_rejects_writes(self, tiny_config):
        ftl = BaseFTL(tiny_config)
        ftl.attach_faults(FaultModel(FaultConfig(seed=0)))
        ftl.write(0, fp(1))
        ftl.enter_read_only()
        outcome = ftl.write(1, fp(2))
        assert outcome.rejected
        assert outcome.program_ppn is None
        assert ftl.faults.stats.rejected_writes == 1
        assert ftl.counters.programs == 1  # only the pre-degradation write
        # Reads keep working.
        assert ftl.read(0).flash_read

    def test_program_retries_on_failure(self, tiny_config):
        ftl = BaseFTL(tiny_config)
        cfg = FaultConfig(
            seed=1, program_failure_prob=0.5, max_program_retries=8
        )
        ftl.attach_faults(FaultModel(cfg))
        for lpn in range(32):
            out = ftl.write(lpn, fp(lpn))
            # Every non-rejected write still lands somewhere readable.
            if not out.rejected:
                assert ftl.mapping.lookup(lpn) == out.program_ppn
        assert ftl.faults.stats.program_failures > 0

    def test_spares_sized_per_plane(self, tiny_config):
        ftl = BaseFTL(tiny_config)
        ftl.attach_faults(
            FaultModel(FaultConfig(seed=0, spare_block_fraction=0.02))
        )
        geometry = ftl.array.geometry
        # 2% of 16 blocks rounds to 0; the floor of one spare per plane
        # must apply.
        assert ftl.badblocks.spares_per_plane == 1
        assert ftl.badblocks.spare_blocks == geometry.total_planes


class TestCrashRecovery:
    def _populated(self, config, pool=None):
        ftl = BaseFTL(config, pool=pool)
        for lpn in range(40):
            ftl.write(lpn, fp(lpn))
        for lpn in range(0, 40, 3):       # updates create garbage
            ftl.write(lpn, fp(lpn + 100))
        for lpn in (1, 7):
            ftl.trim(lpn)
        return ftl

    def test_rebuild_matches_live_mapping(self, tiny_config):
        ftl = self._populated(tiny_config)
        rebuilt = rebuild_mapping(ftl)
        assert rebuilt.forward_items() == ftl.mapping.forward_items()

    def test_crash_and_recover_is_lossless(self, tiny_config):
        ftl = self._populated(
            tiny_config, pool=MQDeadValuePool(64, num_queues=4)
        )
        ftl.attach_faults(FaultModel(FaultConfig(seed=0)))
        before = dict(ftl.mapping.forward_items())
        pool_tracked = ftl.pool.tracked_ppn_count()
        report = crash_and_recover(ftl, at_us=123.0)
        assert ftl.mapping.forward_items() == before
        assert report.rebuilt_lpns == len(before)
        assert report.dropped_pool_ppns == pool_tracked
        assert report.recovery_us > 0
        assert ftl.pool.tracked_ppn_count() == 0  # pool restarts cold
        assert ftl.faults.stats.crashes == 1
        assert ftl.faults.stats.recovery_count == 1
        # The drive still works after recovery.
        out = ftl.write(50, fp(999))
        assert out.programmed
        assert ftl.read(50).flash_read

    def test_recovery_survives_gc_relocations(self, tiny_config):
        ftl = BaseFTL(tiny_config)
        # Enough churn to force GC relocations and erases.
        for i in range(1500):
            ftl.write(i % 64, fp(i))
        assert ftl.counters.gc_erases > 0
        assert rebuild_mapping(ftl).forward_items() == (
            ftl.mapping.forward_items()
        )

    def test_dedup_ftl_refused(self, tiny_config):
        ftl = DedupFTL(tiny_config)
        ftl.write(0, fp(1))
        with pytest.raises(RecoveryError):
            crash_and_recover(ftl)

"""Unit tests for the studied-system factories."""

import pytest

from repro.core.dvp import (
    InfiniteDeadValuePool,
    LBARecencyPool,
    LRUDeadValuePool,
    MQDeadValuePool,
)
from repro.ftl.dedup import DedupFTL
from repro.ftl.dvp_ftl import SYSTEMS, build_system
from repro.ftl.gc import GreedyVictimPolicy, PopularityAwareVictimPolicy


class TestRegistry:
    def test_all_paper_systems_present(self):
        assert set(SYSTEMS) == {
            "baseline", "lru-dvp", "mq-dvp", "ideal", "lxssd",
            "dedup", "dvp+dedup", "adaptive-dvp",
            "dftl-baseline", "dftl-mq-dvp",
        }

    def test_unknown_system(self, tiny_config):
        with pytest.raises(ValueError, match="unknown system"):
            build_system("nope", tiny_config, 100)


class TestComposition:
    def test_baseline_has_no_pool(self, tiny_config):
        ftl = build_system("baseline", tiny_config, 100)
        assert ftl.pool is None
        assert not ftl.content_aware
        assert isinstance(ftl.gc.policy, GreedyVictimPolicy)

    def test_lru_dvp(self, tiny_config):
        ftl = build_system("lru-dvp", tiny_config, 100)
        assert isinstance(ftl.pool, LRUDeadValuePool)
        assert ftl.pool.capacity == 100

    def test_mq_dvp_uses_popularity_aware_gc(self, tiny_config):
        ftl = build_system("mq-dvp", tiny_config, 100)
        assert isinstance(ftl.pool, MQDeadValuePool)
        assert ftl.pool.mq.num_queues == 8  # paper Section V-A
        assert isinstance(ftl.gc.policy, PopularityAwareVictimPolicy)

    def test_ideal_is_infinite(self, tiny_config):
        ftl = build_system("ideal", tiny_config, 100)
        assert isinstance(ftl.pool, InfiniteDeadValuePool)

    def test_lxssd_combines_read_popularity(self, tiny_config):
        ftl = build_system("lxssd", tiny_config, 100)
        assert isinstance(ftl.pool, LBARecencyPool)
        assert ftl.combine_read_popularity
        assert isinstance(ftl.gc.policy, GreedyVictimPolicy)

    def test_dedup_has_no_pool(self, tiny_config):
        ftl = build_system("dedup", tiny_config, 100)
        assert isinstance(ftl, DedupFTL)
        assert ftl.pool is None
        assert ftl.content_aware  # hashes even without a pool

    def test_dvp_dedup_composition(self, tiny_config):
        ftl = build_system("dvp+dedup", tiny_config, 100)
        assert isinstance(ftl, DedupFTL)
        assert isinstance(ftl.pool, MQDeadValuePool)
        assert isinstance(ftl.gc.policy, PopularityAwareVictimPolicy)

    def test_adaptive_dvp_composition(self, tiny_config):
        from repro.core.adaptive import AdaptiveMQDeadValuePool

        ftl = build_system("adaptive-dvp", tiny_config, 512)
        assert isinstance(ftl.pool, AdaptiveMQDeadValuePool)
        assert ftl.pool.max_entries == 512
        assert ftl.pool.capacity == 128  # starts at a quarter of the budget
        assert isinstance(ftl.gc.policy, PopularityAwareVictimPolicy)

    def test_pool_size_ignored_where_inapplicable(self, tiny_config):
        # These factories take no pool size; any value must work.
        for name in ("baseline", "ideal", "dedup", "dftl-baseline"):
            build_system(name, tiny_config, 12345)

    def test_dftl_baseline_composition(self, tiny_config):
        from repro.ftl.dftl import DFTLFtl

        ftl = build_system("dftl-baseline", tiny_config, 100)
        assert isinstance(ftl, DFTLFtl)
        assert ftl.pool is None
        assert isinstance(ftl.gc.policy, GreedyVictimPolicy)

    def test_dftl_mq_dvp_composition(self, tiny_config):
        from repro.ftl.dftl import DFTLFtl

        ftl = build_system("dftl-mq-dvp", tiny_config, 100)
        assert isinstance(ftl, DFTLFtl)
        assert isinstance(ftl.pool, MQDeadValuePool)
        assert isinstance(ftl.gc.policy, PopularityAwareVictimPolicy)


class TestPoolOffMap:
    def test_maps_within_registry(self):
        from repro.ftl.dvp_ftl import POOL_OFF_SYSTEM

        for on, off in POOL_OFF_SYSTEM.items():
            assert on in SYSTEMS and off in SYSTEMS

    def test_off_counterparts_have_no_pool(self, tiny_config):
        from repro.ftl.dvp_ftl import POOL_OFF_SYSTEM

        for on, off in POOL_OFF_SYSTEM.items():
            assert build_system(on, tiny_config, 64).pool is not None
            assert build_system(off, tiny_config, 64).pool is None

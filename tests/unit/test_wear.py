"""Unit tests for wear accounting."""

import pytest

from repro.flash.array import FlashArray
from repro.ftl.wear import WearTracker


def wear_block(array: FlashArray, block: int, times: int) -> None:
    for _ in range(times):
        ppn = array.program_in_block(block)
        array.invalidate(ppn)
        # erase requires no valid pages; invalidate everything programmed
        while array.block(block).write_pointer < 1:
            pass
        array.erase(block)


class TestWearStats:
    def test_fresh_drive_has_zero_wear(self, tiny_config):
        tracker = WearTracker(FlashArray(tiny_config))
        stats = tracker.stats()
        assert stats.total_erases == 0
        assert stats.spread == 0
        assert stats.mean_erases == 0.0

    def test_stats_after_erases(self, tiny_config):
        array = FlashArray(tiny_config)
        wear_block(array, 0, 3)
        wear_block(array, 1, 1)
        stats = WearTracker(array).stats()
        assert stats.total_erases == 4
        assert stats.max_erases == 3
        assert stats.min_erases == 0
        assert stats.spread == 3

    def test_histogram_order(self, tiny_config):
        array = FlashArray(tiny_config)
        wear_block(array, 2, 2)
        hist = WearTracker(array).erase_histogram()
        assert hist[2] == 2
        assert sum(hist) == 2


class TestWearGuard:
    def test_fresh_blocks_allowed(self, tiny_config):
        tracker = WearTracker(FlashArray(tiny_config))
        assert tracker.allows_erase(0)

    def test_hot_block_vetoed(self, tiny_config):
        array = FlashArray(tiny_config)
        tracker = WearTracker(array, guard_margin=2)
        wear_block(array, 0, 5)
        # block 0 is 5 erases above the (near-zero) mean, margin is 2
        assert not tracker.allows_erase(0)
        assert tracker.allows_erase(1)

    def test_negative_margin_rejected(self, tiny_config):
        with pytest.raises(ValueError):
            WearTracker(FlashArray(tiny_config), guard_margin=-1)


class TestCachedMeanGuard:
    """Regression: ``allows_erase`` used to recompute the drive-mean
    erase count for every candidate; it now caches the mean keyed on
    ``total_erases``.  Decisions must be bit-for-bit identical to the
    naive recomputation."""

    @staticmethod
    def naive_allows(array: FlashArray, block: int, margin: int) -> bool:
        mean = array.total_erases / len(array.blocks)
        return array.block(block).erase_count <= mean + margin

    def test_decisions_match_naive_mean(self, tiny_config):
        array = FlashArray(tiny_config)
        tracker = WearTracker(array, guard_margin=1)
        # Skew wear deterministically, interleaving queries with erases
        # so the cache is exercised both stale and fresh.
        pattern = [0, 0, 1, 3, 0, 2, 2, 2, 2, 1, 0, 5]
        for step, block in enumerate(pattern):
            wear_block(array, block, 1)
            for candidate in range(len(array.blocks)):
                assert tracker.allows_erase(candidate) == self.naive_allows(
                    array, candidate, tracker.guard_margin
                ), f"divergence at step {step}, candidate {candidate}"

    def test_cache_refreshes_after_erase(self, tiny_config):
        array = FlashArray(tiny_config)
        tracker = WearTracker(array, guard_margin=0)
        assert tracker.allows_erase(0)
        # Wear block 0 well above the mean; the cached mean must refresh.
        wear_block(array, 0, 4)
        assert not tracker.allows_erase(0)
        # Level the rest of the drive; block 0 becomes acceptable again.
        for block in range(1, len(array.blocks)):
            wear_block(array, block, 4)
        assert tracker.allows_erase(0)

    def test_repeated_queries_hit_cache(self, tiny_config):
        array = FlashArray(tiny_config)
        tracker = WearTracker(array, guard_margin=2)
        wear_block(array, 0, 3)
        first = [tracker.allows_erase(b) for b in range(len(array.blocks))]
        # No erases in between: same answers (served from the cache).
        second = [tracker.allows_erase(b) for b in range(len(array.blocks))]
        assert first == second

"""``repro.lint.flow``: whole-program (interprocedural) analysis.

The per-file ``det.*``/``frozen.*`` rules catch nondeterminism where it
is *written*; this subpackage catches it where it *flows*.  One pass
over the analyzed tree builds a project-wide symbol table and call
graph (:mod:`.graph`) from per-file **facts** (:mod:`.facts`) — a pure
syntactic summary of every function: its taint sources, its calls with
name-level argument dependences, its effects.  Facts are content-keyed
(SHA-256 of the file) and cached on disk (:mod:`.cache`), so a warm
re-analysis only re-extracts the dirty frontier; cold runs can fan the
extraction out across processes (:mod:`.analysis`).

Three interprocedural passes run over the graph:

``flow.taint-digest`` (:mod:`.taint`)
    Determinism taint: wall-clock reads, global ``random`` draws,
    ``os.environ``, ``id()``/``hash()``, and unordered set iteration
    are *sources*; the digest/fingerprint/record constructors are
    *sinks*.  Taint propagates through calls and returns, so a helper
    three hops from ``result_digest`` is reported with the full
    source→sink call chain.
``flow.hot-effect`` (:mod:`.effects`)
    Functions transitively reachable from the per-op hot set
    (``Device.step``, FTL read/write/trim, GC collection, MQ access)
    must not do file/socket I/O, ``logging``, lock acquisition, or
    unbounded per-op allocation.
``flow.blocking-async`` / ``flow.spec-pickle`` (:mod:`.safety`)
    ``async def`` bodies in ``repro.serve`` must not (transitively)
    call blocking primitives, and everything the process-pool engine
    ships (``RunSpec``/``KVSpec``/``ShardSpec`` and every dataclass
    they reference) must be statically picklable, transitively.

:mod:`.analysis` orchestrates: ``flow_report(program, options)`` is
memoised per :class:`~repro.lint.engine.Program`, so the four
registered rules (:mod:`repro.lint.rules.flow`) share one analysis.
"""

from __future__ import annotations

from .analysis import FlowOptions, FlowReport, flow_report
from .cache import FactsCache
from .facts import FunctionFacts, ModuleFacts, extract_module_facts
from .graph import CallGraph, SymbolTable, build_symbol_table

__all__ = [
    "CallGraph",
    "FactsCache",
    "FlowOptions",
    "FlowReport",
    "FunctionFacts",
    "ModuleFacts",
    "SymbolTable",
    "build_symbol_table",
    "extract_module_facts",
    "flow_report",
]

"""The Multi-Queue (MQ) replacement algorithm.

MQ (Zhou, Philbin and Li, USENIX ATC 2001) keeps *m* LRU queues
``Q0..Q(m-1)``, where queue index encodes an access-frequency band: an entry
whose reference count is ``f`` belongs around queue ``floor(log2(f + 1))``.
Recency is handled inside each queue (plain LRU), frequency by promotion
across queues, and aging by an expiration clock that demotes entries that
have not been touched for longer than the observed re-access interval of the
hottest entry.

The paper (Sections III-A and IV) adapts MQ as the replacement policy of the
dead-value pool: keys are content fingerprints, the reference count is the
value's *write* popularity, and time is measured in number of write requests
issued so far ("the i-th incoming write request has a timestamp of i").

This module implements MQ generically over hashable keys and arbitrary
payloads so it can be unit-tested and reused in isolation; the dead-value
pool in :mod:`repro.core.dvp` composes it with PPN bookkeeping.

Mechanics implemented exactly as the paper describes:

* inserts go to the tail of the lowest queue;
* on access, the reference count is bumped and the entry is promoted one
  queue whenever ``log2(popularity + 1)`` exceeds its current queue index;
* the *hottest* entry (largest reference count) is tracked together with the
  interval between its last two accesses; each touched entry gets
  ``expire_time = current_time + hottest_interval``;
* on every update the head (LRU end) of each queue is inspected and demoted
  one queue if its expiration time has passed;
* eviction removes the head of the lowest non-empty queue.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Generic, Hashable, List, Optional, Tuple, TypeVar

__all__ = ["MQEntry", "MultiQueue", "queue_index_for_popularity"]

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")

#: Fallback expiration interval used before the hottest entry has been
#: re-accessed at least twice (mirrors the ``lifeTime`` parameter of the
#: original MQ algorithm).
DEFAULT_LIFETIME = 128


def queue_index_for_popularity(popularity: int, num_queues: int) -> int:
    """Target queue for an entry with the given reference count.

    Implements the paper's logarithmic placement rule
    ``floor(log2(popularity + 1))`` clamped to the available queues.
    """
    if popularity < 0:
        raise ValueError("popularity must be non-negative")
    index = (popularity + 1).bit_length() - 1
    return min(index, num_queues - 1)


@dataclass(slots=True)
class MQEntry(Generic[V]):
    """Bookkeeping attached to every key resident in the multi-queue."""

    payload: V
    popularity: int = 1
    queue_index: int = 0
    expire_time: int = 0
    last_access: int = 0
    prev_access: int = field(default=-1)


class MultiQueue(Generic[K, V]):
    """A capacity-bounded multi-queue container.

    Parameters
    ----------
    capacity:
        Maximum number of resident entries; inserting beyond it evicts.
    num_queues:
        Number of LRU queues (the paper uses 8 for the dead-value pool).
    default_lifetime:
        Expiration interval used until a hottest-entry re-access interval
        has been observed.
    """

    def __init__(
        self,
        capacity: int,
        num_queues: int = 8,
        default_lifetime: int = DEFAULT_LIFETIME,
    ):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if num_queues <= 0:
            raise ValueError("num_queues must be positive")
        self._capacity = capacity
        self._num_queues = num_queues
        self._queues: List["OrderedDict[K, None]"] = [
            OrderedDict() for _ in range(num_queues)
        ]
        self._entries: dict[K, MQEntry[V]] = {}
        self._hottest_key: Optional[K] = None
        self._hottest_interval = default_lifetime
        self._default_lifetime = default_lifetime
        # Counters exposed for tests and the ablation benchmarks.
        self.promotions = 0
        self.demotions = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def num_queues(self) -> int:
        return self._num_queues

    @property
    def hottest_interval(self) -> int:
        """Interval between the last two accesses of the hottest entry."""
        return self._hottest_interval

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: K) -> bool:
        return key in self._entries

    def entry(self, key: K) -> Optional[MQEntry[V]]:
        """The :class:`MQEntry` for ``key``, or ``None`` if absent."""
        return self._entries.get(key)

    def get(self, key: K) -> Optional[V]:
        """Payload for ``key`` without touching recency/frequency."""
        entry = self._entries.get(key)
        return entry.payload if entry is not None else None

    def queue_lengths(self) -> List[int]:
        """Length of each queue, ``Q0`` first (used by tests and reports)."""
        return [len(q) for q in self._queues]

    def keys_in_queue(self, index: int) -> List[K]:
        """Keys of queue ``index`` from LRU head to MRU tail."""
        # The queue dict's insertion order IS the LRU->MRU contract;
        # sorting here would destroy exactly the order callers want.
        return list(self._queues[index].keys())  # lint: disable=det.set-iter

    # ------------------------------------------------------------------
    # Core operations
    # ------------------------------------------------------------------

    def insert(
        self, key: K, payload: V, now: int, popularity: int = 1
    ) -> Optional[Tuple[K, V]]:
        """Insert a new ``key`` at the tail of the lowest queue.

        Returns the evicted ``(key, payload)`` when the insert pushed the
        container over capacity, else ``None``.  Inserting a resident key is
        a programming error; use :meth:`access` for that.
        """
        if key in self._entries:
            raise KeyError(f"key already resident: {key!r}")
        evicted = None
        if len(self._entries) >= self._capacity:
            evicted = self.evict_one()
        entry = MQEntry(
            payload=payload,
            popularity=max(1, popularity),
            queue_index=0,
            last_access=now,
        )
        entry.expire_time = now + self._hottest_interval
        self._entries[key] = entry
        self._queues[0][key] = None
        self._note_access(key, entry, now)
        self._run_demotions(now)
        return evicted

    def access(self, key: K, now: int) -> Optional[V]:
        """Record an access to ``key``: bump popularity, refresh, promote.

        Returns the payload, or ``None`` when the key is not resident.
        """
        entry = self._entries.get(key)
        if entry is None:
            return None
        entry.popularity += 1
        self._refresh(key, entry, now)
        self._note_access(key, entry, now)
        self._run_demotions(now)
        return entry.payload

    def set_popularity(self, key: K, popularity: int, now: int) -> None:
        """Overwrite the reference count (used when restoring the 1-byte
        popularity persisted in the LPN-to-PPN table) and re-place the entry.

        Unlike :meth:`access` — which promotes one queue per touch — a
        restore moves the entry straight to queue
        ``floor(log2(popularity + 1))``: the persisted count is history
        that was already earned, not a fresh access streak.
        """
        entry = self._entries.get(key)
        if entry is None:
            raise KeyError(key)
        entry.popularity = max(1, popularity)
        target = queue_index_for_popularity(entry.popularity, self._num_queues)
        if target != entry.queue_index:
            del self._queues[entry.queue_index][key]
            if target > entry.queue_index:
                self.promotions += 1
            else:
                self.demotions += 1
            entry.queue_index = target
            self._queues[target][key] = None
        else:
            # Same queue: refresh recency (move to MRU tail).
            queue = self._queues[target]
            del queue[key]
            queue[key] = None
        entry.expire_time = now + self._hottest_interval
        self._note_access(key, entry, now)
        self._run_demotions(now)

    def _refresh(self, key: K, entry: MQEntry[V], now: int) -> None:
        """Move ``key`` to the tail of its (possibly promoted) queue."""
        target = queue_index_for_popularity(entry.popularity, self._num_queues)
        del self._queues[entry.queue_index][key]
        if target > entry.queue_index:
            # The paper promotes one queue at a time.
            entry.queue_index += 1
            self.promotions += 1
        self._queues[entry.queue_index][key] = None
        entry.prev_access = entry.last_access
        entry.last_access = now
        entry.expire_time = now + self._hottest_interval

    def _note_access(self, key: K, entry: MQEntry[V], now: int) -> None:
        """Update the hottest-entry tracking described in Section IV-C."""
        hottest = (
            self._entries.get(self._hottest_key)
            if self._hottest_key is not None
            else None
        )
        if hottest is None or entry.popularity >= hottest.popularity:
            self._hottest_key = key
        if key == self._hottest_key and entry.prev_access >= 0:
            interval = entry.last_access - entry.prev_access
            if interval > 0:
                self._hottest_interval = interval

    def _run_demotions(self, now: int) -> None:
        """Check each queue's LRU head and demote it if expired."""
        for index in range(1, self._num_queues):
            queue = self._queues[index]
            if not queue:
                continue
            head_key = next(iter(queue))
            entry = self._entries[head_key]
            if entry.expire_time <= now:
                del queue[head_key]
                entry.queue_index = index - 1
                self._queues[index - 1][head_key] = None
                entry.expire_time = now + self._hottest_interval
                self.demotions += 1

    def set_capacity(self, capacity: int) -> List[Tuple[K, V]]:
        """Resize the container; shrinking evicts coldest-first.

        Returns the entries evicted to fit the new capacity (empty when
        growing).  Supports the dynamic-capacity extension the paper lists
        as future work (Section V-A, footnote 5).
        """
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self._capacity = capacity
        evicted: List[Tuple[K, V]] = []
        while len(self._entries) > self._capacity:
            victim = self.evict_one()
            if victim is None:
                break
            evicted.append(victim)
        return evicted

    def evict_one(self) -> Optional[Tuple[K, V]]:
        """Evict the LRU head of the lowest non-empty queue."""
        for queue in self._queues:
            if queue:
                key, _ = queue.popitem(last=False)
                entry = self._entries.pop(key)
                if key == self._hottest_key:
                    self._hottest_key = None
                self.evictions += 1
                return key, entry.payload
        return None

    def remove(self, key: K) -> Optional[V]:
        """Remove ``key`` outright (reuse by a write, or erased by GC)."""
        entry = self._entries.pop(key, None)
        if entry is None:
            return None
        del self._queues[entry.queue_index][key]
        if key == self._hottest_key:
            self._hottest_key = None
        return entry.payload

    def check_invariants(self) -> None:
        """Raise ``AssertionError`` on internal inconsistency (test hook)."""
        total = sum(len(q) for q in self._queues)
        assert total == len(self._entries), "queue/entry count mismatch"
        assert total <= self._capacity, "capacity exceeded"
        for index, queue in enumerate(self._queues):
            for key in queue:
                entry = self._entries[key]
                assert entry.queue_index == index, f"stale queue index for {key!r}"

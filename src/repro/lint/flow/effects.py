"""Hot-path effect pass (``flow.hot-effect``).

The per-op hot set is the code every simulated request executes:
``Device.step``, the FTL entry points (``read``/``write``/``trim`` on
``BaseFTL`` and every subclass), GC collection
(``maybe_collect``/``background_collect`` and the relocation they
drive), and the MQ touch (``MultiQueue.access``).  Anything
transitively reachable from those roots runs millions of times per
experiment, so the PR-6 performance work is only safe if nothing in
that cone quietly does file or socket I/O, ``logging``, lock
acquisition, ``print``, blocking sleeps — or unbounded per-op
allocation (container builds on every request add GC pressure the
columnar layout exists to avoid).

The traversal deliberately does **not** descend into ``repro.check``
and ``repro.obs``: those are the opt-in diagnostic layers — the
invariant checker and the observability taps are *supposed* to allocate
and record, and runs that care about speed disable them.  Everything
else reached from a hot root is reported with the root→function call
path so the reader can see exactly how the effect gets onto the hot
path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from .facts import EffectFact
from .graph import CallGraph, SymbolTable

__all__ = ["EffectFinding", "HOT_ROOTS", "analyze_hot_effects"]


#: (class simple name, method names) pairs defining the per-op hot set.
#: Subclass overrides are pulled in by the hierarchy-aware resolver.
HOT_ROOTS: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    ("Device", ("step",)),
    ("BaseFTL", ("read", "write", "trim")),
    ("GarbageCollector", ("maybe_collect", "background_collect")),
    ("MultiQueue", ("access",)),
)

#: Diagnostic layers excluded from traversal and reporting: they are
#: opt-in by design and allowed to allocate/record.
EXCLUDED_PREFIXES: Tuple[str, ...] = ("repro.check", "repro.obs")

#: Cold-event boundaries: functions statically reachable from the hot
#: set but executed per *event*, not per op.  ``power_loss`` fires at
#: most once per injected fault and its whole recovery cone is billed
#: to ``recovery_us``, not per-request latency — so traversal stops
#: there instead of dragging crash recovery into the per-op cone.
#: Matched on the trailing ``Class.method`` of the fq name.
COLD_BOUNDARIES: Tuple[str, ...] = ("SimulatedSSD.power_loss",)

#: Effect kinds disallowed on the hot path.
HOT_DISALLOWED = frozenset({
    "io", "socket", "logging", "lock", "print", "alloc",
    "sleep", "subprocess",
})


@dataclass(frozen=True)
class EffectFinding:
    """One disallowed effect reachable from a hot root."""

    fn: str                      # fq of the function with the effect
    effect: EffectFact
    root: str                    # fq of the hot root reaching it
    path: Tuple[str, ...]        # fq call path, root … fn


def _excluded(table: SymbolTable, fq: str) -> bool:
    module = table.function_module.get(fq, "")
    if any(
        module == p or module.startswith(p + ".")
        for p in EXCLUDED_PREFIXES
    ):
        return True
    return any(fq.endswith("." + tail) for tail in COLD_BOUNDARIES)


def hot_root_functions(table: SymbolTable) -> Dict[str, str]:
    """fq function → root label for every hot entry point."""
    roots: Dict[str, str] = {}
    for cls_name, methods in HOT_ROOTS:
        for cls_fq in table.class_index.get(cls_name, ()):
            for method in methods:
                for fn_fq in table.resolve_method(cls_fq, method):
                    roots.setdefault(fn_fq, f"{cls_name}.{method}")
    return roots


def analyze_hot_effects(graph: CallGraph) -> List[EffectFinding]:
    """Every disallowed effect in the hot cone, with its reach path."""
    table = graph.table
    roots = hot_root_functions(table)

    # Breadth-first over the call graph, remembering the first (shortest)
    # path that reaches each function — deterministic because both the
    # roots and each function's callees are visited in sorted order.
    paths: Dict[str, Tuple[str, ...]] = {}
    root_of: Dict[str, str] = {}
    frontier: List[str] = []
    for fn_fq in sorted(roots):
        if _excluded(table, fn_fq):
            continue
        paths[fn_fq] = (fn_fq,)
        root_of[fn_fq] = fn_fq
        frontier.append(fn_fq)
    while frontier:
        next_frontier: List[str] = []
        for fn_fq in frontier:
            for callee in graph.callees(fn_fq):
                if callee in paths or _excluded(table, callee):
                    continue
                paths[callee] = paths[fn_fq] + (callee,)
                root_of[callee] = root_of[fn_fq]
                next_frontier.append(callee)
        frontier = sorted(next_frontier)

    findings: List[EffectFinding] = []
    for fn_fq in sorted(paths):
        fn = table.functions[fn_fq]
        for effect in fn.effects:
            if effect.kind not in HOT_DISALLOWED:
                continue
            findings.append(EffectFinding(
                fn=fn_fq,
                effect=effect,
                root=root_of[fn_fq],
                path=paths[fn_fq],
            ))
    return findings

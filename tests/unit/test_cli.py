"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import FIGURES, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "--workload", "nope", "--system", "baseline"]
            )

    def test_unknown_system_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "--workload", "mail", "--system", "nope"]
            )

    def test_all_figures_registered(self):
        expected = {
            "fig01", "fig02", "fig03", "fig04", "fig05", "fig06",
            "fig09", "fig10", "fig11", "fig12", "fig14", "fig15",
            "table1", "table2",
        }
        assert set(FIGURES) == expected


class TestRunCommand:
    def test_run_prints_summary(self, capsys):
        code = main([
            "run", "--workload", "desktop", "--system", "baseline",
            "--scale", "0.02",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "flash_writes" in out
        assert "mean_latency_us" in out

    def test_run_json_output(self, capsys):
        code = main([
            "run", "--workload", "desktop", "--system", "baseline",
            "--scale", "0.02", "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro.api/v1"
        assert payload["kind"] == "run"
        assert payload["counters"]["host_writes"] > 0
        assert payload["digest"]
        # The unified record round-trips through the typed parser.
        from repro.api import parse_record

        record = parse_record(payload)
        assert record.to_dict() == payload


class TestCompareCommand:
    def test_compare_table(self, capsys):
        code = main([
            "compare", "--workload", "desktop", "--scale", "0.02",
            "--systems", "baseline,ideal",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "baseline" in out and "ideal" in out

    def test_compare_unknown_system(self, capsys):
        code = main([
            "compare", "--workload", "desktop", "--systems", "baseline,nope",
        ])
        assert code == 2
        assert "unknown systems" in capsys.readouterr().err


class TestFigureCommand:
    def test_table1(self, capsys):
        assert main(["figure", "table1"]) == 0
        assert "SSDConfig" in capsys.readouterr().out

    def test_fig02_small_scale(self, capsys):
        assert main(["figure", "fig02", "--scale", "0.02"]) == 0
        assert "fig02" in capsys.readouterr().out


class TestCharacterizeCommand:
    def test_characterize(self, capsys):
        code = main([
            "characterize", "--workload", "desktop", "--scale", "0.02",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "P(reuse)" in out


class TestReplicateCommand:
    def test_replicate(self, capsys):
        code = main([
            "replicate", "--workload", "desktop", "--system", "ideal",
            "--scale", "0.02", "--seeds", "1,2",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "n=2" in out


class TestReportCommand:
    def test_report_to_file(self, tmp_path, capsys):
        out = tmp_path / "report.md"
        code = main(["report", "--scale", "0.02", "--out", str(out)])
        assert code == 0
        text = out.read_text()
        assert "Figure 9" in text
        assert "Paper vs measured" in text
        assert "wrote" in capsys.readouterr().out


class TestKvCommand:
    def test_kv_table(self, capsys):
        code = main([
            "kv", "--workload", "ycsb-a", "--system", "mq-dvp",
            "--scale", "0.05",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "revival rate" in out
        assert "pack seals" in out

    def test_kv_json_record_round_trips(self, capsys):
        code = main([
            "kv", "--workload", "trim-heavy", "--scale", "0.05", "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "kv.run"
        assert payload["counters"]["host_trims"] > 0
        assert payload["meta"]["kv"]["deletes"] > 0
        assert payload["meta"]["spec"]["workload"] == "trim-heavy"
        from repro.api import parse_record

        assert parse_record(payload).to_dict() == payload

    def test_kv_ablate_json_carries_both_legs(self, capsys):
        code = main([
            "kv", "--workload", "ycsb-a", "--scale", "0.05",
            "--ablate", "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "kv.ablation"
        meta = payload["meta"]
        assert meta["off_system"] == "baseline"
        assert meta["revival_rate"] > meta["revival_rate_off"] == 0.0
        assert meta["flash_writes_saved"] > 0
        assert meta["digest_on"] != meta["digest_off"]

    def test_kv_ablate_table(self, capsys):
        code = main([
            "kv", "--workload", "ycsb-a", "--scale", "0.05", "--ablate",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "pool off: baseline" in out
        assert "pool saves" in out

    def test_kv_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["kv", "--workload", "nope"])


class TestCheckFlags:
    def test_check_flags_parse(self):
        args = build_parser().parse_args([
            "run", "--workload", "mail", "--system", "mq-dvp",
            "--check", "--check-interval", "250", "--trim-every", "5",
            "--program-failure-prob", "0.01", "--seed", "7",
        ])
        assert args.check
        assert args.check_interval == 250
        assert args.trim_every == 5
        assert args.program_failure_prob == 0.01

    def test_run_with_check_and_trims(self, capsys):
        assert main([
            "run", "--workload", "mail", "--system", "mq-dvp",
            "--scale", "0.004", "--check", "--trim-every", "9", "--json",
        ]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["counters"]["host_writes"] > 0

    def test_faults_with_check(self, capsys):
        assert main([
            "faults", "--workload", "mail", "--system", "mq-dvp",
            "--scale", "0.004", "--check", "--trim-every", "9",
            "--program-failure-prob", "0.01", "--seed", "3", "--json",
        ]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["kind"] == "run"
        assert "program_failures" in summary["faults"]

    def test_compare_accepts_check(self, capsys):
        assert main([
            "compare", "--workload", "mail",
            "--systems", "baseline,mq-dvp",
            "--scale", "0.004", "--check",
        ]) == 0
        assert "mq-dvp" in capsys.readouterr().out

    def test_run_without_fault_flags_builds_no_fault_model(self, capsys):
        """A plain run must stay on the perfect device (no fault stats)."""
        assert main([
            "run", "--workload", "mail", "--system", "baseline",
            "--scale", "0.004", "--json",
        ]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["faults"] is None

"""repro.serve — streamed multi-tenant trace service over the Device layer.

An asyncio TCP service accepting line-delimited JSON trace traffic from
many concurrent tenants (DESIGN.md §12).  Each tenant session drives
the same :class:`~repro.experiments.device.Device` lifecycle the batch
entry points use, so a streamed session finishes **digest-identical**
to the same trace run in batch — through
:func:`~repro.experiments.runner.run_system` for one drive, through
the fleet layer for a shard set.  Sessions checkpoint via
:mod:`repro.perf.snapshot` live-state capture, so a killed server
resumes every tenant's device state exactly.

Layering: the top of the stack.  Nothing below it — core, sim, ftl,
fleet, experiments — may import it (enforced by the ``layer.*`` lint
rules); it emits only the unified :mod:`repro.api` record schema.
"""

from .checkpoint import (
    CheckpointError,
    drop_checkpoint,
    list_checkpoints,
    load_checkpoint,
    save_checkpoint,
)
from .client import ServeClient, ServeClientError
from .config import ServeSettings, settings_from_env
from .manager import SessionManager
from .protocol import (
    CLIENT_TYPES,
    PROTOCOL_VERSION,
    SERVER_TYPES,
    ProtocolError,
    decode_message,
    encode_message,
)
from .server import ServeServer, run_server
from .session import (
    SESSION_STATE_VERSION,
    SessionConfig,
    SessionError,
    TenantSession,
    session_config_of_open,
)

__all__ = [
    "PROTOCOL_VERSION",
    "SESSION_STATE_VERSION",
    "CLIENT_TYPES",
    "SERVER_TYPES",
    "ProtocolError",
    "SessionError",
    "ServeClientError",
    "CheckpointError",
    "ServeSettings",
    "settings_from_env",
    "SessionConfig",
    "session_config_of_open",
    "TenantSession",
    "SessionManager",
    "ServeServer",
    "run_server",
    "ServeClient",
    "encode_message",
    "decode_message",
    "save_checkpoint",
    "load_checkpoint",
    "drop_checkpoint",
    "list_checkpoints",
]

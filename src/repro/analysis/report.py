"""Plain-text rendering of tables and figure series.

The benchmark harness regenerates every paper table and figure as text:
tables as aligned columns, figures as labelled series (and small ASCII bar
charts for the bar-figure style the paper uses).  Keeping rendering here
lets benchmarks stay one-call thin and makes the output uniform.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Sequence, Tuple

__all__ = ["render_table", "render_series", "render_bars"]


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Aligned fixed-width table; floats rendered with 2 decimals."""

    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.2f}"
        return str(cell)

    str_rows = [[fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(
    series: Mapping[str, Sequence[Tuple[object, float]]],
    title: str = "",
    y_format: str = "{:.3f}",
) -> str:
    """Labelled (x, y) series, one block per label — the figure-as-text form."""
    lines: List[str] = []
    if title:
        lines.append(title)
    for label, points in series.items():
        lines.append(f"[{label}]")
        for x, y in points:
            lines.append(f"  {x}: " + y_format.format(y))
    return "\n".join(lines)


def render_bars(
    values: Mapping[str, float],
    title: str = "",
    width: int = 40,
    y_format: str = "{:6.1f}",
) -> str:
    """A horizontal ASCII bar chart (the paper's bar figures, textually)."""
    lines: List[str] = []
    if title:
        lines.append(title)
    if not values:
        return "\n".join(lines)
    label_width = max(len(k) for k in values)
    peak = max(abs(v) for v in values.values()) or 1.0
    for label, value in values.items():
        bar = "#" * max(0, int(round(width * abs(value) / peak)))
        lines.append(
            f"{label.ljust(label_width)}  "
            + y_format.format(value)
            + f"  {bar}"
        )
    return "\n".join(lines)

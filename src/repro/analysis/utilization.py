"""Device utilisation and load-balance statistics.

The paper's latency arguments are queueing arguments: programs and erases
occupy chips, and everything behind them waits.  This module extracts the
resource-occupancy picture from a finished simulation — per-chip busy
fractions, channel and hash-unit utilisation, and a load-imbalance measure
— so experiments can show *why* a configuration's latency moved, not just
that it did.

Works with both device models (the timeline model's
:class:`~repro.flash.timing.ResourceTimeline` and the event model's
:class:`~repro.sim.des_ssd.ChipServer` expose ``busy_time``/``op_count``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

__all__ = ["ResourceUsage", "UtilisationReport", "utilisation_report"]


@dataclass(frozen=True)
class ResourceUsage:
    """Busy time and operation count of one resource."""

    name: str
    busy_time_us: float
    op_count: int

    def utilisation(self, horizon_us: float) -> float:
        if horizon_us <= 0:
            return 0.0
        return min(1.0, self.busy_time_us / horizon_us)


@dataclass(frozen=True)
class UtilisationReport:
    """Occupancy summary of a finished run."""

    horizon_us: float
    chips: List[ResourceUsage]
    channels: List[ResourceUsage]
    hash_unit: ResourceUsage

    @property
    def mean_chip_utilisation(self) -> float:
        if not self.chips:
            return 0.0
        return sum(
            c.utilisation(self.horizon_us) for c in self.chips
        ) / len(self.chips)

    @property
    def peak_chip_utilisation(self) -> float:
        if not self.chips:
            return 0.0
        return max(c.utilisation(self.horizon_us) for c in self.chips)

    @property
    def chip_imbalance(self) -> float:
        """Peak/mean busy-time ratio across chips (1.0 = perfectly even).

        Striping should keep this near 1; a high value means some chips
        became hot spots (e.g. GC concentrating on a few planes).
        """
        if not self.chips:
            return 1.0
        busy = [c.busy_time_us for c in self.chips]
        mean = sum(busy) / len(busy)
        if mean == 0:
            return 1.0
        return max(busy) / mean

    def rows(self) -> List[Sequence[object]]:
        """Table rows for :func:`repro.analysis.report.render_table`."""
        out: List[Sequence[object]] = [
            (c.name, f"{c.utilisation(self.horizon_us):.3f}", c.op_count)
            for c in self.chips
        ]
        out += [
            (ch.name, f"{ch.utilisation(self.horizon_us):.3f}", ch.op_count)
            for ch in self.channels
        ]
        out.append((
            self.hash_unit.name,
            f"{self.hash_unit.utilisation(self.horizon_us):.3f}",
            self.hash_unit.op_count,
        ))
        return out


def utilisation_report(device) -> UtilisationReport:
    """Build a report from a finished simulated device.

    Accepts a :class:`~repro.sim.ssd.SimulatedSSD` (timelines) or an
    :class:`~repro.sim.des_ssd.EventDrivenSSD` (chip servers).
    """
    if hasattr(device, "timelines"):          # timeline model
        chips = device.timelines.chips
        channels = device.timelines.channels
        hash_unit = device.timelines.hash_unit
        horizon = device.horizon_us
        def usage(name, r):
            return ResourceUsage(name, r.busy_time, r.op_count)
    else:                                     # event-driven model
        chips = device.chips
        channels = device.channels
        hash_unit = device.hash_unit
        horizon = device.horizon_us
        def usage(name, r):
            return ResourceUsage(name, r.busy_time, r.op_count)
    return UtilisationReport(
        horizon_us=horizon,
        chips=[usage(f"chip{i}", c) for i, c in enumerate(chips)],
        channels=[usage(f"chan{i}", c) for i, c in enumerate(channels)],
        hash_unit=usage("hash", hash_unit),
    )

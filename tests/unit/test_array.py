"""Unit tests for the drive-level flash array accounting."""

import pytest

from repro.flash.array import FlashArray
from repro.flash.block import PageState


class TestArrayAccounting:
    def test_initial_state(self, tiny_config):
        array = FlashArray(tiny_config)
        assert array.free_pages == tiny_config.total_pages
        assert array.valid_pages == 0
        assert array.invalid_pages == 0

    def test_program_updates_totals(self, tiny_config):
        array = FlashArray(tiny_config)
        ppn = array.program_in_block(0)
        assert ppn == 0
        assert array.free_pages == tiny_config.total_pages - 1
        assert array.valid_pages == 1
        assert array.total_programs == 1

    def test_invalidate_and_revive(self, tiny_config):
        array = FlashArray(tiny_config)
        ppn = array.program_in_block(0)
        array.invalidate(ppn)
        assert array.invalid_pages == 1
        assert array.state_of(ppn) is PageState.INVALID
        array.revive(ppn)
        assert array.invalid_pages == 0
        assert array.valid_pages == 1

    def test_erase_reclaims(self, tiny_config):
        array = FlashArray(tiny_config)
        ppns = [array.program_in_block(0) for _ in range(4)]
        for ppn in ppns:
            array.invalidate(ppn)
        reclaimed = array.erase(0)
        assert reclaimed == 4
        assert array.free_pages == tiny_config.total_pages
        assert array.invalid_pages == 0
        assert array.total_erases == 1

    def test_free_fraction(self, tiny_config):
        array = FlashArray(tiny_config)
        assert array.free_fraction() == 1.0
        array.program_in_block(0)
        assert array.free_fraction() < 1.0

    def test_program_across_blocks(self, tiny_config):
        array = FlashArray(tiny_config)
        ppb = tiny_config.pages_per_block
        first_other = array.geometry.first_ppn_of_block(3)
        for _ in range(2):
            array.program_in_block(3)
        assert array.block(3).write_pointer == 2
        assert array.state_of(first_other) is PageState.VALID

    def test_invariants_after_mixed_ops(self, tiny_config):
        array = FlashArray(tiny_config)
        ppns = [array.program_in_block(1) for _ in range(8)]
        for ppn in ppns[:5]:
            array.invalidate(ppn)
        array.revive(ppns[0])
        array.check_invariants()

    def test_block_of_matches_geometry(self, tiny_config):
        array = FlashArray(tiny_config)
        ppn = array.program_in_block(2)
        assert array.block_of(ppn) is array.block(2)

    def test_erase_with_valid_pages_refused(self, tiny_config):
        array = FlashArray(tiny_config)
        array.program_in_block(0)
        with pytest.raises(RuntimeError):
            array.erase(0)

"""Property-based tests for all dead-value pool variants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dvp import (
    InfiniteDeadValuePool,
    LBARecencyPool,
    LRUDeadValuePool,
    MQDeadValuePool,
)
from repro.core.hashing import fingerprint_of_value as fp


POOL_FACTORIES = {
    "lru": lambda: LRUDeadValuePool(8),
    "mq": lambda: MQDeadValuePool(8),
    "lba": lambda: LBARecencyPool(8),
    "infinite": InfiniteDeadValuePool,
}

# An operation stream: (op, value, ppn/lpn payload)
ops = st.lists(
    st.tuples(
        st.sampled_from(["insert", "lookup", "discard"]),
        st.integers(min_value=0, max_value=15),   # value id
        st.integers(min_value=0, max_value=30),   # lpn
    ),
    max_size=120,
)


def run_ops(pool, operations):
    """Drive a pool with an op stream, mirroring FTL usage patterns.

    Maintains the ground truth: the set of (value, ppn) pairs that are
    currently dead and tracked nowhere else.  Returns the shadow dict
    value -> set of live-in-pool ppns according to pool responses.
    """
    shadow = {}
    next_ppn = 0
    now = 0
    for op, value, lpn in operations:
        now += 1
        if op == "insert":
            dropped = pool.insert_garbage(
                fp(value), next_ppn, now, popularity=value + 1, lpn=lpn
            )
            shadow.setdefault(value, set()).add(next_ppn)
            for d in dropped:
                for ppns in shadow.values():
                    ppns.discard(d)
            next_ppn += 1
        elif op == "lookup":
            hit = pool.lookup_for_write(fp(value), now)
            if hit is not None:
                assert hit in shadow.get(value, set()), (
                    "pool returned a PPN never inserted for this value"
                )
                shadow[value].discard(hit)
        else:  # discard
            ppns = shadow.get(value, set())
            if ppns:
                target = next(iter(ppns))
                if pool.discard_ppn(fp(value), target):
                    ppns.discard(target)
    return shadow


@given(operations=ops)
@settings(max_examples=60)
def test_lru_pool_sound(operations):
    run_ops(LRUDeadValuePool(8), operations)


@given(operations=ops)
@settings(max_examples=60)
def test_mq_pool_sound(operations):
    run_ops(MQDeadValuePool(8), operations)


@given(operations=ops)
@settings(max_examples=60)
def test_lba_pool_sound(operations):
    run_ops(LBARecencyPool(8), operations)


@given(operations=ops)
@settings(max_examples=60)
def test_infinite_pool_exact(operations):
    """The infinite pool tracks the shadow state *exactly*: a lookup hits
    iff the shadow has a dead copy."""
    pool = InfiniteDeadValuePool()
    shadow = {}
    next_ppn = 0
    now = 0
    for op, value, lpn in operations:
        now += 1
        if op == "insert":
            pool.insert_garbage(fp(value), next_ppn, now, lpn=lpn)
            shadow.setdefault(value, set()).add(next_ppn)
            next_ppn += 1
        elif op == "lookup":
            hit = pool.lookup_for_write(fp(value), now)
            if shadow.get(value):
                assert hit in shadow[value]
                shadow[value].discard(hit)
            else:
                assert hit is None
        else:
            ppns = shadow.get(value, set())
            if ppns:
                target = next(iter(ppns))
                assert pool.discard_ppn(fp(value), target)
                ppns.discard(target)
    assert pool.tracked_ppn_count() == sum(len(s) for s in shadow.values())


@given(operations=ops)
@settings(max_examples=60)
def test_bounded_pools_never_exceed_capacity(operations):
    for name, factory in POOL_FACTORIES.items():
        if name == "infinite":
            continue
        pool = factory()
        run_ops(pool, operations)
        assert len(pool) <= 8


@given(operations=ops)
@settings(max_examples=60)
def test_stats_identities(operations):
    pool = MQDeadValuePool(8)
    run_ops(pool, operations)
    stats = pool.stats
    assert stats.hits + stats.misses == stats.lookups
    assert stats.hits <= stats.insertions

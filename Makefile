PYTHON ?= python
export PYTHONPATH := src

.PHONY: test lint check perf-smoke bench figures

test: lint check
	$(PYTHON) -m pytest -q

# Static checks over the newest surfaces (the fault layer, the pool
# Protocol and the correctness harness).  Both tools are optional:
# environments without ruff/mypy (e.g. the minimal CI image) skip them
# with a notice instead of failing.
lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src/repro/faults src/repro/check src/repro/core/dvp.py; \
	else \
		echo "lint: ruff not installed, skipping"; \
	fi
	@if command -v mypy >/dev/null 2>&1; then \
		mypy src/repro/faults src/repro/check src/repro/core/dvp.py; \
	else \
		echo "lint: mypy not installed, skipping"; \
	fi

# The correctness harness under a tight time budget: seeded-corruption
# detection, property fuzz (TRIM + faults + crash streams), and the
# timeline-vs-DES differential replay.  Also part of the plain suite;
# this target isolates it for quick iteration on FTL hot paths.
check:
	$(PYTHON) -m pytest -q tests/unit/test_check.py \
		tests/property/test_check_fuzz.py \
		tests/integration/test_differential.py

# Tiny parallel-engine smoke: process-pool round trip, caches, bench
# harness shape.  Part of the plain suite too; this target isolates it.
perf-smoke:
	$(PYTHON) -m pytest -q -m perf_smoke

# Refresh the tracked perf report (serial vs parallel canonical matrix).
bench:
	$(PYTHON) benchmarks/perf/harness.py --out BENCH_matrix.json

figures:
	$(PYTHON) -m pytest benchmarks -q -s

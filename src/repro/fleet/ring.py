"""Consistent-hash ring routing LBAs to fleet shards.

Classic Karger ring with virtual nodes: every shard owns ``replicas``
points on a 64-bit circle, and a key belongs to the first shard point at
or after its own hash (wrapping).  Two properties matter here:

* **Determinism.**  Points come from SHA-256 over stable strings —
  never the interpreter's ``hash()``, whose per-process randomisation
  would route the same LBA to different shards in different workers and
  destroy the fleet's bit-identical-digests guarantee.
* **Stability.**  Growing a fleet from ``N`` to ``N + 1`` shards moves
  only ~``K/N`` of ``K`` keys (the slices the new shard's points carve
  out); keys that stay put keep their shard.  The ring property tests
  measure exactly this.

Virtual nodes smooth the load: with ``replicas`` points per shard the
largest shard's share concentrates toward ``1/N`` as replicas grow.  The
default of 64 keeps per-shard page counts within a few percent of even
for the footprints the fleet simulates.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import List, Tuple

__all__ = ["HashRing"]

_POINT_BYTES = 8  # 64-bit circle


def _point(label: str) -> int:
    digest = hashlib.sha256(label.encode("ascii")).digest()
    return int.from_bytes(digest[:_POINT_BYTES], "big")


class HashRing:
    """Deterministic consistent-hash ring over ``shards`` drives."""

    def __init__(self, shards: int, replicas: int = 64, seed: int = 0):
        if shards <= 0:
            raise ValueError("shards must be positive")
        if replicas <= 0:
            raise ValueError("replicas must be positive")
        self.shards = shards
        self.replicas = replicas
        self.seed = seed
        points: List[Tuple[int, int]] = []
        for shard in range(shards):
            for replica in range(replicas):
                points.append(
                    (_point(f"vnode:{seed}:{shard}:{replica}"), shard)
                )
        points.sort()
        self._hashes = [h for h, _ in points]
        self._owners = [s for _, s in points]

    def shard_of(self, lpn: int) -> int:
        """The shard that owns logical page ``lpn``."""
        key = _point(f"key:{self.seed}:{lpn}")
        index = bisect.bisect_right(self._hashes, key)
        if index == len(self._hashes):
            index = 0  # wrap past the last point to the first
        return self._owners[index]

    def assignments(self, total_pages: int) -> List[int]:
        """``shard_of`` for every page in ``range(total_pages)``."""
        return [self.shard_of(lpn) for lpn in range(total_pages)]

"""Figure 14: number of writes — Dedup vs DVP vs DVP+Dedup (norm. to baseline).

Paper: dedup alone removes 40.5% of writes on average; adding the
dead-value pool on top removes another ~11% relative to dedup — the two
techniques are complementary.
"""

from statistics import mean

from repro.analysis.report import render_table
from repro.experiments.figures import fig14_dedup_writes

from .conftest import emit


def test_fig14_dedup_writes(benchmark, matrix):
    results = benchmark.pedantic(
        lambda: fig14_dedup_writes(matrix), rounds=1, iterations=1
    )
    rows = [
        (wl, f"{row['dedup']:.3f}", f"{row['mq-dvp']:.3f}",
         f"{row['dvp+dedup']:.3f}")
        for wl, row in results.items()
    ]
    dedup_mean = mean(1 - r["dedup"] for r in results.values()) * 100
    extra = mean(
        (r["dedup"] - r["dvp+dedup"]) / r["dedup"] for r in results.values()
    ) * 100
    emit(render_table(
        ["workload", "Dedup", "DVP", "DVP+Dedup"], rows,
        title=(
            "Figure 14: writes normalised to baseline "
            f"(dedup removes {dedup_mean:.1f}% mean; DVP+Dedup removes a "
            f"further {extra:.1f}% relative to dedup; paper: 40.5% / 11%)"
        ),
    ))
    for wl, row in results.items():
        # the combination never writes more than dedup alone
        assert row["dvp+dedup"] <= row["dedup"] + 1e-9, wl
        assert row["dvp+dedup"] <= row["mq-dvp"] + 1e-9, wl
    assert extra > 3.0  # complementarity is material, not noise

"""Unit tests for background (idle-time) garbage collection."""

import pytest

from repro.core.hashing import fingerprint_of_value as fp
from repro.flash.array import FlashArray
from repro.ftl.ftl import BaseFTL
from repro.sim.background import BackgroundGCSSD
from repro.sim.request import IORequest, OpType
from repro.sim.ssd import SimulatedSSD


def w(t, lpn, value):
    return IORequest(t, OpType.WRITE, lpn, value)


class TestBackgroundCollect:
    def test_no_collection_above_watermark(self, tiny_config):
        ftl = BaseFTL(tiny_config)
        work = ftl.gc.background_collect(0, watermark=4)
        assert work.erase_count == 0

    def test_watermark_must_exceed_on_demand(self, tiny_config):
        ftl = BaseFTL(tiny_config)
        with pytest.raises(ValueError):
            ftl.gc.background_collect(0, watermark=ftl.gc.low_watermark)

    def test_collects_when_below_background_watermark(self, tiny_config):
        ftl = BaseFTL(tiny_config)
        # Drain plane 0 until only 5 free blocks remain (on-demand
        # watermark is 2, so no foreground GC has happened yet).
        ppb = tiny_config.pages_per_block
        while ftl.allocator.free_block_count(0) > 5:
            for _ in range(ppb):
                ftl.array.invalidate(ftl.allocator.allocate_in_plane(0))
        work = ftl.gc.background_collect(0, watermark=8)
        assert work.erase_count == 1


class TestBackgroundGCSSD:
    def _trace(self, config, n, gap_us=500.0):
        ws = config.logical_pages // 2
        return [w(i * gap_us, i % ws, 10_000 + i) for i in range(n)]

    def test_validation(self, tiny_config):
        ftl = BaseFTL(tiny_config)
        with pytest.raises(ValueError):
            BackgroundGCSSD(ftl, background_watermark=1)
        with pytest.raises(ValueError):
            BackgroundGCSSD(ftl, planes_per_probe=0)

    def test_background_erases_happen(self, tiny_config):
        ftl = BaseFTL(tiny_config)
        device = BackgroundGCSSD(ftl, background_watermark=6)
        for request in self._trace(tiny_config, tiny_config.total_pages * 2):
            device.submit(request)
        assert device.background_erases > 0
        ftl.check_invariants()

    def test_same_flash_writes_as_on_demand(self, tiny_config):
        """Background GC changes *when* collection happens, not what the
        host wrote."""
        trace = self._trace(tiny_config, tiny_config.total_pages * 2)
        on_demand = SimulatedSSD(BaseFTL(tiny_config))
        background = BackgroundGCSSD(
            BaseFTL(tiny_config), background_watermark=6
        )
        for request in trace:
            on_demand.submit(request)
            background.submit(request)
        assert (
            on_demand.ftl.counters.programs
            == background.ftl.counters.programs
        )

    def test_idle_time_gc_improves_tail_latency(self, tiny_config):
        """With generous idle gaps, background collection absorbs the
        erase latency the on-demand baseline exposes to requests."""
        trace = self._trace(
            tiny_config, tiny_config.total_pages * 2, gap_us=6000.0,
        )
        on_demand = SimulatedSSD(BaseFTL(tiny_config))
        background = BackgroundGCSSD(
            BaseFTL(tiny_config), background_watermark=6
        )
        for request in trace:
            on_demand.submit(request)
            background.submit(request)
        result_fg = on_demand.writes
        result_bg = background.writes
        assert result_bg.p99 < result_fg.p99

    def test_foreground_safety_net_remains(self, tiny_config):
        """A dense burst that outruns the background collector still
        completes via the on-demand watermark path."""
        ftl = BaseFTL(tiny_config)
        device = BackgroundGCSSD(
            ftl, background_watermark=3, planes_per_probe=1
        )
        for request in self._trace(
            tiny_config, tiny_config.total_pages * 3, gap_us=1.0,
        ):
            device.submit(request)
        ftl.check_invariants()

"""Unit tests for CDF helpers."""

import pytest

from repro.analysis.cdf import bucket_means, cdf_at, empirical_cdf, lorenz_share


class TestEmpiricalCDF:
    def test_empty(self):
        assert empirical_cdf([]) == []

    def test_single_value(self):
        assert empirical_cdf([5]) == [(5, 1.0)]

    def test_sorted_and_cumulative(self):
        cdf = empirical_cdf([1, 1, 2, 3])
        assert cdf == [(1, 0.5), (2, 0.75), (3, 1.0)]

    def test_last_point_is_one(self):
        cdf = empirical_cdf([9, 3, 7, 3])
        assert cdf[-1][1] == 1.0

    def test_cdf_at(self):
        cdf = empirical_cdf([1, 1, 2, 3])
        assert cdf_at(cdf, 0) == 0.0
        assert cdf_at(cdf, 1) == 0.5
        assert cdf_at(cdf, 2) == 0.75
        assert cdf_at(cdf, 100) == 1.0


class TestBucketMeans:
    def test_means_per_bucket(self):
        pairs = [(1, 10.0), (1, 20.0), (2, 5.0)]
        means = bucket_means(pairs, num_buckets=5)
        assert means[1] == 15.0
        assert means[2] == 5.0

    def test_clamping_into_last_bucket(self):
        pairs = [(100, 1.0), (200, 3.0)]
        means = bucket_means(pairs, num_buckets=10)
        assert means == {10: 2.0}

    def test_invalid_buckets(self):
        with pytest.raises(ValueError):
            bucket_means([], num_buckets=0)

    def test_empty(self):
        assert bucket_means([]) == {}


class TestLorenzShare:
    def test_pareto_8020(self):
        counts = [80] + [20 // 4] * 4  # top 20% of 5 items holds 80%
        assert lorenz_share(counts, 0.2) == pytest.approx(0.8)

    def test_uniform(self):
        assert lorenz_share([1] * 100, 0.3) == pytest.approx(0.3)

    def test_unsorted_input(self):
        assert lorenz_share([1, 100, 1], 1 / 3) == pytest.approx(100 / 102)

    def test_empty_and_zero(self):
        assert lorenz_share([], 0.2) == 0.0
        assert lorenz_share([0, 0], 0.5) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            lorenz_share([1], 0)

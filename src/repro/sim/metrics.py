"""Latency statistics and run-level results.

The evaluation section reports mean and tail (99th percentile) latencies
for reads and writes separately and combined (Figures 11, 12, 15), plus
write/erase counts (Figures 9, 10, 14).  :class:`LatencyStats` keeps every
sample (traces are small enough) so percentiles are exact, and
:class:`RunResult` bundles the latency views with a snapshot of the FTL
counters.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..ftl.ftl import FTLCounters

__all__ = ["LatencyStats", "RunResult", "percent_improvement"]


class LatencyStats:
    """Exact latency distribution over one request class."""

    def __init__(self) -> None:
        self._samples: List[float] = []
        self._sorted: Optional[List[float]] = None

    def record(self, latency_us: float) -> None:
        if latency_us < 0:
            raise ValueError("latency must be non-negative")
        self._samples.append(latency_us)
        self._sorted = None

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def count(self) -> int:
        return len(self._samples)

    @property
    def samples(self) -> List[float]:
        """The recorded samples in arrival order (read-only copy).

        The exact sequence — not just the summary statistics — is what the
        perf harness digests to prove serial, parallel and cached-prefill
        runs produced bit-identical results.
        """
        return list(self._samples)

    @property
    def mean(self) -> float:
        if not self._samples:
            return 0.0
        return sum(self._samples) / len(self._samples)

    def percentile(self, p: float) -> float:
        """Exact percentile via the nearest-rank method."""
        if not 0 < p <= 100:
            raise ValueError("percentile must be in (0, 100]")
        if not self._samples:
            return 0.0
        if self._sorted is None:
            self._sorted = sorted(self._samples)
        rank = max(1, math.ceil(p / 100.0 * len(self._sorted)))
        return self._sorted[rank - 1]

    @property
    def p99(self) -> float:
        return self.percentile(99)

    @property
    def maximum(self) -> float:
        return max(self._samples) if self._samples else 0.0

    def merged_with(self, other: "LatencyStats") -> "LatencyStats":
        out = LatencyStats()
        out._samples = self._samples + other._samples
        return out


@dataclass
class RunResult:
    """Everything one simulated run produced."""

    system: str
    workload: str
    counters: FTLCounters
    reads: LatencyStats = field(default_factory=LatencyStats)
    writes: LatencyStats = field(default_factory=LatencyStats)
    horizon_us: float = 0.0
    pool_stats: Optional[Dict[str, float]] = None
    #: :meth:`FaultStats.summary` of the run, or ``None`` when no fault
    #: model was attached (the default, digest-compatible shape).
    fault_stats: Optional[Dict[str, float]] = None

    @property
    def all_requests(self) -> LatencyStats:
        return self.reads.merged_with(self.writes)

    @property
    def mean_latency_us(self) -> float:
        return self.all_requests.mean

    @property
    def p99_latency_us(self) -> float:
        return self.all_requests.p99

    @property
    def flash_writes(self) -> int:
        """Host-data programs — the paper's "number of writes" metric."""
        return self.counters.programs

    @property
    def erases(self) -> int:
        return self.counters.gc_erases

    def summary(self) -> Dict[str, float]:
        """Flat dict for reports and JSON dumps."""
        return {
            "host_writes": self.counters.host_writes,
            "host_reads": self.counters.host_reads,
            "flash_writes": self.flash_writes,
            "total_programs": self.counters.total_programs,
            "short_circuits": self.counters.short_circuits,
            "dedup_hits": self.counters.dedup_hits,
            "gc_relocations": self.counters.gc_relocations,
            "erases": self.erases,
            "mean_latency_us": self.mean_latency_us,
            "p99_latency_us": self.p99_latency_us,
            "read_mean_us": self.reads.mean,
            "write_mean_us": self.writes.mean,
            "horizon_us": self.horizon_us,
        }

    def fault_summary(self) -> Dict[str, float]:
        """``fault_stats`` with a ``fault.`` key prefix (empty when the run
        had no fault model attached)."""
        if self.fault_stats is None:
            return {}
        return {f"fault.{key}": value for key, value in self.fault_stats.items()}


def percent_improvement(baseline: float, improved: float) -> float:
    """The paper's improvement metric: % reduction relative to baseline."""
    if baseline == 0:
        return 0.0
    return 100.0 * (baseline - improved) / baseline

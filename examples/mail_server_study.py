#!/usr/bin/env python3
"""Section II for your own trace: characterise garbage pages from content.

Reproduces the paper's analysis pipeline on the synthetic mail workload:

1. value life-cycle (creation / death / rebirth) statistics,
2. the reuse opportunity with an infinite buffer (Figure 1),
3. the invalidation CDF (Figure 2) and value-popularity skew (Figure 3),
4. life-cycle timing by popularity degree (Figure 4),
5. an LRU-pool size sweep with capacity-miss breakdown (Figures 5-6).

Everything here is pure trace analysis — no SSD simulation — exactly like
the paper's Section II methodology.

Run:  python examples/mail_server_study.py
"""

from repro.analysis.characterize import (
    invalidation_cdf,
    lifecycle_intervals,
    lru_pool_sweep,
    reuse_opportunity,
    run_lifecycle,
    value_cdfs,
)
from repro.analysis.report import render_series, render_table
from repro.traces.profiles import profile_by_name
from repro.traces.synthetic import generate_trace

SCALE = 0.15


def main():
    profile = profile_by_name("mail").scaled(SCALE)
    trace = generate_trace(profile)
    print(f"analysing {len(trace)} requests of '{profile.name}'\n")

    # --- life-cycle overview -----------------------------------------
    tracker = run_lifecycle(trace)
    stats = tracker.stats
    print("life-cycle totals:")
    print(f"  writes {stats.total_writes}, deaths {stats.deaths}, "
          f"rebirths {stats.rebirths}")
    print(f"  unique values written: {tracker.unique_value_count()}, "
          f"still live at end: {tracker.live_value_count()}")

    # --- Figure 1: reuse opportunity ----------------------------------
    reuse = reuse_opportunity(trace, profile.name)
    print(f"\nreuse opportunity (infinite buffer): "
          f"{reuse.without_dedup:.1%} of writes; "
          f"{reuse.with_dedup:.1%} after dedup")

    # --- Figure 2: invalidation CDF -----------------------------------
    inval = invalidation_cdf(tracker)
    print(f"values never invalidated: {inval.never_invalidated_frac:.1%} "
          f"(the rest became garbage at least once)")

    # --- Figure 3: popularity skew ------------------------------------
    cdfs = value_cdfs(tracker)
    print("\npopularity skew (top 20% of values):")
    for series in ("write", "invalidation", "rebirth"):
        print(f"  {series:13s}: {cdfs.share_at(series, 0.2):.1%} of the total")

    # --- Figure 4: timing by popularity -------------------------------
    intervals = lifecycle_intervals(tracker, num_buckets=10)
    print()
    print(render_series(
        {
            "death->rebirth (writes)": sorted(
                intervals.death_to_rebirth.items()
            ),
            "rebirth count": sorted(intervals.rebirth_counts.items()),
        },
        title="life-cycle metrics by popularity degree:",
        y_format="{:.1f}",
    ))

    # --- Figures 5-6: LRU pool sweep ----------------------------------
    sweep = lru_pool_sweep(trace, sizes=[500, 2000, 8000])
    rows = [
        (label, study.serviced_writes, study.short_circuited,
         study.capacity_miss_total)
        for label, study in sweep.items()
    ]
    print()
    print(render_table(
        ["pool", "writes left", "short-circuited", "capacity misses"],
        rows, title="LRU dead-value pool sweep:",
    ))


if __name__ == "__main__":
    main()

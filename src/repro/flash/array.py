"""The NAND array: every block of the drive plus drive-level accounting.

:class:`FlashArray` owns all :class:`~repro.flash.block.Block` objects and
keeps incremental totals (free / valid / invalid pages, erase counts) that
the FTL's garbage collector polls on every write.  It enforces the physical
rules; *policy* (which block to write, which victim to erase) lives in
:mod:`repro.ftl`.
"""

from __future__ import annotations

from typing import List

from .block import Block, PageState
from .config import SSDConfig
from .geometry import Geometry

__all__ = ["FlashArray"]


class FlashArray:
    """All blocks of one drive, addressed by flat block index / PPN."""

    def __init__(self, config: SSDConfig):
        self.config = config
        self.geometry = Geometry(config)
        # PPNs are linear (block * pages_per_block + page); the hot
        # per-page methods below do the arithmetic inline with this cached
        # size instead of bouncing through Geometry calls.
        self._pages_per_block = config.pages_per_block
        self.blocks: List[Block] = [
            Block(config.pages_per_block) for _ in range(config.total_blocks)
        ]
        self.free_pages = config.total_pages
        self.valid_pages = 0
        self.invalid_pages = 0
        self.total_erases = 0
        self.total_programs = 0
        self.retired_blocks = 0

    # ------------------------------------------------------------------

    def block(self, block_global: int) -> Block:
        return self.blocks[block_global]

    def block_of(self, ppn: int) -> Block:
        return self.blocks[self.geometry.block_of_ppn(ppn)]

    def state_of(self, ppn: int) -> PageState:
        block, page = divmod(ppn, self._pages_per_block)
        return self.blocks[block].state_of(page)

    def program_in_block(self, block_global: int) -> int:
        """Program the next page of ``block_global``; return its PPN."""
        block = self.blocks[block_global]
        page = block.program_next()
        self.free_pages -= 1
        self.valid_pages += 1
        self.total_programs += 1
        return block_global * self._pages_per_block + page

    def invalidate(self, ppn: int) -> None:
        """A value copy died at ``ppn`` (out-of-place update or unmap)."""
        block, page = divmod(ppn, self._pages_per_block)
        self.blocks[block].invalidate(page)
        self.valid_pages -= 1
        self.invalid_pages += 1

    def revive(self, ppn: int) -> None:
        """Dead-value-pool hit: turn the garbage page back to valid."""
        block, page = divmod(ppn, self._pages_per_block)
        self.blocks[block].revive(page)
        self.invalid_pages -= 1
        self.valid_pages += 1

    def erase(self, block_global: int) -> int:
        """Erase a block (must hold no valid pages); return pages reclaimed."""
        block = self.blocks[block_global]
        reclaimed = block.write_pointer
        invalid = block.invalid_count
        block.erase()
        self.free_pages += reclaimed
        self.invalid_pages -= invalid
        self.total_erases += 1
        return reclaimed

    def retire_block(self, block_global: int) -> None:
        """Remove a grown-bad block from service (fault layer).

        The block's remaining pages leave the drive's accounting entirely:
        they are neither free (nothing may program here again) nor invalid
        (nothing is left to reclaim).  Capacity shrinks; ``free_fraction``
        keeps the raw-capacity denominator so retirement raises GC pressure
        exactly like a real drive losing spare area.
        """
        block = self.blocks[block_global]
        self.invalid_pages -= block.invalid_count
        self.free_pages -= block.free_pages
        block.retire()
        self.retired_blocks += 1

    # ------------------------------------------------------------------

    def free_fraction(self) -> float:
        """Free pages as a fraction of raw capacity (GC trigger input)."""
        return self.free_pages / self.config.total_pages

    def check_invariants(self) -> None:
        """Recompute totals from scratch and compare (test hook)."""
        free = valid = invalid = retired = 0
        for block in self.blocks:
            block.check_invariants()
            if block.retired:
                retired += 1
                continue
            valid += block.valid_count
            invalid += block.invalid_count
            free += block.pages_per_block - block.write_pointer
        assert retired == self.retired_blocks, "retired_blocks out of sync"
        assert free == self.free_pages, "free_pages out of sync"
        assert valid == self.valid_pages, "valid_pages out of sync"
        assert invalid == self.invalid_pages, "invalid_pages out of sync"

"""Lockstep reference-model oracle for the data-integrity contract.

A flash translation layer is, from the host's point of view, just a
dictionary: ``lpn → last content written``.  Everything else — geometry,
out-of-place updates, GC, dead-value revival, dedup pointers — is
implementation.  :class:`OracleFTL` *is* that dictionary, maintained in
lockstep with a production FTL by the :class:`~repro.check.invariants.
InvariantChecker` hooks, and cross-checks after every host operation:

* **reads** must return the content the oracle last stored at the LPN
  (``oracle.read`` on divergence — data loss or stale data);
* **revival and dedup decisions** must pick a physical page that actually
  holds the written fingerprint (``oracle.revival`` / ``oracle.dedup`` —
  a wrong revival silently serves another value's bytes);
* **completed writes** must leave the LPN mapped to a page holding the
  written fingerprint (``oracle.program``);
* **trims** must leave the LPN unmapped (``oracle.trim``).

One documented weakening: a *rejected* write (read-only degradation, or
program retries exhausted) is allowed to either preserve the old copy
(the early-reject path) or destroy it (the mid-flight failure path —
the old copy was invalidated before the program failed, matching a real
drive losing the update), so the oracle resynchronises that one LPN from
the device instead of predicting the outcome.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

from ..core.hashing import Fingerprint
from .invariants import InvariantViolation

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..ftl.ftl import BaseFTL, ReadOutcome, WriteOutcome

__all__ = ["OracleFTL"]


class OracleFTL:
    """Geometry-free reference model: the host-visible LPN → content map."""

    def __init__(self) -> None:
        self._data: Dict[int, Fingerprint] = {}

    def __len__(self) -> int:
        return len(self._data)

    def value_at(self, lpn: int) -> Optional[Fingerprint]:
        return self._data.get(lpn)

    # ------------------------------------------------------------------

    def sync_from(self, ftl: "BaseFTL") -> None:
        """Adopt the device's current contents as the oracle baseline.

        Called at attach time (checking usually starts on a preconditioned
        drive, not a blank one).
        """
        fp_of = ftl._ppn_fp
        self._data = {
            lpn: fp_of[ppn]
            for lpn, ppn in ftl.mapping.forward_items().items()
            if ppn in fp_of
        }

    def _device_value(self, ftl: "BaseFTL", lpn: int) -> Optional[Fingerprint]:
        ppn = ftl.mapping.lookup(lpn)
        if ppn is None:
            return None
        return ftl._ppn_fp.get(ppn)

    def _resync_lpn(self, ftl: "BaseFTL", lpn: int) -> None:
        value = self._device_value(ftl, lpn)
        if value is None:
            self._data.pop(lpn, None)
        else:
            self._data[lpn] = value

    # ------------------------------------------------------------------
    # Lockstep observers (called by InvariantChecker)
    # ------------------------------------------------------------------

    def observe_write(
        self, ftl: "BaseFTL", lpn: int, fp: Fingerprint, outcome: "WriteOutcome"
    ) -> None:
        if outcome.rejected:
            # Rejected writes legitimately go either way (see module
            # docstring); track whatever the device kept.
            self._resync_lpn(ftl, lpn)
            return
        if outcome.short_circuited:
            held = ftl._ppn_fp.get(outcome.revived_ppn)
            if held != fp:
                raise InvariantViolation(
                    "oracle.revival",
                    f"revived PPN {outcome.revived_ppn} holds different "
                    f"content than the write",
                    {"lpn": lpn, "written_fp": fp, "page_fp": held},
                )
        if outcome.dedup_hit:
            ppn = ftl.mapping.lookup(lpn)
            held = ftl._ppn_fp.get(ppn) if ppn is not None else None
            if held != fp:
                raise InvariantViolation(
                    "oracle.dedup",
                    f"dedup hit pointed LPN {lpn} at a page holding "
                    f"different content",
                    {"lpn": lpn, "written_fp": fp, "page_fp": held,
                     "ppn": ppn},
                )
        self._data[lpn] = fp
        stored = self._device_value(ftl, lpn)
        if stored != fp:
            raise InvariantViolation(
                "oracle.program",
                f"completed write left LPN {lpn} holding the wrong content",
                {"lpn": lpn, "written_fp": fp, "stored_fp": stored,
                 "mapped_ppn": ftl.mapping.lookup(lpn)},
            )

    def observe_read(
        self, ftl: "BaseFTL", lpn: int, outcome: "ReadOutcome"
    ) -> None:
        expected = self._data.get(lpn)
        if expected is None:
            if outcome.ppn is not None:
                raise InvariantViolation(
                    "oracle.read",
                    f"read of never-written/trimmed LPN {lpn} returned "
                    f"flash data instead of the zero page",
                    {"lpn": lpn, "ppn": outcome.ppn},
                )
            return
        if outcome.ppn is None:
            raise InvariantViolation(
                "oracle.read",
                f"read of LPN {lpn} found no mapping — the device lost "
                f"written data",
                {"lpn": lpn, "expected_fp": expected},
            )
        held = ftl._ppn_fp.get(outcome.ppn)
        if held != expected:
            raise InvariantViolation(
                "oracle.read",
                f"read of LPN {lpn} returned different content than the "
                f"last write stored",
                {"lpn": lpn, "ppn": outcome.ppn,
                 "expected_fp": expected, "page_fp": held},
            )

    def observe_trim(self, ftl: "BaseFTL", lpn: int) -> None:
        self._data.pop(lpn, None)
        ppn = ftl.mapping.lookup(lpn)
        if ppn is not None:
            raise InvariantViolation(
                "oracle.trim",
                f"trimmed LPN {lpn} is still mapped",
                {"lpn": lpn, "ppn": ppn},
            )

"""Shared benchmark setup.

Each benchmark regenerates one paper table or figure and prints it in the
paper's form (rows/series).  Simulation runs are shared through one
session-scoped :class:`EvaluationMatrix`, so e.g. Figure 10 reuses the runs
Figure 9 paid for.

Scale: benchmarks default to the scale in ``DEFAULT_SCALE`` (see
DESIGN.md §4); set ``REPRO_BENCH_SCALE`` to change it (e.g. 1.0 for a
full-size run — slow).  Set ``REPRO_BENCH_JOBS`` to prewarm the shared
matrix through the parallel engine (``0`` = all cores) before any
benchmark runs; results are bit-identical to the serial fills.
"""

import os

import pytest

from repro.experiments.figures import EvaluationMatrix
from repro.experiments.runner import DEFAULT_SCALE, RunConfig

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", DEFAULT_SCALE))
BENCH_JOBS = os.environ.get("REPRO_BENCH_JOBS")


@pytest.fixture(scope="session")
def scale() -> float:
    return BENCH_SCALE


@pytest.fixture(scope="session")
def matrix() -> EvaluationMatrix:
    """One shared run cache for all evaluation-section figures."""
    built = EvaluationMatrix(RunConfig(scale=BENCH_SCALE))
    if BENCH_JOBS is not None:
        built.prewarm(jobs=int(BENCH_JOBS))
    return built


def emit(text: str) -> None:
    """Print a rendered figure with a separator (visible with -s)."""
    print()
    print(text)

"""Unit tests for the synthetic trace generator."""

import pytest

from repro.sim.request import OpType
from repro.traces.synthetic import (
    INITIAL_VALUE_BASE,
    SyntheticTraceGenerator,
    generate_trace,
    initial_value_of,
)

from ..conftest import make_profile


class TestDeterminism:
    def test_same_profile_same_trace(self):
        profile = make_profile()
        assert generate_trace(profile) == generate_trace(profile)

    def test_different_seed_different_trace(self):
        assert generate_trace(make_profile(seed=1)) != generate_trace(
            make_profile(seed=2)
        )

    def test_stream_matches_generate(self):
        profile = make_profile(num_requests=500)
        assert list(SyntheticTraceGenerator(profile).stream()) == generate_trace(
            profile
        )

    def test_iterable_protocol(self):
        profile = make_profile(num_requests=100)
        assert len(list(SyntheticTraceGenerator(profile))) == 100


class TestShape:
    def test_request_count(self):
        assert len(generate_trace(make_profile(num_requests=1234))) == 1234

    def test_timestamps_monotonic(self):
        trace = generate_trace(make_profile())
        times = [request.arrival_us for request in trace]
        assert times == sorted(times)
        assert times[0] > 0

    def test_lpns_within_total_pages(self):
        profile = make_profile()
        trace = generate_trace(profile)
        assert all(0 <= req.lpn < profile.total_pages for req in trace)

    def test_writes_confined_to_working_set(self):
        profile = make_profile(cold_region_factor=3.0)
        trace = generate_trace(profile)
        writes = [r for r in trace if r.op is OpType.WRITE]
        assert all(r.lpn < profile.working_set_pages for r in writes)

    def test_mean_interarrival_roughly_matches(self):
        profile = make_profile(num_requests=20_000, mean_interarrival_us=50.0)
        trace = generate_trace(profile)
        mean_gap = trace[-1].arrival_us / len(trace)
        assert mean_gap == pytest.approx(50.0, rel=0.1)


class TestContentModel:
    def test_reads_return_current_content(self):
        """Every read's value must equal the most recent write to that LPN
        (or the page's initial value if never written)."""
        profile = make_profile(num_requests=5000)
        content = {}
        for req in generate_trace(profile):
            if req.op is OpType.WRITE:
                content[req.lpn] = req.value_id
            else:
                expected = content.get(req.lpn, initial_value_of(req.lpn))
                assert req.value_id == expected

    def test_initial_values_distinct_from_trace_values(self):
        profile = make_profile()
        trace = generate_trace(profile)
        write_values = {r.value_id for r in trace if r.op is OpType.WRITE}
        assert all(v < INITIAL_VALUE_BASE for v in write_values)
        assert initial_value_of(0) == INITIAL_VALUE_BASE

    def test_value_reuse_creates_redundancy(self):
        profile = make_profile(new_value_prob=0.1, num_requests=5000)
        trace = generate_trace(profile)
        writes = [r for r in trace if r.op is OpType.WRITE]
        distinct = len({r.value_id for r in writes})
        assert distinct < len(writes) * 0.3

    def test_new_value_prob_one_makes_all_unique(self):
        profile = make_profile(new_value_prob=1.0, num_requests=2000)
        writes = [
            r for r in generate_trace(profile) if r.op is OpType.WRITE
        ]
        assert len({r.value_id for r in writes}) == len(writes)

    def test_write_ratio_respected(self):
        profile = make_profile(num_requests=20_000)
        trace = generate_trace(profile)
        writes = sum(1 for r in trace if r.op is OpType.WRITE)
        assert writes / len(trace) == pytest.approx(
            profile.targets.write_ratio, abs=0.02
        )


class TestScanBursts:
    def test_disabled_by_default(self):
        profile = make_profile()
        assert profile.scan_every_writes == 0

    def test_scan_emits_unique_sequential_writes(self):
        profile = make_profile(
            num_requests=4000, scan_every_writes=500, scan_length=100,
            targets=__import__(
                "repro.traces.profiles", fromlist=["TableIITargets"]
            ).TableIITargets(1.0, 0.3, 0.5),
        )
        trace = generate_trace(profile)
        # find a scan: 100 consecutive writes with strictly sequential LPNs
        runs = 0
        longest = 0
        for a, b in zip(trace, trace[1:]):
            if (b.lpn - a.lpn) % profile.working_set_pages == 1:
                runs += 1
                longest = max(longest, runs)
            else:
                runs = 0
        assert longest >= profile.scan_length - 2

    def test_scan_values_are_fresh(self):
        profile = make_profile(
            num_requests=3000, scan_every_writes=400, scan_length=50,
        )
        trace = generate_trace(profile)
        seen = set()
        duplicated = 0
        for req in trace:
            if req.op is OpType.WRITE:
                if req.value_id in seen:
                    duplicated += 1
                seen.add(req.value_id)
        # bursts only add unique values; redundancy still exists elsewhere
        assert duplicated > 0

    def test_scan_validation(self):
        import pytest as _pytest

        with _pytest.raises(ValueError):
            make_profile(scan_every_writes=100, scan_length=100)
        with _pytest.raises(ValueError):
            make_profile(scan_every_writes=-1)

    def test_scans_off_reproduces_previous_stream(self):
        """The scan machinery must not perturb generation when disabled."""
        a = generate_trace(make_profile(seed=9))
        b = generate_trace(make_profile(seed=9, scan_every_writes=0))
        assert a == b

"""Unit tests for the deduplicating FTL and DVP+Dedup composition."""

import pytest

from repro.core.dvp import MQDeadValuePool
from repro.core.hashing import fingerprint_of_value as fp
from repro.flash.block import PageState
from repro.ftl.dedup import DedupFTL


@pytest.fixture
def dedup(tiny_config):
    return DedupFTL(tiny_config)


@pytest.fixture
def dvp_dedup(tiny_config):
    return DedupFTL(tiny_config, pool=MQDeadValuePool(64))


class TestLiveDedup:
    def test_duplicate_write_is_pointer_only(self, dedup):
        first = dedup.write(0, fp(1))
        second = dedup.write(1, fp(1))
        assert first.programmed
        assert second.dedup_hit
        assert not second.programmed
        assert dedup.counters.dedup_hits == 1
        assert dedup.mapping.lookup(0) == dedup.mapping.lookup(1)
        assert dedup.mapping.refcount(first.program_ppn) == 2

    def test_hashing_always_on(self, dedup):
        assert dedup.write(0, fp(1)).hashed
        assert dedup.content_aware

    def test_page_dies_only_at_refcount_zero(self, dedup):
        first = dedup.write(0, fp(1))
        dedup.write(1, fp(1))
        dedup.write(0, fp(2))     # refcount 2 -> 1
        assert dedup.array.state_of(first.program_ppn) is PageState.VALID
        assert dedup.counters.invalidations == 0
        dedup.write(1, fp(3))     # refcount 1 -> 0: death
        assert dedup.array.state_of(first.program_ppn) is PageState.INVALID
        assert dedup.counters.invalidations == 1

    def test_live_index_tracks_values(self, dedup):
        dedup.write(0, fp(1))
        dedup.write(1, fp(2))
        assert dedup.live_value_count() == 2
        dedup.write(0, fp(2))  # fp(1) dies
        assert dedup.live_value_count() == 1
        assert dedup.live_ppn_of(fp(1)) is None

    def test_rewrite_same_content_same_lpn_is_noop(self, dedup):
        first = dedup.write(0, fp(1))
        second = dedup.write(0, fp(1))
        assert second.dedup_hit
        assert dedup.mapping.lookup(0) == first.program_ppn
        assert dedup.counters.programs == 1


class TestFigure13Semantics:
    """The Figure 13 timeline: Dedup covers writes while 'D' is live;
    DVP+Dedup also covers the window after D's death (t3 .. t4)."""

    def test_dedup_alone_reprograms_after_death(self, dedup):
        dedup.write(0, fp(100))      # t0: D written
        dedup.write(1, fp(100))      # W2: dedup hit
        dedup.write(2, fp(100))      # W3: dedup hit
        dedup.write(0, fp(1)); dedup.write(1, fp(2)); dedup.write(2, fp(3))
        # D is now garbage.  A dedup-only store must program again:
        w4 = dedup.write(3, fp(100))
        assert w4.programmed
        assert not w4.dedup_hit

    def test_dvp_dedup_revives_after_death(self, dvp_dedup):
        d0 = dvp_dedup.write(0, fp(100))
        dvp_dedup.write(1, fp(100))
        dvp_dedup.write(2, fp(100))
        dvp_dedup.write(0, fp(1))
        dvp_dedup.write(1, fp(2))
        dvp_dedup.write(2, fp(3))    # D dies here (refcount 0)
        w4 = dvp_dedup.write(3, fp(100))
        assert w4.short_circuited
        assert w4.revived_ppn == d0.program_ppn
        assert dvp_dedup.live_ppn_of(fp(100)) == d0.program_ppn


class TestDVPDedupCoherence:
    def test_revived_page_rejoins_live_index(self, dvp_dedup):
        dvp_dedup.write(0, fp(1))
        dvp_dedup.write(0, fp(2))           # fp(1) dies
        dvp_dedup.write(1, fp(1))           # revived
        third = dvp_dedup.write(2, fp(1))   # now a plain dedup hit
        assert third.dedup_hit

    def test_gc_keeps_live_index_valid(self, tiny_config):
        ftl = DedupFTL(tiny_config, pool=MQDeadValuePool(64))
        ws = tiny_config.logical_pages // 2
        for i in range(tiny_config.total_pages * 2):
            ftl.write(i % ws, fp(1000 + i))
        ftl.check_invariants()
        assert ftl.counters.gc_erases > 0

    def test_dedup_reduces_programs_vs_plain(self, tiny_config):
        from repro.ftl.ftl import BaseFTL

        plain = BaseFTL(tiny_config)
        dedup = DedupFTL(tiny_config)
        ws = tiny_config.logical_pages // 2
        for i in range(600):
            lpn, value = i % ws, fp(i % 7)
            plain.write(lpn, value)
            dedup.write(lpn, value)
        assert dedup.counters.programs < plain.counters.programs

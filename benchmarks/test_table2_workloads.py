"""Table II: workload characteristics — published vs synthetic audit."""

from repro.analysis.report import render_table
from repro.experiments.figures import table2_workloads

from .conftest import emit


def test_table2_workloads(benchmark, scale):
    results = benchmark.pedantic(
        lambda: table2_workloads(scale), rounds=1, iterations=1
    )
    rows = []
    for name, (audit, targets) in results.items():
        rows.append((
            name,
            f"{targets.write_ratio * 100:.0f}",
            f"{audit.write_ratio * 100:.1f}",
            f"{targets.unique_write_frac * 100:.1f}",
            f"{audit.unique_write_frac * 100:.1f}",
            f"{targets.unique_read_frac * 100:.1f}",
            f"{audit.unique_read_frac * 100:.1f}",
        ))
    emit(render_table(
        ["trace", "WR% paper", "WR% ours",
         "uniqW% paper", "uniqW% ours", "uniqR% paper", "uniqR% ours"],
        rows,
        title="Table II: workload characteristics (paper vs synthetic)",
    ))
    for name, (audit, targets) in results.items():
        assert abs(audit.write_ratio - targets.write_ratio) < 0.03, name
        assert abs(audit.unique_write_frac - targets.unique_write_frac) < 0.1, name
    # mail must remain by far the most write-redundant workload
    mail = results["mail"][0].unique_write_frac
    assert all(
        mail < audit.unique_write_frac
        for name, (audit, _) in results.items() if name != "mail"
    )

"""Figure 10: reduction in erase counts (200K pool + ideal).

Paper: trend mirrors the write reduction of Figure 9; mean 35.5%, up to
59.2% on mail.  Fewer erases = longer device lifetime.
"""

from repro.analysis.report import render_table
from repro.experiments.comparison import mean_improvement
from repro.experiments.figures import fig10_erase_reduction

from .conftest import emit


def test_fig10_erase_reduction(benchmark, matrix):
    results = benchmark.pedantic(
        lambda: fig10_erase_reduction(matrix), rounds=1, iterations=1
    )
    rows = [
        (wl, f"{row['200K']:.1f}", f"{row['ideal']:.1f}")
        for wl, row in results.items()
    ]
    mean_200k = mean_improvement({w: r["200K"] for w, r in results.items()})
    emit(render_table(
        ["workload", "200K (%)", "ideal (%)"], rows,
        title=(
            "Figure 10: erase-count reduction vs baseline "
            f"(mean: {mean_200k:.1f}%; paper: 35.5%, max 59.2% on mail)"
        ),
    ))
    # Shape: mail gains most; erase trend follows the write trend.
    assert results["mail"]["200K"] == max(r["200K"] for r in results.values())
    assert mean_200k > 10.0
    for row in results.values():
        assert row["200K"] >= -5.0  # never meaningfully worse than baseline

"""Project-wide symbol table and call graph over per-file facts.

The :class:`SymbolTable` merges every module's :class:`ModuleFacts`
into global indices: fully-qualified functions (``module.Class.method``),
classes with their base-class links and inferred attribute types, and a
method table keyed ``(class fq-name, method name)``.  Class hierarchy
is resolved both *up* (a ``self.m()`` call binds to the nearest
definition in the MRO chain) and *down* (a call through a base-typed
receiver also targets every subclass override — the dispatch the known
Protocols rely on: ``DeadValuePool`` implementations, ``BaseFTL``
hooks, the ``Device`` step surface).

:class:`CallGraph` resolves every recorded call site against the table,
keeping the result aligned index-for-index with each function's
``calls`` tuple so the taint pass can map argument dependences onto
callee parameters.  Unresolvable calls stay unresolved — the passes
treat them as opaque pass-through, the safe over-approximation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from .facts import CallFact, ClassFacts, FunctionFacts, ModuleFacts

__all__ = ["CallGraph", "SymbolTable", "build_symbol_table"]


#: Method names distinctive enough to resolve on an *untyped* receiver:
#: the protocol surfaces named in DESIGN — DeadValuePool, the BaseFTL
#: GC hooks, GC delegation, MQ touch and the Device step surface.
#: Deliberately excludes generic names (``read``/``write``/``get``),
#: which on an untyped receiver would wire half the project together.
PROTOCOL_METHODS = frozenset({
    # DeadValuePool implementations
    "lookup_for_write", "insert_garbage", "discard_ppn",
    "clear_volatile", "tracked_ppn_count", "tracked_items",
    # BaseFTL / GC delegate hooks
    "relocate_page", "erase_cleanup", "maybe_collect",
    "background_collect",
    # Device step surface / MQ touch
    "step", "access",
})


@dataclass
class SymbolTable:
    """Global indices over all analyzed modules' facts."""

    modules: Dict[str, ModuleFacts] = field(default_factory=dict)
    #: fq function name → facts
    functions: Dict[str, FunctionFacts] = field(default_factory=dict)
    #: fq function name → module name
    function_module: Dict[str, str] = field(default_factory=dict)
    #: fq class name → (module name, facts)
    classes: Dict[str, Tuple[str, ClassFacts]] = field(default_factory=dict)
    #: class simple name → fq class names (sorted, for determinism)
    class_index: Dict[str, List[str]] = field(default_factory=dict)
    #: (fq class name, method name) → fq function name
    methods: Dict[Tuple[str, str], str] = field(default_factory=dict)
    #: fq class name → fq direct base classes (resolved)
    bases: Dict[str, List[str]] = field(default_factory=dict)
    #: fq class name → fq direct subclasses
    subclasses: Dict[str, List[str]] = field(default_factory=dict)
    #: function tail name → fq function names (for re-export fallback)
    by_tail: Dict[str, List[str]] = field(default_factory=dict)

    # -- construction --------------------------------------------------

    def add_module(self, facts: ModuleFacts) -> None:
        self.modules[facts.module] = facts
        for fn in facts.functions:
            fq = f"{facts.module}.{fn.qualname}"
            self.functions[fq] = fn
            self.function_module[fq] = facts.module
            tail = fn.qualname.rsplit(".", 1)[-1]
            self.by_tail.setdefault(tail, []).append(fq)
            if fn.cls is not None:
                # Key on the class's own fq name.  ``fn.qualname`` is
                # ``...Cls.method``; the class prefix drops the tail.
                cls_fq = f"{facts.module}.{fn.qualname.rsplit('.', 1)[0]}"
                self.methods[(cls_fq, tail)] = fq
        for cls in facts.classes:
            # Nested classes share the simple name; last writer wins on
            # the fq key, which matches how the method table keys them.
            cls_fq = f"{facts.module}.{cls.name}"
            self.classes[cls_fq] = (facts.module, cls)
            self.class_index.setdefault(cls.name, []).append(cls_fq)

    def link_hierarchy(self) -> None:
        """Resolve base-class names and build the subclass map."""
        for fq_list in self.class_index.values():
            fq_list.sort()
        for fqs in self.by_tail.values():
            fqs.sort()
        self.bases.clear()
        self.subclasses.clear()
        for cls_fq, (_module, cls) in sorted(self.classes.items()):
            resolved: List[str] = []
            for base in cls.bases:
                target = self._resolve_class_name(base)
                if target is not None:
                    resolved.append(target)
            self.bases[cls_fq] = resolved
            for base_fq in resolved:
                self.subclasses.setdefault(base_fq, []).append(cls_fq)
        for subs in self.subclasses.values():
            subs.sort()

    def _resolve_class_name(self, name: str) -> Optional[str]:
        if name in self.classes:
            return name
        tail = name.rsplit(".", 1)[-1]
        candidates = self.class_index.get(tail, [])
        if len(candidates) == 1:
            return candidates[0]
        return None

    # -- queries -------------------------------------------------------

    def mro_chain(self, cls_fq: str) -> List[str]:
        """The class plus its transitive bases, breadth-first."""
        out: List[str] = []
        seen: Set[str] = set()
        frontier = [cls_fq]
        while frontier:
            cur = frontier.pop(0)
            if cur in seen:
                continue
            seen.add(cur)
            out.append(cur)
            frontier.extend(self.bases.get(cur, ()))
        return out

    def transitive_subclasses(self, cls_fq: str) -> List[str]:
        out: List[str] = []
        seen: Set[str] = set()
        frontier = list(self.subclasses.get(cls_fq, ()))
        while frontier:
            cur = frontier.pop(0)
            if cur in seen:
                continue
            seen.add(cur)
            out.append(cur)
            frontier.extend(self.subclasses.get(cur, ()))
        return out

    def resolve_method(self, cls_fq: str, attr: str) -> List[str]:
        """Every function a ``recv.attr(...)`` call may bind to, where
        ``recv`` is statically typed ``cls_fq``: the nearest definition
        up the MRO plus every subclass override."""
        out: List[str] = []
        for cur in self.mro_chain(cls_fq):
            fn = self.methods.get((cur, attr))
            if fn is not None:
                out.append(fn)
                break
        for sub in self.transitive_subclasses(cls_fq):
            fn = self.methods.get((sub, attr))
            if fn is not None and fn not in out:
                out.append(fn)
        return out

    def attr_type(self, cls_fq: str, attr: str) -> Optional[str]:
        """Inferred class (fq) of ``self.<attr>`` on ``cls_fq``."""
        for cur in self.mro_chain(cls_fq):
            entry = self.classes.get(cur)
            if entry is None:
                continue
            for name, hint in entry[1].attr_types:
                if name == attr:
                    return self._resolve_class_name(hint)
        return None

    # -- per-call resolution -------------------------------------------

    def resolve_call(self, caller_fq: str, call: CallFact) -> List[str]:
        """fq functions a call site may target (empty → opaque)."""
        module = self.function_module.get(caller_fq, "")
        caller = self.functions.get(caller_fq)

        if call.kind == "local":
            qual = caller_fq[len(module) + 1:] if module else caller_fq
            scopes = qual.split(".")[:-1]
            while True:
                prefix = ".".join(scopes)
                cand = f"{prefix}.{call.name}" if prefix else call.name
                fq = f"{module}.{cand}"
                if fq in self.functions:
                    return [fq]
                ctor = self._constructor(fq)
                if ctor is not None:
                    return ctor
                if not scopes:
                    break
                scopes.pop()
            return self._tail_fallback(call.name)

        if call.kind == "abs":
            if call.name in self.functions:
                return [call.name]
            ctor = self._constructor(call.name)
            if ctor is not None:
                return ctor
            return self._tail_fallback(call.name.rsplit(".", 1)[-1])

        if call.kind == "self":
            if caller is None or caller.cls is None:
                return []
            cls_fq = f"{module}.{caller_fq[len(module) + 1:].rsplit('.', 1)[0]}"
            return self.resolve_method(cls_fq, call.attr)

        if call.kind == "selfattr":
            if caller is None or caller.cls is None:
                return []
            cls_fq = f"{module}.{caller_fq[len(module) + 1:].rsplit('.', 1)[0]}"
            recv = self.attr_type(cls_fq, call.name)
            if recv is None:
                return self._protocol_fallback(call.attr)
            return self.resolve_method(recv, call.attr)

        if call.kind == "typed":
            recv = self._resolve_class_name(call.name)
            if recv is None:
                return self._protocol_fallback(call.attr)
            return self.resolve_method(recv, call.attr)

        if call.kind == "dyn":
            return self._protocol_fallback(call.attr)

        return []

    def _constructor(self, cls_fq: str) -> Optional[List[str]]:
        """``Cls(...)`` → its ``__init__`` (or [] for init-less classes);
        ``None`` when the name is not a known class at all."""
        if cls_fq not in self.classes:
            tail = cls_fq.rsplit(".", 1)[-1]
            resolved = self._resolve_class_name(tail) if tail[:1].isupper() else None
            if resolved is None:
                return None
            cls_fq = resolved
        init = self.methods.get((cls_fq, "__init__"))
        return [init] if init is not None else []

    def _tail_fallback(self, tail: str) -> List[str]:
        """Resolve a name by unique tail match (covers re-exports like
        ``from repro.api import parse_record``)."""
        candidates = self.by_tail.get(tail, [])
        if len(candidates) == 1:
            return list(candidates)
        return []

    def _protocol_fallback(self, attr: str) -> List[str]:
        if attr not in PROTOCOL_METHODS:
            return []
        out = [
            fq for (_cls, name), fq in self.methods.items() if name == attr
        ]
        return sorted(set(out))


@dataclass
class CallGraph:
    """Resolved call edges, aligned with each function's call tuple."""

    table: SymbolTable
    #: caller fq → per-call-site tuple of callee fqs (index-aligned
    #: with ``FunctionFacts.calls``)
    resolved: Dict[str, Tuple[Tuple[str, ...], ...]] = field(
        default_factory=dict
    )

    @classmethod
    def build(cls, table: SymbolTable) -> "CallGraph":
        graph = cls(table=table)
        for caller_fq in sorted(table.functions):
            fn = table.functions[caller_fq]
            graph.resolved[caller_fq] = tuple(
                tuple(table.resolve_call(caller_fq, call))
                for call in fn.calls
            )
        return graph

    def callees(self, caller_fq: str) -> List[str]:
        """Distinct callees of one function, sorted."""
        out: Set[str] = set()
        for targets in self.resolved.get(caller_fq, ()):
            out.update(targets)
        return sorted(out)

    def edges(self) -> Iterator[Tuple[str, str]]:
        """All (caller, callee) pairs, deterministic order."""
        for caller_fq in sorted(self.resolved):
            for callee in self.callees(caller_fq):
                yield caller_fq, callee


def build_symbol_table(all_facts: Iterable[ModuleFacts]) -> SymbolTable:
    """Merge per-module facts into a linked project table.

    Input order does not matter: modules are indexed by name and the
    hierarchy link step sorts every derived list, so the table (and the
    call graph built from it) is identical under any file ordering.
    """
    table = SymbolTable()
    for facts in sorted(all_facts, key=lambda f: f.module):
        table.add_module(facts)
    table.link_hierarchy()
    return table

"""Stack-distance (Mattson) analysis of the LRU dead-value pool.

Figure 5 sweeps LRU pool sizes by re-simulating the trace once per size.
The classic Mattson observation is that LRU caches are *inclusive*: the
content of a size-C cache is the top C entries of an unbounded LRU stack,
so one pass that records each hit's stack distance yields the hit count
for every capacity at once.

The dead-value pool is almost — but not exactly — a plain LRU cache: a
hit *consumes* one dead copy, and an entry (one fingerprint) may hold
several dead copies (PPNs).  Consumption at a large capacity does not
happen at capacities too small to hold the entry, so for multi-copy
values the inclusion property is approximate.  For workloads where values
rarely hold more than one dead copy at a time the curve is exact;
:func:`hit_curve` documents and the tests quantify the error (single
percent range on the paper-like workloads).

Use :func:`lru_hit_curve` for the cheap sweep and fall back to
:func:`repro.analysis.characterize.lru_pool_sweep` when exactness
matters.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

from ..sim.request import IORequest, OpType

__all__ = ["StackAnalysis", "lru_hit_curve"]


@dataclass
class StackAnalysis:
    """One-pass result: hit counts by stack distance.

    ``distance_histogram[d]`` counts lookups that hit at stack distance
    ``d`` (1-based: the hottest entry is at distance 1).  A pool of
    capacity C captures every hit with distance ≤ C.
    """

    total_writes: int = 0
    infinite_hits: int = 0
    distance_histogram: Dict[int, int] = field(default_factory=dict)

    def hits_for_capacity(self, capacity: int) -> int:
        """Predicted short-circuited writes for an LRU pool of ``capacity``."""
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        return sum(
            count for distance, count in self.distance_histogram.items()
            if distance <= capacity
        )

    def serviced_writes_for_capacity(self, capacity: int) -> int:
        """Predicted writes still hitting flash (Figure 5's y-axis)."""
        return self.total_writes - self.hits_for_capacity(capacity)

    def curve(self, capacities: Iterable[int]) -> List[Tuple[int, int]]:
        """(capacity, serviced writes) points, in the given order."""
        return [
            (c, self.serviced_writes_for_capacity(c)) for c in capacities
        ]


def lru_hit_curve(trace: Iterable[IORequest]) -> StackAnalysis:
    """Single-pass stack simulation of the LRU dead-value pool.

    Maintains the *infinite* pool (fingerprint → dead-copy count) as an
    LRU stack; every hit records the fingerprint's current stack distance.
    O(total writes × average distance) — the distance scan uses the
    ordered-dict order directly.
    """
    analysis = StackAnalysis()
    # stack: fingerprint value-id -> dead copies; order = MRU last.
    stack: "OrderedDict[int, int]" = OrderedDict()
    content: Dict[int, int] = {}
    for request in trace:
        if request.op is not OpType.WRITE:
            continue
        analysis.total_writes += 1
        lpn, value_id = request.lpn, request.value_id
        old = content.get(lpn)
        if old is not None:
            stack[old] = stack.get(old, 0) + 1
            stack.move_to_end(old)          # death refreshes recency
        content[lpn] = value_id
        if value_id in stack:
            distance = _distance_of(stack, value_id)
            analysis.infinite_hits += 1
            analysis.distance_histogram[distance] = (
                analysis.distance_histogram.get(distance, 0) + 1
            )
            remaining = stack[value_id] - 1
            if remaining:
                stack[value_id] = remaining
                stack.move_to_end(value_id)
            else:
                del stack[value_id]
    return analysis


def _distance_of(stack: "OrderedDict[int, int]", key: int) -> int:
    """1-based LRU stack distance of ``key`` (1 = most recently used)."""
    for distance, candidate in enumerate(reversed(stack), start=1):
        if candidate == key:
            return distance
    raise KeyError(key)

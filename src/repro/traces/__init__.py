"""Trace infrastructure: FIU format, workload profiles, synthetic generation."""

from .fiu import (
    FIUFormatError,
    RawFIURecord,
    format_fiu_line,
    iter_fiu_requests,
    parse_fiu_line,
    read_fiu,
    write_fiu,
)
from .jsonl import (
    JSONLFormatError,
    iter_jsonl_requests,
    record_of_request,
    request_of_record,
    write_jsonl,
)
from .profiles import (
    PROFILES,
    TraceAudit,
    WorkloadProfile,
    audit_trace,
    profile_by_name,
)
from .synthetic import SyntheticTraceGenerator, generate_trace
from .transforms import (
    filter_ops,
    interleave_tenants,
    merge_traces,
    scale_time,
    shift_lpns,
    take,
    window,
)
from .zipf import ZipfSampler, top_fraction_share, zipf_rank, zipf_rank_legacy

__all__ = [
    "WorkloadProfile",
    "PROFILES",
    "profile_by_name",
    "TraceAudit",
    "audit_trace",
    "SyntheticTraceGenerator",
    "generate_trace",
    "ZipfSampler",
    "zipf_rank",
    "zipf_rank_legacy",
    "top_fraction_share",
    "RawFIURecord",
    "FIUFormatError",
    "parse_fiu_line",
    "read_fiu",
    "iter_fiu_requests",
    "format_fiu_line",
    "write_fiu",
    "scale_time",
    "window",
    "take",
    "filter_ops",
    "shift_lpns",
    "merge_traces",
    "interleave_tenants",
    "JSONLFormatError",
    "write_jsonl",
    "iter_jsonl_requests",
    "record_of_request",
    "request_of_record",
]

"""Fleet unit tests: spec validation, pool modes, aggregation, CLI."""

import io
import json

import pytest

from repro.cli import main
from repro.experiments.runner import scaled_pool_entries
from repro.fleet import (
    FleetSpec,
    ShardSpec,
    compare_pool_modes,
    run_fleet,
)
from repro.obs import JsonlWriter

SCALE = 0.02
SPEC = FleetSpec(workload="mail", system="mq-dvp", shards=4, scale=SCALE)


@pytest.fixture(scope="module")
def fleet():
    return run_fleet(SPEC, jobs=1)


class TestFleetSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            FleetSpec(workload="mail", system="mq-dvp", shards=0)
        with pytest.raises(ValueError, match="pool_mode"):
            FleetSpec(
                workload="mail", system="mq-dvp", shards=2, pool_mode="bogus"
            )
        with pytest.raises(ValueError):
            FleetSpec(
                workload="mail", system="mq-dvp", shards=2, chunk_requests=0
            )
        with pytest.raises(ValueError):
            FleetSpec(workload="mail", system="mq-dvp", shards=2, replicas=0)

    def test_shard_index_bounds(self):
        assert SPEC.shard(0) == ShardSpec(fleet=SPEC, index=0)
        with pytest.raises(ValueError):
            SPEC.shard(4)
        with pytest.raises(ValueError):
            SPEC.shard(-1)

    def test_spec_is_picklable(self):
        import pickle

        assert pickle.loads(pickle.dumps(SPEC)) == SPEC
        shard = SPEC.shard(2)
        assert pickle.loads(pickle.dumps(shard)) == shard

    def test_pool_budget_split(self):
        budget = scaled_pool_entries(SPEC.paper_pool_entries, SPEC.scale)
        per_drive = SPEC.shard_pool_entries()
        assert per_drive == max(64, budget // SPEC.shards)
        import dataclasses

        shared = dataclasses.replace(SPEC, pool_mode="shared")
        assert shared.shard_pool_entries() == budget


class TestAggregation:
    def test_counters_sum_across_shards(self, fleet):
        assert fleet.host_writes == sum(
            r.counters.host_writes for r in fleet.shard_results
        )
        assert fleet.flash_programs == sum(
            r.counters.total_programs for r in fleet.shard_results
        )

    def test_latency_merges_exact_samples(self, fleet):
        merged = fleet.all_requests
        assert merged.count == sum(
            r.reads.count + r.writes.count for r in fleet.shard_results
        )
        # Fleet percentiles come from the merged sample set, so the p99
        # must be one of the shards' actual samples.
        all_samples = [
            s
            for r in fleet.shard_results
            for s in r.reads.samples + r.writes.samples
        ]
        assert fleet.p99_latency_us in all_samples

    def test_ratios_are_of_totals(self, fleet):
        assert fleet.write_amplification == (
            fleet.flash_programs / fleet.host_writes
        )
        assert 0.0 <= fleet.revival_rate <= 1.0

    def test_imbalance_stats(self, fleet):
        assert len(fleet.shard_requests) == SPEC.shards
        assert fleet.imbalance_cv >= 0.0
        assert fleet.imbalance_max_over_mean >= 1.0

    def test_summary_shape(self, fleet):
        summary = fleet.summary()
        for key in (
            "workload", "system", "shards", "pool_mode", "jobs",
            "flash_programs", "write_amplification", "revival_rate",
            "p50_latency_us", "p99_latency_us", "imbalance_cv",
            "fleet_digest",
        ):
            assert key in summary
        assert len(summary["fleet_digest"]) == 64

    def test_export_jsonl(self, fleet):
        from repro.api import parse_record

        buffer = io.StringIO()
        records = fleet.export_jsonl(JsonlWriter(buffer))
        lines = [json.loads(l) for l in buffer.getvalue().splitlines()]
        assert records == SPEC.shards + 1
        assert [l["kind"] for l in lines] == (
            ["fleet.shard"] * SPEC.shards + ["fleet"]
        )
        for index, line in enumerate(lines[:-1]):
            assert line["meta"]["shard"] == index
            assert len(line["digest"]) == 64
            parse_record(line)  # every exported line is a valid v1 record
        assert lines[-1]["digest"] == fleet.fleet_digest
        assert lines[-1]["meta"]["shard_digests"] == list(fleet.shard_digests)


class TestPoolModes:
    def test_comparison_reports_programs_for_both_modes(self):
        comparison = compare_pool_modes(SPEC, jobs=1)
        assert comparison.per_drive.spec.pool_mode == "per-drive"
        assert comparison.shared.spec.pool_mode == "shared"
        assert comparison.per_drive_programs > 0
        assert comparison.shared_programs > 0
        # The shared mode is the upper bound: every shard keeps the full
        # budget, so it can never produce *more* programs than the split
        # pools.
        assert comparison.shared_programs <= comparison.per_drive_programs
        summary = comparison.summary()
        assert summary["programs_saved"] == (
            comparison.per_drive_programs - comparison.shared_programs
        )


class TestFleetCli:
    def test_fleet_json(self, capsys):
        code = main([
            "fleet", "--workload", "mail", "--system", "mq-dvp",
            "--shards", "2", "--scale", str(SCALE), "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "fleet"
        assert payload["meta"]["shards"] == 2
        assert len(payload["digest"]) == 64

    def test_fleet_compare_pool_modes(self, capsys):
        code = main([
            "fleet", "--workload", "mail", "--system", "mq-dvp",
            "--shards", "2", "--scale", str(SCALE),
            "--compare-pool-modes", "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) >= {
            "per_drive_programs", "shared_programs", "programs_saved",
        }

    def test_fleet_obs_export(self, tmp_path, capsys):
        out = tmp_path / "fleet.jsonl"
        code = main([
            "fleet", "--workload", "mail", "--system", "mq-dvp",
            "--shards", "2", "--scale", str(SCALE),
            "--obs", str(out), "--json",
        ])
        assert code == 0
        lines = out.read_text().splitlines()
        assert len(lines) == 3  # 2 shards + 1 fleet record

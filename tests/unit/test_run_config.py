"""RunConfig API redesign: validation, legacy-kwarg deprecation, pool API."""

import pickle

import pytest

from repro.core.adaptive import AdaptiveMQDeadValuePool
from repro.core.dvp import (
    DeadValuePool,
    InfiniteDeadValuePool,
    LBARecencyPool,
    LRUDeadValuePool,
    MQDeadValuePool,
    pool_from_name,
)
from repro.experiments import RunConfig
from repro.experiments.figures import EvaluationMatrix
from repro.experiments.runner import (
    ExperimentContext,
    run_matrix,
    run_system,
)
from repro.faults import FaultConfig
from repro.obs import MetricRegistry
from repro.perf.spec import RunSpec

SCALE = 0.004


@pytest.fixture(scope="module")
def web_context():
    return ExperimentContext.for_workload("web", SCALE)


class TestRunConfig:
    def test_defaults(self):
        cfg = RunConfig()
        assert cfg.paper_pool_entries == 200_000
        assert cfg.jobs == 1
        assert cfg.faults is None
        assert cfg.reuse_prefill

    def test_validation(self):
        with pytest.raises(ValueError):
            RunConfig(paper_pool_entries=0)
        with pytest.raises(ValueError):
            RunConfig(scale=0)
        with pytest.raises(ValueError):
            RunConfig(queue_depth=0)
        with pytest.raises(ValueError):
            RunConfig(jobs=-1)
        with pytest.raises(TypeError):
            RunConfig(faults="nope")  # type: ignore[arg-type]

    def test_replace_returns_new_frozen_copy(self):
        cfg = RunConfig(scale=0.1)
        other = cfg.replace(jobs=4)
        assert other.jobs == 4
        assert other.scale == 0.1
        assert cfg.jobs == 1
        with pytest.raises(Exception):
            cfg.scale = 0.2  # type: ignore[misc]

    def test_picklable_property_and_roundtrip(self):
        cfg = RunConfig(faults=FaultConfig(seed=2, read_error_prob=0.1))
        assert cfg.picklable
        assert pickle.loads(pickle.dumps(cfg)) == cfg
        assert not cfg.replace(registry=MetricRegistry()).picklable

    def test_runspec_from_config_round_trip(self):
        cfg = RunConfig(
            paper_pool_entries=50_000,
            scale=SCALE,
            queue_depth=8,
            faults=FaultConfig(seed=4),
        )
        spec = RunSpec.from_config("web", "baseline", cfg)
        assert spec.paper_pool_entries == 50_000
        assert spec.scale == SCALE
        assert spec.queue_depth == 8
        assert spec.faults == cfg.faults
        back = spec.run_config()
        assert back.paper_pool_entries == 50_000
        assert back.faults == cfg.faults


class TestLegacyKwargsRemoved:
    """The PR 3 one-release deprecation window is over: the flat kwarg
    surface is gone, and anything but a RunConfig raises TypeError."""

    def test_run_system_rejects_legacy_kwargs(self, web_context):
        with pytest.raises(TypeError):
            run_system("baseline", web_context, paper_pool_entries=100_000)

    def test_run_system_rejects_positional_non_config(self, web_context):
        # Old call shapes: run_system(system, context, pool_entries) and
        # run_system(system, context, scale).
        with pytest.raises(TypeError, match="RunConfig"):
            run_system("baseline", web_context, 100_000)
        with pytest.raises(TypeError, match="RunConfig"):
            run_system("baseline", web_context, SCALE)

    def test_run_system_accepts_config(self, web_context):
        result = run_system(
            "baseline",
            web_context,
            config=RunConfig(paper_pool_entries=100_000, scale=SCALE),
        )
        assert result.counters.host_writes > 0

    def test_run_matrix_rejects_legacy_scale(self):
        with pytest.raises(TypeError):
            run_matrix(["web"], ["baseline"], scale=SCALE)
        with pytest.raises(TypeError, match="RunConfig"):
            run_matrix(["web"], ["baseline"], SCALE)

    def test_evaluation_matrix_rejects_legacy_scale(self):
        with pytest.raises(TypeError):
            EvaluationMatrix(scale=SCALE)
        with pytest.raises(TypeError, match="RunConfig"):
            EvaluationMatrix(SCALE)

    def test_evaluation_matrix_accepts_config_positionally(self):
        matrix = EvaluationMatrix(RunConfig(scale=SCALE, jobs=2))
        assert matrix.scale == SCALE
        assert matrix.jobs == 2


class TestTraceCacheSafety:
    def test_cached_trace_is_a_tuple(self):
        context = ExperimentContext.for_workload("web", SCALE)
        assert isinstance(context.trace, tuple)
        again = ExperimentContext.for_workload("web", SCALE)
        assert again.trace is context.trace  # shared, so it must be immutable

    def test_uncached_trace_is_private_and_mutable(self):
        context = ExperimentContext.for_workload(
            "web", SCALE, use_cache=False
        )
        assert isinstance(context.trace, list)
        cached = ExperimentContext.for_workload("web", SCALE)
        context.trace.reverse()  # must not poison the shared copy
        assert ExperimentContext.for_workload("web", SCALE).trace is (
            cached.trace
        )


class TestDeadValuePoolProtocol:
    POOLS = {
        "infinite": InfiniteDeadValuePool,
        "lru": LRUDeadValuePool,
        "mq": MQDeadValuePool,
        "lba-recency": LBARecencyPool,
        "adaptive": AdaptiveMQDeadValuePool,
    }

    @pytest.mark.parametrize("name", sorted(POOLS))
    def test_factory_builds_conforming_pools(self, name):
        pool = pool_from_name(name, entries=256)
        assert isinstance(pool, self.POOLS[name])
        assert isinstance(pool, DeadValuePool)

    def test_factory_rejects_unknown_names(self):
        with pytest.raises(ValueError, match="unknown pool"):
            pool_from_name("bogus")


class TestCheckingConfig:
    def test_checking_property(self):
        assert not RunConfig().checking
        assert RunConfig(check_interval=100).checking
        assert RunConfig(oracle=True).checking
        assert RunConfig(check_interval=100, oracle=True).checking

    def test_validation(self):
        with pytest.raises(ValueError):
            RunConfig(check_interval=0)
        with pytest.raises(ValueError):
            RunConfig(check_interval=-5)
        with pytest.raises(ValueError):
            RunConfig(trim_every=-1)

    def test_runspec_round_trips_check_fields(self):
        from repro.perf.spec import RunSpec

        config = RunConfig(check_interval=500, oracle=True, trim_every=7)
        spec = RunSpec.from_config("web", "mq-dvp", config)
        back = spec.run_config()
        assert back.check_interval == 500
        assert back.oracle is True
        assert back.trim_every == 7

    def test_checked_config_is_picklable(self):
        import pickle

        config = RunConfig(check_interval=500, oracle=True, trim_every=7)
        assert config.picklable
        assert pickle.loads(pickle.dumps(config)) == config

"""Multi-seed replication: means, spreads and paired comparisons.

The paper reports single trace replays; with synthetic workloads we can do
better — regenerate each workload under several seeds and report the
sampling spread of every improvement number, so EXPERIMENTS.md claims are
not one-seed accidents.

:func:`replicate` runs one (workload, system) cell across seeds;
:func:`paired_improvement` compares a system against baseline *per seed*
(the strongest design: both systems see the identical trace) and returns
the mean, min and max improvement over seeds.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import mean, stdev
from typing import List, Sequence

from ..sim.metrics import percent_improvement
from .runner import DEFAULT_SCALE

__all__ = ["Replicates", "replicate", "paired_improvement"]


@dataclass(frozen=True)
class Replicates:
    """Per-seed samples of one scalar metric, with summary statistics."""

    metric: str
    samples: List[float]

    @property
    def mean(self) -> float:
        return mean(self.samples) if self.samples else 0.0

    @property
    def spread(self) -> float:
        """Sample standard deviation (0 for fewer than two samples)."""
        return stdev(self.samples) if len(self.samples) > 1 else 0.0

    @property
    def minimum(self) -> float:
        return min(self.samples) if self.samples else 0.0

    @property
    def maximum(self) -> float:
        return max(self.samples) if self.samples else 0.0

    def summary(self) -> str:
        return (
            f"{self.mean:.2f} ± {self.spread:.2f} "
            f"[{self.minimum:.2f}, {self.maximum:.2f}] (n={len(self.samples)})"
        )


def replicate(
    workload: str,
    system: str,
    metric: str,
    seeds: Sequence[int],
    scale: float = DEFAULT_SCALE,
    paper_pool_entries: int = 200_000,
    jobs: int = 1,
) -> Replicates:
    """Run one system over reseeded variants of a workload.

    ``metric`` is any key of ``RunResult.summary()``.  ``jobs`` fans the
    per-seed runs out over worker processes (each seed is an independent
    cell); sample order always follows ``seeds``.
    """
    from ..perf.parallel import run_specs
    from ..perf.spec import RunSpec

    specs = [
        RunSpec(
            workload=workload,
            system=system,
            paper_pool_entries=paper_pool_entries,
            scale=scale,
            seed=seed,
        )
        for seed in seeds
    ]
    results = run_specs(specs, jobs=jobs)
    samples = [float(result.summary()[metric]) for result in results]
    return Replicates(metric=metric, samples=samples)


def paired_improvement(
    workload: str,
    system: str,
    metric: str,
    seeds: Sequence[int],
    scale: float = DEFAULT_SCALE,
    paper_pool_entries: int = 200_000,
    baseline: str = "baseline",
    jobs: int = 1,
) -> Replicates:
    """Per-seed % improvement of ``system`` over ``baseline``.

    Both systems replay the *same* trace for each seed, so the pairs are
    directly comparable and trace-sampling noise cancels.  ``jobs`` runs
    the 2×len(seeds) cells in parallel; pairing is by position, which the
    ordered collection guarantees.
    """
    from ..perf.parallel import run_specs
    from ..perf.spec import RunSpec

    specs = []
    for seed in seeds:
        for name in (baseline, system):
            specs.append(
                RunSpec(
                    workload=workload,
                    system=name,
                    paper_pool_entries=paper_pool_entries,
                    scale=scale,
                    seed=seed,
                )
            )
    results = run_specs(specs, jobs=jobs)
    samples = [
        percent_improvement(
            base.summary()[metric], this.summary()[metric]
        )
        for base, this in zip(results[0::2], results[1::2])
    ]
    return Replicates(metric=f"{metric} improvement %", samples=samples)

"""The one versioned result schema every producer in the repo emits.

Before this module existed the repo had three divergent result shapes:
``RunResult.summary()`` flat dicts (CLI ``--json``), the fleet layer's
hand-rolled ``kind=shard/fleet`` JSONL records, and the bench harness's
cell dicts.  Consumers had to know which producer they were reading.

:class:`ResultRecord` unifies them: one frozen, typed record with an
explicit ``schema_version``, a ``kind`` tag naming the producer, the
full counter set, exact-percentile latency summaries and the run's
content digest.  Every machine-readable surface — ``repro run/matrix/
faults/fleet --json``, the fleet/obs JSONL exporters, the bench
harness's per-cell entries and every ``repro serve`` response — emits
this shape and nothing else; :func:`parse_record` round-trips it back
into the typed form (``parse_record(r.to_dict()) == r``, enforced by
the schema tests).

Versioning contract: ``SCHEMA`` names the surface (``repro.api/v1``);
a reader seeing an unknown version must refuse rather than guess
(:class:`SchemaError`).  Fields are only ever *added* within a version;
any removal or meaning change bumps it.

Layering: this package sits above the device layers (it imports
:mod:`repro.sim.metrics` types) and below the orchestration front-ends
that serialise records (CLI, fleet export, bench, serve).  The device
layers must never import it — enforced by the ``layer.*`` lint rules.
"""

from __future__ import annotations

import hashlib
from dataclasses import asdict, dataclass, field
from dataclasses import replace as dataclasses_replace
from typing import TYPE_CHECKING, Any, Dict, List, Mapping, Optional

from ..sim.metrics import LatencyStats, RunResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..fleet.aggregate import FleetResult
    from ..kv.scenario import KVRunResult

__all__ = [
    "SCHEMA",
    "SCHEMA_VERSION",
    "KINDS",
    "SchemaError",
    "LatencySummary",
    "ResultRecord",
    "record_from_run",
    "aggregate_record",
    "records_from_fleet",
    "record_from_kv_run",
    "records_from_kv_ablation",
    "lint_finding_record",
    "session_digest",
    "parse_record",
]

#: Schema surface name carried by every record.
SCHEMA = "repro.api/v1"
#: Integer version a reader validates before trusting field meanings.
SCHEMA_VERSION = 1

#: Every producer tag a v1 record may carry.  A record's ``kind`` names
#: who minted it (and therefore which ``meta`` keys to expect); parsers
#: reject unknown kinds the same way they reject unknown versions.
KINDS = (
    "run",          # one run_system() drive
    "bench.cell",   # one timed cell of the tracked benchmark matrix
    "fleet.shard",  # one shard of a fleet run
    "fleet",        # the fleet aggregate over its shards
    "serve.metrics",  # incremental mid-stream snapshot of a serve session
    "serve.session",  # final record of a completed serve session
    "kv.run",       # one keyed (KV-SSD) run over a zoo workload
    "kv.ablation",  # a KV run paired with its pool-off counterpart
    "lint.finding",  # one lint violation (repro lint --format=jsonl)
)


class SchemaError(ValueError):
    """A record that does not satisfy the versioned schema."""


@dataclass(frozen=True)
class LatencySummary:
    """Summary view of one exact latency distribution.

    Percentiles are computed from the full sample set with the
    nearest-rank method (:class:`~repro.sim.metrics.LatencyStats`), so
    the summary is exact, not an approximation — and therefore
    reproducible bit-for-bit across serialisation round trips.
    """

    count: int
    mean_us: float
    p50_us: float
    p99_us: float
    max_us: float

    @classmethod
    def from_stats(cls, stats: LatencyStats) -> "LatencySummary":
        if stats.count == 0:
            return cls(count=0, mean_us=0.0, p50_us=0.0, p99_us=0.0,
                       max_us=0.0)
        return cls(
            count=stats.count,
            mean_us=stats.mean,
            p50_us=stats.percentile(50),
            p99_us=stats.p99,
            max_us=stats.maximum,
        )

    def to_dict(self) -> Dict[str, float]:
        return asdict(self)

    @classmethod
    def from_dict(cls, obj: Mapping[str, Any]) -> "LatencySummary":
        try:
            return cls(
                count=int(obj["count"]),
                mean_us=float(obj["mean_us"]),
                p50_us=float(obj["p50_us"]),
                p99_us=float(obj["p99_us"]),
                max_us=float(obj["max_us"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise SchemaError(f"bad latency summary: {exc}") from None


@dataclass(frozen=True)
class ResultRecord:
    """One simulation outcome under the unified versioned schema.

    ``counters`` carries the complete
    :class:`~repro.ftl.ftl.FTLCounters` field set (summed across shards
    for aggregate kinds).  ``digest`` is the
    :func:`~repro.perf.spec.result_digest` content hash for single-run
    kinds, the fleet digest for ``fleet``, and ``None`` for mid-stream
    snapshots where the run is not finished.  ``meta`` holds the
    kind-specific extras (shard index, tenant name, write
    amplification, ...) — additive by design, so new producers extend
    the schema without a version bump.
    """

    kind: str
    system: str
    workload: str
    counters: Dict[str, int]
    reads: LatencySummary
    writes: LatencySummary
    requests: LatencySummary
    horizon_us: float
    digest: Optional[str] = None
    pool: Optional[Dict[str, float]] = None
    faults: Optional[Dict[str, float]] = None
    meta: Dict[str, Any] = field(default_factory=dict)
    schema_version: int = SCHEMA_VERSION

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise SchemaError(
                f"unknown record kind {self.kind!r}; v{SCHEMA_VERSION} "
                f"kinds are {', '.join(KINDS)}"
            )
        if self.schema_version != SCHEMA_VERSION:
            raise SchemaError(
                f"schema_version {self.schema_version} != supported "
                f"{SCHEMA_VERSION}"
            )

    # -- derived views -------------------------------------------------

    @property
    def write_amplification(self) -> float:
        """Flash programs (host + GC) per host write."""
        writes = self.counters.get("host_writes", 0)
        if not writes:
            return 0.0
        programs = (
            self.counters.get("programs", 0)
            + self.counters.get("gc_relocations", 0)
        )
        return programs / writes

    @property
    def revival_rate(self) -> float:
        """Fraction of host writes short-circuited by a revived page."""
        writes = self.counters.get("host_writes", 0)
        if not writes:
            return 0.0
        return self.counters.get("short_circuits", 0) / writes

    # -- serialisation -------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """The JSON-ready dict form (the wire/JSONL representation)."""
        return {
            "schema": SCHEMA,
            "schema_version": self.schema_version,
            "kind": self.kind,
            "system": self.system,
            "workload": self.workload,
            "counters": dict(self.counters),
            "latency": {
                "read": self.reads.to_dict(),
                "write": self.writes.to_dict(),
                "all": self.requests.to_dict(),
            },
            "horizon_us": self.horizon_us,
            "digest": self.digest,
            "pool": dict(self.pool) if self.pool is not None else None,
            "faults": dict(self.faults) if self.faults is not None else None,
            "meta": dict(self.meta),
        }


def parse_record(obj: Mapping[str, Any]) -> ResultRecord:
    """Validate and type a dict (e.g. a parsed JSONL line) as a record.

    Raises :class:`SchemaError` on a missing/unknown schema, an
    unsupported version, an unknown kind or any malformed field —
    readers must never guess at a shape they do not recognise.
    """
    if not isinstance(obj, Mapping):
        raise SchemaError(f"expected a mapping, got {type(obj).__name__}")
    schema = obj.get("schema")
    if schema != SCHEMA:
        raise SchemaError(f"unknown schema {schema!r}; expected {SCHEMA!r}")
    try:
        latency = obj["latency"]
        counters = obj["counters"]
        if not isinstance(counters, Mapping):
            raise SchemaError("counters must be a mapping")
        pool = obj.get("pool")
        faults = obj.get("faults")
        meta = obj.get("meta") or {}
        return ResultRecord(
            kind=obj["kind"],
            system=obj["system"],
            workload=obj["workload"],
            counters={str(k): int(v) for k, v in counters.items()},
            reads=LatencySummary.from_dict(latency["read"]),
            writes=LatencySummary.from_dict(latency["write"]),
            requests=LatencySummary.from_dict(latency["all"]),
            horizon_us=float(obj["horizon_us"]),
            digest=obj.get("digest"),
            pool=dict(pool) if pool is not None else None,
            faults=dict(faults) if faults is not None else None,
            meta=dict(meta),
            schema_version=int(obj.get("schema_version", -1)),
        )
    except SchemaError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise SchemaError(f"malformed record: {exc}") from None


def record_from_run(
    result: RunResult,
    kind: str = "run",
    digest: Optional[str] = None,
    with_digest: bool = True,
    meta: Optional[Dict[str, Any]] = None,
) -> ResultRecord:
    """The unified record of one :class:`~repro.sim.metrics.RunResult`.

    ``digest`` defaults to :func:`~repro.perf.spec.result_digest` of the
    result; pass ``with_digest=False`` for mid-stream snapshots where
    the run (and therefore its digest) is not final.
    """
    if digest is None and with_digest:
        from ..perf.spec import result_digest  # lazy: keeps repro.api light

        digest = result_digest(result)
    return ResultRecord(
        kind=kind,
        system=result.system,
        workload=result.workload,
        counters=asdict(result.counters),
        reads=LatencySummary.from_stats(result.reads),
        writes=LatencySummary.from_stats(result.writes),
        requests=LatencySummary.from_stats(result.all_requests),
        horizon_us=result.horizon_us,
        digest=digest,
        pool=dict(result.pool_stats) if result.pool_stats is not None else None,
        faults=(
            dict(result.fault_stats)
            if result.fault_stats is not None
            else None
        ),
        meta=dict(meta) if meta else {},
    )


def _summed_counters(results: List[RunResult]) -> Dict[str, int]:
    total: Dict[str, int] = {}
    for result in results:
        for name, value in asdict(result.counters).items():
            total[name] = total.get(name, 0) + value
    return total


def _merged_stats(parts: List[LatencyStats]) -> LatencyStats:
    out = LatencyStats()
    for part in parts:
        out = out.merged_with(part)
    return out


def aggregate_record(
    results: List[RunResult],
    kind: str,
    system: str,
    workload: str,
    digest: Optional[str] = None,
    meta: Optional[Dict[str, Any]] = None,
) -> ResultRecord:
    """One record aggregating many per-drive results (fleet rules).

    Latency summaries come from the *merged* exact sample sets in input
    order (never percentiles of percentiles), counters as sums, horizon
    as the max.  Used for the fleet aggregate and for multi-shard serve
    sessions, so the two aggregation surfaces cannot drift apart.
    """
    reads = _merged_stats([r.reads for r in results])
    writes = _merged_stats([r.writes for r in results])
    return ResultRecord(
        kind=kind,
        system=system,
        workload=workload,
        counters=_summed_counters(results),
        reads=LatencySummary.from_stats(reads),
        writes=LatencySummary.from_stats(writes),
        requests=LatencySummary.from_stats(reads.merged_with(writes)),
        horizon_us=max((r.horizon_us for r in results), default=0.0),
        digest=digest,
        meta=dict(meta) if meta else {},
    )


def lint_finding_record(
    path: str,
    line: int,
    col: int,
    code: str,
    message: str,
    context: str = "<module>",
) -> ResultRecord:
    """The unified record of one lint finding.

    ``repro lint --format=jsonl`` emits these so lint output speaks the
    same versioned schema as every other machine-readable surface.  A
    finding has no device run behind it: the latency summaries are
    empty, ``horizon_us`` is zero, ``workload`` carries the offending
    file, and the finding itself (code, message, location, enclosing
    qualname) rides in ``meta`` like every kind-specific extra.

    Takes plain fields rather than a ``Violation`` so this module never
    imports :mod:`repro.lint` (the linter sits above the API layer, not
    below it).
    """
    empty = LatencySummary(
        count=0, mean_us=0.0, p50_us=0.0, p99_us=0.0, max_us=0.0
    )
    return ResultRecord(
        kind="lint.finding",
        system="repro.lint",
        workload=path,
        counters={"line": int(line), "col": int(col)},
        reads=empty,
        writes=empty,
        requests=empty,
        horizon_us=0.0,
        meta={
            "path": path,
            "line": int(line),
            "col": int(col),
            "code": code,
            "message": message,
            "context": context,
        },
    )


def session_digest(shard_digests: List[str]) -> str:
    """Digest of an ordered digest list — the fleet/serve identity rule
    (matches :attr:`~repro.fleet.aggregate.FleetResult.fleet_digest`)."""
    payload = "\n".join(shard_digests).encode("ascii")
    return hashlib.sha256(payload).hexdigest()


def record_from_kv_run(
    kv: "KVRunResult", kind: str = "kv.run"
) -> ResultRecord:
    """The unified record of one keyed run.

    The page-level outcome fills the standard fields; the store's KV
    counters, the spec identity and the derived ratios ride in ``meta``
    (additive, like every kind-specific extra)."""
    spec = kv.spec
    return record_from_run(
        kv.result,
        kind=kind,
        digest=kv.digest,
        meta={
            "kv": dict(kv.kv_counters),
            "spec": {
                "workload": spec.workload,
                "system": spec.system,
                "paper_pool_entries": spec.paper_pool_entries,
                "scale": spec.scale,
                "seed": spec.seed,
            },
            "write_amplification": kv.write_amplification,
            "revival_rate": kv.revival_rate,
        },
    )


def records_from_kv_ablation(
    on: "KVRunResult", off: "KVRunResult"
) -> List[ResultRecord]:
    """Both legs of a KV pool ablation plus the comparison record.

    The comparison record (kind ``kv.ablation``) carries the pool-on
    run's counters — the subject; the off leg is the control — with the
    paired deltas in ``meta`` and the ordered two-leg
    :func:`session_digest` as its identity."""
    records = [
        record_from_kv_run(on),
        record_from_kv_run(off),
    ]
    comparison = record_from_kv_run(on, kind="kv.ablation")
    meta = dict(comparison.meta)
    meta.update({
        "off_system": off.spec.system,
        "write_amplification_off": off.write_amplification,
        "revival_rate_off": off.revival_rate,
        "write_amplification_delta": (
            on.write_amplification - off.write_amplification
        ),
        "flash_writes_saved": (
            off.result.counters.programs + off.result.counters.gc_relocations
            - on.result.counters.programs - on.result.counters.gc_relocations
        ),
        "digest_on": on.digest,
        "digest_off": off.digest,
    })
    records.append(dataclasses_replace(
        comparison,
        digest=session_digest([on.digest, off.digest]),
        meta=meta,
    ))
    return records


def records_from_fleet(fleet: "FleetResult") -> List[ResultRecord]:
    """Per-shard records plus the fleet aggregate, in shard order.

    The aggregate record follows the fleet layer's aggregation rules:
    latency summaries over the *merged* exact sample sets (never
    percentiles of percentiles), counters as sums, ratios of totals in
    ``meta`` — and the fleet digest (hash of the ordered shard digests)
    as its identity.
    """
    shards = list(fleet.shard_results)
    records = [
        record_from_run(
            result,
            kind="fleet.shard",
            digest=fleet.shard_digests[index],
            meta={"shard": index, "shards": len(shards)},
        )
        for index, result in enumerate(shards)
    ]
    records.append(aggregate_record(
        shards,
        kind="fleet",
        system=fleet.spec.system,
        workload=fleet.spec.workload,
        digest=fleet.fleet_digest,
        meta={
            "shards": fleet.spec.shards,
            "pool_mode": fleet.spec.pool_mode,
            "jobs": fleet.jobs,
            "write_amplification": fleet.write_amplification,
            "revival_rate": fleet.revival_rate,
            "imbalance_cv": fleet.imbalance_cv,
            "imbalance_max_over_mean": fleet.imbalance_max_over_mean,
            "shard_digests": list(fleet.shard_digests),
        },
    ))
    return records

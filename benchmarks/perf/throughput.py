"""Serial FTL throughput at enlarged device geometries.

The tracked matrix benchmark (``harness.py``) times full trace replays at
the canonical bench scale; this harness isolates the *core engine* instead:
it drives ``BaseFTL.write``/``read`` directly — no trace files, no event
pricing — against a drive ``--geometry-multiple`` times larger than the
canonical bench footprint, so the cost of the mapping table, block state
and fingerprint machinery dominates.  This is the measurement behind the
columnar-state acceptance criterion (ISSUE 6): the array-backed core must
sustain large geometries that the dict-of-sets layout could not.

The workload is deterministic (seeded PRNG): a full sequential prefill of
every exported logical page, then a uniform-random overwrite phase and a
read phase.  Reported numbers are operations per second per phase plus the
resident memory footprint of the core structures.

Usage::

    PYTHONPATH=src python benchmarks/perf/throughput.py [--geometry-multiple 10]
        [--system baseline] [--overwrites 100000] [--json]
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time

from repro.flash.config import scaled_config
from repro.ftl.dvp_ftl import build_system
from repro.core.hashing import fingerprint_of_value

#: Logical footprint of the canonical bench scale (mail @ 0.05) — the
#: reference point "geometry multiple 1" corresponds to.
BASE_LOGICAL_PAGES = 20_000


def _structure_bytes(ftl) -> int:
    """Rough resident size of the core mapping/flash state, in bytes."""
    seen = set()

    def size(obj) -> int:
        if id(obj) in seen:
            return 0
        seen.add(id(obj))
        total = sys.getsizeof(obj)
        if isinstance(obj, dict):
            for k, v in obj.items():
                total += size(k) + size(v)
        elif isinstance(obj, (list, tuple, set, frozenset)):
            for item in obj:
                total += size(item)
        return total

    mapping = ftl.mapping
    total = sum(
        size(getattr(mapping, name))
        for name in dir(mapping)
        if not callable(getattr(mapping, name)) and not name.startswith("__")
    )
    for block in ftl.array.blocks:
        total += sys.getsizeof(block.states)
    return total


def run_throughput(
    geometry_multiple: int = 10,
    system: str = "baseline",
    overwrites: int = 100_000,
    reads: int = 100_000,
    seed: int = 7,
):
    logical_pages = BASE_LOGICAL_PAGES * geometry_multiple
    config = scaled_config(logical_pages)
    ftl = build_system(system, config, pool_entries=200_000)
    rng = random.Random(seed)
    fp = fingerprint_of_value

    start = time.perf_counter()
    for lpn in range(logical_pages):
        ftl.write(lpn, fp(lpn))
    prefill_seconds = time.perf_counter() - start

    value_clock = logical_pages
    start = time.perf_counter()
    for _ in range(overwrites):
        lpn = rng.randrange(logical_pages)
        # 50% rewrite-of-recent-content (dedup/revival food), 50% new data.
        if rng.random() < 0.5:
            value = rng.randrange(value_clock)
        else:
            value = value_clock
            value_clock += 1
        ftl.write(lpn, fp(value))
    overwrite_seconds = time.perf_counter() - start

    start = time.perf_counter()
    for _ in range(reads):
        ftl.read(rng.randrange(logical_pages))
    read_seconds = time.perf_counter() - start

    return {
        "schema": "repro.perf.throughput/v1",
        "system": system,
        "geometry_multiple": geometry_multiple,
        "logical_pages": logical_pages,
        "total_pages": config.total_pages,
        "prefill_pages_per_s": round(logical_pages / prefill_seconds, 1),
        "overwrite_ops_per_s": round(overwrites / overwrite_seconds, 1),
        "read_ops_per_s": round(reads / read_seconds, 1),
        "core_state_bytes": _structure_bytes(ftl),
        "gc_erases": ftl.counters.gc_erases,
        "programs": ftl.counters.programs,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--geometry-multiple", type=int, default=10)
    parser.add_argument("--system", default="baseline")
    parser.add_argument("--overwrites", type=int, default=100_000)
    parser.add_argument("--reads", type=int, default=100_000)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--json", action="store_true", help="JSON output")
    args = parser.parse_args(argv)
    report = run_throughput(
        geometry_multiple=args.geometry_multiple,
        system=args.system,
        overwrites=args.overwrites,
        reads=args.reads,
        seed=args.seed,
    )
    if args.json:
        json.dump(report, sys.stdout, indent=2, sort_keys=True)
        sys.stdout.write("\n")
    else:
        for key, value in report.items():
            print(f"{key}: {value}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Unit tests for the per-figure entry points (at very small scale)."""

import pytest

from repro.experiments.config import RunConfig
from repro.experiments.figures import (
    ALL_WORKLOADS,
    EvaluationMatrix,
    fig01_reuse_opportunity,
    fig02_invalidation_cdf,
    fig05_lru_sweep,
    fig09_write_reduction,
    fig11_mean_latency,
    fig14_dedup_writes,
    table1_configuration,
    table2_workloads,
)

SCALE = 0.04


class TestSectionTwoFigures:
    def test_fig01_day_labels_and_ranges(self):
        results = fig01_reuse_opportunity(SCALE, workloads=("mail",), days=(1, 2))
        assert [r.workload for r in results] == ["m1", "m2"]
        for r in results:
            assert 0.0 <= r.with_dedup <= r.without_dedup <= 1.0

    def test_fig02_returns_cdf(self):
        result = fig02_invalidation_cdf(SCALE)
        assert result.cdf
        assert 0.0 <= result.live_value_frac <= 1.0

    def test_fig05_includes_infinite_reference(self):
        results = fig05_lru_sweep(SCALE, workloads=("mail",), days=(1,))
        (name, sweep), = results.items()
        assert name == "m1"
        assert "infinite" in sweep
        bounded = [v for k, v in sweep.items() if k != "infinite"]
        assert all(
            b.serviced_writes >= sweep["infinite"].serviced_writes
            for b in bounded
        )


class TestTables:
    def test_table1_is_paper_drive(self):
        config = table1_configuration()
        assert config.channels == 8
        assert config.timing.erase_us == 3800.0

    def test_table2_covers_all_workloads(self):
        results = table2_workloads(SCALE)
        assert set(results) == set(ALL_WORKLOADS)
        for audit, targets in results.values():
            assert audit.requests > 0
            assert 0.0 <= targets.write_ratio <= 1.0


class TestEvaluationMatrix:
    @pytest.fixture(scope="class")
    def matrix(self):
        return EvaluationMatrix(RunConfig(scale=SCALE))

    def test_runs_are_cached(self, matrix):
        first = matrix.run("desktop", "baseline")
        second = matrix.run("desktop", "baseline")
        assert first is second

    def test_context_shared_across_systems(self, matrix):
        c1 = matrix.context("desktop")
        matrix.run("desktop", "baseline")
        assert matrix.context("desktop") is c1

    def test_improvement_vs_baseline(self, matrix):
        value = matrix.improvement("desktop", "ideal", "flash_writes")
        assert value >= 0.0

    def test_fig09_rows_have_all_pool_sizes(self, matrix):
        out = fig09_write_reduction(matrix, workloads=("desktop",))
        assert set(out["desktop"]) == {"100K", "200K", "300K", "ideal"}

    def test_fig11_has_both_systems(self, matrix):
        out = fig11_mean_latency(matrix, workloads=("desktop",))
        assert set(out["desktop"]) == {"dvp", "lxssd"}

    def test_fig14_normalised_to_baseline(self, matrix):
        out = fig14_dedup_writes(matrix, workloads=("desktop",))
        for value in out["desktop"].values():
            assert 0.0 < value <= 1.01

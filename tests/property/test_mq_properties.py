"""Property-based tests for the Multi-Queue algorithm."""

from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.core.mq import MultiQueue, queue_index_for_popularity


@given(
    popularity=st.integers(min_value=0, max_value=10**6),
    num_queues=st.integers(min_value=1, max_value=16),
)
def test_queue_index_always_in_range(popularity, num_queues):
    index = queue_index_for_popularity(popularity, num_queues)
    assert 0 <= index < num_queues


@given(
    pops=st.lists(st.integers(min_value=0, max_value=300), min_size=2),
)
def test_queue_index_monotone_in_popularity(pops):
    """More popular never means a lower target queue."""
    ordered = sorted(pops)
    indexes = [queue_index_for_popularity(p, 8) for p in ordered]
    assert indexes == sorted(indexes)


class MQMachine(RuleBasedStateMachine):
    """Random insert/access/remove/evict/resize sequences keep MQ consistent."""

    def __init__(self):
        super().__init__()
        self.mq = MultiQueue(capacity=8, num_queues=4)
        self.now = 0
        self.resident = set()

    keys = st.integers(min_value=0, max_value=20)

    @rule(key=keys)
    def insert_or_access(self, key):
        self.now += 1
        if key in self.mq:
            self.mq.access(key, self.now)
        else:
            evicted = self.mq.insert(key, f"payload-{key}", self.now)
            if evicted is not None:
                self.resident.discard(evicted[0])
            self.resident.add(key)

    @rule(key=keys)
    def remove(self, key):
        payload = self.mq.remove(key)
        if payload is not None:
            self.resident.discard(key)

    @rule()
    def evict(self):
        evicted = self.mq.evict_one()
        if evicted is not None:
            self.resident.discard(evicted[0])

    @rule(key=keys, popularity=st.integers(min_value=0, max_value=255))
    def restore_popularity(self, key, popularity):
        self.now += 1
        if key in self.mq:
            self.mq.set_popularity(key, popularity, self.now)

    @rule(capacity=st.integers(min_value=1, max_value=16))
    def resize(self, capacity):
        for key, _payload in self.mq.set_capacity(capacity):
            self.resident.discard(key)

    @invariant()
    def capacity_respected(self):
        assert len(self.mq) <= self.mq.capacity

    @invariant()
    def internal_consistency(self):
        self.mq.check_invariants()

    @invariant()
    def shadow_set_matches(self):
        assert self.resident == {
            k for q in range(4) for k in self.mq.keys_in_queue(q)
        }


TestMQMachine = MQMachine.TestCase
TestMQMachine.settings = settings(max_examples=40, stateful_step_count=60)

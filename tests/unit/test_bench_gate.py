"""Unit tests for the bench regression gate (benchmarks/perf/harness.py).

The gate compares a fresh BENCH_matrix.json report against the tracked
one and must fail on digest drift, per-cell slowdowns beyond tolerance,
and sub-1× speedups that are not explicitly marked ``serial_fallback``
— the "never a silent loss" contract of ISSUE 6.
"""

import copy

from benchmarks.perf.harness import gate, gate_fleet

SCHEMA = "repro.perf.bench_matrix/v1"


def _report(**overrides):
    base = {
        "schema": SCHEMA,
        "scale": 0.05,
        "identical_results": True,
        "serial_fallback": False,
        "speedup": 2.4,
        "calibration_seconds": 0.05,
        "cells": [
            {
                "workload": "mail",
                "system": "baseline",
                "serial_seconds": 1.0,
                "digest": "a" * 64,
            },
            {
                "workload": "web",
                "system": "mq-dvp",
                "serial_seconds": 0.5,
                "digest": "b" * 64,
            },
        ],
    }
    base.update(overrides)
    return base


class TestBenchGate:
    def test_clean_report_passes(self):
        assert gate(_report(), _report(), 0.15) == []

    def test_faster_cells_pass(self):
        fresh = _report()
        for cell in fresh["cells"]:
            cell["serial_seconds"] *= 0.5
        assert gate(fresh, _report(), 0.15) == []

    def test_slowdown_beyond_tolerance_fails(self):
        fresh = _report()
        fresh["cells"][0]["serial_seconds"] = 1.2  # +20% > 15%
        failures = gate(fresh, _report(), 0.15)
        assert len(failures) == 1
        assert "mail/baseline" in failures[0]

    def test_slowdown_within_tolerance_passes(self):
        fresh = _report()
        fresh["cells"][0]["serial_seconds"] = 1.1  # +10% < 15%
        assert gate(fresh, _report(), 0.15) == []

    def test_slow_machine_is_normalized_away(self):
        """A container running 1.5x slower than at mint time must not
        read as a simulator regression: the calibration loop slows by
        the same factor and cancels out."""
        fresh = _report(calibration_seconds=0.075)  # machine 1.5x slower
        for cell in fresh["cells"]:
            cell["serial_seconds"] *= 1.5
        assert gate(fresh, _report(), 0.15) == []

    def test_real_regression_survives_normalization(self):
        fresh = _report(calibration_seconds=0.075)
        for cell in fresh["cells"]:
            cell["serial_seconds"] *= 1.5 * 1.3  # machine x real slowdown
        failures = gate(fresh, _report(), 0.15)
        assert len(failures) == 2
        assert all("machine-normalized" in f for f in failures)

    def test_fast_machine_does_not_mask_regression(self):
        fresh = _report(calibration_seconds=0.025)  # machine 2x faster
        # Cells "only" as slow as before = 2x slower in simulator work.
        failures = gate(fresh, _report(), 0.15)
        assert len(failures) == 2

    def test_missing_calibration_falls_back_to_raw_seconds(self):
        tracked = _report()
        del tracked["calibration_seconds"]
        fresh = _report(calibration_seconds=0.075)
        fresh["cells"][0]["serial_seconds"] = 1.2
        failures = gate(fresh, tracked, 0.15)
        assert len(failures) == 1

    def test_digest_drift_fails(self):
        fresh = _report()
        fresh["cells"][1]["digest"] = "c" * 64
        failures = gate(fresh, _report(), 0.15)
        assert any("digest" in f for f in failures)

    def test_sub_unity_speedup_without_marker_fails(self):
        fresh = _report(speedup=0.73)
        failures = gate(fresh, _report(), 0.15)
        assert any("serial_fallback" in f for f in failures)

    def test_serial_fallback_marker_excuses_missing_speedup(self):
        fresh = _report(serial_fallback=True, speedup=None)
        assert gate(fresh, _report(), 0.15) == []

    def test_nonidentical_results_fail(self):
        fresh = _report(identical_results=False)
        failures = gate(fresh, _report(), 0.15)
        assert any("different digests" in f for f in failures)

    def test_scale_mismatch_blocks_timing_comparison(self):
        tracked = _report(scale=0.01)
        # Make a cell "slower" too: it must NOT double-report, because
        # cross-scale timings are not comparable.
        fresh = _report()
        fresh["cells"][0]["serial_seconds"] = 99.0
        failures = gate(fresh, tracked, 0.15)
        assert len(failures) == 1
        assert "scale" in failures[0]

    def test_new_cell_has_nothing_to_regress_against(self):
        fresh = _report()
        fresh["cells"].append(
            {
                "workload": "desktop",
                "system": "dedup",
                "serial_seconds": 5.0,
                "digest": "d" * 64,
            }
        )
        assert gate(fresh, _report(), 0.15) == []

    def test_schema_mismatch_fails_fast(self):
        tracked = copy.deepcopy(_report())
        tracked["schema"] = "repro.perf.bench_matrix/v0"
        failures = gate(_report(), tracked, 0.15)
        assert len(failures) == 1
        assert "schema" in failures[0]


def _fleet_section(**overrides):
    base = {
        "workload": "mail",
        "system": "mq-dvp",
        "shards": 4,
        "scale": 0.2,
        "jobs": 4,
        "serial_fallback": False,
        "speedup": 2.7,
        "identical_results": True,
        "shard_digests": ["e" * 64] * 4,
        "fleet_digest": "f" * 64,
    }
    base.update(overrides)
    return base


class TestFleetGate:
    def test_clean_fleet_passes(self):
        assert gate_fleet(_fleet_section(), _fleet_section()) == []

    def test_nonidentical_shard_digests_fail(self):
        failures = gate_fleet(
            _fleet_section(identical_results=False), _fleet_section()
        )
        assert any("shard digests" in f for f in failures)

    def test_sub_unity_speedup_without_marker_fails(self):
        failures = gate_fleet(
            _fleet_section(speedup=0.8), _fleet_section()
        )
        assert any("serial_fallback" in f for f in failures)

    def test_serial_fallback_excuses_missing_speedup(self):
        fresh = _fleet_section(serial_fallback=True, speedup=None)
        assert gate_fleet(fresh, _fleet_section()) == []

    def test_fleet_digest_drift_fails(self):
        fresh = _fleet_section(fleet_digest="0" * 64)
        failures = gate_fleet(fresh, _fleet_section())
        assert any("drifted" in f for f in failures)

    def test_different_fleet_shape_skips_digest_comparison(self):
        fresh = _fleet_section(shards=8, fleet_digest="0" * 64)
        assert gate_fleet(fresh, _fleet_section()) == []

    def test_new_fleet_section_has_no_tracked_digest(self):
        assert gate_fleet(_fleet_section(), None) == []

    def test_speedup_floor_applies_only_with_enough_cores(self, monkeypatch):
        import benchmarks.perf.harness as harness_mod

        fresh = _fleet_section(speedup=1.4)  # real but weak speedup
        monkeypatch.setattr(harness_mod.os, "cpu_count", lambda: 2)
        assert gate_fleet(fresh, _fleet_section()) == []
        monkeypatch.setattr(harness_mod.os, "cpu_count", lambda: 8)
        failures = gate_fleet(fresh, _fleet_section())
        assert any("< 2.0" in f for f in failures)

    def test_gate_includes_fleet_section(self):
        fresh = _report(fleet=_fleet_section(identical_results=False))
        tracked = _report(fleet=_fleet_section())
        failures = gate(fresh, tracked, 0.15)
        assert any("fleet" in f for f in failures)

    def test_gate_tolerates_tracked_report_without_fleet(self):
        fresh = _report(fleet=_fleet_section())
        assert gate(fresh, _report(), 0.15) == []

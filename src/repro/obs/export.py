"""JSONL sinks and loaders for observability samples.

One JSON object per line; the schema of sampler output is documented in
DESIGN.md ("Observability").  The writer is callable so it can be handed
directly to :class:`~repro.obs.sampler.TimeSeriesSampler` as its sink.
"""

from __future__ import annotations

import json
from typing import Any, Dict, IO, Iterator, List, Optional, Union

__all__ = ["JsonlWriter", "read_jsonl"]


class JsonlWriter:
    """Append-only JSON-lines writer.

    Accepts either a path (opened and owned) or an open text stream
    (borrowed; :meth:`close` leaves it open).  Usable as a context
    manager and as a callable sink.
    """

    def __init__(self, target: Union[str, IO[str]]):
        if isinstance(target, str):
            self._fh: IO[str] = open(target, "w", encoding="utf-8")
            self._owns = True
        else:
            self._fh = target
            self._owns = False
        self.records_written = 0

    def write(self, obj: Dict[str, Any]) -> None:
        self._fh.write(json.dumps(obj, separators=(",", ":"), sort_keys=True))
        self._fh.write("\n")
        self.records_written += 1

    __call__ = write

    def flush(self) -> None:
        self._fh.flush()

    def close(self) -> None:
        self.flush()
        if self._owns:
            self._fh.close()

    def __enter__(self) -> "JsonlWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_jsonl(path: str, limit: Optional[int] = None) -> List[Dict[str, Any]]:
    """Load a JSONL file written by :class:`JsonlWriter`."""
    out: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in _lines(fh):
            out.append(json.loads(line))
            if limit is not None and len(out) >= limit:
                break
    return out


def _lines(fh: IO[str]) -> Iterator[str]:
    for line in fh:
        line = line.strip()
        if line:
            yield line

"""Interprocedural determinism-taint pass (``flow.taint-digest``).

Classic summary-based taint propagation over the call graph:

* **sources** are the nondeterminism reads recorded in the per-file
  facts — wall clock, global ``random`` draws, ``os.environ``,
  ``id()``/``hash()``, unordered set iteration;
* **sinks** are the digest/fingerprint/record surfaces that must stay
  bit-exact: ``result_digest``, ``kv_result_digest``, fleet/session
  digests, the ``Fingerprint`` constructors, and the ``repro.api``
  record builders.

Each function gets a summary: which sources reach its return/yield
values (with the call path from the source), which parameters flow to
its return, and which parameters flow into a sink it (transitively)
calls.  The pass iterates over all functions until the summaries reach
a fixed point — taint crossing any number of call hops converges — and
every concrete source→sink meeting produces a :class:`TaintFinding`
carrying the full call chain, anchored at the *source* (that is the
line someone has to fix).

Two deliberate asymmetries versus the per-file ``det.*`` rules:

* no module allowlist on sources — a ``time.perf_counter()`` is fine
  in ``repro.perf`` until its value flows into a digest, and catching
  exactly that flow is this pass's reason to exist;
* unresolved calls are pass-through — if a tainted value enters an
  opaque call, its result is tainted.  Over-approximate, never silent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from .facts import CallFact, FunctionFacts, SourceFact
from .graph import CallGraph

__all__ = ["SINK_NAMES", "TaintFinding", "analyze_taint"]


#: Callable tail names whose arguments must be deterministic.  Matched
#: on the final path component so re-exports and method calls both hit.
SINK_NAMES = frozenset({
    "result_digest", "kv_result_digest", "fleet_digest",
    "session_digest", "fingerprint_of_value", "fingerprint_of_bytes",
    "Fingerprint", "record_from_run", "aggregate_record",
    "write_golden", "save_golden",
})

#: Fixpoint round cap: summaries are monotone so convergence is
#: guaranteed, but a cap turns any future non-monotone bug into a
#: truncated (still sound-ish) answer instead of a hang.
_MAX_ROUNDS = 30

#: Per-summary size caps — findings need one good chain per source, not
#: every chain, and bounding the dicts keeps the fixpoint cheap.
_MAX_RET_SOURCES = 6
_MAX_PARAM_SINKS = 6

# A taint key is ("p", index) for a symbolic parameter, or
# ("s", source_fn_fq, source_index) for a concrete source.  Concrete
# keys map to the call path (fq names) from the source's function to
# wherever the value currently is; parameter keys map to None.
_TaintMap = Dict[Tuple, Optional[Tuple[str, ...]]]


@dataclass
class _Summary:
    """What a function exposes to its callers."""

    #: concrete sources reaching the return value → path from source fn
    ret: Dict[Tuple, Tuple[str, ...]] = field(default_factory=dict)
    #: parameter indices flowing into the return value
    ret_params: Set[int] = field(default_factory=set)
    #: param index → sink records (sink name, sink line, fn path from
    #: this function to the function containing the sink call)
    param_sinks: Dict[int, Dict[Tuple, Tuple[str, int, Tuple[str, ...]]]] = (
        field(default_factory=dict)
    )

    def size(self) -> int:
        return (
            len(self.ret) + len(self.ret_params)
            + sum(len(v) for v in self.param_sinks.values())
        )


@dataclass(frozen=True)
class TaintFinding:
    """One concrete source reaching one sink."""

    source_fn: str               # fq of the function reading the source
    source: SourceFact
    sink_name: str
    sink_fn: str                 # fq of the function calling the sink
    sink_line: int
    chain: Tuple[str, ...]       # fq call path, source fn … sink fn


def _call_tail(call: CallFact) -> str:
    if call.attr:
        return call.attr
    return call.name.rsplit(".", 1)[-1]


class _TaintPass:
    def __init__(self, graph: CallGraph) -> None:
        self.graph = graph
        self.table = graph.table
        self.summaries: Dict[str, _Summary] = {
            fq: _Summary() for fq in self.table.functions
        }
        self.findings: Dict[Tuple, TaintFinding] = {}

    # -- fixpoint ------------------------------------------------------

    def run(self) -> List[TaintFinding]:
        order = sorted(self.table.functions)
        for _round in range(_MAX_ROUNDS):
            before = sum(s.size() for s in self.summaries.values())
            found_before = len(self.findings)
            for fq in order:
                self._update(fq)
            after = sum(s.size() for s in self.summaries.values())
            if after == before and len(self.findings) == found_before:
                break
        return sorted(
            self.findings.values(),
            key=lambda f: (f.source_fn, f.source.line, f.sink_name,
                           f.sink_fn),
        )

    # -- one function --------------------------------------------------

    def _update(self, fq: str) -> None:
        fn = self.table.functions[fq]
        summary = self.summaries[fq]
        memo: Dict[str, _TaintMap] = {}

        # return/yield taint
        ret_taint = self._eval_tokens(fq, fn, fn.ret, memo, set())
        for key, path in ret_taint.items():
            if key[0] == "p":
                summary.ret_params.add(key[1])
            elif len(summary.ret) < _MAX_RET_SOURCES:
                summary.ret.setdefault(key, path or (fq,))

        # sink call sites and callee param-sink propagation
        resolved = self.graph.resolved.get(fq, ())
        for k, call in enumerate(fn.calls):
            targets = resolved[k] if k < len(resolved) else ()
            arg_maps = [
                self._eval_tokens(fq, fn, origins, memo, set())
                for origins in call.args
            ]
            kw_map = self._eval_tokens(fq, fn, call.kwargs, memo, set())

            tail = _call_tail(call)
            if tail in SINK_NAMES:
                for taint_map in arg_maps + [kw_map]:
                    self._record_sink_hit(
                        fq, summary, tail, call.line, (fq,), taint_map
                    )

            for callee_fq in targets:
                callee_summary = self.summaries.get(callee_fq)
                callee = self.table.functions.get(callee_fq)
                if callee_summary is None or callee is None:
                    continue
                offset = 1 if callee.cls is not None else 0
                for pi, records in sorted(callee_summary.param_sinks.items()):
                    ai = pi - offset
                    maps: List[_TaintMap] = []
                    if 0 <= ai < len(arg_maps):
                        maps.append(arg_maps[ai])
                    if kw_map:
                        maps.append(kw_map)
                    for sink_name, sink_line, sink_path in records.values():
                        for taint_map in maps:
                            self._record_sink_hit(
                                fq, summary, sink_name, sink_line,
                                (fq,) + sink_path, taint_map,
                            )

    def _record_sink_hit(
        self,
        fq: str,
        summary: _Summary,
        sink_name: str,
        sink_line: int,
        sink_path: Tuple[str, ...],
        taint_map: _TaintMap,
    ) -> None:
        for key, path in taint_map.items():
            if key[0] == "p":
                bucket = summary.param_sinks.setdefault(key[1], {})
                rec_key = (sink_name, sink_path)
                if rec_key not in bucket and len(bucket) < _MAX_PARAM_SINKS:
                    bucket[rec_key] = (sink_name, sink_line, sink_path)
            else:
                _s, source_fn, source_index = key
                source = self.table.functions[source_fn].sources[source_index]
                chain = _join_paths(path or (source_fn,), sink_path)
                find_key = (source_fn, source_index, sink_name, sink_path[-1])
                if find_key not in self.findings:
                    self.findings[find_key] = TaintFinding(
                        source_fn=source_fn,
                        source=source,
                        sink_name=sink_name,
                        sink_fn=sink_path[-1],
                        sink_line=sink_line,
                        chain=chain,
                    )

    # -- token evaluation ----------------------------------------------

    def _eval_tokens(
        self,
        fq: str,
        fn: FunctionFacts,
        tokens: Tuple[str, ...],
        memo: Dict[str, _TaintMap],
        active: Set[str],
    ) -> _TaintMap:
        out: _TaintMap = {}
        for token in tokens:
            for key, path in self._eval_token(
                fq, fn, token, memo, active
            ).items():
                out.setdefault(key, path)
        return out

    def _eval_token(
        self,
        fq: str,
        fn: FunctionFacts,
        token: str,
        memo: Dict[str, _TaintMap],
        active: Set[str],
    ) -> _TaintMap:
        cached = memo.get(token)
        if cached is not None:
            return cached
        if token in active:
            return {}  # loop-carried dependence: already accounted for
        kind, _, index_str = token.partition(":")
        index = int(index_str)
        result: _TaintMap = {}
        if kind == "p":
            result = {("p", index): None}
        elif kind == "s":
            result = {("s", fq, index): (fq,)}
        elif kind == "c":
            active.add(token)
            result = self._eval_call(fq, fn, index, memo, active)
            active.discard(token)
        memo[token] = result
        return result

    def _eval_call(
        self,
        fq: str,
        fn: FunctionFacts,
        index: int,
        memo: Dict[str, _TaintMap],
        active: Set[str],
    ) -> _TaintMap:
        call = fn.calls[index]
        resolved = self.graph.resolved.get(fq, ())
        targets = resolved[index] if index < len(resolved) else ()
        arg_maps = [
            self._eval_tokens(fq, fn, origins, memo, active)
            for origins in call.args
        ]
        kw_map = self._eval_tokens(fq, fn, call.kwargs, memo, active)

        if not targets:
            # Opaque call: tainted in → tainted out.
            out: _TaintMap = {}
            for taint_map in arg_maps + [kw_map]:
                for key, path in taint_map.items():
                    out.setdefault(key, path)
            return out

        out = {}
        for callee_fq in targets:
            callee_summary = self.summaries.get(callee_fq)
            callee = self.table.functions.get(callee_fq)
            if callee_summary is None or callee is None:
                continue
            offset = 1 if callee.cls is not None else 0
            for key, path in callee_summary.ret.items():
                out.setdefault(key, path + (fq,))
            if callee_summary.ret_params:
                for pi in sorted(callee_summary.ret_params):
                    ai = pi - offset
                    if 0 <= ai < len(arg_maps):
                        for key, path in arg_maps[ai].items():
                            out.setdefault(key, path)
                if kw_map:
                    for key, path in kw_map.items():
                        out.setdefault(key, path)
        return out


def _join_paths(
    source_path: Tuple[str, ...], sink_path: Tuple[str, ...]
) -> Tuple[str, ...]:
    """Concatenate source-side and sink-side paths without repeating the
    meeting function."""
    if source_path and sink_path and source_path[-1] == sink_path[0]:
        return source_path + sink_path[1:]
    return source_path + sink_path


def analyze_taint(graph: CallGraph) -> List[TaintFinding]:
    """All concrete source→sink flows in the program, stable order."""
    return _TaintPass(graph).run()

"""Report rendering: human text, machine JSONL, GitHub annotations.

``text``
    The default terminal report: one ``path:line:col code message`` row
    per finding, a per-code tally, and the suppression/baseline counts.
``jsonl``
    One ``repro.api/v1`` :class:`~repro.api.schema.ResultRecord` of kind
    ``lint.finding`` per violation (so lint output round-trips through
    :func:`repro.api.parse_record` like every other machine-readable
    surface in the repo), then one trailing ``{"summary": ...}`` object —
    greppable, and stable enough to diff across runs.
``github``
    GitHub Actions workflow commands (``::error file=...``), so a CI
    failure annotates the exact line in the pull-request diff.
"""

from __future__ import annotations

import json
from collections import Counter
from typing import List

from .engine import LintResult

__all__ = ["render_github", "render_jsonl", "render_text"]


def _summary_dict(result: LintResult) -> dict:
    return {
        "summary": {
            "violations": len(result.violations),
            "suppressed": result.suppressed,
            "baselined": result.baselined,
            "stale_baseline": result.stale_baseline,
            "files_checked": result.files_checked,
        }
    }


def render_text(result: LintResult) -> str:
    lines: List[str] = []
    for violation in result.violations:
        lines.append(
            f"{violation.location()}: {violation.code} {violation.message}"
        )
    if result.violations:
        lines.append("")
        tally = Counter(v.code for v in result.violations)
        for code, count in sorted(tally.items()):
            lines.append(f"{count:5d}  {code}")
        lines.append("")
    verdict = (
        "clean" if result.clean
        else f"{len(result.violations)} violation"
             f"{'s' if len(result.violations) != 1 else ''}"
    )
    lines.append(
        f"repro lint: {verdict} "
        f"({result.files_checked} files, {result.suppressed} suppressed "
        f"inline, {result.baselined} baselined)"
    )
    for key in result.stale_baseline:
        lines.append(
            f"repro lint: stale baseline entry (no longer matches): {key}"
        )
    return "\n".join(lines)


def render_jsonl(result: LintResult) -> str:
    # Imported lazily: repro.api sits in a different layer, and text /
    # github rendering must not pull it in.
    from ..api import lint_finding_record

    lines = [
        json.dumps(
            lint_finding_record(
                path=v.path,
                line=v.line,
                col=v.col,
                code=v.code,
                message=v.message,
                context=v.context,
            ).to_dict(),
            sort_keys=True,
        )
        for v in result.violations
    ]
    lines.append(json.dumps(_summary_dict(result), sort_keys=True))
    return "\n".join(lines)


def _escape_annotation(message: str) -> str:
    """GitHub workflow-command data escaping (%, CR, LF)."""
    return (
        message.replace("%", "%25")
        .replace("\r", "%0D")
        .replace("\n", "%0A")
    )


def render_github(result: LintResult) -> str:
    """``::error`` annotations, one per finding, plus a notice summary."""
    lines = [
        "::error file={path},line={line},col={col},title={code}::{msg}".format(
            path=violation.path,
            line=violation.line,
            col=violation.col,
            code=violation.code,
            msg=_escape_annotation(
                f"{violation.message} [{violation.code}]"
            ),
        )
        for violation in result.violations
    ]
    summary = (
        f"repro lint: {len(result.violations)} violations in "
        f"{result.files_checked} files"
        if result.violations
        else f"repro lint: clean ({result.files_checked} files)"
    )
    lines.append(f"::notice title=repro lint::{_escape_annotation(summary)}")
    return "\n".join(lines)

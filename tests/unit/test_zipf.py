"""Unit tests for Zipf sampling."""

import random
from collections import Counter

import pytest

from repro.traces.zipf import (
    ZipfSampler,
    top_fraction_share,
    zipf_rank,
    zipf_rank_legacy,
)


class TestZipfRank:
    def test_bounds(self):
        rng = random.Random(1)
        for n in (1, 2, 10, 1000):
            for _ in range(200):
                assert 1 <= zipf_rank(rng, n, 1.1) <= n

    def test_n_one_always_one(self):
        rng = random.Random(1)
        assert all(zipf_rank(rng, 1, 1.0) == 1 for _ in range(10))

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            zipf_rank(random.Random(1), 0, 1.0)

    def test_skew_concentrates_on_low_ranks(self):
        rng = random.Random(42)
        draws = [zipf_rank(rng, 1000, 1.2) for _ in range(20_000)]
        counts = Counter(draws)
        top10 = sum(counts[r] for r in range(1, 11))
        assert top10 / len(draws) > 0.4

    def test_s1_log_branch(self):
        rng = random.Random(42)
        draws = [zipf_rank(rng, 1000, 1.0) for _ in range(20_000)]
        counts = Counter(draws)
        assert counts[1] > counts.get(500, 0)

    def test_higher_s_more_skew(self):
        rng1, rng2 = random.Random(7), random.Random(7)
        mild = [zipf_rank(rng1, 1000, 0.8) for _ in range(20_000)]
        steep = [zipf_rank(rng2, 1000, 1.5) for _ in range(20_000)]
        assert Counter(steep)[1] > Counter(mild)[1]


class TestZipfRankTruncationFix:
    """The corrected inverse floors over ``[1, n+1)``; the legacy draw
    truncated over ``[1, n)``, making rank ``n`` almost unreachable and
    over-weighting rank 1 (regression for the truncation-bias bug)."""

    def test_rank_n_reachable(self):
        rng = random.Random(7)
        assert any(zipf_rank(rng, 2, 0.5) == 2 for _ in range(2_000))

    def test_legacy_truncation_starves_rank_n(self):
        # With n=2 the legacy draw lives in [1, 2) and int() can only ever
        # produce rank 1 — rank 2 is literally unreachable.
        rng = random.Random(7)
        assert all(zipf_rank_legacy(rng, 2, 0.5) == 1 for _ in range(2_000))

    def test_rank_one_share_not_inflated(self):
        # Same uniform sequence: the legacy normalisation over [1, n)
        # concentrates strictly more mass on rank 1 than the corrected
        # one over [1, n+1).
        n, draws = 5, 50_000
        rng_fixed, rng_legacy = random.Random(3), random.Random(3)
        fixed = Counter(
            zipf_rank(rng_fixed, n, 1.15) for _ in range(draws)
        )
        legacy = Counter(
            zipf_rank_legacy(rng_legacy, n, 1.15) for _ in range(draws)
        )
        assert fixed[1] < legacy[1]
        assert fixed[n] > legacy[n]

    def test_mail_skew_pins_figure_3a_share(self):
        # Figure 3a: ~20% of values absorb ~80% of the writes.  Draw ranks
        # under the mail profile's value skew (value_zipf_s=1.15) and check
        # the top-20% share lands in the figure's neighbourhood.
        rng = random.Random(1234)
        n = 2_000
        counts = Counter(zipf_rank(rng, n, 1.15) for _ in range(60_000))
        share = top_fraction_share(
            [counts.get(rank, 0) for rank in range(1, n + 1)], 0.2
        )
        assert 0.78 <= share <= 0.95

    def test_legacy_bounds_and_validation(self):
        rng = random.Random(1)
        for n in (1, 2, 10, 1000):
            for _ in range(100):
                assert 1 <= zipf_rank_legacy(rng, n, 1.1) <= n
        with pytest.raises(ValueError):
            zipf_rank_legacy(random.Random(1), 0, 1.0)


class TestZipfSampler:
    def test_probabilities_sum_to_one(self):
        sampler = ZipfSampler(100, 1.0)
        total = sum(sampler.probability(i) for i in range(100))
        assert total == pytest.approx(1.0)

    def test_rank_zero_most_probable(self):
        sampler = ZipfSampler(100, 1.0)
        assert sampler.probability(0) > sampler.probability(1)

    def test_sample_in_range(self):
        sampler = ZipfSampler(50, 1.2)
        rng = random.Random(3)
        assert all(0 <= sampler.sample(rng) < 50 for _ in range(1000))

    def test_s_zero_is_uniform(self):
        sampler = ZipfSampler(10, 0.0)
        assert sampler.probability(0) == pytest.approx(0.1)
        assert sampler.probability(9) == pytest.approx(0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            ZipfSampler(0, 1.0)
        with pytest.raises(ValueError):
            ZipfSampler(10, -0.1)
        with pytest.raises(IndexError):
            ZipfSampler(10, 1.0).probability(10)

    def test_empirical_matches_theoretical(self):
        sampler = ZipfSampler(20, 1.0)
        rng = random.Random(11)
        counts = Counter(sampler.sample(rng) for _ in range(50_000))
        assert counts[0] / 50_000 == pytest.approx(sampler.probability(0), rel=0.1)


class TestTopFractionShare:
    def test_uniform_counts(self):
        assert top_fraction_share([10] * 10, 0.2) == pytest.approx(0.2)

    def test_all_mass_on_one(self):
        counts = [100] + [0] * 9
        assert top_fraction_share(counts, 0.1) == 1.0

    def test_empty(self):
        assert top_fraction_share([], 0.2) == 0.0

    def test_zero_total(self):
        assert top_fraction_share([0, 0, 0], 0.5) == 0.0

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            top_fraction_share([1], 0.0)
        with pytest.raises(ValueError):
            top_fraction_share([1], 1.5)

"""Ablation: do DVP gains survive a demand-paged mapping table?

The paper assumes the full LPN→PPN table sits in device RAM.  Many drives
cache only part of it (DFTL); translation misses then cost flash reads and
dirty evictions cost programs.  This ablation replays mail through flat
and demand-paged mapping, with and without the MQ pool, at two CMT sizes.
"""

from repro.analysis.report import render_table
from repro.core.dvp import MQDeadValuePool
from repro.experiments.runner import prefill, scaled_pool_entries
from repro.ftl.dftl import DFTLFtl
from repro.ftl.ftl import BaseFTL
from repro.sim.ssd import SimulatedSSD

from .conftest import BENCH_SCALE, emit


def test_ablation_dftl(benchmark, matrix):
    context = matrix.context("mail")
    entries = scaled_pool_entries(200_000, BENCH_SCALE)

    def variants():
        logical = context.config.logical_pages
        yield "flat / baseline", BaseFTL(context.config)
        yield "flat / mq-dvp", BaseFTL(
            context.config, pool=MQDeadValuePool(entries),
            popularity_aware_gc=True,
        )
        for share, label in ((5, "20% CMT"), (20, "5% CMT")):
            yield f"{label} / baseline", DFTLFtl(
                context.config, cmt_entries=logical // share
            )
            yield f"{label} / mq-dvp", DFTLFtl(
                context.config, pool=MQDeadValuePool(entries),
                cmt_entries=logical // share, popularity_aware_gc=True,
            )

    def compute():
        out = {}
        for label, ftl in variants():
            prefill(ftl, context.profile)
            summary = SimulatedSSD(ftl).run(context.trace).summary()
            if isinstance(ftl, DFTLFtl):
                summary["cmt_hit_rate"] = ftl.translation.stats.hit_rate
            out[label] = summary
        return out

    results = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = [
        (label, f"{s['mean_latency_us']:.1f}", f"{s['flash_writes']:.0f}",
         f"{s.get('cmt_hit_rate', 1.0):.3f}")
        for label, s in results.items()
    ]
    emit(render_table(
        ["mapping / system", "mean latency (us)", "flash writes",
         "CMT hit rate"],
        rows,
        title="Ablation: flat vs demand-paged mapping on mail",
    ))
    # The pool's write savings are mapping-architecture independent...
    for cmt in ("flat", "20% CMT", "5% CMT"):
        base = results[f"{cmt} / baseline"]
        dvp = results[f"{cmt} / mq-dvp"]
        assert dvp["flash_writes"] < base["flash_writes"]
        # ...and so is the latency win.
        assert dvp["mean_latency_us"] < base["mean_latency_us"]
    # Smaller CMT -> lower hit rate.
    assert (
        results["5% CMT / baseline"]["cmt_hit_rate"]
        <= results["20% CMT / baseline"]["cmt_hit_rate"]
    )

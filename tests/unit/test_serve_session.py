"""Unit tests for the serve layer's sessions, protocol and checkpoints.

The load-bearing invariants:

* a streamed session finishes digest-identical to the same trace run
  in batch (``run_system`` for one drive, the fleet layer for shards);
* the batching threshold cannot perturb results — any
  ``batch_requests`` yields the same digest;
* a checkpoint taken mid-stream (with requests still buffered) resumes
  bit-exact.
"""

import pytest

from repro.experiments.config import RunConfig
from repro.experiments.runner import ExperimentContext, run_system
from repro.perf.spec import result_digest
from repro.serve import (
    CLIENT_TYPES,
    SessionConfig,
    SessionError,
    SessionManager,
    ServeSettings,
    TenantSession,
    decode_message,
    drop_checkpoint,
    encode_message,
    list_checkpoints,
    load_checkpoint,
    save_checkpoint,
    session_config_of_open,
)
from repro.serve.protocol import ProtocolError
from repro.traces.synthetic import generate_trace

SCALE = 0.004
WORKLOAD = "mail"
SYSTEM = "mq-dvp"


@pytest.fixture(scope="module")
def context():
    return ExperimentContext.for_workload(WORKLOAD, SCALE)


@pytest.fixture(scope="module")
def batch_digest(context):
    result = run_system(SYSTEM, context, config=RunConfig(scale=SCALE))
    return result_digest(result)


def session_config(**overrides):
    fields = dict(
        tenant="t1", workload=WORKLOAD, system=SYSTEM, scale=SCALE,
        batch_requests=64,
    )
    fields.update(overrides)
    return SessionConfig(**fields)


def stream_all(session, trace):
    for request in trace:
        session.push(request)
        if session.step_due():
            session.flush()
    return session.finalize()


class TestProtocol:
    def test_round_trip(self):
        line = encode_message({"type": "open", "tenant": "a"})
        assert line.endswith(b"\n")
        assert decode_message(line, CLIENT_TYPES) == {
            "type": "open", "tenant": "a",
        }

    def test_rejects_unknown_type(self):
        line = encode_message({"type": "launch-missiles"})
        with pytest.raises(ProtocolError):
            decode_message(line, CLIENT_TYPES)

    def test_rejects_non_json(self):
        with pytest.raises(ProtocolError):
            decode_message(b"not json\n", CLIENT_TYPES)

    def test_rejects_missing_type(self):
        with pytest.raises(ProtocolError):
            decode_message(b"{}\n", CLIENT_TYPES)


class TestSessionConfig:
    def test_tenant_name_validation(self):
        with pytest.raises(SessionError):
            session_config(tenant="../escape")
        with pytest.raises(SessionError):
            session_config(tenant="")

    def test_positive_fields(self):
        with pytest.raises(SessionError):
            session_config(shards=0)
        with pytest.raises(SessionError):
            session_config(batch_requests=0)

    def test_open_message_defaults_from_settings(self):
        settings = ServeSettings(default_seed=7, batch_requests=32)
        config = session_config_of_open(
            {"tenant": "a", "workload": WORKLOAD, "system": SYSTEM},
            settings,
        )
        assert config.seed == 7
        assert config.batch_requests == 32
        # Explicit fields win over the server defaults.
        config = session_config_of_open(
            {
                "tenant": "a", "workload": WORKLOAD, "system": SYSTEM,
                "seed": 3, "batch_requests": 8, "ignored_extra": True,
            },
            settings,
        )
        assert config.seed == 3
        assert config.batch_requests == 8

    def test_open_message_missing_field(self):
        with pytest.raises(SessionError, match="bad open message"):
            session_config_of_open({"tenant": "a"}, ServeSettings())


class TestStreamedParity:
    def test_streamed_digest_equals_batch(self, context, batch_digest):
        trace = generate_trace(context.profile)
        record = stream_all(TenantSession(session_config()), trace)
        assert record.kind == "serve.session"
        assert record.digest == batch_digest

    def test_batch_size_cannot_perturb_digest(self, context, batch_digest):
        trace = generate_trace(context.profile)
        for batch in (1, 17, 4096):
            session = TenantSession(session_config(batch_requests=batch))
            record = stream_all(session, trace)
            assert record.digest == batch_digest, f"batch_requests={batch}"

    def test_out_of_space_lpn_rejected(self, context):
        from dataclasses import replace

        trace = generate_trace(context.profile)
        session = TenantSession(session_config())
        with pytest.raises(SessionError, match="outside"):
            session.push(
                replace(trace[0], lpn=context.profile.total_pages)
            )

    def test_metrics_record_is_pure_read(self, context, batch_digest):
        trace = generate_trace(context.profile)
        session = TenantSession(session_config())
        for request in trace[: len(trace) // 2]:
            session.push(request)
            if session.step_due():
                session.flush()
        session.flush()
        snapshot = session.metrics_record()
        assert snapshot.kind == "serve.metrics"
        assert snapshot.digest is None
        assert snapshot.meta["tenant"] == "t1"
        # Taking the snapshot must not change the final outcome.
        for request in trace[len(trace) // 2:]:
            session.push(request)
            if session.step_due():
                session.flush()
        assert session.finalize().digest == batch_digest

    def test_close_twice_rejected(self, context):
        session = TenantSession(session_config())
        session.finalize()
        with pytest.raises(SessionError):
            session.finalize()
        with pytest.raises(SessionError):
            session.push(generate_trace(context.profile)[0])


class TestCheckpointResume:
    def test_mid_stream_checkpoint_resumes_bit_exact(
        self, context, batch_digest
    ):
        trace = generate_trace(context.profile)
        cut = len(trace) // 2
        session = TenantSession(session_config())
        for request in trace[:cut]:
            session.push(request)
            if session.step_due():
                session.flush()
        # Deliberately checkpoint with requests still buffered.
        assert session.pending > 0 or cut % 64 == 0
        blob = session.checkpoint_blob()
        del session

        resumed = TenantSession.from_blob(blob)
        for request in trace[cut:]:
            resumed.push(request)
            if resumed.step_due():
                resumed.flush()
        assert resumed.finalize().digest == batch_digest

    def test_blob_version_gate(self):
        import pickle

        blob = pickle.dumps({"version": 999})
        with pytest.raises(SessionError, match="version"):
            TenantSession.from_blob(blob)
        with pytest.raises(SessionError, match="corrupt"):
            TenantSession.from_blob(b"garbage")

    def test_checkpoint_of_closed_session_rejected(self):
        session = TenantSession(session_config())
        session.finalize()
        with pytest.raises(SessionError):
            session.checkpoint_blob()


class TestCheckpointFiles:
    def test_save_load_drop(self, tmp_path):
        directory = str(tmp_path / "ckpt")
        assert load_checkpoint(directory, "t1") is None
        save_checkpoint(directory, "t1", b"state-1")
        save_checkpoint(directory, "t2", b"state-2")
        assert load_checkpoint(directory, "t1") == b"state-1"
        assert list_checkpoints(directory) == ["t1", "t2"]
        assert drop_checkpoint(directory, "t1") is True
        assert drop_checkpoint(directory, "t1") is False
        assert list_checkpoints(directory) == ["t2"]

    def test_save_is_atomic_overwrite(self, tmp_path):
        directory = str(tmp_path)
        save_checkpoint(directory, "t", b"old")
        save_checkpoint(directory, "t", b"new")
        assert load_checkpoint(directory, "t") == b"new"


class TestSessionManager:
    def settings(self, tmp_path, **overrides):
        fields = dict(checkpoint_dir=str(tmp_path / "ckpt"), max_sessions=2)
        fields.update(overrides)
        return ServeSettings(**fields)

    def test_open_detach_resume_close(self, tmp_path, context, batch_digest):
        manager = SessionManager(self.settings(tmp_path))
        trace = generate_trace(context.profile)
        cut = len(trace) // 3

        session, resumed = manager.open(session_config())
        assert resumed is False
        for request in trace[:cut]:
            session.push(request)
            if session.step_due():
                session.flush()
        manager.detach("t1")

        # Reattach picks up the live session (no rebuild).
        session2, resumed = manager.open(session_config())
        assert resumed is True
        assert session2 is session
        for request in trace[cut:]:
            session2.push(request)
            if session2.step_due():
                session2.flush()
        record = manager.close("t1")
        assert record.digest == batch_digest
        # Closing drops the checkpoint file.
        assert list_checkpoints(self.settings(tmp_path).checkpoint_dir) == []

    def test_resume_from_checkpoint_after_eviction(
        self, tmp_path, context, batch_digest
    ):
        settings = self.settings(tmp_path)
        manager = SessionManager(settings)
        trace = generate_trace(context.profile)
        cut = len(trace) // 2

        session, _ = manager.open(session_config())
        for request in trace[:cut]:
            session.push(request)
            if session.step_due():
                session.flush()
        manager.detach("t1")
        manager.checkpoint("t1")
        # Simulate a process death: a fresh manager sees only the files.
        manager2 = SessionManager(settings)
        session2, resumed = manager2.open(session_config())
        assert resumed is True
        assert session2.served == session.served
        for request in trace[cut:]:
            session2.push(request)
            if session2.step_due():
                session2.flush()
        assert manager2.close("t1").digest == batch_digest

    def test_double_attach_refused(self, tmp_path):
        manager = SessionManager(self.settings(tmp_path))
        manager.open(session_config())
        with pytest.raises(SessionError, match="attached"):
            manager.open(session_config())

    def test_config_mismatch_on_resume_refused(self, tmp_path):
        manager = SessionManager(self.settings(tmp_path))
        manager.open(session_config())
        manager.detach("t1")
        with pytest.raises(SessionError, match="config"):
            manager.open(session_config(batch_requests=32))

    def test_session_cap(self, tmp_path):
        manager = SessionManager(self.settings(tmp_path, max_sessions=1))
        manager.open(session_config())
        with pytest.raises(SessionError, match="session limit"):
            manager.open(session_config(tenant="t2"))

    def test_drain_checkpoints_every_open_session(self, tmp_path):
        settings = self.settings(tmp_path)
        manager = SessionManager(settings)
        manager.open(session_config())
        manager.open(session_config(tenant="t2"))
        manager.drain()
        assert list_checkpoints(settings.checkpoint_dir) == ["t1", "t2"]

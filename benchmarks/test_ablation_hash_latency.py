"""Ablation: sensitivity to the 12µs hashing latency.

The paper charges 12µs per incoming write for content hashing [35] and
models its queueing impact.  This ablation sweeps the hash latency to show
that the proposal's gains do not hinge on an optimistic hashing number:
even an order-of-magnitude slower hash unit leaves DVP comfortably ahead
of the baseline on mail.
"""

from repro.analysis.report import render_table
from repro.experiments.runner import (
    prefill,
    scaled_pool_entries,
)
from repro.ftl.dvp_ftl import make_baseline, make_mq_dvp
from repro.sim.ssd import SimulatedSSD

from .conftest import BENCH_SCALE, emit

HASH_LATENCIES = (0.0, 12.0, 50.0, 120.0)


def test_ablation_hash_latency(benchmark, matrix):
    context = matrix.context("mail")

    def compute():
        baseline = matrix.run("mail", "baseline").summary()
        out = {"baseline (no hash)": baseline}
        entries = scaled_pool_entries(200_000, BENCH_SCALE)
        for hash_us in HASH_LATENCIES:
            config = context.config.with_timing(hash_us=hash_us)
            ftl = make_mq_dvp(config, entries)
            prefill(ftl, context.profile)
            out[f"mq-dvp @ {hash_us:g}us"] = (
                SimulatedSSD(ftl).run(context.trace).summary()
            )
        return out

    results = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = [
        (label, f"{s['mean_latency_us']:.1f}", f"{s['flash_writes']:.0f}")
        for label, s in results.items()
    ]
    emit(render_table(
        ["system", "mean latency (us)", "flash writes"], rows,
        title="Ablation: hashing-latency sensitivity on mail "
              "(paper assumes 12us [35])",
    ))
    baseline = results["baseline (no hash)"]
    slowest = results[f"mq-dvp @ {HASH_LATENCIES[-1]:g}us"]
    # Even with a 10x slower hash core, DVP stays ahead of baseline.
    assert slowest["mean_latency_us"] < baseline["mean_latency_us"]
    # Hash latency does not change what is written, only when.
    writes = {s["flash_writes"] for k, s in results.items() if "mq-dvp" in k}
    assert len(writes) == 1

"""Unit tests for the simulated SSD's timing semantics."""

import pytest

from repro.core.dvp import InfiniteDeadValuePool
from repro.ftl.dedup import DedupFTL
from repro.ftl.ftl import BaseFTL
from repro.sim.request import IORequest, OpType
from repro.sim.ssd import SimulatedSSD, replay


def w(t, lpn, value):
    return IORequest(arrival_us=t, op=OpType.WRITE, lpn=lpn, value_id=value)


def r(t, lpn, value=0):
    return IORequest(arrival_us=t, op=OpType.READ, lpn=lpn, value_id=value)


class TestWriteTiming:
    def test_baseline_write_latency(self, tiny_config):
        device = SimulatedSSD(BaseFTL(tiny_config))
        done = device.submit(w(0.0, 0, 1))
        t = tiny_config.timing
        expected = t.mapping_us + t.channel_xfer_us + t.program_us
        assert done.latency_us == pytest.approx(expected)

    def test_content_aware_write_adds_hash(self, tiny_config):
        ftl = BaseFTL(tiny_config, pool=InfiniteDeadValuePool())
        device = SimulatedSSD(ftl)
        done = device.submit(w(0.0, 0, 1))
        t = tiny_config.timing
        expected = t.hash_us + t.mapping_us + t.channel_xfer_us + t.program_us
        assert done.latency_us == pytest.approx(expected)

    def test_short_circuited_write_skips_flash(self, tiny_config):
        ftl = BaseFTL(tiny_config, pool=InfiniteDeadValuePool())
        device = SimulatedSSD(ftl)
        device.submit(w(0.0, 0, 1))
        device.submit(w(1000.0, 0, 2))       # value 1 dies
        done = device.submit(w(2000.0, 1, 1))  # revived
        t = tiny_config.timing
        assert done.short_circuited
        assert done.latency_us == pytest.approx(t.hash_us + t.mapping_us)

    def test_dedup_hit_skips_flash(self, tiny_config):
        device = SimulatedSSD(DedupFTL(tiny_config))
        device.submit(w(0.0, 0, 1))
        done = device.submit(w(1000.0, 1, 1))
        t = tiny_config.timing
        assert done.dedup_hit
        assert done.latency_us == pytest.approx(t.hash_us + t.mapping_us)


class TestReadTiming:
    def test_read_latency(self, tiny_config):
        device = SimulatedSSD(BaseFTL(tiny_config))
        device.submit(w(0.0, 0, 1))
        done = device.submit(r(10_000.0, 0))
        t = tiny_config.timing
        expected = t.mapping_us + t.channel_xfer_us + t.read_us
        assert done.latency_us == pytest.approx(expected)

    def test_unmapped_read_is_table_only(self, tiny_config):
        device = SimulatedSSD(BaseFTL(tiny_config))
        done = device.submit(r(0.0, 7))
        assert done.latency_us == pytest.approx(tiny_config.timing.mapping_us)

    def test_read_queues_behind_write_on_same_chip(self, tiny_config):
        """The read/write interference the paper targets: a read arriving
        during an ongoing program on its chip waits for it."""
        device = SimulatedSSD(BaseFTL(tiny_config))
        first = device.submit(w(0.0, 0, 1))
        blocked = device.submit(r(1.0, 0))  # same page -> same chip
        t = tiny_config.timing
        assert blocked.latency_us > t.mapping_us + t.channel_xfer_us + t.read_us
        assert blocked.finish_us > first.finish_us

    def test_reads_on_different_chips_parallel(self, tiny_config):
        device = SimulatedSSD(BaseFTL(tiny_config))
        # Writes stripe across planes/chips, so LPN 0 and 1 land apart.
        device.submit(w(0.0, 0, 1))
        device.submit(w(0.0, 1, 2))
        r0 = device.submit(r(10_000.0, 0))
        r1 = device.submit(r(10_000.0, 1))
        # both served without queueing on the chip
        t = tiny_config.timing
        floor = t.mapping_us + t.channel_xfer_us + t.read_us
        assert r0.latency_us == pytest.approx(floor)
        assert r1.latency_us <= floor + t.channel_xfer_us  # channel overlap


class TestRun:
    def test_run_collects_stats(self, tiny_config):
        trace = [w(float(i * 100), i % 8, i) for i in range(20)]
        trace += [r(2000.0 + i, i % 8) for i in range(10)]
        result = replay(BaseFTL(tiny_config), trace, system="s", workload="w")
        assert result.writes.count == 20
        assert result.reads.count == 10
        assert result.counters.host_writes == 20
        assert result.horizon_us > 0
        assert result.pool_stats is None

    def test_run_reports_pool_stats(self, tiny_config):
        ftl = BaseFTL(tiny_config, pool=InfiniteDeadValuePool())
        trace = [w(float(i * 100), 0, i % 2) for i in range(10)]
        result = replay(ftl, trace)
        assert result.pool_stats is not None
        assert result.pool_stats["hits"] > 0

    def test_gc_blocks_later_requests(self, tiny_config):
        """Once churn forces GC, requests behind the erase see multi-ms
        latency — the paper's core motivation."""
        ftl = BaseFTL(tiny_config)
        device = SimulatedSSD(ftl)
        ws = tiny_config.logical_pages // 2
        worst = 0.0
        for i in range(tiny_config.total_pages * 2):
            done = device.submit(w(i * 10.0, i % ws, 10_000 + i))
            worst = max(worst, done.latency_us)
        assert ftl.counters.gc_erases > 0
        assert worst >= tiny_config.timing.erase_us

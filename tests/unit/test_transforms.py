"""Unit tests for trace transforms."""

import pytest

from repro.sim.request import IORequest, OpType
from repro.traces.transforms import (
    filter_ops,
    interleave_tenants,
    merge_traces,
    scale_time,
    shift_lpns,
    take,
    window,
    with_trims,
)


def w(t, lpn, value=0):
    return IORequest(t, OpType.WRITE, lpn, value)


def r(t, lpn):
    return IORequest(t, OpType.READ, lpn, 0)


TRACE = [w(0.0, 0, 1), r(10.0, 0), w(20.0, 1, 2), w(30.0, 2, 3)]


class TestScaleTime:
    def test_compression(self):
        out = list(scale_time(TRACE, 0.5))
        assert [x.arrival_us for x in out] == [0.0, 5.0, 10.0, 15.0]
        assert [x.lpn for x in out] == [x.lpn for x in TRACE]

    def test_stretch(self):
        out = list(scale_time(TRACE, 2.0))
        assert out[-1].arrival_us == 60.0

    def test_invalid_factor(self):
        with pytest.raises(ValueError):
            list(scale_time(TRACE, 0.0))


class TestWindow:
    def test_selects_and_rebases(self):
        out = list(window(TRACE, 10.0, 30.0))
        assert [x.arrival_us for x in out] == [0.0, 10.0]
        assert [x.lpn for x in out] == [0, 1]

    def test_empty_window(self):
        assert list(window(TRACE, 100.0, 200.0)) == []

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            list(window(TRACE, 10.0, 10.0))


class TestTakeAndFilter:
    def test_take(self):
        assert len(list(take(TRACE, 2))) == 2
        assert list(take(TRACE, 0)) == []
        assert len(list(take(TRACE, 99))) == len(TRACE)

    def test_take_negative(self):
        with pytest.raises(ValueError):
            list(take(TRACE, -1))

    def test_filter_ops(self):
        writes = list(filter_ops(TRACE, OpType.WRITE))
        reads = list(filter_ops(TRACE, OpType.READ))
        assert len(writes) == 3
        assert len(reads) == 1
        assert all(x.op is OpType.WRITE for x in writes)


class TestShiftLpns:
    def test_shift(self):
        out = list(shift_lpns(TRACE, 100))
        assert [x.lpn for x in out] == [100, 100, 101, 102]

    def test_negative_result_rejected(self):
        with pytest.raises(ValueError):
            list(shift_lpns(TRACE, -5))


class TestMerge:
    def test_merge_keeps_time_order(self):
        a = [w(0.0, 0), w(20.0, 1)]
        b = [w(10.0, 5), w(30.0, 6)]
        merged = list(merge_traces(a, b))
        assert [x.arrival_us for x in merged] == [0.0, 10.0, 20.0, 30.0]

    def test_merge_is_lazy_and_variadic(self):
        def gen(base):
            for i in range(3):
                yield w(base + i * 10.0, 0)

        merged = list(merge_traces(gen(0.0), gen(1.0), gen(2.0)))
        assert len(merged) == 9
        times = [x.arrival_us for x in merged]
        assert times == sorted(times)


class TestInterleaveTenants:
    def test_disjoint_addresses_and_values(self):
        a = [w(0.0, 0, 1), w(20.0, 1, 2)]
        b = [w(10.0, 0, 1), w(30.0, 1, 2)]
        out = interleave_tenants([a, b], pages_per_tenant=100)
        assert [x.lpn for x in out] == [0, 100, 1, 101]
        values = {x.value_id for x in out}
        assert len(values) == 4  # identical tenant contents kept distinct

    def test_lpn_range_enforced(self):
        with pytest.raises(ValueError):
            interleave_tenants([[w(0.0, 150, 1)]], pages_per_tenant=100)

    def test_single_tenant_passthrough_lpns(self):
        a = [w(0.0, 3, 7)]
        out = interleave_tenants([a], pages_per_tenant=10)
        assert out[0].lpn == 3

    def test_invalid_pages_per_tenant(self):
        with pytest.raises(ValueError):
            interleave_tenants([[]], pages_per_tenant=0)

    def test_value_id_overflowing_namespace_raises(self):
        # tenant 0's value_id 7 with value_space=4 would land on tenant
        # 1's private id 3 after the shift — reject instead of colliding.
        a = [w(0.0, 0, 7)]
        b = [w(1.0, 0, 3)]
        with pytest.raises(ValueError, match="private namespace"):
            interleave_tenants([a, b], pages_per_tenant=16, value_space=4)

    def test_overflow_allowed_when_values_shared(self):
        a = [w(0.0, 0, 7)]
        b = [w(1.0, 0, 3)]
        out = interleave_tenants(
            [a, b], pages_per_tenant=16, value_space=4, share_values=True,
        )
        assert [x.value_id for x in out] == [7, 3]

    def test_invalid_value_space(self):
        with pytest.raises(ValueError):
            interleave_tenants([[]], pages_per_tenant=16, value_space=0)

    def test_namespace_collision_caused_spurious_revival(self, tiny_config):
        """Regression for the silent-collision bug: before validation, a
        tenant value_id >= value_space aliased another tenant's private id
        and the pool revived garbage across supposedly isolated tenants."""
        from repro.core.dvp import InfiniteDeadValuePool
        from repro.ftl.ftl import BaseFTL

        value_space = 4
        # Tenant 0 writes id 7 (= value_space + 3) then overwrites it, so
        # content 7 becomes pool garbage; tenant 1 then writes its private
        # id 3.  Under the old shift, both map to global id 7: tenant 1's
        # write short-circuits against tenant 0's dead page.
        tenant_a = [w(0.0, 0, 7), w(10.0, 0, 1)]
        tenant_b = [w(20.0, 0, 3)]

        def replay(trace):
            ftl = BaseFTL(tiny_config, pool=InfiniteDeadValuePool())
            for request in trace:
                ftl.write(request.lpn, request.fingerprint)
            return ftl.counters.short_circuits

        buggy_shift = [
            IORequest(
                arrival_us=req.arrival_us, op=req.op,
                lpn=req.lpn + index * 16,
                value_id=req.value_id + index * value_space,
            )
            for index, tenant in enumerate([tenant_a, tenant_b])
            for req in tenant
        ]
        assert replay(sorted(buggy_shift, key=lambda r: r.arrival_us)) == 1

        with pytest.raises(ValueError):
            interleave_tenants(
                [tenant_a, tenant_b], pages_per_tenant=16,
                value_space=value_space,
            )

    def test_shared_values_enable_cross_tenant_revival(self, tiny_config):
        """With share_values=True, one tenant's dead content can serve
        another tenant's write through the pool."""
        from repro.core.dvp import InfiniteDeadValuePool
        from repro.ftl.ftl import BaseFTL

        tenant_a = [w(0.0, 0, 777), w(10.0, 0, 1)]    # 777 dies at t=10
        tenant_b = [w(20.0, 0, 777)]                   # b writes the same
        for shared, expect in ((True, 1), (False, 0)):
            trace = interleave_tenants(
                [tenant_a, tenant_b], pages_per_tenant=64,
                share_values=shared,
            )
            ftl = BaseFTL(tiny_config, pool=InfiniteDeadValuePool())
            for request in trace:
                ftl.write(request.lpn, request.fingerprint)
            assert ftl.counters.short_circuits == expect


class TestTransformsFeedTheSimulator:
    def test_compressed_trace_raises_load(self, tiny_config):
        """End-to-end: compressing arrivals increases queueing latency."""
        from repro.ftl.ftl import BaseFTL
        from repro.sim.ssd import replay

        base = [w(i * 2000.0, i % 8, i) for i in range(200)]
        relaxed = replay(BaseFTL(tiny_config), base)
        compressed = replay(
            BaseFTL(tiny_config), list(scale_time(base, 0.05))
        )
        assert compressed.mean_latency_us >= relaxed.mean_latency_us


class TestWithTrims:
    def test_trims_follow_every_nth_write(self):
        out = with_trims(TRACE, 2)
        # Writes at index 0, 2, 3; the 2nd write (lpn 1) gets a TRIM.
        ops = [(req.op, req.lpn) for req in out]
        assert ops == [
            (OpType.WRITE, 0), (OpType.READ, 0),
            (OpType.WRITE, 1), (OpType.TRIM, 1),
            (OpType.WRITE, 2),
        ]

    def test_trim_shares_arrival_time(self):
        out = with_trims(TRACE, 2)
        trim = next(req for req in out if req.op is OpType.TRIM)
        assert trim.arrival_us == 20.0

    def test_every_write_trimmed(self):
        out = with_trims(TRACE, 1)
        trims = [req for req in out if req.op is OpType.TRIM]
        assert [t.lpn for t in trims] == [0, 1, 2]

    def test_reads_do_not_count(self):
        out = with_trims([r(0.0, 5), r(1.0, 6)], 1)
        assert all(req.op is OpType.READ for req in out)

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            list(with_trims(TRACE, 0))

    def test_lazy_never_materialises(self):
        """Streams like every other transform: pulling a prefix of the
        output must not consume the whole (here: unbounded) input."""
        def endless():
            i = 0
            while True:
                yield w(float(i), i % 8, i)
                i += 1

        out = with_trims(endless(), 2)
        head = [next(out) for _ in range(6)]
        ops = [req.op for req in head]
        assert OpType.TRIM in ops
        assert len(head) == 6  # and we returned at all

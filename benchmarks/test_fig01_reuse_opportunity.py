"""Figure 1: probability of reusing garbage pages to service incoming writes.

Paper: with an infinite buffer, up to 86% of writes are servable from
garbage; the opportunity shrinks but persists after deduplication.
"""

from repro.analysis.report import render_table
from repro.experiments.figures import fig01_reuse_opportunity

from .conftest import emit


def test_fig01_reuse_opportunity(benchmark, scale):
    results = benchmark.pedantic(
        lambda: fig01_reuse_opportunity(scale), rounds=1, iterations=1
    )
    rows = [
        (r.workload, f"{r.without_dedup:.3f}", f"{r.with_dedup:.3f}")
        for r in results
    ]
    emit(render_table(
        ["trace-day", "P(reuse)", "P(reuse) after dedup"], rows,
        title="Figure 1: reuse probability of garbage pages (infinite buffer)",
    ))
    # Shape: reuse exists, dedup never increases it, mail days dominate.
    assert all(0.0 <= r.with_dedup <= r.without_dedup for r in results)
    mail = [r.without_dedup for r in results if r.workload.startswith("m")]
    web = [r.without_dedup for r in results if r.workload.startswith("w")]
    assert max(mail) > max(web)
    assert max(mail) > 0.5

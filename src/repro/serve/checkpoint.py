"""Checkpoint files: atomic per-tenant session-state persistence.

One file per tenant under the server's checkpoint directory, written
atomically (temp file + ``os.replace``) so a crash mid-write can never
leave a half-written blob where a resumable checkpoint used to be — the
old checkpoint survives until the new one is durably in place.

The blob *content* is opaque here (versioned by
:mod:`repro.serve.session`); this module is purely the file plumbing.
"""

from __future__ import annotations

import os
from typing import List, Optional

__all__ = [
    "CheckpointError",
    "checkpoint_path",
    "save_checkpoint",
    "load_checkpoint",
    "drop_checkpoint",
    "list_checkpoints",
]

_SUFFIX = ".session"


class CheckpointError(OSError):
    """A checkpoint file that cannot be written or read."""


def checkpoint_path(directory: str, tenant: str) -> str:
    """Where ``tenant``'s checkpoint lives under ``directory``.

    Tenant names are already restricted to a filesystem-safe alphabet
    by :class:`~repro.serve.session.SessionConfig`.
    """
    return os.path.join(directory, tenant + _SUFFIX)


def save_checkpoint(directory: str, tenant: str, blob: bytes) -> str:
    """Atomically persist ``blob`` as ``tenant``'s checkpoint."""
    try:
        os.makedirs(directory, exist_ok=True)
        path = checkpoint_path(directory, tenant)
        tmp = path + ".tmp"
        with open(tmp, "wb") as fh:
            fh.write(blob)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except OSError as exc:
        raise CheckpointError(f"cannot save checkpoint: {exc}") from None
    return path


def load_checkpoint(directory: str, tenant: str) -> Optional[bytes]:
    """``tenant``'s checkpoint blob, or ``None`` when it has none."""
    path = checkpoint_path(directory, tenant)
    try:
        with open(path, "rb") as fh:
            return fh.read()
    except FileNotFoundError:
        return None
    except OSError as exc:
        raise CheckpointError(f"cannot load checkpoint: {exc}") from None


def drop_checkpoint(directory: str, tenant: str) -> bool:
    """Remove ``tenant``'s checkpoint (a completed session needs none);
    returns whether one existed."""
    try:
        os.remove(checkpoint_path(directory, tenant))
        return True
    except FileNotFoundError:
        return False
    except OSError as exc:
        raise CheckpointError(f"cannot drop checkpoint: {exc}") from None


def list_checkpoints(directory: str) -> List[str]:
    """Tenants with a checkpoint under ``directory``, sorted."""
    try:
        names = os.listdir(directory)
    except FileNotFoundError:
        return []
    return sorted(
        name[: -len(_SUFFIX)]
        for name in names
        if name.endswith(_SUFFIX)
    )

"""Refresh BENCH_matrix.json: time the canonical matrix serial vs parallel.

Usage (from the repo root)::

    PYTHONPATH=src python benchmarks/perf/harness.py [--out BENCH_matrix.json]
        [--jobs N] [--scale S] [--workloads a,b] [--systems x,y]

Thin wrapper over :func:`repro.perf.bench.write_benchmark`; ``make bench``
calls this.  Exits non-zero if the serial and parallel legs ever disagree
(``identical_results`` false) so CI catches determinism regressions.
"""

import argparse
import sys

from repro.perf.bench import DEFAULT_BENCH_SCALE, write_benchmark


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_matrix.json")
    parser.add_argument("--jobs", type=int, default=0,
                        help="workers for the parallel leg (0 = all cores)")
    parser.add_argument("--scale", type=float, default=DEFAULT_BENCH_SCALE)
    parser.add_argument("--workloads", default=None,
                        help="comma-separated (default: canonical slice)")
    parser.add_argument("--systems", default=None,
                        help="comma-separated (default: canonical slice)")
    args = parser.parse_args(argv)

    kwargs = {"jobs": args.jobs, "scale": args.scale}
    if args.workloads:
        kwargs["workloads"] = args.workloads.split(",")
    if args.systems:
        kwargs["systems"] = args.systems.split(",")
    report = write_benchmark(args.out, **kwargs)
    print(
        f"wrote {args.out}: {len(report['cells'])} cells, "
        f"serial {report['serial_seconds']:.2f}s, "
        f"parallel {report['parallel_seconds']:.2f}s "
        f"(x{report['speedup']}, jobs={report['jobs']}), "
        f"identical_results={report['identical_results']}"
    )
    return 0 if report["identical_results"] else 1


if __name__ == "__main__":
    sys.exit(main())

"""Cross-validation: the timeline model vs the event-driven model.

The two device models price the same FTL work through entirely different
mechanisms (analytic FIFO timelines vs an event loop with chip queues).
Under the FIFO chip policy they must agree: identical physical-operation
counts (they share the FTL, so exactly), and latency statistics within a
small tolerance (the event model resolves sub-microsecond interleavings
the analytic model collapses).
"""

import pytest

from repro.core.dvp import MQDeadValuePool
from repro.experiments.runner import config_for_profile, prefill
from repro.ftl.dedup import DedupFTL
from repro.ftl.ftl import BaseFTL
from repro.sim.des_ssd import EventDrivenSSD
from repro.sim.ssd import SimulatedSSD
from repro.traces.synthetic import generate_trace

from ..conftest import make_profile


@pytest.fixture(scope="module")
def setup():
    profile = make_profile(num_requests=6000, working_set_pages=600)
    return profile, generate_trace(profile), config_for_profile(profile)


def build(kind, config):
    if kind == "baseline":
        return BaseFTL(config)
    if kind == "mq-dvp":
        return BaseFTL(
            config, pool=MQDeadValuePool(256), popularity_aware_gc=True
        )
    if kind == "dedup":
        return DedupFTL(config)
    raise ValueError(kind)


@pytest.mark.parametrize("system", ["baseline", "mq-dvp", "dedup"])
class TestCrossValidation:
    def _run_both(self, setup, system):
        profile, trace, config = setup
        ftl_a = build(system, config)
        prefill(ftl_a, profile)
        timeline = SimulatedSSD(ftl_a).run(trace)
        ftl_b = build(system, config)
        prefill(ftl_b, profile)
        des = EventDrivenSSD(ftl_b, chip_policy="fifo").run(trace)
        return timeline, des

    def test_identical_physical_work(self, setup, system):
        timeline, des = self._run_both(setup, system)
        for field in ("programs", "short_circuits", "dedup_hits",
                      "gc_erases", "gc_relocations", "invalidations"):
            assert getattr(timeline.counters, field) == getattr(
                des.counters, field
            ), field

    def test_latency_statistics_agree(self, setup, system):
        timeline, des = self._run_both(setup, system)
        assert des.writes.mean == pytest.approx(
            timeline.writes.mean, rel=0.02
        )
        # Reads queue behind GC bursts, whose sub-microsecond interleaving
        # is exactly where the two models differ most; 3% covers the
        # divergence while physical work stays exactly equal.
        assert des.reads.mean == pytest.approx(
            timeline.reads.mean, rel=0.03
        )
        assert des.writes.p99 == pytest.approx(
            timeline.writes.p99, rel=0.05
        )

    def test_request_counts_agree(self, setup, system):
        timeline, des = self._run_both(setup, system)
        assert timeline.writes.count == des.writes.count
        assert timeline.reads.count == des.reads.count

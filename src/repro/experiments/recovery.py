"""Post-crash revival-rate warmup: what a power loss costs the DVP.

The dead-value pool lives entirely in controller RAM (paper Section
IV-C), so a power loss erases it even though every page it tracked is
still physically on flash.  After recovery the drive works — the L2P map
is rebuilt from OOB metadata — but revival starts from a *cold* pool and
must re-learn which garbage pages are worth keeping.  This experiment
measures that warmup directly and compares it against the uninterrupted
run of the same trace.

Method: run the same (workload, system) cell twice with a
:class:`~repro.obs.TimeSeriesSampler` on a fixed request cadence —
once uninterrupted, once with ``FaultConfig(crash_after_requests=N)``
(``N`` aligned to the sampling window).  From the crashed run's samples,
compute the *cumulative* revival rate since the crash
(``Δshort_circuits / Δhost_writes`` against the at-crash sample) per
window.  Starting from an empty pool that ratio begins near zero and
rises monotonically toward the steady-state rate as the pool refills —
the warmup curve the benchmark test pins down.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..faults.model import FaultConfig
from .config import DEFAULT_SCALE, RunConfig

__all__ = ["RecoveryExperimentResult", "run_recovery_experiment"]


@dataclass(frozen=True)
class RecoveryExperimentResult:
    """Both runs of one crash-vs-uninterrupted comparison."""

    workload: str
    system: str
    scale: float
    crash_after_requests: int
    window_requests: int
    #: Cumulative revival rate since the crash, one point per sampling
    #: window after it (the warmup curve).
    warmup_rates: Tuple[float, ...]
    #: The same windows of the uninterrupted run, measured cumulatively
    #: from the same request index (the reference the warmup approaches).
    reference_rates: Tuple[float, ...]
    #: ``RunResult.summary()`` of each run.
    crashed_summary: Dict[str, float]
    uninterrupted_summary: Dict[str, float]
    #: ``FaultStats.summary()`` of the crashed run (carries
    #: ``recoveries`` and ``mean_recovery_us``).
    fault_summary: Dict[str, float]

    def warmup_is_monotone(self, tolerance: float = 0.0) -> bool:
        """Whether the warmup curve never drops by more than ``tolerance``."""
        return all(
            later >= earlier - tolerance
            for earlier, later in zip(self.warmup_rates, self.warmup_rates[1:])
        )

    @property
    def final_gap(self) -> float:
        """Reference rate minus warmup rate at the horizon (>= 0 means the
        crashed run never fully caught up within the trace)."""
        if not self.warmup_rates or not self.reference_rates:
            return 0.0
        return self.reference_rates[-1] - self.warmup_rates[-1]


def _rates_since(
    samples: List[Dict[str, Any]], crash_after: int
) -> Tuple[float, ...]:
    """Cumulative ``Δshort_circuits / Δhost_writes`` per post-crash sample,
    measured against the last sample at or before ``crash_after`` requests."""
    base = None
    for sample in samples:
        if sample["requests"] <= crash_after:
            base = sample
        else:
            break
    if base is None:
        raise ValueError(
            "no sample at or before the crash point; use a sampling window "
            "that divides crash_after_requests"
        )
    rates = []
    for sample in samples:
        if sample["requests"] <= base["requests"]:
            continue
        writes = sample["host_writes"] - base["host_writes"]
        revived = sample["short_circuits"] - base["short_circuits"]
        if writes > 0:
            rates.append(revived / writes)
    return tuple(rates)


def run_recovery_experiment(
    workload: str = "mail",
    system: str = "mq-dvp",
    scale: float = DEFAULT_SCALE,
    paper_pool_entries: int = 200_000,
    crash_fraction: float = 0.5,
    window_requests: int = 2000,
    fault_seed: int = 0,
    config: Optional[RunConfig] = None,
) -> RecoveryExperimentResult:
    """Measure post-crash revival warmup against an uninterrupted run.

    ``crash_fraction`` places the power loss as a fraction of the trace,
    rounded down to a multiple of ``window_requests`` so the at-crash
    sample exists exactly.  ``config`` overrides the pool/scale/queue
    parameters wholesale (its ``faults``/``observer`` fields are managed
    by the experiment and must be unset).  Both runs replay the identical
    trace, so every difference between the two curves is the crash.
    """
    from ..obs.sampler import TimeSeriesSampler
    from .runner import ExperimentContext, run_system

    if config is None:
        config = RunConfig(
            paper_pool_entries=paper_pool_entries, scale=scale
        )
    if config.faults is not None or config.observer is not None:
        raise ValueError(
            "run_recovery_experiment manages faults and observer itself; "
            "leave both unset in the RunConfig"
        )
    context = ExperimentContext.for_workload(workload, config.scale)
    total = len(context.trace)
    crash_after = int(total * crash_fraction) // window_requests
    crash_after *= window_requests
    if crash_after <= 0 or crash_after >= total:
        raise ValueError(
            f"crash point {crash_after} outside the {total}-request trace; "
            f"adjust crash_fraction/window_requests"
        )
    plain_sampler = TimeSeriesSampler(interval_requests=window_requests)
    plain = run_system(
        system, context, config=config.replace(observer=plain_sampler)
    )
    crash_sampler = TimeSeriesSampler(interval_requests=window_requests)
    crashed = run_system(
        system,
        context,
        config=config.replace(
            observer=crash_sampler,
            faults=FaultConfig(
                seed=fault_seed, crash_after_requests=crash_after
            ),
        ),
    )
    return RecoveryExperimentResult(
        workload=workload,
        system=system,
        scale=config.scale,
        crash_after_requests=crash_after,
        window_requests=window_requests,
        warmup_rates=_rates_since(crash_sampler.samples, crash_after),
        reference_rates=_rates_since(plain_sampler.samples, crash_after),
        crashed_summary=crashed.summary(),
        uninterrupted_summary=plain.summary(),
        fault_summary=crashed.fault_stats or {},
    )

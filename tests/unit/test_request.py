"""Unit tests for IORequest / CompletedRequest."""

from repro.core.hashing import fingerprint_of_value
from repro.sim.request import CompletedRequest, IORequest, OpType


class TestIORequest:
    def test_write_flag(self):
        req = IORequest(0.0, OpType.WRITE, 1, 2)
        assert req.is_write

    def test_read_flag(self):
        req = IORequest(0.0, OpType.READ, 1, 2)
        assert not req.is_write

    def test_fingerprint_matches_value(self):
        req = IORequest(0.0, OpType.WRITE, 1, 42)
        assert req.fingerprint == fingerprint_of_value(42)

    def test_optype_values_match_trace_format(self):
        assert OpType.WRITE.value == "W"
        assert OpType.READ.value == "R"

    def test_frozen(self):
        req = IORequest(0.0, OpType.WRITE, 1, 2)
        try:
            req.lpn = 5  # type: ignore[misc]
            assert False, "should be immutable"
        except AttributeError:
            pass


class TestCompletedRequest:
    def test_latency_measured_from_arrival(self):
        req = IORequest(100.0, OpType.WRITE, 1, 2)
        done = CompletedRequest(request=req, start_us=150.0, finish_us=250.0)
        assert done.latency_us == 150.0  # includes host-queue wait

    def test_flags_default_false(self):
        req = IORequest(0.0, OpType.WRITE, 1, 2)
        done = CompletedRequest(request=req, start_us=0.0, finish_us=1.0)
        assert not done.short_circuited
        assert not done.dedup_hit

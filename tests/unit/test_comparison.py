"""Unit tests for the paper-claims registry."""

import pytest

from repro.experiments.comparison import (
    PAPER_CLAIMS,
    claim_by_id,
    comparison_rows,
    mean_improvement,
)


class TestClaims:
    def test_headline_numbers_encoded(self):
        assert claim_by_id("fig9_mean_write_reduction").value == 29.0
        assert claim_by_id("fig11_mean_latency_improvement").value == 24.5
        assert claim_by_id("fig12_mean_tail_improvement").value == 22.0
        assert claim_by_id("fig10_mean_erase_reduction").value == 35.5

    def test_every_eval_figure_has_a_claim(self):
        figures = {c.figure for c in PAPER_CLAIMS}
        for fig in ("Figure 9", "Figure 10", "Figure 11", "Figure 12",
                    "Figure 14", "Figure 15", "Figure 1", "Figure 5"):
            assert fig in figures

    def test_unique_ids(self):
        ids = [c.claim_id for c in PAPER_CLAIMS]
        assert len(ids) == len(set(ids))

    def test_unknown_claim(self):
        with pytest.raises(KeyError):
            claim_by_id("nope")


class TestComparisonRows:
    def test_measured_values_rendered(self):
        rows = comparison_rows({"fig9_mean_write_reduction": 23.4})
        row = next(r for r in rows if "200K" in r[1])
        assert row[2] == "29%"
        assert row[3] == "23.4%"

    def test_missing_measurement_dashed(self):
        rows = comparison_rows({})
        assert all(r[3] == "-" for r in rows)

    def test_row_per_claim(self):
        assert len(comparison_rows({})) == len(PAPER_CLAIMS)


class TestMeanImprovement:
    def test_mean(self):
        assert mean_improvement({"a": 10.0, "b": 20.0}) == 15.0

    def test_empty(self):
        assert mean_improvement({}) == 0.0

"""KV scenario smoke: end-to-end keyed runs, the pool ablation, and
jobs=1 vs jobs=N digest identity on the KV engine (``make kv-smoke``)."""

import pytest

from repro.kv import (
    KVSpec,
    execute_kv_spec,
    kv_result_digest,
    run_kv_ablation,
    run_kv_specs,
)

#: Small enough for CI, large enough to exercise GC/repack/revival.
SMOKE_SCALE = 0.05


@pytest.mark.kv_smoke
class TestKVEndToEnd:
    def test_ycsb_a_revives_with_pool(self):
        kv = execute_kv_spec(
            KVSpec(workload="ycsb-a", system="mq-dvp", scale=SMOKE_SCALE)
        )
        assert kv.result.counters.host_writes > 0
        assert kv.result.counters.short_circuits > 0
        assert kv.revival_rate > 0.0
        assert kv.kv_counters["pack_seals"] > 0
        assert kv.digest == kv_result_digest(kv.result, kv.kv_counters)

    def test_trim_heavy_issues_trims(self):
        kv = execute_kv_spec(
            KVSpec(workload="trim-heavy", system="mq-dvp",
                   scale=SMOKE_SCALE)
        )
        assert kv.result.counters.host_trims > 0
        assert kv.kv_counters["deletes"] > 0

    def test_dftl_composition_runs(self):
        kv = execute_kv_spec(
            KVSpec(workload="ycsb-a", system="dftl-mq-dvp",
                   scale=SMOKE_SCALE)
        )
        assert kv.result.counters.host_writes > 0
        assert kv.revival_rate > 0.0

    def test_reexecution_is_bit_identical(self):
        spec = KVSpec(workload="diurnal", system="mq-dvp",
                      scale=SMOKE_SCALE)
        assert execute_kv_spec(spec).digest == execute_kv_spec(spec).digest

    def test_seed_override_changes_digest(self):
        spec = KVSpec(workload="ycsb-a", system="mq-dvp",
                      scale=SMOKE_SCALE)
        reseeded = KVSpec(workload="ycsb-a", system="mq-dvp",
                          scale=SMOKE_SCALE, seed=999)
        assert execute_kv_spec(spec).digest != \
            execute_kv_spec(reseeded).digest


@pytest.mark.kv_smoke
class TestKVAblation:
    def test_pool_off_leg_never_revives(self):
        on, off = run_kv_ablation(
            KVSpec(workload="ycsb-a", system="mq-dvp", scale=SMOKE_SCALE)
        )
        assert on.revival_rate > 0.0
        assert off.revival_rate == 0.0
        assert off.spec.system == "baseline"
        # Same keyed traffic on both legs: the stores behaved identically.
        assert on.kv_counters == off.kv_counters
        assert on.write_amplification < off.write_amplification

    def test_unablatable_system_raises(self):
        spec = KVSpec(workload="ycsb-a", system="baseline",
                      scale=SMOKE_SCALE)
        with pytest.raises(ValueError, match="no pool to ablate"):
            spec.pool_off()


@pytest.mark.kv_smoke
class TestKVParallelDeterminism:
    def test_jobs_2_matches_serial(self):
        specs = [
            KVSpec(workload=workload, system=system, scale=SMOKE_SCALE)
            for workload in ("ycsb-a", "trim-heavy")
            for system in ("mq-dvp", "baseline")
        ]
        serial = run_kv_specs(specs, jobs=1)
        parallel = run_kv_specs(specs, jobs=2)
        assert [kv.digest for kv in serial] == \
            [kv.digest for kv in parallel]
        assert [kv.kv_counters for kv in serial] == \
            [kv.kv_counters for kv in parallel]

    def test_results_come_back_in_spec_order(self):
        specs = [
            KVSpec(workload=workload, system="mq-dvp", scale=SMOKE_SCALE)
            for workload in ("ycsb-b", "ycsb-a")
        ]
        results = run_kv_specs(specs, jobs=2)
        assert [kv.spec.workload for kv in results] == ["ycsb-b", "ycsb-a"]

"""Unit tests for the per-block state machine (NAND constraints)."""

import pytest

from repro.flash.block import Block, PageState


class TestProgramming:
    def test_programs_in_order(self):
        block = Block(4)
        assert [block.program_next() for _ in range(4)] == [0, 1, 2, 3]

    def test_program_full_block_raises(self):
        block = Block(2)
        block.program_next()
        block.program_next()
        with pytest.raises(RuntimeError):
            block.program_next()

    def test_counters_track_programs(self):
        block = Block(8)
        block.program_next()
        block.program_next()
        assert block.valid_count == 2
        assert block.free_pages == 6
        assert not block.is_full


class TestInvalidation:
    def test_valid_to_invalid(self):
        block = Block(4)
        page = block.program_next()
        block.invalidate(page)
        assert block.state_of(page) is PageState.INVALID
        assert block.valid_count == 0
        assert block.invalid_count == 1

    def test_cannot_invalidate_free_page(self):
        block = Block(4)
        with pytest.raises(RuntimeError):
            block.invalidate(0)

    def test_cannot_invalidate_twice(self):
        block = Block(4)
        page = block.program_next()
        block.invalidate(page)
        with pytest.raises(RuntimeError):
            block.invalidate(page)


class TestRevival:
    def test_invalid_back_to_valid(self):
        """The dead-value-pool hit path: INVALID -> VALID, no flash op."""
        block = Block(4)
        page = block.program_next()
        block.invalidate(page)
        block.revive(page)
        assert block.state_of(page) is PageState.VALID
        assert block.valid_count == 1
        assert block.invalid_count == 0

    def test_cannot_revive_valid_page(self):
        block = Block(4)
        page = block.program_next()
        with pytest.raises(RuntimeError):
            block.revive(page)

    def test_cannot_revive_free_page(self):
        block = Block(4)
        with pytest.raises(RuntimeError):
            block.revive(0)

    def test_revive_then_invalidate_again(self):
        block = Block(4)
        page = block.program_next()
        block.invalidate(page)
        block.revive(page)
        block.invalidate(page)
        assert block.invalid_count == 1


class TestErase:
    def test_erase_resets_everything(self):
        block = Block(4)
        for _ in range(4):
            block.invalidate(block.program_next())
        block.erase()
        assert block.valid_count == 0
        assert block.invalid_count == 0
        assert block.write_pointer == 0
        assert block.erase_count == 1
        # States are packed bytes; erase must memset them all back to FREE.
        assert bytes(block.states) == bytes(block.pages_per_block)
        assert all(
            block.state_of(page) is PageState.FREE
            for page in range(block.pages_per_block)
        )

    def test_erase_with_valid_data_refused(self):
        block = Block(4)
        block.program_next()
        with pytest.raises(RuntimeError):
            block.erase()

    def test_erase_count_accumulates_wear(self):
        block = Block(2)
        for _ in range(3):
            block.invalidate(block.program_next())
            block.invalidate(block.program_next())
            block.erase()
        assert block.erase_count == 3

    def test_reprogram_after_erase(self):
        block = Block(2)
        block.invalidate(block.program_next())
        block.invalidate(block.program_next())
        block.erase()
        assert block.program_next() == 0


class TestPageIndexes:
    def test_valid_and_invalid_page_indexes(self):
        block = Block(6)
        pages = [block.program_next() for _ in range(4)]
        block.invalidate(pages[1])
        block.invalidate(pages[3])
        assert block.valid_page_indexes() == [0, 2]
        assert block.invalid_page_indexes() == [1, 3]

    def test_invariants_hold(self):
        block = Block(8)
        for _ in range(5):
            block.program_next()
        block.invalidate(2)
        block.check_invariants()

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            Block(0)

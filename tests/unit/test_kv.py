"""Unit tests for the KV translation layer (requests, inline packing,
store) and the keyed workload zoo."""

import itertools
import random

import pytest

from repro.kv.inline import InlinePacker, InlineSlot, pack_value_id
from repro.kv.requests import KVOp, KVRequest, key_to_int, mix64
from repro.kv.store import KVStore, page_value_id
from repro.kv.zoo import (
    KV_WORKLOADS,
    KVWorkload,
    interleave_kv_tenants,
    kv_workload,
    load_stream,
    txn_stream,
)
from repro.sim.request import OpType


class TestKeyMixing:
    def test_mix64_is_deterministic_and_64bit(self):
        assert mix64(0) == mix64(0)
        assert 0 <= mix64(123456789) < (1 << 64)
        # Distinct small ints spread apart (the finaliser's whole point).
        assert len({mix64(i) for i in range(1000)}) == 1000

    def test_string_keys_avoid_builtin_hash(self):
        # sha256-based: a fixed value across processes and runs.
        assert key_to_int("user/42") == key_to_int("user/42")
        assert key_to_int("user/42") != key_to_int("user/43")

    def test_int_and_str_namespaces_do_not_trivially_collide(self):
        assert key_to_int(7) != key_to_int("7")

    def test_invalid_keys(self):
        with pytest.raises(TypeError):
            key_to_int(3.5)
        with pytest.raises(TypeError):
            key_to_int(True)
        with pytest.raises(ValueError):
            key_to_int(-1)

    def test_request_validation(self):
        with pytest.raises(ValueError, match="PUT requires"):
            KVRequest(0.0, KVOp.PUT, 1)
        with pytest.raises(ValueError, match="SCAN requires"):
            KVRequest(0.0, KVOp.SCAN, 1)
        with pytest.raises(ValueError, match="arrival_us"):
            KVRequest(-1.0, KVOp.GET, 1)


class TestPackValueId:
    def test_identical_membership_identical_identity(self):
        slots = [InlineSlot(key_to_int(k), 10 + k, 100) for k in range(5)]
        assert pack_value_id(slots) == pack_value_id(list(slots))

    def test_order_sensitive(self):
        slots = [InlineSlot(key_to_int(k), 10 + k, 100) for k in range(5)]
        assert pack_value_id(slots) != pack_value_id(slots[::-1])

    def test_content_sensitive(self):
        a = [InlineSlot(key_to_int(1), 10, 100)]
        b = [InlineSlot(key_to_int(1), 11, 100)]
        assert pack_value_id(a) != pack_value_id(b)


class _Alloc:
    """Deterministic LPN allocator harness for packer tests."""

    def __init__(self):
        self.next = 0
        self.released = []

    def alloc(self):
        lpn = self.next
        self.next += 1
        return lpn

    def release(self, lpn):
        self.released.append(lpn)


class TestInlinePacker:
    def make(self, page_bytes=1000, threshold=0.5):
        alloc = _Alloc()
        packer = InlinePacker(
            page_bytes, alloc.alloc, alloc.release,
            repack_threshold=threshold,
        )
        return packer, alloc

    def test_seals_when_buffer_overflows(self):
        packer, _ = self.make()
        actions = []
        for key in range(3):
            actions += packer.add(key, InlineSlot(key_to_int(key), key, 400))
        # Third add overflows the 1000-byte page: one seal of keys 0-1.
        writes = [a for a in actions if a[0] == "write"]
        assert len(writes) == 1
        assert packer.sealed_pages == 1
        assert packer.buffered_count == 1
        assert packer.lpn_of(0) == writes[0][1]
        assert packer.lpn_of(2) is None  # still buffered

    def test_kill_empty_page_trims(self):
        packer, alloc = self.make()
        for key in range(2):
            packer.add(key, InlineSlot(key_to_int(key), key, 400))
        packer.flush()
        actions = packer.kill(0) + packer.kill(1)
        trims = [a for a in actions if a[0] == "trim"]
        assert len(trims) == 1
        assert alloc.released == [trims[0][1]]
        assert packer.live_count == 0

    def test_repack_preserves_identity(self):
        """Survivors re-sealed after a repack reproduce the value_id a
        direct seal of the same membership produces — the property that
        makes repack traffic revivable."""
        packer, _ = self.make(threshold=0.6)
        for key in range(4):
            packer.add(key, InlineSlot(key_to_int(key), 100 + key, 250))
        packer.flush()
        # Kill 0 and 1: live fraction 0.5 < 0.6 triggers a repack after
        # the second kill; survivors (2, 3) go back to the open buffer.
        packer.kill(0)
        actions = packer.kill(1)
        assert [a[0] for a in actions] == ["read", "trim"]
        assert packer.buffered_count == 2
        seal = packer.flush()
        expected = pack_value_id([
            InlineSlot(key_to_int(2), 102, 250),
            InlineSlot(key_to_int(3), 103, 250),
        ])
        assert seal[0][2] == expected

    def test_double_add_raises(self):
        packer, _ = self.make()
        packer.add(1, InlineSlot(key_to_int(1), 0, 100))
        with pytest.raises(ValueError, match="already packed"):
            packer.add(1, InlineSlot(key_to_int(1), 0, 100))


class TestKVStore:
    def collect(self, iterator):
        return list(iterator)

    def test_large_put_allocates_extent(self):
        store = KVStore(page_bytes=4096)
        requests = self.collect(store.put(1, 10_000, 7, 0.0))
        assert [r.op for r in requests] == [OpType.WRITE] * 3
        assert [r.lpn for r in requests] == [0, 1, 2]
        assert requests[0].value_id == page_value_id(7, 0)
        assert store.live_keys == 1

    def test_same_content_same_page_identities(self):
        store = KVStore(page_bytes=4096)
        a = self.collect(store.put(1, 10_000, 7, 0.0))
        b = self.collect(store.put(2, 10_000, 7, 0.0))
        assert [r.value_id for r in a] == [r.value_id for r in b]

    def test_overwrite_reuses_pages_and_trims_shrink(self):
        store = KVStore(page_bytes=4096)
        self.collect(store.put(1, 12_000, 7, 0.0))   # 3 pages: 0,1,2
        requests = self.collect(store.put(1, 5_000, 8, 1.0))  # 2 pages
        trims = [r for r in requests if r.op == OpType.TRIM]
        writes = [r for r in requests if r.op == OpType.WRITE]
        assert [r.lpn for r in writes] == [0, 1]    # reused in place
        assert [r.lpn for r in trims] == [2]        # the shrink excess
        # The freed page is reused by the next extent.
        nxt = self.collect(store.put(2, 4_000, 9, 2.0))
        assert nxt[0].lpn == 2

    def test_extent_to_inline_transition_trims_extent(self):
        store = KVStore(page_bytes=4096)
        self.collect(store.put(1, 8_192, 7, 0.0))   # 2-page extent
        requests = self.collect(store.put(1, 100, 8, 1.0))  # now inline
        assert [r.op for r in requests] == [OpType.TRIM, OpType.TRIM]
        assert 1 in store.packer

    def test_delete_trims_every_page(self):
        store = KVStore(page_bytes=4096)
        self.collect(store.put(1, 10_000, 7, 0.0))
        requests = self.collect(store.delete(1, 1.0))
        assert [r.op for r in requests] == [OpType.TRIM] * 3
        assert store.live_keys == 0
        assert self.collect(store.get(1, 2.0)) == []
        assert store.stats.get_misses == 1

    def test_get_reads_extent_or_pack_page(self):
        store = KVStore(page_bytes=4096)
        self.collect(store.put(1, 9_000, 7, 0.0))
        reads = self.collect(store.get(1, 1.0))
        assert [r.op for r in reads] == [OpType.READ] * 3
        # A buffered inline value costs no flash read.
        self.collect(store.put(2, 100, 8, 2.0))
        assert self.collect(store.get(2, 3.0)) == []
        assert store.stats.buffer_hits == 1
        # Sealed: one page read.
        self.collect(store.flush(4.0))
        assert len(self.collect(store.get(2, 5.0))) == 1

    def test_scan_skips_missing_keys(self):
        store = KVStore(page_bytes=4096)
        for key in (3, 5):
            self.collect(store.put(key, 4_096, key, 0.0))
        requests = self.collect(store.scan(2, 5, 1.0))
        assert [r.lpn for r in requests] == [0, 1]
        assert store.stats.scanned_keys == 2
        with pytest.raises(TypeError):
            self.collect(store.scan("a", 3, 1.0))

    def test_translate_is_lazy(self):
        store = KVStore(page_bytes=4096)

        def endless():
            for key in itertools.count():
                yield KVRequest(float(key), KVOp.PUT, key,
                                value_bytes=4_096, content_id=key)

        stream = store.translate(endless())
        first = [next(stream) for _ in range(5)]
        assert [r.lpn for r in first] == [0, 1, 2, 3, 4]

    def test_max_pages_guard(self):
        store = KVStore(page_bytes=4096, max_pages=2)
        list(store.put(1, 8_192, 7, 0.0))
        with pytest.raises(RuntimeError, match="exhausted"):
            list(store.put(2, 4_096, 8, 1.0))


class TestZooStreams:
    def test_registry_shapes(self):
        assert set(KV_WORKLOADS) == {
            "ycsb-a", "ycsb-b", "ycsb-c", "ycsb-d", "ycsb-e",
            "trim-heavy", "diurnal",
        }
        for workload in KV_WORKLOADS.values():
            props = (workload.read_prop + workload.update_prop
                     + workload.insert_prop + workload.delete_prop
                     + workload.scan_prop)
            assert props == pytest.approx(1.0)
        with pytest.raises(ValueError, match="unknown KV workload"):
            kv_workload("nope")

    def test_streams_are_lazy_and_deterministic(self):
        workload = kv_workload("ycsb-a").scaled(0.05)
        stream = txn_stream(workload)
        head = [next(stream) for _ in range(10)]
        # Re-deriving the stream reproduces it exactly (generators are
        # pure functions of the frozen workload).
        again = list(itertools.islice(txn_stream(workload), 10))
        assert head == again

    def test_reseeding_changes_the_stream(self):
        workload = kv_workload("ycsb-a").scaled(0.05)
        a = list(itertools.islice(txn_stream(workload), 50))
        b = list(itertools.islice(
            txn_stream(workload.reseeded(999)), 50
        ))
        assert a != b

    def test_streamed_equals_materialized(self):
        """Digest parity: consuming lazily request-by-request sees the
        identical sequence a full materialisation sees."""
        for name in ("ycsb-a", "trim-heavy", "diurnal"):
            workload = kv_workload(name).scaled(0.02)
            materialized = list(txn_stream(workload))
            streamed = []
            stream = txn_stream(workload)
            for request in stream:
                streamed.append(request)
            assert streamed == materialized

    def test_arrival_order_is_monotone(self):
        for name in ("ycsb-a", "diurnal"):
            workload = kv_workload(name).scaled(0.02)
            arrivals = [r.arrival_us for r in txn_stream(workload)]
            assert arrivals == sorted(arrivals)

    def test_load_inserts_every_key_once(self):
        workload = kv_workload("ycsb-b").scaled(0.05)
        load = list(load_stream(workload))
        assert len(load) == workload.num_keys
        assert all(r.op is KVOp.PUT for r in load)
        assert len({r.key for r in load}) == workload.num_keys

    def test_trim_heavy_emits_deletes(self):
        workload = kv_workload("trim-heavy").scaled(0.05)
        ops = [r.op for r in txn_stream(workload)]
        assert ops.count(KVOp.DELETE) > 0

    def test_scan_heavy_emits_scans(self):
        workload = kv_workload("ycsb-e").scaled(0.05)
        requests = list(txn_stream(workload))
        scans = [r for r in requests if r.op is KVOp.SCAN]
        assert scans and all(r.scan_length >= 1 for r in scans)


class TestInterleaveKvTenants:
    def put(self, t, key, content):
        return KVRequest(t, KVOp.PUT, key, value_bytes=100,
                         content_id=content)

    def test_namespaces_are_private(self):
        merged = list(interleave_kv_tenants(
            [[self.put(0.0, 1, 5)], [self.put(1.0, 1, 5)]],
            key_space=10, content_space=100,
        ))
        assert [r.key for r in merged] == [1, 11]
        assert merged[0].content_id != merged[1].content_id

    def test_key_overflow_raises(self):
        with pytest.raises(ValueError, match="private key space"):
            list(interleave_kv_tenants(
                [[self.put(0.0, 12, 5)]], key_space=10,
            ))

    def test_content_overflow_raises_unless_shared(self):
        streams = [[self.put(0.0, 1, 105)]]
        with pytest.raises(ValueError, match="private namespace"):
            list(interleave_kv_tenants(
                streams, key_space=10, content_space=100,
            ))
        merged = list(interleave_kv_tenants(
            [[self.put(0.0, 1, 105)]], key_space=10, content_space=100,
            share_contents=True,
        ))
        assert merged[0].content_id == 105

    def test_string_keys_get_tenant_prefix(self):
        merged = list(interleave_kv_tenants(
            [[KVRequest(0.0, KVOp.GET, "a")],
             [KVRequest(1.0, KVOp.GET, "a")]],
            key_space=10,
        ))
        assert [r.key for r in merged] == ["tenant0/a", "tenant1/a"]

    def test_merge_orders_by_arrival(self):
        merged = list(interleave_kv_tenants(
            [[self.put(5.0, 1, 1)], [self.put(2.0, 1, 2)],
             [self.put(9.0, 1, 3)]],
            key_space=10,
        ))
        assert [r.arrival_us for r in merged] == [2.0, 5.0, 9.0]

    def test_diurnal_zoo_profile_respects_namespaces(self):
        # The zoo's own multi-tenant stream passes its validation
        # end-to-end (keys always fit tenant_key_space).
        workload = kv_workload("diurnal").scaled(0.02)
        requests = list(txn_stream(workload))
        assert requests
        spaces = {r.key // workload.tenant_key_space
                  for r in requests if isinstance(r.key, int)}
        assert spaces == set(range(workload.tenants))


class TestWorkloadConfig:
    def test_validation(self):
        with pytest.raises(ValueError, match="sum"):
            KVWorkload("bad", read_prop=0.5)
        with pytest.raises(ValueError, match="amplitude"):
            KVWorkload("bad", read_prop=1.0, diurnal_amplitude=1.5)
        with pytest.raises(ValueError, match="length mismatch"):
            KVWorkload("bad", read_prop=1.0, value_sizes=(1, 2),
                       value_size_weights=(1.0,))

    def test_scaled_floors(self):
        tiny = kv_workload("ycsb-a").scaled(0.0001)
        assert tiny.num_keys >= 64
        assert tiny.num_requests >= 256
        with pytest.raises(ValueError):
            kv_workload("ycsb-a").scaled(0)

    def test_estimated_pages_positive_and_monotone(self):
        workload = kv_workload("ycsb-a")
        assert workload.estimated_pages() > 0
        assert (workload.scaled(2.0).estimated_pages()
                > workload.estimated_pages())

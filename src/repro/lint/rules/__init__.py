"""Rule family modules; importing them populates the registry.

``det``     determinism (wall clocks, global RNG, set iteration, environ)
``layer``   import-DAG layering and cycle detection
``proto``   protocol-surface completeness (pools, FTL hooks)
``frozen``  frozen-dataclass hygiene and RunSpec picklability
"""

from . import det, frozen, layer, proto  # noqa: F401

__all__ = ["det", "frozen", "layer", "proto"]

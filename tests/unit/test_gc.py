"""Unit tests for GC victim policies and the collection loop."""

from typing import List, Tuple

import pytest

from repro.flash.array import FlashArray
from repro.ftl.allocator import PageAllocator
from repro.ftl.gc import (
    GarbageCollector,
    GCWork,
    GreedyVictimPolicy,
    PopularityAwareVictimPolicy,
)


class RecordingDelegate:
    """Minimal GC delegate that records calls and keeps a reverse map."""

    def __init__(self):
        self.relocations: List[Tuple[int, int]] = []
        self.erased: List[Tuple[int, List[int]]] = []

    def relocate_page(self, old_ppn: int, new_ppn: int) -> None:
        self.relocations.append((old_ppn, new_ppn))

    def erase_cleanup(self, block_global: int, invalid_ppns: List[int]) -> None:
        self.erased.append((block_global, list(invalid_ppns)))


def fill_block(array: FlashArray, allocator: PageAllocator, plane: int,
               invalid_pages: int) -> int:
    """Fill one block in ``plane``; invalidate its first N pages."""
    ppb = array.config.pages_per_block
    ppns = [allocator.allocate_in_plane(plane) for _ in range(ppb)]
    for ppn in ppns[:invalid_pages]:
        array.invalidate(ppn)
    return array.geometry.block_of_ppn(ppns[0])


@pytest.fixture
def setup(tiny_config):
    array = FlashArray(tiny_config)
    allocator = PageAllocator(array)
    delegate = RecordingDelegate()
    pop = {}
    collector = GarbageCollector(
        array, allocator, GreedyVictimPolicy(), delegate,
        garbage_popularity_of=lambda b: pop.get(b, 0),
    )
    return array, allocator, delegate, collector, pop


class TestGreedyPolicy:
    def test_picks_most_invalid(self, setup):
        array, allocator, _, _, _ = setup
        b1 = fill_block(array, allocator, 0, invalid_pages=3)
        b2 = fill_block(array, allocator, 0, invalid_pages=10)
        policy = GreedyVictimPolicy()
        assert policy.select([b1, b2], array, lambda b: 0) == b2

    def test_skips_fully_valid(self, setup):
        array, allocator, _, _, _ = setup
        b1 = fill_block(array, allocator, 0, invalid_pages=0)
        policy = GreedyVictimPolicy()
        assert policy.select([b1], array, lambda b: 0) is None

    def test_empty_candidates(self, setup):
        array, _, _, _, _ = setup
        assert GreedyVictimPolicy().select([], array, lambda b: 0) is None


class TestPopularityAwarePolicy:
    def test_avoids_popular_garbage(self, setup):
        """Section IV-D: between equal-invalid blocks, prefer the one whose
        garbage is unpopular (its dead values are unlikely to be reborn)."""
        array, allocator, _, _, _ = setup
        b1 = fill_block(array, allocator, 0, invalid_pages=5)
        b2 = fill_block(array, allocator, 0, invalid_pages=5)
        pop = {b1: 5 * 255, b2: 0}  # b1's garbage is maximally popular
        policy = PopularityAwareVictimPolicy(weight=1.0)
        assert policy.select([b1, b2], array, lambda b: pop.get(b, 0)) == b2

    def test_reclaim_benefit_still_dominates(self, setup):
        """A much fuller victim wins when its garbage is only moderately
        popular: each fully-popular (255) garbage page cancels one page of
        reclaim benefit, so 12 pages at popularity 100 cost ~4.7 pages."""
        array, allocator, _, _, _ = setup
        b1 = fill_block(array, allocator, 0, invalid_pages=12)
        b2 = fill_block(array, allocator, 0, invalid_pages=2)
        pop = {b1: 12 * 100, b2: 0}
        policy = PopularityAwareVictimPolicy(weight=1.0)
        assert policy.select([b1, b2], array, lambda b: pop.get(b, 0)) == b1

    def test_weight_zero_reduces_to_greedy(self, setup):
        array, allocator, _, _, _ = setup
        b1 = fill_block(array, allocator, 0, invalid_pages=5)
        b2 = fill_block(array, allocator, 0, invalid_pages=6)
        pop = {b2: 6 * 255}
        policy = PopularityAwareVictimPolicy(weight=0.0)
        assert policy.select([b1, b2], array, lambda b: pop.get(b, 0)) == b2

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            PopularityAwareVictimPolicy(weight=-1.0)


class TestCollectionLoop:
    def test_no_collection_above_watermark(self, setup):
        array, allocator, delegate, collector, _ = setup
        work = collector.maybe_collect(0)
        assert work.erase_count == 0
        assert collector.invocations == 0

    def _drain_plane(self, array, allocator, tiny_config, plane=0):
        """Consume free blocks until the watermark trips."""
        while allocator.free_block_count(plane) >= 2:
            fill_block(array, allocator, plane, invalid_pages=8)

    def test_collects_when_low(self, setup, tiny_config):
        array, allocator, delegate, collector, _ = setup
        self._drain_plane(array, allocator, tiny_config)
        work = collector.maybe_collect(0)
        assert work.erase_count >= 1
        assert work.reclaimed_pages > 0
        assert collector.invocations == 1

    def test_relocations_preserve_valid_data(self, setup, tiny_config):
        array, allocator, delegate, collector, _ = setup
        self._drain_plane(array, allocator, tiny_config)
        before_valid = array.valid_pages
        work = collector.maybe_collect(0)
        assert array.valid_pages == before_valid  # relocation conserves
        assert delegate.relocations == work.relocations
        # every relocation's destination is valid and in the same plane
        for old, new in work.relocations:
            assert array.geometry.split_ppn(old)[0] == array.geometry.split_ppn(new)[0]

    def test_erase_cleanup_reports_garbage_ppns(self, setup, tiny_config):
        array, allocator, delegate, collector, _ = setup
        self._drain_plane(array, allocator, tiny_config)
        collector.maybe_collect(0)
        assert delegate.erased
        block, invalid_ppns = delegate.erased[0]
        assert invalid_ppns  # the victim had garbage
        first = array.geometry.first_ppn_of_block(block)
        assert all(first <= p < first + tiny_config.pages_per_block
                   for p in invalid_ppns)

    def test_incremental_bound(self, setup, tiny_config):
        array, allocator, delegate, collector, _ = setup
        self._drain_plane(array, allocator, tiny_config)
        work = collector.maybe_collect(0)
        assert work.erase_count <= collector.max_blocks_per_invocation

    def test_validation(self, setup):
        array, allocator, delegate, _, _ = setup
        with pytest.raises(ValueError):
            GarbageCollector(array, allocator, GreedyVictimPolicy(), delegate,
                             lambda b: 0, low_watermark=0)
        with pytest.raises(ValueError):
            GarbageCollector(array, allocator, GreedyVictimPolicy(), delegate,
                             lambda b: 0, max_blocks_per_invocation=0)

    def test_gcwork_merge(self):
        a = GCWork(relocations=[(1, 2)], erased_blocks=[0], reclaimed_pages=4)
        b = GCWork(relocations=[(3, 4)], erased_blocks=[1], reclaimed_pages=2)
        a.merge(b)
        assert a.relocation_count == 2
        assert a.erase_count == 2
        assert a.reclaimed_pages == 6

"""Unit tests for the correctness harness (repro.check).

The three seeded-corruption cases are the acceptance gate: each plants
one specific inconsistency in an otherwise healthy FTL and asserts the
audit reports the *named* violation kind — proving the sanitizer detects
exactly the class of bug it claims to.
"""

import pytest

from repro.check import InvariantChecker, InvariantViolation, OracleFTL, audit
from repro.core.dvp import MQDeadValuePool
from repro.core.hashing import fingerprint_of_value as fp
from repro.ftl.ftl import BaseFTL


def healthy_ftl(config, pool_capacity=64):
    """A small FTL with an MQ pool and a little history on it."""
    ftl = BaseFTL(config, pool=MQDeadValuePool(pool_capacity))
    for lpn in range(24):
        ftl.write(lpn, fp(lpn % 7))
    for lpn in range(12):
        ftl.write(lpn, fp((lpn % 7) + 100))  # invalidate -> pool fills
    return ftl


def kinds_of(violations):
    return {violation.kind for violation in violations}


class TestAuditOnHealthyState:
    def test_fresh_ftl_is_clean(self, tiny_config):
        assert audit(BaseFTL(tiny_config)) == []

    def test_exercised_ftl_is_clean(self, tiny_config):
        ftl = healthy_ftl(tiny_config)
        assert audit(ftl) == []

    def test_clean_after_trim_and_gc(self, tiny_config):
        ftl = healthy_ftl(tiny_config)
        for lpn in (0, 3, 5):
            ftl.trim(lpn)
        # Push enough writes to exhaust free pages and force collection
        # (tiny_config has 1024 raw pages).
        for i in range(2500):
            ftl.write(i % 20, fp(i))
        assert ftl.counters.gc_erases > 0
        assert audit(ftl) == []


class TestSeededCorruptions:
    """Acceptance: three deliberate corruptions, each detected by name."""

    def test_orphan_ppn_in_pool(self, tiny_config):
        ftl = healthy_ftl(tiny_config)
        # Track a FREE page as revivable garbage: the pool now promises
        # content that no flash page holds.
        free_ppn = next(
            ppn for ppn in range(ftl.config.total_pages)
            if ftl.array.state_of(ppn).name == "FREE"
        )
        ftl.pool.insert_garbage(fp(9999), free_ppn, now=0, popularity=1)
        assert "pool.orphan-ppn" in kinds_of(audit(ftl))

    def test_double_valid_page(self, tiny_config):
        ftl = healthy_ftl(tiny_config)
        # Resurrect a dead page behind the FTL's back: a VALID page no
        # LPN references (the signature of a botched revival).
        dead_ppn = next(iter(ftl._garbage_pop_of_ppn))
        ftl.array.revive(dead_ppn)
        found = kinds_of(audit(ftl))
        assert "array.unmapped-valid" in found
        # The pool still tracks it as garbage, which is also wrong.
        assert "pool.orphan-ppn" in found

    def test_leaked_free_block(self, tiny_config):
        ftl = healthy_ftl(tiny_config)
        plane = next(
            p for p, blocks in enumerate(ftl.allocator.free_blocks)
            if blocks
        )
        ftl.allocator.free_blocks[plane].pop()
        assert "allocator.leaked-block" in kinds_of(audit(ftl))


class TestMoreCorruptions:
    def test_stale_forward_entry(self, tiny_config):
        ftl = healthy_ftl(tiny_config)
        lpn = 0
        # Point the mapping at a dead page without invalidating the old
        # copy or fixing the side structures.
        dead_ppn = next(iter(ftl._garbage_pop_of_ppn))
        ftl.mapping._l2p[lpn] = dead_ppn
        ftl.mapping._attach(lpn, dead_ppn)
        found = kinds_of(audit(ftl))
        assert "mapping.reverse-stale" in found
        assert "mapping.dead-ppn" in found

    def test_skewed_array_counter(self, tiny_config):
        ftl = healthy_ftl(tiny_config)
        ftl.array.valid_pages += 1
        assert "array.accounting" in kinds_of(audit(ftl))

    def test_popularity_leak(self, tiny_config):
        ftl = healthy_ftl(tiny_config)
        ppn = next(iter(ftl._garbage_pop_of_ppn))
        # Drop the pool's knowledge but keep the popularity record.
        pool_fp = ftl._ppn_fp[ppn]
        ftl.pool.discard_ppn(pool_fp, ppn)
        assert "pool.popularity-leak" in kinds_of(audit(ftl))

    def test_trim_order_violation(self, tiny_config):
        ftl = healthy_ftl(tiny_config)
        lpn = next(iter(ftl.mapping.forward_items()))
        # Journal a trim newer than the LPN's live copy.
        ftl._oob_seq += 1
        ftl._oob_trims[lpn] = ftl._oob_seq
        found = kinds_of(audit(ftl))
        assert "oob.trim-order" in found
        # Recovery replay would now drop the live copy too.
        assert "oob.recovery-divergence" in found


class TestCheckerHarness:
    def test_interval_validated(self):
        with pytest.raises(ValueError):
            InvariantChecker(interval=0)

    def test_audits_fire_on_interval(self, tiny_config):
        ftl = BaseFTL(tiny_config, pool=MQDeadValuePool(32))
        checker = InvariantChecker(interval=10)
        ftl.attach_checker(checker)
        for i in range(25):
            ftl.write(i % 8, fp(i))
        assert checker.events == 25
        assert checker.audits == 2

    def test_checker_raises_on_live_corruption(self, tiny_config):
        ftl = healthy_ftl(tiny_config)
        ftl.attach_checker(InvariantChecker(interval=5))
        ftl.array.valid_pages += 3  # skew the conservation law
        with pytest.raises(InvariantViolation) as excinfo:
            ftl.write(0, fp(12345))
        assert excinfo.value.kind == "array.accounting"
        assert "accounted" in excinfo.value.diff

    def test_violation_message_carries_diff(self):
        violation = InvariantViolation(
            "pool.orphan-ppn", "detail text", {"ppn": 7}
        )
        assert "[pool.orphan-ppn]" in str(violation)
        assert "ppn = 7" in str(violation)

    def test_gc_hook_fires(self, tiny_config):
        ftl = BaseFTL(tiny_config, pool=MQDeadValuePool(32))
        ftl.attach_checker(InvariantChecker(interval=10_000))
        for i in range(2500):
            ftl.write(i % 20, fp(i))
        assert ftl.counters.gc_erases > 0
        assert ftl.checker.gc_checks > 0


class TestOracle:
    def test_lockstep_matches_device(self, tiny_config):
        ftl = BaseFTL(tiny_config, pool=MQDeadValuePool(32))
        oracle = OracleFTL()
        ftl.attach_checker(InvariantChecker(interval=50, oracle=oracle))
        for i in range(200):
            ftl.write(i % 16, fp(i % 5))
            ftl.read(i % 16)
        ftl.trim(3)
        assert oracle.value_at(3) is None
        assert len(oracle) == len(ftl.mapping.forward_items())

    def test_sync_from_adopts_prefilled_state(self, tiny_config):
        ftl = healthy_ftl(tiny_config)
        oracle = OracleFTL()
        oracle.sync_from(ftl)
        assert len(oracle) == len(ftl.mapping.forward_items())
        lpn = next(iter(ftl.mapping.forward_items()))
        assert oracle.value_at(lpn) == ftl._ppn_fp[ftl.mapping.lookup(lpn)]

    def test_detects_lost_data(self, tiny_config):
        ftl = healthy_ftl(tiny_config)
        oracle = OracleFTL()
        ftl.attach_checker(InvariantChecker(interval=10_000, oracle=oracle))
        lpn = next(iter(ftl.mapping.forward_items()))
        # Silently drop the mapping: the next read returns the zero page
        # where the oracle knows data was written.
        ftl.mapping.unmap(lpn)
        with pytest.raises(InvariantViolation) as excinfo:
            ftl.read(lpn)
        assert excinfo.value.kind == "oracle.read"

    def test_detects_wrong_revival(self, tiny_config):
        ftl = healthy_ftl(tiny_config)
        oracle = OracleFTL()
        ftl.attach_checker(InvariantChecker(interval=10_000, oracle=oracle))
        # Corrupt the content index under every page the pool tracks for
        # one fingerprint, then write that fingerprint: whichever page
        # the pool revives serves the wrong bytes.
        target_fp = next(iter(ftl.pool.tracked_items()))[0]
        for pool_fp, ppn in list(ftl.pool.tracked_items()):
            if pool_fp == target_fp:
                ftl._ppn_fp[ppn] = fp(424242)
        with pytest.raises(InvariantViolation) as excinfo:
            ftl.write(1, target_fp)
        assert excinfo.value.kind in ("oracle.revival", "oracle.program")

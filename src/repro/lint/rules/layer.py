"""``layer.*`` — import-DAG enforcement.

The architecture is a strict layering (DESIGN.md §1): ``repro.core``
holds pure data structures (pools, MQ, hashing) usable from anywhere;
the device layers (``repro.flash``, ``repro.ftl``, ``repro.sim``) build
on core; the orchestration layers (``repro.experiments``, ``repro.perf``,
``repro.fleet``, ``repro.check``, ``repro.faults``) build on the device
layers.  Arrows only point downward:

* ``layer.core-purity`` — core imports none of the layers above it, so a
  pool can be unit-tested, pickled and reasoned about with zero device
  machinery in sight;
* ``layer.no-experiments`` — the simulator and FTL never reach up into
  the experiment harness (not even lazily inside a function: the
  dependency is the violation, not the import-time cost);
* ``layer.no-serve`` — :mod:`repro.serve` is the top of the stack (it
  orchestrates devices over the network); only the CLI front-end may
  import it.  Everything below — core, device layers, harnesses, even
  ``repro.api`` — must never reach up into it;
* ``layer.cycle`` — no module-level import cycles anywhere.  Lazy
  imports are exempt from *this* rule only, because a function-body
  import genuinely cannot deadlock module initialisation.
"""

from __future__ import annotations

from typing import Iterator, Tuple

from ..engine import Program
from ..registry import Rule, register_rule
from ..violations import Violation

__all__ = ["CorePurityRule", "CycleRule", "NoExperimentsRule", "NoServeRule"]


def _in_package(module: str, package: str) -> bool:
    return module == package or module.startswith(package + ".")


def _targets_package(target: str, package: str) -> bool:
    return target == package or target.startswith(package + ".")


@register_rule
class CorePurityRule(Rule):
    """``repro.core`` imports nothing from the layers above it."""

    code = "layer.core-purity"
    summary = "repro.core importing a higher layer (sim/ftl/experiments/...)"

    #: The layers core must never touch, lazily or otherwise.
    forbidden: Tuple[str, ...] = (
        "repro.sim", "repro.ftl", "repro.experiments",
        "repro.perf", "repro.fleet", "repro.check", "repro.faults",
        "repro.api", "repro.serve", "repro.kv",
    )

    def check(self, program: Program) -> Iterator[Violation]:
        for module in program.modules:
            if not _in_package(module.name, "repro.core"):
                continue
            for edge in program.import_graph.edges(
                module.name, include_lazy=True
            ):
                hit = next(
                    (
                        pkg for pkg in self.forbidden
                        if _targets_package(edge.target, pkg)
                    ),
                    None,
                )
                if hit is None:
                    continue
                yield Violation(
                    path=module.path,
                    line=edge.line,
                    col=edge.col,
                    code=self.code,
                    message=(
                        f"repro.core must stay pure but {module.name} "
                        f"imports {edge.target} ({hit} is a higher "
                        "layer); move the dependency up or the shared "
                        "piece down into core"
                    ),
                    context="<module>",
                )


@register_rule
class NoExperimentsRule(Rule):
    """The simulator and FTL never import the harness layer."""

    code = "layer.no-experiments"
    summary = "repro.sim/repro.ftl importing repro.experiments/repro.fleet"

    #: Device-layer packages barred from the harness.
    device_packages: Tuple[str, ...] = ("repro.sim", "repro.ftl")
    #: Harness-layer packages the device layers must never reach into.
    #: ``repro.fleet`` sits beside ``repro.experiments``: it orchestrates
    #: many devices, so a device importing it would invert the stack.
    #: ``repro.api`` serialises device *results*, so it too sits above
    #: the device layers.  ``repro.kv`` translates keyed workloads into
    #: page requests *for* a device — an orchestrator, never a
    #: dependency of one.
    harness_packages: Tuple[str, ...] = (
        "repro.experiments", "repro.fleet", "repro.api", "repro.kv",
    )

    def check(self, program: Program) -> Iterator[Violation]:
        for module in program.modules:
            if not any(
                _in_package(module.name, pkg)
                for pkg in self.device_packages
            ):
                continue
            for edge in program.import_graph.edges(
                module.name, include_lazy=True
            ):
                if not any(
                    _targets_package(edge.target, pkg)
                    for pkg in self.harness_packages
                ):
                    continue
                yield Violation(
                    path=module.path,
                    line=edge.line,
                    col=edge.col,
                    code=self.code,
                    message=(
                        f"{module.name} imports {edge.target}: the device "
                        "layers must not depend on the harness layer "
                        "(invert via a parameter, callback or a type in "
                        "repro.core)"
                    ),
                    context="<module>",
                )


@register_rule
class NoServeRule(Rule):
    """Only the CLI front-end may import :mod:`repro.serve`."""

    code = "layer.no-serve"
    summary = "a lower layer importing repro.serve (the top of the stack)"

    #: The only modules allowed to depend on the service layer: the CLI
    #: that launches it and the shared flag-group helpers it wires up.
    allowed_modules: Tuple[str, ...] = ("repro.cli", "repro.cliopts")

    def check(self, program: Program) -> Iterator[Violation]:
        for module in program.modules:
            if _in_package(module.name, "repro.serve"):
                continue
            if module.name in self.allowed_modules:
                continue
            for edge in program.import_graph.edges(
                module.name, include_lazy=True
            ):
                if not _targets_package(edge.target, "repro.serve"):
                    continue
                yield Violation(
                    path=module.path,
                    line=edge.line,
                    col=edge.col,
                    code=self.code,
                    message=(
                        f"{module.name} imports {edge.target}: repro.serve "
                        "is the top of the stack; nothing below the CLI "
                        "may depend on it (emit repro.api records instead)"
                    ),
                    context="<module>",
                )


@register_rule
class CycleRule(Rule):
    """No import-time cycles in the analyzed tree."""

    code = "layer.cycle"
    summary = "module-level import cycle"

    def check(self, program: Program) -> Iterator[Violation]:
        from ..imports import find_cycles

        adjacency = program.import_graph.adjacency(include_lazy=False)
        for cycle in find_cycles(adjacency):
            anchor_name = cycle[0]
            module = program.module_named(anchor_name)
            # Anchor the report at the import creating the first edge.
            line, col = 1, 1
            if module is not None:
                for edge in program.import_graph.edges(
                    anchor_name, include_lazy=False
                ):
                    if edge.target == cycle[1] or edge.target.startswith(
                        cycle[1] + "."
                    ):
                        line, col = edge.line, edge.col
                        break
            yield Violation(
                path=module.path if module is not None else anchor_name,
                line=line,
                col=col,
                code=self.code,
                message=(
                    "import cycle: " + " -> ".join(cycle)
                    + "; break it with a lazy import or by moving the "
                    "shared piece into a lower layer"
                ),
                context="<module>",
            )

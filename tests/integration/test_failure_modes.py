"""Failure-injection and edge-condition integration tests.

A reproduction must fail loudly, not wrongly: these tests drive the
system into its documented failure modes (drive exhaustion, invalid
inputs, degenerate configurations) and verify the behaviour is an
explicit error or a graceful degenerate result — never silent corruption.
"""

import pytest

from repro.core.dvp import MQDeadValuePool
from repro.core.hashing import fingerprint_of_value as fp
from repro.flash.config import SSDConfig
from repro.ftl.allocator import OutOfSpaceError
from repro.ftl.ftl import BaseFTL
from repro.sim.request import IORequest, OpType
from repro.sim.ssd import SimulatedSSD, replay


def tiny_drive(**overrides):
    params = dict(
        channels=1, chips_per_channel=1, dies_per_chip=1, planes_per_die=1,
        blocks_per_plane=6, pages_per_block=4, overprovision=0.15,
    )
    params.update(overrides)
    return SSDConfig(**params)


class TestDriveExhaustion:
    def test_filling_every_logical_page_succeeds(self):
        config = tiny_drive()
        ftl = BaseFTL(config)
        for lpn in range(config.logical_pages):
            ftl.write(lpn, fp(lpn))
        ftl.check_invariants()

    def test_overcommit_beyond_logical_space_rejected(self):
        config = tiny_drive()
        ftl = BaseFTL(config)
        with pytest.raises(ValueError):
            ftl.write(config.logical_pages, fp(1))

    def test_sustained_churn_on_full_drive_never_strands(self):
        """With every logical page mapped and a *viable* amount of
        over-provisioning (at least ~3 blocks of slack per plane, enough
        for the two active blocks plus relocation headroom), heavy
        overwrites must keep succeeding forever via GC."""
        config = tiny_drive(blocks_per_plane=8, overprovision=0.4)
        ftl = BaseFTL(config)
        for lpn in range(config.logical_pages):
            ftl.write(lpn, fp(lpn))
        for i in range(config.total_pages * 4):
            ftl.write(i % config.logical_pages, fp(10_000 + i))
        ftl.check_invariants()
        assert ftl.counters.gc_erases > 0

    def test_infeasible_overprovisioning_fails_loudly(self):
        """Below the viability floor (spare space smaller than the active
        blocks + relocation reserve), the drive eventually deadlocks — and
        must say so via OutOfSpaceError, never corrupt state."""
        config = tiny_drive(blocks_per_plane=8, overprovision=0.15)
        ftl = BaseFTL(config)  # 32 raw vs 27 logical: ~1.25 blocks slack
        for lpn in range(config.logical_pages):
            ftl.write(lpn, fp(lpn))
        with pytest.raises(OutOfSpaceError):
            for i in range(config.total_pages * 4):
                ftl.write(i % config.logical_pages, fp(10_000 + i))
        # the failure left the structures consistent
        ftl.mapping.check_invariants()
        ftl.array.check_invariants()

    def test_unwritable_drive_raises_out_of_space(self):
        """A drive with zero over-provisioning and a full logical space
        cannot absorb updates once no block is collectible."""
        config = tiny_drive(overprovision=0.0, blocks_per_plane=2)
        ftl = BaseFTL(config)
        with pytest.raises(OutOfSpaceError):
            for i in range(config.total_pages * 2):
                ftl.write(i % config.logical_pages, fp(i))


class TestDegenerateInputs:
    def test_empty_trace(self, tiny_config):
        result = replay(BaseFTL(tiny_config), [])
        assert result.counters.host_writes == 0
        assert result.mean_latency_us == 0.0

    def test_out_of_order_arrivals_tolerated(self, tiny_config):
        device = SimulatedSSD(BaseFTL(tiny_config))
        late = device.submit(IORequest(1000.0, OpType.WRITE, 0, 1))
        early = device.submit(IORequest(10.0, OpType.WRITE, 1, 2))
        # Out-of-order submission queues behind the already-charged op on
        # shared resources but never produces negative latency.
        assert early.latency_us >= 0
        assert late.latency_us >= 0

    def test_single_entry_pool(self, tiny_config):
        ftl = BaseFTL(tiny_config, pool=MQDeadValuePool(1))
        for i in range(100):
            ftl.write(i % 10, fp(i % 4))
        ftl.check_invariants()

    def test_single_page_blocks(self):
        config = tiny_drive(pages_per_block=1, blocks_per_plane=16)
        ftl = BaseFTL(config)
        for i in range(config.total_pages * 2):
            ftl.write(i % config.logical_pages, fp(i % 5))
        ftl.check_invariants()

    def test_repeated_identical_writes(self, tiny_config):
        ftl = BaseFTL(tiny_config, pool=MQDeadValuePool(8))
        for _ in range(200):
            ftl.write(0, fp(42))
        # After the first program, every rewrite revives in place.
        assert ftl.counters.programs == 1
        assert ftl.counters.short_circuits == 199

    def test_reads_of_never_written_space(self, tiny_config):
        device = SimulatedSSD(BaseFTL(tiny_config))
        for lpn in range(0, tiny_config.logical_pages, 7):
            done = device.submit(IORequest(lpn * 10.0, OpType.READ, lpn, 0))
            assert done.latency_us == pytest.approx(
                tiny_config.timing.mapping_us
            )

"""Multi-seed replication: means, spreads and paired comparisons.

The paper reports single trace replays; with synthetic workloads we can do
better — regenerate each workload under several seeds and report the
sampling spread of every improvement number, so EXPERIMENTS.md claims are
not one-seed accidents.

:func:`replicate` runs one (workload, system) cell across seeds;
:func:`paired_improvement` compares a system against baseline *per seed*
(the strongest design: both systems see the identical trace) and returns
the mean, min and max improvement over seeds.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from statistics import mean, stdev
from typing import Callable, Dict, List, Sequence

from ..sim.metrics import RunResult, percent_improvement
from ..traces.profiles import profile_by_name
from ..traces.synthetic import generate_trace
from .runner import DEFAULT_SCALE, ExperimentContext, config_for_profile, run_system

__all__ = ["Replicates", "replicate", "paired_improvement"]


@dataclass(frozen=True)
class Replicates:
    """Per-seed samples of one scalar metric, with summary statistics."""

    metric: str
    samples: List[float]

    @property
    def mean(self) -> float:
        return mean(self.samples) if self.samples else 0.0

    @property
    def spread(self) -> float:
        """Sample standard deviation (0 for fewer than two samples)."""
        return stdev(self.samples) if len(self.samples) > 1 else 0.0

    @property
    def minimum(self) -> float:
        return min(self.samples) if self.samples else 0.0

    @property
    def maximum(self) -> float:
        return max(self.samples) if self.samples else 0.0

    def summary(self) -> str:
        return (
            f"{self.mean:.2f} ± {self.spread:.2f} "
            f"[{self.minimum:.2f}, {self.maximum:.2f}] (n={len(self.samples)})"
        )


def _context_for_seed(
    workload: str, scale: float, seed: int
) -> ExperimentContext:
    profile = replace(profile_by_name(workload).scaled(scale), seed=seed)
    return ExperimentContext(
        profile=profile,
        trace=generate_trace(profile),
        config=config_for_profile(profile),
    )


def replicate(
    workload: str,
    system: str,
    metric: str,
    seeds: Sequence[int],
    scale: float = DEFAULT_SCALE,
    paper_pool_entries: int = 200_000,
) -> Replicates:
    """Run one system over reseeded variants of a workload.

    ``metric`` is any key of ``RunResult.summary()``.
    """
    samples = []
    for seed in seeds:
        context = _context_for_seed(workload, scale, seed)
        result = run_system(system, context, paper_pool_entries, scale)
        samples.append(float(result.summary()[metric]))
    return Replicates(metric=metric, samples=samples)


def paired_improvement(
    workload: str,
    system: str,
    metric: str,
    seeds: Sequence[int],
    scale: float = DEFAULT_SCALE,
    paper_pool_entries: int = 200_000,
    baseline: str = "baseline",
) -> Replicates:
    """Per-seed % improvement of ``system`` over ``baseline``.

    Both systems replay the *same* trace for each seed, so the pairs are
    directly comparable and trace-sampling noise cancels.
    """
    samples = []
    for seed in seeds:
        context = _context_for_seed(workload, scale, seed)
        base = run_system(baseline, context, paper_pool_entries, scale)
        this = run_system(system, context, paper_pool_entries, scale)
        samples.append(percent_improvement(
            base.summary()[metric], this.summary()[metric]
        ))
    return Replicates(metric=f"{metric} improvement %", samples=samples)

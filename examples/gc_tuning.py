#!/usr/bin/env python3
"""Ablating the design choices: pool policy, GC policy, queue count.

The paper fixes its design at 8 MQ queues, 200K entries and
popularity-aware GC after "an extensive evaluation" (Section V footnote).
This example re-opens those choices on the web workload:

1. pool replacement policy: LRU vs LX-SSD-style LBA recency vs MQ,
2. popularity-aware GC weight: 0 (greedy) .. 2.0,
3. number of MQ queues: 1 (pure LRU-ish) .. 16.

Run:  python examples/gc_tuning.py
"""

from repro.analysis.report import render_table
from repro.core.dvp import MQDeadValuePool
from repro.experiments.runner import (
    ExperimentContext,
    RunConfig,
    prefill,
    run_system,
    scaled_pool_entries,
)
from repro.ftl.ftl import BaseFTL
from repro.sim.ssd import SimulatedSSD

SCALE = 0.1
RUN_CONFIG = RunConfig(scale=SCALE)
WORKLOAD = "web"


def run_custom(context, ftl, label):
    prefill(ftl, context.profile)
    result = SimulatedSSD(ftl).run(context.trace, system=label,
                                   workload=context.profile.name)
    return result.summary()


def policy_ablation(context):
    print("1. pool replacement policy (equal capacity):\n")
    rows = []
    for system in ("lru-dvp", "lxssd", "mq-dvp", "ideal"):
        summary = run_system(system, context, config=RUN_CONFIG).summary()
        rows.append((system, f"{summary['flash_writes']:.0f}",
                     f"{summary['short_circuits']:.0f}",
                     f"{summary['mean_latency_us']:.1f}"))
    print(render_table(
        ["policy", "flash writes", "revivals", "mean latency (us)"], rows,
    ))


def gc_weight_ablation(context):
    print("\n2. popularity-aware GC weight (MQ pool held fixed):\n")
    entries = scaled_pool_entries(200_000, SCALE)
    rows = []
    for weight in (0.0, 0.5, 1.0, 2.0):
        ftl = BaseFTL(
            context.config,
            pool=MQDeadValuePool(entries),
            popularity_aware_gc=weight > 0,
            gc_weight=weight,
        )
        summary = run_custom(context, ftl, f"w={weight}")
        rows.append((weight, f"{summary['flash_writes']:.0f}",
                     f"{summary['erases']:.0f}",
                     f"{summary['gc_relocations']:.0f}",
                     f"{summary['mean_latency_us']:.1f}"))
    print(render_table(
        ["weight", "flash writes", "erases", "relocations",
         "mean latency (us)"],
        rows,
        title="(weight 0 = plain greedy victim selection)",
    ))


def queue_count_ablation(context):
    print("\n3. number of MQ queues (small pool, so capacity pressure is real):\n")
    # At a generous 200K-equivalent size the pool never fills and the
    # replacement policy is moot; ablate under pressure instead.
    entries = scaled_pool_entries(30_000, SCALE)
    rows = []
    for queues in (1, 2, 4, 8, 16):
        ftl = BaseFTL(
            context.config,
            pool=MQDeadValuePool(entries, num_queues=queues),
            popularity_aware_gc=True,
        )
        summary = run_custom(context, ftl, f"q={queues}")
        rows.append((queues, f"{summary['flash_writes']:.0f}",
                     f"{summary['short_circuits']:.0f}"))
    print(render_table(
        ["queues", "flash writes", "revivals"], rows,
        title="(1 queue degenerates to LRU; the paper uses 8)",
    ))


def pool_size_ablation(context):
    print("\n4. pool capacity (MQ, 8 queues):\n")
    rows = []
    for paper_entries in (25_000, 50_000, 100_000, 200_000, 400_000):
        entries = scaled_pool_entries(paper_entries, SCALE)
        ftl = BaseFTL(
            context.config,
            pool=MQDeadValuePool(entries),
            popularity_aware_gc=True,
        )
        summary = run_custom(context, ftl, f"{paper_entries}")
        rows.append((f"{paper_entries // 1000}K ({entries})",
                     f"{summary['flash_writes']:.0f}",
                     f"{summary['short_circuits']:.0f}"))
    print(render_table(
        ["pool (paper label)", "flash writes", "revivals"], rows,
        title="(benefits saturate around the 200K point, as in Figure 9)",
    ))


if __name__ == "__main__":
    context = ExperimentContext.for_workload(WORKLOAD, SCALE)
    print(f"workload: {WORKLOAD} at scale {SCALE} "
          f"({len(context.trace)} requests)\n")
    policy_ablation(context)
    gc_weight_ablation(context)
    queue_count_ablation(context)
    pool_size_ablation(context)

"""Figure 11: percentage of mean latency improvement (DVP vs LX-SSD).

Paper: 4.8%–52% improvement, 24.5% mean; LX-SSD falls well behind DVP
(DVP outperforms it by ~2x on average), worst on mail where LX-SSD's
LBA-keyed buffer cannot hold the large footprint.
"""

from repro.analysis.report import render_table
from repro.experiments.comparison import mean_improvement
from repro.experiments.figures import fig11_mean_latency

from .conftest import emit


def test_fig11_mean_latency(benchmark, matrix):
    results = benchmark.pedantic(
        lambda: fig11_mean_latency(matrix), rounds=1, iterations=1
    )
    rows = [
        (wl, f"{row['dvp']:.1f}", f"{row['lxssd']:.1f}")
        for wl, row in results.items()
    ]
    mean_dvp = mean_improvement({w: r["dvp"] for w, r in results.items()})
    mean_lx = mean_improvement({w: r["lxssd"] for w, r in results.items()})
    emit(render_table(
        ["workload", "DVP (%)", "LX-SSD (%)"], rows,
        title=(
            "Figure 11: mean latency improvement vs baseline "
            f"(DVP mean: {mean_dvp:.1f}%, LX-SSD mean: {mean_lx:.1f}%; "
            "paper: 24.5% mean, LX-SSD ~half)"
        ),
    ))
    # Shape: mail gains most; DVP beats LX-SSD overall and on mail by a
    # wide margin ("almost a third of improvements achieved by DVP").
    assert results["mail"]["dvp"] == max(r["dvp"] for r in results.values())
    assert mean_dvp > mean_lx
    assert results["mail"]["lxssd"] < 0.8 * results["mail"]["dvp"]
    assert mean_dvp > 10.0

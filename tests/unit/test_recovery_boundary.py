"""Regression tests for the OOB-replay trim boundary (faults/recovery.py).

The replay drops an LPN's newest copy when ``trims[lpn] >= seq``.  On a
well-formed journal the two records can never carry *equal* sequence
numbers (``_oob_seq`` is one monotonic clock shared by page and trim
records), so the boundary only matters for adjacent seqs — and, on a
malformed journal, for the tie itself, where trim-wins is the fail-safe
direction (never resurrect possibly-discarded data).
"""

import pytest

from repro.core.hashing import fingerprint_of_value as fp
from repro.faults.recovery import rebuild_mapping
from repro.ftl.ftl import BaseFTL


class TestAdjacentSequences:
    def test_trim_immediately_after_write_drops_lpn(self, tiny_config):
        ftl = BaseFTL(tiny_config)
        ftl.write(4, fp(1))          # page record at seq s
        ftl.trim(4)                  # trim record at seq s+1
        rebuilt = rebuild_mapping(ftl)
        assert rebuilt.lookup(4) is None

    def test_write_immediately_after_trim_survives(self, tiny_config):
        ftl = BaseFTL(tiny_config)
        ftl.write(4, fp(1))
        ftl.trim(4)                  # trim at seq s
        outcome = ftl.write(4, fp(2))  # page record at seq s+1
        rebuilt = rebuild_mapping(ftl)
        assert rebuilt.lookup(4) == outcome.program_ppn

    def test_trim_write_trim_chain(self, tiny_config):
        ftl = BaseFTL(tiny_config)
        ftl.write(7, fp(1))
        ftl.trim(7)
        ftl.write(7, fp(2))
        ftl.trim(7)
        assert rebuild_mapping(ftl).lookup(7) is None

    def test_replay_matches_live_table(self, tiny_config):
        """The full-journal promise the checker audits continuously."""
        ftl = BaseFTL(tiny_config)
        for i in range(120):
            ftl.write(i % 10, fp(i))
            if i % 7 == 0:
                ftl.trim((i + 3) % 10)
        assert (
            rebuild_mapping(ftl).forward_items()
            == ftl.mapping.forward_items()
        )


class TestEqualSequenceTieBreak:
    def test_forged_tie_drops_the_copy(self, tiny_config):
        """Equal seqs are unreachable on a well-formed journal; when
        forged, the copy must lose (trim wins ties — fail safe)."""
        ftl = BaseFTL(tiny_config)
        ftl.write(5, fp(1))
        ppn = ftl.mapping.lookup(5)
        _, seq = ftl._oob[ppn]
        ftl._oob_trims[5] = seq      # malformed: same clock value
        assert rebuild_mapping(ftl).lookup(5) is None

    def test_older_trim_does_not_drop_newer_copy(self, tiny_config):
        ftl = BaseFTL(tiny_config)
        ftl.write(5, fp(1))
        ppn = ftl.mapping.lookup(5)
        _, seq = ftl._oob[ppn]
        ftl._oob_trims[5] = seq - 1  # trim strictly older than the copy
        assert rebuild_mapping(ftl).lookup(5) == ppn

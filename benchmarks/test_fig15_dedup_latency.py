"""Figure 15: mean latency improvement — Dedup vs DVP vs DVP+Dedup.

Paper: dedup improves latency by up to 58.5%; integrating the dead-value
pool into a deduplicated store buys a further 9.8% on average (up to 15%)
over dedup alone.
"""

from statistics import mean

from repro.analysis.report import render_table
from repro.experiments.figures import fig15_dedup_latency

from .conftest import emit


def test_fig15_dedup_latency(benchmark, matrix):
    results = benchmark.pedantic(
        lambda: fig15_dedup_latency(matrix), rounds=1, iterations=1
    )
    rows = [
        (wl, f"{row['dedup']:.1f}", f"{row['mq-dvp']:.1f}",
         f"{row['dvp+dedup']:.1f}")
        for wl, row in results.items()
    ]
    extra = mean(
        r["dvp+dedup"] - r["dedup"] for r in results.values()
    )
    emit(render_table(
        ["workload", "Dedup (%)", "DVP (%)", "DVP+Dedup (%)"], rows,
        title=(
            "Figure 15: mean latency improvement vs baseline "
            f"(DVP+Dedup adds {extra:.1f} points over Dedup on average; "
            "paper: +9.8 mean, +15 max)"
        ),
    ))
    for wl, row in results.items():
        assert row["dvp+dedup"] >= row["dedup"] - 3.0, wl
    assert extra > 0.0

"""The session manager: tenant → session routing, resume, durability.

One :class:`SessionManager` per server process.  It owns every live
:class:`~repro.serve.session.TenantSession`, enforces the session cap,
arbitrates tenant attachment (one connection per tenant at a time) and
is the only component that touches the checkpoint store — sessions
themselves never know whether they are durable.

All methods are synchronous and are called from the server's worker
threads one-message-at-a-time per tenant; cross-tenant calls touch
disjoint sessions, so the manager needs no locking beyond the dict
operations themselves (atomic under the GIL).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..api import ResultRecord
from .checkpoint import drop_checkpoint, load_checkpoint, save_checkpoint
from .config import ServeSettings
from .session import SessionConfig, SessionError, TenantSession

__all__ = ["SessionManager"]


class SessionManager:
    """Every tenant session a serve process is carrying."""

    def __init__(self, settings: ServeSettings):
        self.settings = settings
        self.sessions: Dict[str, TenantSession] = {}
        #: Tenants currently bound to a live connection.
        self.attached: Dict[str, bool] = {}

    # -- lifecycle -----------------------------------------------------

    def open(self, config: SessionConfig) -> Tuple[TenantSession, bool]:
        """Open (or reattach, or resume) ``config.tenant``'s session.

        Returns ``(session, resumed)``.  Priority order: a live session
        reattaches (the mid-stream-disconnect path), a checkpointed one
        resumes from disk, otherwise a fresh session builds.  Reattach
        and resume both require the client to present an *equal*
        config — silently continuing under different parameters would
        corrupt the stream's meaning.
        """
        tenant = config.tenant
        if self.attached.get(tenant):
            raise SessionError(f"tenant {tenant!r} is already attached")
        session = self.sessions.get(tenant)
        resumed = session is not None
        if session is None and self.settings.checkpoint_dir is not None:
            blob = load_checkpoint(self.settings.checkpoint_dir, tenant)
            if blob is not None:
                session = TenantSession.from_blob(blob)
                resumed = True
        if session is not None and session.config != config:
            raise SessionError(
                f"tenant {tenant!r} has an existing session with a "
                "different config; reopen with the original parameters"
            )
        if session is None:
            if len(self.sessions) >= self.settings.max_sessions:
                raise SessionError(
                    f"session limit reached ({self.settings.max_sessions})"
                )
            session = TenantSession(config)
        self.sessions[tenant] = session
        self.attached[tenant] = True
        return session, resumed

    def detach(self, tenant: str) -> Optional[TenantSession]:
        """Unbind ``tenant`` from its connection, keeping the session.

        Buffered requests stay buffered (they checkpoint with the
        session); with a checkpoint store configured the session is
        persisted immediately, so even a server killed right after a
        disconnect loses nothing.
        """
        self.attached[tenant] = False
        session = self.sessions.get(tenant)
        if session is not None:
            self.checkpoint(tenant)
        return session

    def close(self, tenant: str) -> ResultRecord:
        """Finalize ``tenant``'s session and forget it everywhere."""
        session = self.sessions.get(tenant)
        if session is None:
            raise SessionError(f"tenant {tenant!r} has no open session")
        record = session.finalize()
        del self.sessions[tenant]
        self.attached.pop(tenant, None)
        if self.settings.checkpoint_dir is not None:
            drop_checkpoint(self.settings.checkpoint_dir, tenant)
        return record

    # -- durability ----------------------------------------------------

    def checkpoint(self, tenant: str) -> bool:
        """Persist ``tenant``'s session now; returns whether it was."""
        if self.settings.checkpoint_dir is None:
            return False
        session = self.sessions.get(tenant)
        if session is None or session.finished:
            return False
        save_checkpoint(
            self.settings.checkpoint_dir, tenant, session.checkpoint_blob()
        )
        return True

    def checkpoint_due(self, tenant: str) -> bool:
        """Whether the periodic checkpoint cadence has elapsed."""
        every = self.settings.checkpoint_every
        if every is None or self.settings.checkpoint_dir is None:
            return False
        session = self.sessions.get(tenant)
        if session is None:
            return False
        return session.served - session.checkpointed_at >= every

    def drain(self) -> List[str]:
        """Graceful-shutdown epilogue: flush every session's in-flight
        buffer and checkpoint it.  Returns the tenants checkpointed.

        Called only after every connection handler has finished, so no
        session is concurrently mutating.
        """
        drained: List[str] = []
        for tenant in sorted(self.sessions):
            session = self.sessions[tenant]
            if session.finished:
                continue
            session.flush()
            if self.checkpoint(tenant):
                drained.append(tenant)
        return drained

"""The Flash Translation Layer, with optional dead-value pool integration.

:class:`BaseFTL` implements the paper's FTL (Section IV): page-level
LPN→PPN mapping, out-of-place updates, watermark-driven garbage collection
and — when constructed with a :class:`~repro.core.dvp.DeadValuePool` — the
full MQ-DVP write/update/eviction/GC protocol of Section IV-C/D:

* **Writes**: the content hash is computed and looked up in the pool; on a
  hit, the matching garbage page is flipped back to valid and the LPN is
  remapped to it — the program operation is skipped entirely.  On a miss
  the write takes the normal path.  Popularity is updated either way.
* **Updates**: the page previously mapped at the LPN is invalidated and its
  (hash, PPN, popularity) inserted into the pool.
* **GC**: erasing a block removes its garbage pages from the pool; victim
  selection can be made popularity-aware (Section IV-D) so blocks rich in
  popular garbage are spared.

Systems from the paper map onto constructor arguments (see
:mod:`repro.ftl.dvp_ftl` for ready-made factories): Baseline has no pool;
MQ-DVP uses :class:`MQDeadValuePool`; Ideal uses the infinite pool; LX-SSD
uses the LBA-recency pool with combined read+write popularity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from ..core.dvp import DeadValuePool
from ..core.hashing import Fingerprint
from ..flash.array import FlashArray
from ..flash.config import SSDConfig
from .allocator import BadBlockManager, PageAllocator

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a runtime cycle
    from ..faults.model import FaultModel
from .gc import (
    GarbageCollector,
    GCWork,
    GreedyVictimPolicy,
    PopularityAwareVictimPolicy,
)
from .mapping import MappingTable, POPULARITY_MAX
from .wear import WearTracker

__all__ = ["FTLCounters", "WriteOutcome", "ReadOutcome", "BaseFTL"]


@dataclass
class FTLCounters:
    """Everything the evaluation section reports, counted exactly once."""

    host_writes: int = 0
    host_reads: int = 0
    programs: int = 0            # actual flash page programs (host data)
    short_circuits: int = 0      # writes served by reviving garbage (DVP)
    dedup_hits: int = 0          # writes removed by live-value dedup
    invalidations: int = 0       # value deaths (pages turned to garbage)
    host_trims: int = 0
    flash_reads: int = 0
    gc_relocations: int = 0      # GC valid-page moves (each = read+program)
    gc_erases: int = 0

    @property
    def total_programs(self) -> int:
        """Host programs plus GC relocation programs (drive write traffic)."""
        return self.programs + self.gc_relocations

    @property
    def write_reduction_vs(self) -> float:
        raise AttributeError("use experiments.comparison helpers")


@dataclass(slots=True)
class WriteOutcome:
    """What one host write physically did (the simulator prices this)."""

    lpn: int
    hashed: bool = False
    short_circuited: bool = False
    dedup_hit: bool = False
    program_ppn: Optional[int] = None
    revived_ppn: Optional[int] = None
    #: PPN read back to byte-verify a hash match (set when verify_hits).
    verify_read_ppn: Optional[int] = None
    #: Translation-page traffic (only the demand-paged DFTL variant sets
    #: these; see repro.ftl.dftl).
    translation_reads: int = 0
    translation_writes: int = 0
    #: Fault layer: PPNs burned by failed program attempts (each still
    #: costs a full program latency), and whether the write was dropped
    #: (retries exhausted, or the drive is read-only).  ``None`` rather
    #: than an empty list keeps the fault-free hot path allocation-free.
    failed_program_ppns: Optional[List[int]] = None
    rejected: bool = False
    #: Collection work the write triggered; ``None`` (not an empty
    #: ``GCWork``) on the common no-GC path keeps host writes
    #: allocation-free.
    gc: Optional[GCWork] = None

    @property
    def programmed(self) -> bool:
        return self.program_ppn is not None


@dataclass(slots=True)
class ReadOutcome:
    """What one host read physically did."""

    lpn: int
    ppn: Optional[int]   # None → LPN unmapped, served from the zero page
    translation_reads: int = 0
    translation_writes: int = 0

    @property
    def flash_read(self) -> bool:
        return self.ppn is not None


class BaseFTL:
    """Page-mapping FTL with optional dead-value pool.

    Parameters
    ----------
    config:
        Drive geometry and timing.
    pool:
        Dead-value pool, or ``None`` for the baseline system.
    popularity_aware_gc:
        Use the Section IV-D victim metric instead of plain greedy.
    gc_weight:
        Popularity penalty weight of the popularity-aware policy.
    combine_read_popularity:
        Feed read+write popularity into pool insertions — the LX-SSD
        behaviour the paper critiques; the proposal tracks writes only
        (footnote 3).
    wear_levelling:
        Apply the static wear-levelling guard during victim selection
        (blocks far above the mean erase count are deprioritised).
    verify_hits:
        Read the matching page back and byte-compare before trusting a
        16B-hash match (CAFTL's collision safety).  Adds one flash read
        to every revival and dedup hit; the paper assumes collision-free
        hashes, so this is off by default.
    """

    def __init__(
        self,
        config: SSDConfig,
        pool: Optional[DeadValuePool] = None,
        popularity_aware_gc: bool = False,
        gc_weight: float = 1.0,
        combine_read_popularity: bool = False,
        wear_levelling: bool = False,
        wear_guard_margin: int = 8,
        verify_hits: bool = False,
    ):
        self.config = config
        self.array = FlashArray(config)
        self.allocator = PageAllocator(self.array)
        self.mapping = MappingTable(config.logical_pages, config.total_pages)
        # Exported capacity, cached: ``config.logical_pages`` is a derived
        # property chain and ``_check_lpn`` runs on every host operation.
        self._logical_pages = config.logical_pages
        self.pool = pool
        self.combine_read_popularity = combine_read_popularity
        policy = (
            PopularityAwareVictimPolicy(gc_weight)
            if popularity_aware_gc
            else GreedyVictimPolicy()
        )
        self.wear = WearTracker(self.array, guard_margin=wear_guard_margin)
        self.gc = GarbageCollector(
            self.array,
            self.allocator,
            policy,
            delegate=self,
            garbage_popularity_of=self._block_garbage_popularity,
            wear_guard=self.wear.allows_erase if wear_levelling else None,
        )
        self.verify_hits = verify_hits
        if pool is not None:
            pool.drop_listener = self._clear_garbage_pop
        self.counters = FTLCounters()
        self.write_clock = 0
        #: Optional :class:`~repro.obs.Tracer`; ``attach_observability``
        #: sets it.  ``None`` keeps the hot path branch-predictable.
        self.tracer = None
        self._registry = None
        #: Optional :class:`~repro.check.InvariantChecker`
        #: (``attach_checker`` sets it).  ``None`` keeps the hot paths to
        #: one identity check per operation.
        self.checker = None
        #: Fault layer (``attach_faults`` sets these).  ``None`` keeps the
        #: fault-free path to one identity check per operation.
        self.faults: Optional["FaultModel"] = None
        self.badblocks: Optional[BadBlockManager] = None
        #: Spare-block pool exhausted: every further host write is rejected.
        self.read_only = False
        # Out-of-band metadata journal: what a real FTL writes into each
        # page's spare area.  ``_oob[ppn] = (lpn, seq)`` records which LPN
        # the page was written for and a monotonic sequence number, and
        # ``_oob_trims[lpn]`` the seq at which the LPN was last trimmed.
        # Crash recovery (repro.faults.recovery) rebuilds the L2P mapping
        # purely from this journal: newest VALID copy per LPN wins.
        self._oob: Dict[int, Tuple[int, int]] = {}
        self._oob_trims: Dict[int, int] = {}
        self._oob_seq = 0
        # Content bookkeeping: fingerprint stored at each programmed PPN.
        self._ppn_fp: Dict[int, Fingerprint] = {}
        # Exact per-value write popularity, saturating at the 1-byte budget
        # the paper allots in the LPN-to-PPN table (Section IV-C).
        self._write_popularity: Dict[Fingerprint, int] = {}
        self._read_popularity: Dict[Fingerprint, int] = {}
        # Popularity mass of pool-tracked garbage, per block (GC metric).
        self._block_garbage_pop: Dict[int, int] = {}
        self._garbage_pop_of_ppn: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def content_aware(self) -> bool:
        """Whether writes pay the hashing latency (any content machinery)."""
        return self.pool is not None

    def fingerprint_at(self, ppn: int) -> Optional[Fingerprint]:
        return self._ppn_fp.get(ppn)

    def write_popularity_of(self, fp: Fingerprint) -> int:
        return self._write_popularity.get(fp, 0)

    def _block_garbage_popularity(self, block_global: int) -> int:
        return self._block_garbage_pop.get(block_global, 0)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    def attach_observability(self, registry=None, tracer=None) -> "BaseFTL":
        """Wire a :class:`~repro.obs.MetricRegistry` and/or
        :class:`~repro.obs.Tracer` into the FTL, its collector and pool.

        Safe to call on a live FTL; with both arguments ``None`` it is a
        no-op.  Returns ``self`` for chaining.
        """
        if tracer is not None:
            self.tracer = tracer
            self.gc.tracer = tracer
        if registry is not None:
            registry.gauge(
                "ftl.free_blocks",
                lambda: sum(len(b) for b in self.allocator.free_blocks),
            )
            registry.gauge("ftl.write_clock", lambda: self.write_clock)
            registry.gauge("gc.invocations", lambda: self.gc.invocations)
            if self.pool is not None:
                registry.gauge("pool.occupancy", lambda: len(self.pool))
                registry.gauge(
                    "pool.tracked_ppns",
                    lambda: self.pool.tracked_ppn_count(),
                )
                register = getattr(self.pool, "register_metrics", None)
                if register is not None:
                    register(registry)
            self._registry = registry
            if self.faults is not None:
                self.faults.register_metrics(registry)
                registry.gauge(
                    "faults.spares_remaining",
                    lambda: self.badblocks.spares_remaining,
                )
                registry.gauge("faults.read_only", lambda: int(self.read_only))
        return self

    # ------------------------------------------------------------------
    # Fault injection (repro.faults)
    # ------------------------------------------------------------------

    def attach_faults(self, model: "FaultModel") -> "BaseFTL":
        """Arm fault injection on a live FTL.  Returns ``self``.

        Called *after* prefill, so cached prefill snapshots stay
        fault-free and shareable across fault and fault-free runs.  The
        spare pool is sized per plane — ``spare_block_fraction`` of each
        plane's blocks, at least one — because a spare can only absorb
        retirements in its own plane (see
        :class:`~repro.ftl.allocator.BadBlockManager`).
        """
        self.faults = model
        geometry = self.array.geometry
        spares_per_plane = max(
            1,
            int(
                geometry.blocks_per_plane
                * model.config.spare_block_fraction
            ),
        )
        self.badblocks = BadBlockManager(
            model.stats,
            spares_per_plane=spares_per_plane,
            retire_threshold=model.config.program_failure_retire_threshold,
            plane_of_block=geometry.plane_of_block,
            planes=geometry.total_planes,
        )
        if self._registry is not None:
            model.register_metrics(self._registry)
            self._registry.gauge(
                "faults.spares_remaining",
                lambda: self.badblocks.spares_remaining,
            )
            self._registry.gauge(
                "faults.read_only", lambda: int(self.read_only)
            )
        return self

    def enter_read_only(self) -> None:
        """Degrade to read-only (spare-block pool exhausted)."""
        self.read_only = True

    # ------------------------------------------------------------------
    # Correctness tooling (repro.check)
    # ------------------------------------------------------------------

    def attach_checker(self, checker) -> "BaseFTL":
        """Arm an :class:`~repro.check.InvariantChecker` on a live FTL.

        Like ``attach_faults``/``attach_observability``, safe to call
        after preconditioning: the checker (and its oracle, if any)
        adopts the current state as the audited baseline.  Returns
        ``self`` for chaining.
        """
        self.checker = checker
        self.gc.checker = checker
        checker.on_attach(self)
        return self

    # ------------------------------------------------------------------
    # Host operations
    # ------------------------------------------------------------------

    def write(self, lpn: int, fp: Fingerprint) -> WriteOutcome:
        """Service one 4KB host write of content ``fp`` at ``lpn``."""
        if self.tracer is not None:
            with self.tracer.span("ftl.write"):
                return self._write_impl(lpn, fp)
        return self._write_impl(lpn, fp)

    def _write_impl(self, lpn: int, fp: Fingerprint) -> WriteOutcome:
        self._check_lpn(lpn)
        self.write_clock += 1
        self.counters.host_writes += 1
        if self.read_only:
            # End-of-life degradation: the write fails before it touches
            # any state (the old copy at ``lpn`` survives).
            if self.faults is not None:
                self.faults.stats.rejected_writes += 1
            outcome = WriteOutcome(lpn=lpn, rejected=True)
            if self.checker is not None:
                self.checker.after_write(self, lpn, fp, outcome)
            return outcome
        # Saturating popularity bump, inlined (= _bump_write_popularity):
        # two dict ops per host write are measurably cheaper than a call.
        write_pop = self._write_popularity
        popularity = write_pop.get(fp, 0) + 1
        if popularity > POPULARITY_MAX:
            popularity = POPULARITY_MAX
        write_pop[fp] = popularity
        self.mapping.set_popularity(lpn, popularity)
        outcome = WriteOutcome(lpn=lpn, hashed=self.content_aware)
        self._handle_write(lpn, fp, outcome)
        if self.checker is not None:
            self.checker.after_write(self, lpn, fp, outcome)
        return outcome

    def _handle_write(
        self, lpn: int, fp: Fingerprint, outcome: WriteOutcome
    ) -> None:
        """Invalidate the old copy, then place the new data.  The dedup FTL
        overrides this to consult its live fingerprint store first."""
        self._invalidate_lpn(lpn)
        self._service_write(lpn, fp, outcome)

    def _service_write(
        self, lpn: int, fp: Fingerprint, outcome: WriteOutcome
    ) -> None:
        """Place the new data: revive from the pool, or program a page.

        Subclasses (the dedup FTL) extend this with a live-value check.
        """
        revived = None
        if self.pool is not None:
            revived = self.pool.lookup_for_write(fp, self.write_clock)
        if revived is not None:
            self._revive(lpn, revived, outcome)
            outcome.short_circuited = True
            outcome.revived_ppn = revived
        else:
            outcome.program_ppn = self._program(lpn, fp, outcome)

    def trim(self, lpn: int) -> None:
        """Host discard: drop ``lpn``'s mapping.

        The freed physical page becomes garbage — and, with a dead-value
        pool, its content stays *revivable*: a later write of the same
        data can still resurrect the trimmed page.  This is TRIM's natural
        interaction with the paper's mechanism (not evaluated there).
        """
        self._check_lpn(lpn)
        self.counters.host_trims += 1
        self._invalidate_lpn(lpn)
        # Journal the trim so crash recovery does not resurrect the LPN
        # from its (still newest) dead copy.
        self._oob_seq += 1
        self._oob_trims[lpn] = self._oob_seq
        if self.checker is not None:
            self.checker.after_trim(self, lpn)

    def read(self, lpn: int) -> ReadOutcome:
        """Service one 4KB host read."""
        if self.tracer is not None:
            with self.tracer.span("ftl.read"):
                return self._read_impl(lpn)
        return self._read_impl(lpn)

    def _read_impl(self, lpn: int) -> ReadOutcome:
        self._check_lpn(lpn)
        self.counters.host_reads += 1
        ppn = self.mapping.lookup(lpn)
        if ppn is not None:
            self.counters.flash_reads += 1
            if self.combine_read_popularity:
                fp = self._ppn_fp.get(ppn)
                if fp is not None:
                    count = self._read_popularity.get(fp, 0) + 1
                    self._read_popularity[fp] = min(count, POPULARITY_MAX)
        outcome = ReadOutcome(lpn=lpn, ppn=ppn)
        if self.checker is not None:
            self.checker.after_read(self, lpn, outcome)
        return outcome

    # ------------------------------------------------------------------
    # Write-path mechanics
    # ------------------------------------------------------------------

    def _check_lpn(self, lpn: int) -> None:
        if not 0 <= lpn < self._logical_pages:
            raise ValueError(
                f"LPN {lpn} outside exported capacity "
                f"({self._logical_pages} pages)"
            )

    def _record_oob(self, ppn: int, lpn: int) -> None:
        """Journal (lpn, seq) into ``ppn``'s out-of-band area."""
        self._oob_seq += 1
        self._oob[ppn] = (lpn, self._oob_seq)

    def _bump_write_popularity(self, fp: Fingerprint) -> int:
        value = min(self._write_popularity.get(fp, 0) + 1, POPULARITY_MAX)
        self._write_popularity[fp] = value
        return value

    def _pool_popularity(self, fp: Fingerprint) -> int:
        """Popularity degree handed to the pool on insertion."""
        pop = self._write_popularity.get(fp, 1)
        if self.combine_read_popularity:
            pop = min(pop + self._read_popularity.get(fp, 0), POPULARITY_MAX)
        return pop

    def _program(
        self, lpn: int, fp: Fingerprint, outcome: WriteOutcome
    ) -> Optional[int]:
        # Collect *before* allocating, so the target plane always has room
        # for this write and for any relocations GC itself needs.
        plane = self.allocator.plane_of_next_write()
        work = self.gc.maybe_collect(plane)
        if work.erased_blocks or work.relocations or work.retired_blocks:
            self.counters.gc_erases += len(work.erased_blocks)
            self.counters.gc_relocations += len(work.relocations)
            # ``work`` is freshly built by maybe_collect — adopt it.
            outcome.gc = work
        if self.read_only:
            # The collection pass just degraded the drive (spare pool
            # exhausted, or a retirement would have stranded the plane):
            # reject the in-flight write before touching allocator state.
            if self.faults is not None:
                self.faults.stats.rejected_writes += 1
            outcome.rejected = True
            return None
        ppn = self.allocator.allocate()
        faults = self.faults
        if faults is not None and faults.injects_program_failures:
            attempts = 1
            while faults.program_fails():
                # The page is burned: it becomes garbage for GC to reclaim
                # (not a value death — no pool insertion), and the block
                # takes a strike toward retirement.
                self.array.invalidate(ppn)
                if outcome.failed_program_ppns is None:
                    outcome.failed_program_ppns = []
                outcome.failed_program_ppns.append(ppn)
                if self.badblocks is not None:
                    self.badblocks.note_program_failure(
                        self.array.geometry.block_of_ppn(ppn)
                    )
                if attempts >= faults.config.max_program_retries:
                    faults.stats.rejected_writes += 1
                    outcome.rejected = True
                    return None
                attempts += 1
                # Retry within the same plane; the collection above left it
                # at least one free block, so a handful of retries cannot
                # strand it.
                ppn = self.allocator.allocate_in_plane(plane)
        self.mapping.map(lpn, ppn)
        self._ppn_fp[ppn] = fp
        self._record_oob(ppn, lpn)
        self.counters.programs += 1
        return ppn

    def _revive(self, lpn: int, ppn: int, outcome: WriteOutcome) -> None:
        """Dead-value-pool hit: garbage page back to life, no program."""
        if self.verify_hits:
            # CAFTL-style collision safety: read the page back and
            # byte-compare before trusting the 16B hash match.
            outcome.verify_read_ppn = ppn
            self.counters.flash_reads += 1
        self.array.revive(ppn)
        self._clear_garbage_pop(ppn)
        self.mapping.map(lpn, ppn)
        self._record_oob(ppn, lpn)
        self.counters.short_circuits += 1

    def _invalidate_lpn(self, lpn: int) -> None:
        """Out-of-place update: kill the copy previously mapped at ``lpn``."""
        old_ppn = self.mapping.unmap(lpn)
        if old_ppn is None:
            return
        if self.mapping.refcount(old_ppn) > 0:
            # Deduplicated store: other LPNs still point here — no death.
            return
        self.array.invalidate(old_ppn)
        self.counters.invalidations += 1
        fp = self._ppn_fp.get(old_ppn)
        if fp is not None:
            self._on_page_death(old_ppn, fp, lpn)

    def _on_page_death(self, ppn: int, fp: Fingerprint, lpn: int) -> None:
        """A physical page just became garbage: offer it to the pool."""
        if self.pool is None:
            return
        popularity = self._pool_popularity(fp)
        dropped = self.pool.insert_garbage(
            fp, ppn, self.write_clock, popularity=popularity, lpn=lpn
        )
        self._add_garbage_pop(ppn, popularity)
        for dropped_ppn in dropped:
            # Evicted from the pool: the page stays garbage but its
            # popularity no longer shields its block from GC.
            self._clear_garbage_pop(dropped_ppn)

    # ------------------------------------------------------------------
    # Popularity mass per block (input to popularity-aware GC)
    # ------------------------------------------------------------------

    def _add_garbage_pop(self, ppn: int, popularity: int) -> None:
        block = self.array.geometry.block_of_ppn(ppn)
        self._garbage_pop_of_ppn[ppn] = popularity
        self._block_garbage_pop[block] = (
            self._block_garbage_pop.get(block, 0) + popularity
        )

    def _clear_garbage_pop(self, ppn: int) -> None:
        popularity = self._garbage_pop_of_ppn.pop(ppn, None)
        if popularity is None:
            return
        block = self.array.geometry.block_of_ppn(ppn)
        remaining = self._block_garbage_pop.get(block, 0) - popularity
        if remaining > 0:
            self._block_garbage_pop[block] = remaining
        else:
            self._block_garbage_pop.pop(block, None)

    # ------------------------------------------------------------------
    # GC delegate protocol (called by GarbageCollector)
    # ------------------------------------------------------------------

    def relocate_page(self, old_ppn: int, new_ppn: int) -> None:
        self.mapping.remap_ppn(old_ppn, new_ppn)
        fp = self._ppn_fp.pop(old_ppn, None)
        if fp is not None:
            self._ppn_fp[new_ppn] = fp
        entry = self._oob.pop(old_ppn, None)
        if entry is not None:
            # GC rewrote the page, so its OOB area is rewritten too.
            self._record_oob(new_ppn, entry[0])

    def erase_cleanup(self, block_global: int, invalid_ppns: List[int]) -> None:
        for ppn in invalid_ppns:
            fp = self._ppn_fp.pop(ppn, None)
            if fp is not None and self.pool is not None:
                self.pool.discard_ppn(fp, ppn)
            self._clear_garbage_pop(ppn)
            self._oob.pop(ppn, None)

    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Deep cross-structure consistency check (test hook)."""
        self.array.check_invariants()
        self.mapping.check_invariants()
        self.allocator.check_invariants()
        for ppn in self.mapping.mapped_ppns():
            from ..flash.block import PageState

            assert self.array.state_of(ppn) is PageState.VALID, (
                f"mapped PPN {ppn} is not VALID"
            )
            assert ppn in self._ppn_fp, f"mapped PPN {ppn} has no fingerprint"
            assert ppn in self._oob, f"mapped PPN {ppn} has no OOB record"

"""Deterministic fault injection and crash recovery for the simulated SSD.

The reproduction's device model is otherwise perfect; this package makes
it realistically unreliable, on demand and reproducibly:

* :class:`FaultConfig` / :class:`FaultModel` — seeded program/erase/read
  fault injection (:mod:`repro.faults.model`);
* bad-block management — :class:`~repro.ftl.allocator.BadBlockManager`,
  wired through the FTL and GC;
* power loss and OOB-scan crash recovery (:mod:`repro.faults.recovery`).

Everything defaults off: an unconfigured run is digest-identical to a
build without this package.
"""

from .model import FaultConfig, FaultModel, FaultStats
from .recovery import (
    RecoveryError,
    RecoveryReport,
    crash_and_recover,
    rebuild_mapping,
)

__all__ = [
    "FaultConfig",
    "FaultModel",
    "FaultStats",
    "RecoveryError",
    "RecoveryReport",
    "crash_and_recover",
    "rebuild_mapping",
]

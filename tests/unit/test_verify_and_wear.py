"""Unit tests for hit verification and wear-aware GC (FTL extensions)."""

import pytest

from repro.core.dvp import InfiniteDeadValuePool, MQDeadValuePool
from repro.core.hashing import fingerprint_of_value as fp
from repro.ftl.dedup import DedupFTL
from repro.ftl.ftl import BaseFTL
from repro.sim.request import IORequest, OpType
from repro.sim.ssd import SimulatedSSD


class TestVerifyHits:
    def test_revival_carries_verification_read(self, tiny_config):
        ftl = BaseFTL(
            tiny_config, pool=InfiniteDeadValuePool(), verify_hits=True
        )
        ftl.write(0, fp(1))
        ftl.write(0, fp(2))
        outcome = ftl.write(1, fp(1))
        assert outcome.short_circuited
        assert outcome.verify_read_ppn == outcome.revived_ppn
        assert ftl.counters.flash_reads == 1

    def test_no_verification_by_default(self, tiny_config):
        ftl = BaseFTL(tiny_config, pool=InfiniteDeadValuePool())
        ftl.write(0, fp(1))
        ftl.write(0, fp(2))
        outcome = ftl.write(1, fp(1))
        assert outcome.verify_read_ppn is None
        assert ftl.counters.flash_reads == 0

    def test_dedup_hit_verification(self, tiny_config):
        ftl = DedupFTL(tiny_config, verify_hits=True)
        first = ftl.write(0, fp(1))
        outcome = ftl.write(1, fp(1))
        assert outcome.dedup_hit
        assert outcome.verify_read_ppn == first.program_ppn

    def test_programmed_writes_never_verify(self, tiny_config):
        ftl = BaseFTL(
            tiny_config, pool=InfiniteDeadValuePool(), verify_hits=True
        )
        outcome = ftl.write(0, fp(1))
        assert outcome.verify_read_ppn is None

    def test_verification_costs_a_read_in_the_simulator(self, tiny_config):
        def revived_latency(verify):
            ftl = BaseFTL(
                tiny_config, pool=InfiniteDeadValuePool(), verify_hits=verify
            )
            device = SimulatedSSD(ftl)
            device.submit(IORequest(0.0, OpType.WRITE, 0, 1))
            device.submit(IORequest(10_000.0, OpType.WRITE, 0, 2))
            done = device.submit(IORequest(20_000.0, OpType.WRITE, 1, 1))
            assert done.short_circuited
            return done.latency_us

        t = tiny_config.timing
        fast = revived_latency(False)
        slow = revived_latency(True)
        assert slow == pytest.approx(
            fast + t.read_us + t.channel_xfer_us
        )


class TestWearLevelling:
    def _churn(self, ftl, config, writes):
        ws = config.logical_pages // 2
        for i in range(writes):
            ftl.write(i % ws, fp(1_000_000 + i))

    def test_wear_tracker_always_available(self, tiny_config):
        ftl = BaseFTL(tiny_config)
        assert ftl.wear.stats().total_erases == 0

    def test_guard_reduces_wear_spread(self, tiny_config):
        """With the guard, erases spread more evenly across blocks."""
        writes = tiny_config.total_pages * 6
        plain = BaseFTL(tiny_config, wear_levelling=False)
        level = BaseFTL(tiny_config, wear_levelling=True, wear_guard_margin=2)
        self._churn(plain, tiny_config, writes)
        self._churn(level, tiny_config, writes)
        assert plain.counters.gc_erases > 0
        assert level.counters.gc_erases > 0
        assert level.wear.stats().spread <= plain.wear.stats().spread

    def test_guard_never_blocks_progress(self, tiny_config):
        """Even with an aggressive margin, writes always complete (the
        guard only filters when alternatives exist)."""
        ftl = BaseFTL(tiny_config, wear_levelling=True, wear_guard_margin=0)
        self._churn(ftl, tiny_config, tiny_config.total_pages * 4)
        ftl.check_invariants()

    def test_guard_composes_with_pool(self, tiny_config):
        ftl = BaseFTL(
            tiny_config,
            pool=MQDeadValuePool(64),
            popularity_aware_gc=True,
            wear_levelling=True,
        )
        self._churn(ftl, tiny_config, tiny_config.total_pages * 3)
        ftl.check_invariants()

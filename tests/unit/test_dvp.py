"""Unit tests for the dead-value pool variants."""

import pytest

from repro.core.dvp import (
    InfiniteDeadValuePool,
    LBARecencyPool,
    LRUDeadValuePool,
    MQDeadValuePool,
)
from repro.core.hashing import fingerprint_of_value as fp


BOUNDED_POOLS = [
    lambda: LRUDeadValuePool(4),
    lambda: MQDeadValuePool(4),
    lambda: LBARecencyPool(4),
]
ALL_POOLS = BOUNDED_POOLS + [InfiniteDeadValuePool]


@pytest.mark.parametrize("make_pool", ALL_POOLS)
class TestCommonProtocol:
    def test_miss_on_empty(self, make_pool):
        pool = make_pool()
        assert pool.lookup_for_write(fp(1), now=1) is None
        assert pool.stats.misses == 1

    def test_insert_then_hit_returns_ppn(self, make_pool):
        pool = make_pool()
        pool.insert_garbage(fp(1), ppn=100, now=1, lpn=0)
        assert pool.lookup_for_write(fp(1), now=2) == 100
        assert pool.stats.hits == 1

    def test_hit_consumes_the_entry(self, make_pool):
        pool = make_pool()
        pool.insert_garbage(fp(1), ppn=100, now=1, lpn=0)
        assert pool.lookup_for_write(fp(1), now=2) == 100
        assert pool.lookup_for_write(fp(1), now=3) is None

    def test_contains(self, make_pool):
        pool = make_pool()
        assert fp(1) not in pool
        pool.insert_garbage(fp(1), ppn=100, now=1, lpn=0)
        assert fp(1) in pool

    def test_discard_ppn(self, make_pool):
        pool = make_pool()
        pool.insert_garbage(fp(1), ppn=100, now=1, lpn=0)
        assert pool.discard_ppn(fp(1), 100) is True
        assert fp(1) not in pool
        assert pool.stats.gc_removals == 1

    def test_discard_unknown_ppn(self, make_pool):
        pool = make_pool()
        assert pool.discard_ppn(fp(9), 999) is False


@pytest.mark.parametrize("make_pool", BOUNDED_POOLS)
class TestCapacity:
    def test_never_exceeds_capacity(self, make_pool):
        pool = make_pool()
        for i in range(20):
            pool.insert_garbage(fp(i), ppn=i, now=i, lpn=i)
            assert len(pool) <= 4

    def test_eviction_reports_dropped_ppns(self, make_pool):
        pool = make_pool()
        dropped = []
        for i in range(20):
            dropped += pool.insert_garbage(fp(i), ppn=i, now=i, lpn=i)
        assert len(dropped) == 16
        assert pool.stats.evicted_ppns >= 16


class TestInfinitePool:
    def test_tracks_multiple_ppns_per_value(self):
        pool = InfiniteDeadValuePool()
        pool.insert_garbage(fp(1), 10, now=1)
        pool.insert_garbage(fp(1), 11, now=2)
        assert pool.tracked_ppn_count() == 2
        first = pool.lookup_for_write(fp(1), now=3)
        second = pool.lookup_for_write(fp(1), now=4)
        assert {first, second} == {10, 11}
        assert first == 11  # freshest copy first (LIFO)

    def test_never_evicts(self):
        pool = InfiniteDeadValuePool()
        for i in range(10_000):
            pool.insert_garbage(fp(i), i, now=i)
        assert len(pool) == 10_000
        assert pool.stats.evictions == 0

    def test_discard_specific_ppn_keeps_others(self):
        pool = InfiniteDeadValuePool()
        pool.insert_garbage(fp(1), 10, now=1)
        pool.insert_garbage(fp(1), 11, now=2)
        pool.discard_ppn(fp(1), 10)
        assert fp(1) in pool
        assert pool.lookup_for_write(fp(1), now=3) == 11


class TestLRUPool:
    def test_evicts_least_recently_touched(self):
        pool = LRUDeadValuePool(2)
        pool.insert_garbage(fp(1), 1, now=1)
        pool.insert_garbage(fp(2), 2, now=2)
        pool.insert_garbage(fp(1), 11, now=3)   # refreshes fp(1)
        pool.insert_garbage(fp(3), 3, now=4)    # evicts fp(2)
        assert fp(2) not in pool
        assert fp(1) in pool and fp(3) in pool

    def test_eviction_drops_all_ppns_of_entry(self):
        pool = LRUDeadValuePool(1)
        pool.insert_garbage(fp(1), 1, now=1)
        pool.insert_garbage(fp(1), 2, now=2)
        dropped = pool.insert_garbage(fp(2), 3, now=3)
        assert sorted(dropped) == [1, 2]

    def test_hit_rate(self):
        pool = LRUDeadValuePool(4)
        pool.insert_garbage(fp(1), 1, now=1)
        pool.lookup_for_write(fp(1), now=2)
        pool.lookup_for_write(fp(2), now=3)
        assert pool.stats.hit_rate == 0.5


class TestMQPool:
    def test_popular_value_survives_unpopular_flood(self):
        """The defining MQ property: a high-popularity entry outlives a
        stream of popularity-1 insertions that would flush plain LRU."""
        pool = MQDeadValuePool(8, num_queues=4)
        pool.insert_garbage(fp(999), 999, now=0, popularity=50)
        pool.mq.access(fp(999), 1)  # climb out of Q0
        lru = LRUDeadValuePool(8)
        lru.insert_garbage(fp(999), 999, now=0, popularity=50)
        for i in range(100):
            pool.insert_garbage(fp(i), i, now=2 + i, popularity=1)
            lru.insert_garbage(fp(i), i, now=2 + i, popularity=1)
        assert fp(999) in pool      # MQ kept the popular dead value
        assert fp(999) not in lru   # LRU flushed it

    def test_multiple_ppns_reuse_lifo(self):
        pool = MQDeadValuePool(8)
        pool.insert_garbage(fp(1), 10, now=1)
        pool.insert_garbage(fp(1), 11, now=2)
        assert pool.lookup_for_write(fp(1), now=3) == 11
        assert fp(1) in pool
        assert pool.lookup_for_write(fp(1), now=4) == 10
        assert fp(1) not in pool

    def test_reinsert_promotes(self):
        pool = MQDeadValuePool(8, num_queues=4)
        pool.insert_garbage(fp(1), 10, now=1, popularity=1)
        pool.insert_garbage(fp(1), 11, now=2, popularity=2)
        assert pool.mq.entry(fp(1)).popularity >= 2

    def test_tracked_ppn_count(self):
        pool = MQDeadValuePool(8)
        pool.insert_garbage(fp(1), 10, now=1)
        pool.insert_garbage(fp(1), 11, now=2)
        pool.insert_garbage(fp(2), 20, now=3)
        assert pool.tracked_ppn_count() == 3


class TestLBARecencyPool:
    def test_requires_lpn(self):
        pool = LBARecencyPool(4)
        with pytest.raises(ValueError):
            pool.insert_garbage(fp(1), 1, now=1)

    def test_hot_lba_overwrites_slot(self):
        """The scalability flaw the paper critiques: one slot per LBA, so a
        second death at the same address silently drops the earlier value."""
        pool = LBARecencyPool(4)
        pool.insert_garbage(fp(1), 1, now=1, lpn=5)
        dropped = pool.insert_garbage(fp(2), 2, now=2, lpn=5)
        assert dropped == [1]
        assert fp(1) not in pool
        assert fp(2) in pool

    def test_popular_entry_gets_second_chance(self):
        pool = LBARecencyPool(2, popularity_threshold=4)
        pool.insert_garbage(fp(1), 1, now=1, lpn=1, popularity=10)
        pool.insert_garbage(fp(2), 2, now=2, lpn=2, popularity=1)
        pool.insert_garbage(fp(3), 3, now=3, lpn=3, popularity=1)
        # fp(1) was LRU but popular: second chance pushed eviction to fp(2).
        assert fp(1) in pool
        assert fp(2) not in pool

    def test_lookup_by_content_across_lbas(self):
        pool = LBARecencyPool(4)
        pool.insert_garbage(fp(7), 70, now=1, lpn=1)
        pool.insert_garbage(fp(7), 71, now=2, lpn=2)
        hit = pool.lookup_for_write(fp(7), now=3)
        assert hit in (70, 71)
        assert fp(7) in pool  # the other LBA's copy remains

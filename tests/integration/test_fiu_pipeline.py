"""Integration: generated trace → FIU file → parsed back → simulated.

Proves the whole pipeline also works from on-disk traces in the paper's
format, and that file round-tripping preserves simulation results exactly.
"""

import io

import pytest

from repro.experiments.runner import config_for_profile, prefill
from repro.ftl.dvp_ftl import make_mq_dvp
from repro.sim.ssd import SimulatedSSD
from repro.traces.fiu import iter_fiu_requests, write_fiu
from repro.traces.synthetic import generate_trace

from ..conftest import make_profile


@pytest.fixture(scope="module")
def profile():
    return make_profile(num_requests=3000, working_set_pages=400)


@pytest.fixture(scope="module")
def trace(profile):
    return generate_trace(profile)


def simulate(profile, requests):
    ftl = make_mq_dvp(config_for_profile(profile), 256)
    prefill(ftl, profile)
    return SimulatedSSD(ftl).run(list(requests)).summary()


class TestRoundTripSimulation:
    def test_fiu_roundtrip_preserves_structure(self, trace):
        buffer = io.StringIO()
        write_fiu(buffer, trace)
        buffer.seek(0)
        parsed = list(iter_fiu_requests(buffer))
        assert len(parsed) == len(trace)
        assert [r.lpn for r in parsed] == [r.lpn for r in trace]
        assert [r.op for r in parsed] == [r.op for r in trace]

    def test_value_identity_preserved(self, trace):
        """Interned ids differ from the originals, but equality structure
        (which requests share content) must be identical."""
        buffer = io.StringIO()
        write_fiu(buffer, trace)
        buffer.seek(0)
        parsed = list(iter_fiu_requests(buffer))
        seen_orig, seen_parsed = {}, {}
        for a, b in zip(trace, parsed):
            assert seen_orig.setdefault(a.value_id, len(seen_orig)) == \
                seen_parsed.setdefault(b.value_id, len(seen_parsed))

    def test_simulation_identical_through_file(self, profile, trace, tmp_path):
        path = tmp_path / "trace.fiu"
        with open(path, "w") as f:
            write_fiu(f, trace)
        with open(path) as f:
            parsed = list(iter_fiu_requests(f))
        # Note: interning renumbers values, but the runner's prefill uses
        # initial_value_of(lpn), which survives digest round-trip only for
        # trace-internal values; compare counters that depend only on the
        # trace's internal redundancy structure.
        direct = simulate(profile, trace)
        from_file = simulate(profile, parsed)
        assert from_file["host_writes"] == direct["host_writes"]
        assert from_file["flash_writes"] == direct["flash_writes"]
        assert from_file["short_circuits"] == direct["short_circuits"]

"""Unit tests for the FIU trace format."""

import io

import pytest

from repro.sim.request import IORequest, OpType
from repro.traces.fiu import (
    FIUFormatError,
    SECTORS_PER_PAGE,
    format_fiu_line,
    iter_fiu_requests,
    parse_fiu_line,
    read_fiu,
    write_fiu,
)

LINE = "123.456 42 httpd 1024 8 W 8 0 0123456789abcdef0123456789abcdef"


class TestParsing:
    def test_parse_fields(self):
        rec = parse_fiu_line(LINE)
        assert rec.timestamp == 123.456
        assert rec.pid == 42
        assert rec.process == "httpd"
        assert rec.lba == 1024
        assert rec.size == 8
        assert rec.op is OpType.WRITE
        assert rec.md5 == "0123456789abcdef0123456789abcdef"

    def test_lpn_conversion(self):
        rec = parse_fiu_line(LINE)
        assert rec.lpn == 1024 // SECTORS_PER_PAGE == 128

    def test_lowercase_op_accepted(self):
        rec = parse_fiu_line(LINE.replace(" W ", " r "))
        assert rec.op is OpType.READ

    def test_wrong_field_count(self):
        with pytest.raises(FIUFormatError, match="9 fields"):
            parse_fiu_line("1 2 3")

    def test_bad_op(self):
        with pytest.raises(FIUFormatError, match="op"):
            parse_fiu_line(LINE.replace(" W ", " X "))

    def test_bad_number(self):
        with pytest.raises(FIUFormatError):
            parse_fiu_line(LINE.replace("1024", "10x4"))

    def test_read_fiu_skips_comments_and_blanks(self):
        stream = io.StringIO(f"# header\n\n{LINE}\n")
        assert len(list(read_fiu(stream))) == 1


class TestRequestConversion:
    def test_digest_interning(self):
        lines = [LINE, LINE.replace("1024", "2048")]
        reqs = list(iter_fiu_requests(io.StringIO("\n".join(lines))))
        assert len(reqs) == 2
        assert reqs[0].value_id == reqs[1].value_id == 0

    def test_distinct_digests_distinct_values(self):
        other = LINE.replace("0123456789abcdef" * 2, "f" * 32)
        reqs = list(iter_fiu_requests(io.StringIO(f"{LINE}\n{other}\n")))
        assert reqs[0].value_id != reqs[1].value_id

    def test_multi_page_request_split(self):
        big = LINE.replace(" 8 W", " 16 W")  # 16 sectors = 2 pages
        reqs = list(iter_fiu_requests(io.StringIO(big)))
        assert len(reqs) == 2
        assert reqs[1].lpn == reqs[0].lpn + 1

    def test_timestamp_unit(self):
        reqs = list(
            iter_fiu_requests(io.StringIO(LINE), timestamp_unit_us=1000.0)
        )
        assert reqs[0].arrival_us == pytest.approx(123456.0)


class TestRoundTrip:
    def test_write_then_read_preserves_semantics(self):
        original = [
            IORequest(10.0, OpType.WRITE, 5, 7),
            IORequest(20.0, OpType.READ, 5, 7),
            IORequest(30.0, OpType.WRITE, 6, 8),
        ]
        buffer = io.StringIO()
        assert write_fiu(buffer, original) == 3
        buffer.seek(0)
        parsed = list(iter_fiu_requests(buffer))
        assert [r.lpn for r in parsed] == [5, 5, 6]
        assert [r.op for r in parsed] == [
            OpType.WRITE, OpType.READ, OpType.WRITE,
        ]
        # identical contents intern to identical ids; distinct stay distinct
        assert parsed[0].value_id == parsed[1].value_id
        assert parsed[0].value_id != parsed[2].value_id

    def test_formatted_line_is_parseable(self):
        line = format_fiu_line(IORequest(1.5, OpType.WRITE, 100, 77))
        rec = parse_fiu_line(line)
        assert rec.lpn == 100
        assert rec.op is OpType.WRITE
        assert len(rec.md5) == 32

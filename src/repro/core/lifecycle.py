"""Value life-cycle tracking: creation, death and rebirth of 4KB contents.

Section II of the paper extends a value's life-cycle to three stages:

* **creation** — the first time a value is written;
* **death** — a copy of the value is invalidated (its logical page was
  overwritten with different content), turning a physical page to garbage;
* **rebirth** — the value is written again while at least one dead copy of
  it still exists, so that copy could be revived instead of programmed.

:class:`LifecycleTracker` replays a trace against an idealised logical
address space (no capacity limits — the "infinite buffer" of Figure 1) and
produces exactly the statistics Figures 1–4 are drawn from: per-value write,
invalidation and rebirth counts, and the number of intervening writes
between creation→death and death→rebirth, bucketed later by popularity
degree.

Two accounting modes mirror the paper's two storage models:

* ``dedup=False`` — a normal SSD: every serviced write programs its own
  physical copy, so a value can be live at many pages at once;
* ``dedup=True`` — a deduplicated SSD (CAFTL-style): one physical copy per
  value with reference counting; the copy dies only when the last pointer
  is removed.  Used for the "after deduplication" series of Figure 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, Optional

__all__ = ["ValueStats", "LifecycleStats", "LifecycleTracker"]


@dataclass
class ValueStats:
    """Per-unique-value counters accumulated over a trace replay."""

    writes: int = 0
    reads: int = 0
    invalidations: int = 0        # deaths: copies turned to garbage
    rebirths: int = 0             # writes that found a dead copy to revive
    live_copies: int = 0
    dead_copies: int = 0
    creation_index: int = -1      # write-clock when first written
    last_death_index: int = -1    # write-clock of the most recent death
    # Interval accumulators (paper Figure 4 reports means per popularity bin;
    # sums + counts avoid storing every sample).
    creation_to_death_sum: int = 0
    creation_to_death_n: int = 0
    death_to_rebirth_sum: int = 0
    death_to_rebirth_n: int = 0

    @property
    def mean_creation_to_death(self) -> Optional[float]:
        if self.creation_to_death_n == 0:
            return None
        return self.creation_to_death_sum / self.creation_to_death_n

    @property
    def mean_death_to_rebirth(self) -> Optional[float]:
        if self.death_to_rebirth_n == 0:
            return None
        return self.death_to_rebirth_sum / self.death_to_rebirth_n


@dataclass
class LifecycleStats:
    """Aggregate counters over the whole replay."""

    total_requests: int = 0
    total_writes: int = 0
    total_reads: int = 0
    deaths: int = 0
    rebirths: int = 0             # writes short-circuitable via garbage
    dedup_eliminated: int = 0     # writes removed by live-value dedup
    programs: int = 0             # writes that actually hit flash


class LifecycleTracker:
    """Replay a trace and account every value's creations, deaths, rebirths.

    The tracker is intentionally storage-agnostic: it models only the
    logical address space and value multiplicity, with an *unbounded*
    garbage pool, which is what the paper's Section II characterisation
    does ("assuming that an unlimited buffer space is available").
    """

    def __init__(self, dedup: bool = False):
        self.dedup = dedup
        self.values: Dict[Hashable, ValueStats] = {}
        self.stats = LifecycleStats()
        self._page_content: Dict[int, Hashable] = {}
        self._page_written_at: Dict[int, int] = {}
        self._write_clock = 0

    # ------------------------------------------------------------------

    def _value(self, value_id: Hashable) -> ValueStats:
        stats = self.values.get(value_id)
        if stats is None:
            stats = ValueStats()
            self.values[value_id] = stats
        return stats

    def on_read(self, lpn: int, value_id: Hashable) -> None:
        """Record a read of ``value_id`` (used for read-popularity stats)."""
        self.stats.total_requests += 1
        self.stats.total_reads += 1
        self._value(value_id).reads += 1

    def on_write(self, lpn: int, value_id: Hashable) -> bool:
        """Record a write; return ``True`` when it was short-circuitable.

        A write is short-circuitable when, at the moment it arrives, a dead
        copy of its content exists (non-dedup mode), or — in dedup mode —
        when it is not already eliminated by a live copy but a dead copy
        exists.
        """
        self.stats.total_requests += 1
        self.stats.total_writes += 1
        self._write_clock += 1
        now = self._write_clock

        new = self._value(value_id)
        if new.writes == 0:
            new.creation_index = now
        new.writes += 1

        self._invalidate_previous(lpn, now, incoming=value_id)

        reborn = False
        if self.dedup and new.live_copies > 0:
            # Live-value dedup removes the write before the garbage pool is
            # ever consulted; the logical page just gains a pointer.
            self.stats.dedup_eliminated += 1
            new.live_copies += 1
        elif new.dead_copies > 0:
            reborn = True
            new.rebirths += 1
            new.dead_copies -= 1
            new.live_copies += 1
            if new.last_death_index >= 0:
                new.death_to_rebirth_sum += now - new.last_death_index
                new.death_to_rebirth_n += 1
            self.stats.rebirths += 1
        else:
            self.stats.programs += 1
            new.live_copies += 1

        self._page_content[lpn] = value_id
        self._page_written_at[lpn] = now
        return reborn

    def _invalidate_previous(
        self, lpn: int, now: int, incoming: Hashable
    ) -> None:
        """Kill the copy previously mapped at ``lpn``, if any."""
        old_id = self._page_content.get(lpn)
        if old_id is None:
            return
        if old_id == incoming and not self.dedup:
            # Overwriting a page with identical content still invalidates
            # the old physical copy in a normal SSD (out-of-place update),
            # and the dying copy is immediately a rebirth candidate.
            pass
        old = self.values[old_id]
        old.live_copies -= 1
        if self.dedup and old.live_copies > 0:
            # Other pointers keep the physical copy alive: no death yet.
            return
        old.invalidations += 1
        old.dead_copies += 1
        old.last_death_index = now
        written_at = self._page_written_at.get(lpn, old.creation_index)
        if written_at >= 0:
            old.creation_to_death_sum += now - written_at
            old.creation_to_death_n += 1
        self.stats.deaths += 1

    # ------------------------------------------------------------------
    # Derived views used by the Section II analyses
    # ------------------------------------------------------------------

    @property
    def write_clock(self) -> int:
        """Number of writes processed so far (the paper's time metric)."""
        return self._write_clock

    def unique_value_count(self) -> int:
        """Distinct values *written* during the replay (read-only values —
        e.g. pre-existing content only ever read — are excluded, matching
        the paper's "values written during the course of execution")."""
        return sum(1 for v in self.values.values() if v.writes > 0)

    def live_value_count(self) -> int:
        """Written values with at least one live copy at end of replay
        (Figure 2's "still present (live) in the SSD")."""
        return sum(
            1 for v in self.values.values()
            if v.writes > 0 and v.live_copies > 0
        )

    def reuse_probability(self) -> float:
        """Figure 1: fraction of writes servable from garbage pages."""
        if self.stats.total_writes == 0:
            return 0.0
        return self.stats.rebirths / self.stats.total_writes

    def iter_value_stats(self) -> Iterable[ValueStats]:
        """Stats of every *written* value (read-only entries excluded)."""
        return (v for v in self.values.values() if v.writes > 0)

"""Page-level address mapping: LPN → PPN, with the paper's popularity byte.

The mapping unit (paper Section IV-B/C, Figure 8) is a page-level table
from Logical Page Number to Physical Page Number, extended with one byte
per LPN that persists the write-popularity of the data block mapped there
so the popularity degree survives dead-value-pool evictions.

The table also supports many-to-one mappings (several LPNs pointing at the
same PPN) because the deduplicated FTL of Section VII needs reference
counting; the plain FTL simply keeps every PPN's reference set at size one.

Layout (columnar-state rework, ISSUE 6).  The forward table is a flat
``array('q')`` indexed by LPN (-1 = unmapped) and the popularity byte is a
``bytearray`` — exactly the densely-packed tables a real controller keeps
in DRAM, at 9 bytes per logical page instead of dict-of-boxed-ints rates.
The reverse index is a second ``array('q')`` indexed by PPN holding the
*single owning LPN* (the overwhelmingly common case, and the only case in
a non-dedup FTL); only PPNs with two or more referencing LPNs spill into
the ``_shared`` dict of sets that reference counting for dedup requires.
Sentinels in the owner column: ``-1`` = unreferenced, ``-2`` = spilled.

Construct with explicit sizes (``MappingTable(logical_pages, total_pages)``)
to preallocate the columns; without sizes the columns auto-grow by
doubling, so small tests and crash-recovery rebuilds can stay lazy.
"""

from __future__ import annotations

from array import array
from typing import Dict, List, Optional, Set

__all__ = ["MappingTable", "POPULARITY_MAX"]

#: The popularity field is 1 byte (Section IV-C), so it saturates at 255.
POPULARITY_MAX = 255

#: Owner-column sentinels.
_NONE = -1       # no LPN references this PPN
_SHARED = -2     # two or more LPNs reference this PPN (see ``_shared``)

_EMPTY_CELL = array("q", [-1])


def _unmapped_column(length: int) -> array:
    """A fresh ``array('q')`` of ``length`` cells, all -1."""
    return _EMPTY_CELL * length


class MappingTable:
    """LPN→PPN table with reverse index and per-LPN popularity byte."""

    __slots__ = ("_l2p", "_pop", "_owner", "_shared", "_mapped")

    def __init__(
        self,
        logical_pages: Optional[int] = None,
        total_pages: Optional[int] = None,
    ) -> None:
        #: Forward column: LPN → PPN, -1 when unmapped.
        self._l2p: array = _unmapped_column(logical_pages or 0)
        #: Popularity byte per LPN (grows in lockstep with ``_l2p``).
        self._pop = bytearray(logical_pages or 0)
        #: Reverse column: PPN → owning LPN, ``_NONE`` or ``_SHARED``.
        self._owner: array = _unmapped_column(total_pages or 0)
        #: Spill store for many-to-one PPNs only (dedup's refcounts).
        self._shared: Dict[int, Set[int]] = {}
        #: Forward entries currently mapped (kept incrementally).
        self._mapped = 0

    # ------------------------------------------------------------------
    # Column growth (no-ops when constructed with full sizes)
    # ------------------------------------------------------------------

    def _grow_lpn(self, lpn: int) -> None:
        if lpn < 0:
            raise ValueError("LPN must be non-negative")
        grow = max(lpn + 1 - len(self._l2p), len(self._l2p), 64)
        self._l2p.extend(_unmapped_column(grow))
        self._pop.extend(bytes(grow))

    def _grow_ppn(self, ppn: int) -> None:
        if ppn < 0:
            raise ValueError("PPN must be non-negative")
        grow = max(ppn + 1 - len(self._owner), len(self._owner), 64)
        self._owner.extend(_unmapped_column(grow))

    # ------------------------------------------------------------------
    # Forward mapping
    # ------------------------------------------------------------------

    def lookup(self, lpn: int) -> Optional[int]:
        """PPN currently mapped at ``lpn``, or ``None`` if unmapped."""
        if 0 <= lpn < len(self._l2p):
            ppn = self._l2p[lpn]
            if ppn >= 0:
                return ppn
        return None

    def map(self, lpn: int, ppn: int) -> None:
        """Point ``lpn`` at ``ppn`` (the LPN must currently be unmapped)."""
        if not 0 <= lpn < len(self._l2p):
            self._grow_lpn(lpn)
        if not 0 <= ppn < len(self._owner):
            self._grow_ppn(ppn)
        if self._l2p[lpn] >= 0:
            raise RuntimeError(f"LPN {lpn} is already mapped; unmap first")
        self._l2p[lpn] = ppn
        self._mapped += 1
        self._attach(lpn, ppn)

    def _attach(self, lpn: int, ppn: int) -> None:
        """Add ``lpn`` to ``ppn``'s reverse entry (forward already set)."""
        owner = self._owner
        current = owner[ppn]
        if current == _NONE:
            owner[ppn] = lpn
        elif current == _SHARED:
            self._shared[ppn].add(lpn)
        else:
            self._shared[ppn] = {current, lpn}
            owner[ppn] = _SHARED

    def unmap(self, lpn: int) -> Optional[int]:
        """Remove ``lpn``'s mapping; return the PPN it pointed at."""
        if not 0 <= lpn < len(self._l2p):
            return None
        ppn = self._l2p[lpn]
        if ppn < 0:
            return None
        self._l2p[lpn] = -1
        self._mapped -= 1
        owner = self._owner
        current = owner[ppn]
        if current == _SHARED:
            lpns = self._shared[ppn]
            lpns.discard(lpn)
            if len(lpns) == 1:
                # Collapse back to the dense single-owner representation.
                owner[ppn] = lpns.pop()
                del self._shared[ppn]
        elif current == lpn:
            owner[ppn] = _NONE
        return ppn

    def remap_ppn(self, old_ppn: int, new_ppn: int) -> int:
        """Repoint every LPN referencing ``old_ppn`` to ``new_ppn``.

        Used by GC relocation; returns the number of LPNs moved.  Shared
        (dedup) LPN sets are walked in ascending-LPN order so relocation
        is order-deterministic.
        """
        owner = self._owner
        if not 0 <= old_ppn < len(owner):
            return 0
        current = owner[old_ppn]
        if current == _NONE:
            return 0
        if not 0 <= new_ppn < len(owner):
            self._grow_ppn(new_ppn)
        l2p = self._l2p
        if current != _SHARED:
            owner[old_ppn] = _NONE
            l2p[current] = new_ppn
            self._attach(current, new_ppn)
            return 1
        lpns = self._shared.pop(old_ppn)
        owner[old_ppn] = _NONE
        for lpn in sorted(lpns):
            l2p[lpn] = new_ppn
            self._attach(lpn, new_ppn)
        return len(lpns)

    # ------------------------------------------------------------------
    # Reverse mapping / reference counts
    # ------------------------------------------------------------------

    def lpns_of(self, ppn: int) -> Set[int]:
        """LPNs currently referencing ``ppn`` (copy-safe view)."""
        if not 0 <= ppn < len(self._owner):
            return set()
        current = self._owner[ppn]
        if current == _NONE:
            return set()
        if current == _SHARED:
            return set(self._shared[ppn])
        return {current}

    def refcount(self, ppn: int) -> int:
        """How many LPNs point at ``ppn`` (dedup keeps this > 1)."""
        if not 0 <= ppn < len(self._owner):
            return 0
        current = self._owner[ppn]
        if current == _NONE:
            return 0
        if current == _SHARED:
            return len(self._shared[ppn])
        return 1

    def mapped_lpn_count(self) -> int:
        return self._mapped

    def mapped_ppns(self) -> List[int]:
        """Every PPN at least one LPN references (ascending order)."""
        owner = self._owner
        return [ppn for ppn in range(len(owner)) if owner[ppn] != _NONE]

    def forward_items(self) -> Dict[int, int]:
        """A copy of the full LPN→PPN table (crash-recovery verification)."""
        l2p = self._l2p
        return {lpn: l2p[lpn] for lpn in range(len(l2p)) if l2p[lpn] >= 0}

    # ------------------------------------------------------------------
    # Popularity byte (Figure 8)
    # ------------------------------------------------------------------

    def popularity(self, lpn: int) -> int:
        if 0 <= lpn < len(self._pop):
            return self._pop[lpn]
        return 0

    def set_popularity(self, lpn: int, value: int) -> None:
        if not 0 <= lpn < len(self._pop):
            self._grow_lpn(lpn)
        self._pop[lpn] = min(max(value, 0), POPULARITY_MAX)

    def bump_popularity(self, lpn: int) -> int:
        """Saturating increment of ``lpn``'s popularity byte; returns it."""
        if not 0 <= lpn < len(self._pop):
            self._grow_lpn(lpn)
        value = self._pop[lpn]
        if value < POPULARITY_MAX:
            value += 1
            self._pop[lpn] = value
        return value

    def check_invariants(self) -> None:
        """Forward, reverse and counter columns must agree (test hook)."""
        owner = self._owner
        shared = self._shared
        forward_count = 0
        for lpn in range(len(self._l2p)):
            ppn = self._l2p[lpn]
            if ppn < 0:
                continue
            forward_count += 1
            assert 0 <= ppn < len(owner), f"LPN {lpn} maps beyond the owner column"
            current = owner[ppn]
            assert current == lpn or (
                current == _SHARED and lpn in shared.get(ppn, ())
            ), f"reverse map missing LPN {lpn} -> PPN {ppn}"
        assert forward_count == self._mapped, "mapped-count column out of sync"
        reverse_count = 0
        for ppn in range(len(owner)):
            current = owner[ppn]
            if current == _NONE:
                continue
            if current == _SHARED:
                lpns = shared.get(ppn, set())
                assert len(lpns) >= 2, f"spilled PPN {ppn} has < 2 owners"
                reverse_count += len(lpns)
            else:
                assert ppn not in shared, f"PPN {ppn} is both dense and spilled"
                reverse_count += 1
        assert set(shared) <= {
            ppn for ppn in range(len(owner)) if owner[ppn] == _SHARED
        }, "spill store holds PPNs the owner column does not mark shared"
        assert reverse_count == forward_count, "reverse map has stale LPNs"

"""Prefill snapshot/restore: precondition once per FTL family, reuse by copy.

Every experiment run starts from a preconditioned drive — ``prefill``
writes each exported logical page once with its unique initial value, which
for short traces costs more simulator work than the trace replay itself.

The post-prefill state is *identical* across studied systems that share an
FTL class: prefill writes are all-unique values into an empty drive, so
pool lookups all miss, nothing is invalidated, no garbage exists and no GC
runs.  The pool stays empty and the pool/GC-policy differences between
``baseline``/``mq-dvp``/``lru-dvp``/``ideal``/``lxssd`` (one family) or
``dedup``/``dvp+dedup`` (the other — its live-value index is part of the
state) cannot influence the outcome.  A pool-size sweep such as the
Figure 5/9 cells trivially shares one family too.

:class:`PrefillCache` exploits this: the first run of a (family, config,
profile) triple prefills normally and pickles the content-independent
state — flash array, allocator, mapping table, fingerprint and popularity
indexes, write clock, plus the dedup live index when applicable.  Sibling
runs build their own system (pool, GC policy and all) and rehydrate that
snapshot by copy, skipping the per-page write loop entirely.  Restores are
``pickle.loads`` of an immutable byte string, so runs can never leak state
into each other — the basis of the bit-identical guarantee the
determinism tests enforce.
"""

from __future__ import annotations

import pickle
from collections import OrderedDict
from typing import TYPE_CHECKING, Optional, Tuple

from ..core.dvp import PoolStats
from ..flash.config import SSDConfig
from ..ftl.dedup import DedupFTL
from ..ftl.dvp_ftl import build_system
from ..ftl.ftl import BaseFTL, FTLCounters
from ..traces.profiles import WorkloadProfile
from .trace_cache import profile_cache_key

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..sim.ssd import SimulatedSSD

__all__ = [
    "PrefillCache",
    "default_prefill_cache",
    "capture_live_state",
    "restore_live_state",
]

#: FTL attributes that fully determine the shared post-prefill state.
#: ``array``/``allocator``/``mapping`` carry the drive; ``_ppn_fp`` and
#: ``_write_popularity`` the content bookkeeping; ``write_clock`` the
#: logical time prefill advanced to; ``_oob``/``_oob_seq``/``_oob_trims``
#: the out-of-band journal crash recovery scans.
_SHARED_ATTRS = (
    "array",
    "allocator",
    "mapping",
    "write_clock",
    "_ppn_fp",
    "_write_popularity",
    "_oob",
    "_oob_seq",
    "_oob_trims",
)

#: Families eligible for snapshot sharing.  Exact classes only: a subclass
#: may carry extra state this module does not know how to capture, so it
#: silently falls back to a direct prefill.
_FAMILIES = (BaseFTL, DedupFTL)


def _capture(ftl: BaseFTL) -> bytes:
    """Pickle the shareable post-prefill state of ``ftl``.

    Cross-references (``allocator.array``) survive because everything is
    pickled as one object graph.
    """
    state = {name: getattr(ftl, name) for name in _SHARED_ATTRS}
    state["gc_invocations"] = ftl.gc.invocations
    if isinstance(ftl, DedupFTL):
        state["_live_index"] = ftl._live_index
    return pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)


def _restore(ftl: BaseFTL, snapshot: bytes) -> None:
    """Graft a captured prefill state onto a freshly built system."""
    state = pickle.loads(snapshot)
    live_index = state.pop("_live_index", None)
    ftl.gc.invocations = state.pop("gc_invocations")
    for name, value in state.items():
        setattr(ftl, name, value)
    # The collector and wear tracker hold direct references to the array
    # and allocator they were built with; point them at the grafted copies.
    ftl.gc.array = ftl.array
    ftl.gc.allocator = ftl.allocator
    ftl.wear.array = ftl.array
    if live_index is not None:
        ftl._live_index = live_index
    # Mirror prefill's epilogue: measurements cover only the trace window.
    ftl.counters = FTLCounters()
    if ftl.pool is not None:
        ftl.pool.stats = PoolStats()


class PrefillCache:
    """Bounded LRU of prefill snapshots keyed by (family, config, profile)."""

    def __init__(self, max_entries: int = 4):
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self._snaps: "OrderedDict[Tuple[str, SSDConfig, str], bytes]" = (
            OrderedDict()
        )
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._snaps)

    def clear(self) -> None:
        self._snaps.clear()

    def warm(
        self,
        system: str,
        config: SSDConfig,
        profile: WorkloadProfile,
        pool_entries: int,
    ) -> bool:
        """Ensure the family snapshot for this cell exists, without
        building a restored system.

        The parallel engine calls this in the *parent* process before the
        worker pool forks: children inherit the warm snapshot copy-on-
        write, so no worker ever repeats the per-page prefill loop.
        Returns ``False`` for systems outside the shareable families.
        """
        from ..experiments.runner import prefill  # runtime: avoids a cycle

        ftl = build_system(system, config, pool_entries)
        if type(ftl) not in _FAMILIES:
            return False
        key = (type(ftl).__name__, config, profile_cache_key(profile))
        if key in self._snaps:
            self._snaps.move_to_end(key)
            return True
        self.misses += 1
        prefill(ftl, profile)
        self._snaps[key] = _capture(ftl)
        self._snaps.move_to_end(key)
        while len(self._snaps) > self.max_entries:
            self._snaps.popitem(last=False)
        return True

    def prefilled_system(
        self,
        system: str,
        config: SSDConfig,
        profile: WorkloadProfile,
        pool_entries: int,
    ) -> BaseFTL:
        """Build ``system`` and precondition it for ``profile``.

        The first call for a family prefills directly (and captures the
        snapshot); subsequent calls restore by copy.  Either way the
        returned FTL is indistinguishable from a freshly prefilled one.
        """
        from ..experiments.runner import prefill  # runtime: avoids a cycle

        ftl = build_system(system, config, pool_entries)
        if type(ftl) not in _FAMILIES:
            prefill(ftl, profile)
            return ftl
        key = (type(ftl).__name__, config, profile_cache_key(profile))
        snapshot = self._snaps.get(key)
        if snapshot is None:
            self.misses += 1
            prefill(ftl, profile)
            self._snaps[key] = _capture(ftl)
            self._snaps.move_to_end(key)
            while len(self._snaps) > self.max_entries:
                self._snaps.popitem(last=False)
        else:
            self.hits += 1
            self._snaps.move_to_end(key)
            _restore(ftl, snapshot)
        return ftl


# -- live mid-run state ------------------------------------------------
#
# The prefill cache above shares the *post-precondition* state between
# runs.  The serve layer needs something stronger: checkpointing a
# device *mid-run* — FTL tables, timelines, latency samples, the global
# request index — such that a restored device finishes a trace
# digest-identical to one that was never interrupted.  Unlike the
# prefill path (which grafts a curated attribute subset onto a freshly
# built FTL), a live checkpoint pickles the whole (ftl, ssd) object
# graph in one piece, so every cross-reference (gc→array, timelines,
# host queue heap, accumulated samples) survives by construction.
# Restores are ``pickle.loads`` of an immutable byte string, the same
# no-leak guarantee the prefill cache gives.

#: Live-state blobs are version-tagged so a reader refuses a blob from
#: an incompatible writer instead of grafting mismatched state.
LIVE_STATE_VERSION = 1


def capture_live_state(ftl: BaseFTL, ssd: "SimulatedSSD") -> bytes:
    """Pickle the complete mid-run state of a device.

    Requires a device without live observers attached (samplers hold
    callbacks that cannot cross a pickle boundary); the serve layer
    never attaches them to checkpointable sessions.
    """
    if ssd.observer is not None:
        raise ValueError(
            "cannot capture live state with a TimeSeriesSampler attached "
            "(samplers hold process-local callbacks)"
        )
    if ssd.ftl is not ftl:
        raise ValueError("ssd was built over a different ftl")
    return pickle.dumps(
        {"version": LIVE_STATE_VERSION, "ftl": ftl, "ssd": ssd},
        protocol=pickle.HIGHEST_PROTOCOL,
    )


def restore_live_state(blob: bytes) -> Tuple[BaseFTL, "SimulatedSSD"]:
    """Rehydrate a :func:`capture_live_state` blob.

    The returned pair shares one object graph (``ssd.ftl is ftl``), so
    stepping the restored device continues exactly where the captured
    one stopped — the serve checkpoint tests prove digest identity with
    an uninterrupted run.
    """
    state = pickle.loads(blob)
    version = state.get("version")
    if version != LIVE_STATE_VERSION:
        raise ValueError(
            f"live-state blob version {version!r} != supported "
            f"{LIVE_STATE_VERSION}"
        )
    ftl, ssd = state["ftl"], state["ssd"]
    if ssd.ftl is not ftl:
        raise ValueError("corrupt live-state blob: ssd/ftl graph split")
    return ftl, ssd


_default: Optional[PrefillCache] = None


def default_prefill_cache() -> PrefillCache:
    """The process-wide prefill cache used by ``run_system``."""
    global _default
    if _default is None:
        _default = PrefillCache()
    return _default

"""Property-based tests: random host workloads keep every FTL consistent."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hashing import fingerprint_of_value as fp
from repro.flash.block import PageState
from repro.flash.config import SSDConfig
from repro.ftl.dvp_ftl import build_system


def small_config() -> SSDConfig:
    return SSDConfig(
        channels=2, chips_per_channel=1, dies_per_chip=1, planes_per_die=1,
        blocks_per_plane=12, pages_per_block=8, overprovision=0.2,
    )


LOGICAL = small_config().logical_pages

# (is_write, lpn, value) streams; value space small to force redundancy.
workloads = st.lists(
    st.tuples(
        st.booleans(),
        st.integers(min_value=0, max_value=min(40, LOGICAL - 1)),
        st.integers(min_value=0, max_value=12),
    ),
    max_size=250,
)


def drive(system, operations):
    ftl = build_system(system, small_config(), 16)
    expected = {}
    for is_write, lpn, value in operations:
        if is_write:
            ftl.write(lpn, fp(value))
            expected[lpn] = value
        else:
            ftl.read(lpn)
    return ftl, expected


SYSTEMS = ["baseline", "lru-dvp", "mq-dvp", "ideal", "lxssd", "dedup",
           "dvp+dedup"]


@pytest.mark.parametrize("system", SYSTEMS)
@given(operations=workloads)
@settings(max_examples=25, deadline=None)
def test_data_integrity(system, operations):
    """The fundamental storage property: reads-after-writes see the last
    written content, under every system, at any point in the op stream."""
    ftl, expected = drive(system, operations)
    for lpn, value in expected.items():
        ppn = ftl.mapping.lookup(lpn)
        assert ppn is not None, f"{system}: LPN {lpn} lost its mapping"
        assert ftl.fingerprint_at(ppn) == fp(value), (
            f"{system}: LPN {lpn} holds wrong content"
        )
        assert ftl.array.state_of(ppn) is PageState.VALID


@pytest.mark.parametrize("system", SYSTEMS)
@given(operations=workloads)
@settings(max_examples=25, deadline=None)
def test_structural_invariants(system, operations):
    ftl, _ = drive(system, operations)
    ftl.check_invariants()


@pytest.mark.parametrize("system", SYSTEMS)
@given(operations=workloads)
@settings(max_examples=25, deadline=None)
def test_write_accounting(system, operations):
    ftl, _ = drive(system, operations)
    c = ftl.counters
    writes = sum(1 for w, _, _ in operations if w)
    assert c.host_writes == writes
    assert c.programs + c.short_circuits + c.dedup_hits == writes
    assert c.invalidations <= writes


@given(operations=workloads)
@settings(max_examples=25, deadline=None)
def test_page_conservation(operations):
    """free + valid + invalid pages always equals raw capacity."""
    ftl, _ = drive("mq-dvp", operations)
    array = ftl.array
    total = array.free_pages + array.valid_pages + array.invalid_pages
    assert total == array.config.total_pages


@given(operations=workloads)
@settings(max_examples=25, deadline=None)
def test_pool_tracks_only_invalid_pages(operations):
    """Every PPN the MQ pool would revive must currently be INVALID."""
    ftl, _ = drive("mq-dvp", operations)
    pool = ftl.pool
    for q in range(pool.mq.num_queues):
        for key in pool.mq.keys_in_queue(q):
            for ppn in pool.mq.get(key).ppns:
                assert ftl.array.state_of(ppn) is PageState.INVALID
                assert ftl.fingerprint_at(ppn) == key

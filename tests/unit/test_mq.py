"""Unit tests for the Multi-Queue replacement algorithm."""

import pytest

from repro.core.mq import MultiQueue, queue_index_for_popularity


class TestQueueIndex:
    def test_logarithmic_placement(self):
        # floor(log2(pop + 1))
        assert queue_index_for_popularity(0, 8) == 0
        assert queue_index_for_popularity(1, 8) == 1
        assert queue_index_for_popularity(2, 8) == 1
        assert queue_index_for_popularity(3, 8) == 2
        assert queue_index_for_popularity(7, 8) == 3
        assert queue_index_for_popularity(255, 8) == 7

    def test_clamped_to_queue_count(self):
        assert queue_index_for_popularity(10_000, 4) == 3

    def test_negative_popularity_rejected(self):
        with pytest.raises(ValueError):
            queue_index_for_popularity(-1, 8)


class TestInsertAndAccess:
    def test_insert_goes_to_lowest_queue(self):
        mq = MultiQueue(capacity=8, num_queues=4)
        mq.insert("a", "payload", now=1)
        assert mq.entry("a").queue_index == 0
        assert mq.keys_in_queue(0) == ["a"]

    def test_insert_duplicate_key_raises(self):
        mq = MultiQueue(capacity=8)
        mq.insert("a", 1, now=1)
        with pytest.raises(KeyError):
            mq.insert("a", 2, now=2)

    def test_access_missing_returns_none(self):
        mq = MultiQueue(capacity=8)
        assert mq.access("ghost", now=1) is None

    def test_access_bumps_popularity_and_promotes(self):
        mq = MultiQueue(capacity=8, num_queues=4)
        mq.insert("a", "x", now=1)           # popularity 1
        mq.access("a", now=2)                # popularity 2 -> target Q1
        entry = mq.entry("a")
        assert entry.popularity == 2
        assert entry.queue_index == 1
        assert mq.promotions == 1

    def test_promotion_is_one_queue_at_a_time(self):
        mq = MultiQueue(capacity=8, num_queues=8)
        mq.insert("a", "x", now=1, popularity=100)  # target would be Q6
        assert mq.entry("a").queue_index == 0        # inserts start at Q0
        mq.access("a", now=2)
        assert mq.entry("a").queue_index == 1        # climbed exactly one

    def test_access_moves_to_tail(self):
        mq = MultiQueue(capacity=8, num_queues=1)
        mq.insert("a", 1, now=1)
        mq.insert("b", 2, now=2)
        mq.access("a", now=3)
        assert mq.keys_in_queue(0) == ["b", "a"]


class TestEviction:
    def test_eviction_from_lowest_nonempty_queue(self):
        mq = MultiQueue(capacity=2, num_queues=4)
        mq.insert("a", 1, now=1)
        mq.insert("b", 2, now=2)
        for now in range(3, 6):
            mq.access("b", now=now)  # b climbs queues
        evicted = mq.insert("c", 3, now=6)
        assert evicted == ("a", 1)
        assert "b" in mq and "c" in mq

    def test_capacity_never_exceeded(self):
        mq = MultiQueue(capacity=3, num_queues=4)
        for i in range(10):
            mq.insert(i, i, now=i)
            assert len(mq) <= 3
            mq.check_invariants()

    def test_evict_one_on_empty_returns_none(self):
        assert MultiQueue(capacity=2).evict_one() is None

    def test_remove(self):
        mq = MultiQueue(capacity=4)
        mq.insert("a", "p", now=1)
        assert mq.remove("a") == "p"
        assert mq.remove("a") is None
        assert len(mq) == 0
        mq.check_invariants()


class TestAging:
    def test_expired_head_is_demoted(self):
        mq = MultiQueue(capacity=8, num_queues=4, default_lifetime=5)
        mq.insert("a", 1, now=0)
        mq.access("a", now=1)   # Q1, expire = 1 + lifetime
        assert mq.entry("a").queue_index == 1
        # Advance far beyond the expiration; any update runs demotions.
        mq.insert("b", 2, now=100)
        assert mq.entry("a").queue_index == 0
        assert mq.demotions >= 1

    def test_hottest_interval_tracks_reaccess_gap(self):
        mq = MultiQueue(capacity=8, num_queues=4, default_lifetime=50)
        mq.insert("hot", 1, now=0)
        mq.access("hot", now=10)
        assert mq.hottest_interval == 10
        mq.access("hot", now=13)
        assert mq.hottest_interval == 3

    def test_fresh_entry_not_demoted_before_expiry(self):
        mq = MultiQueue(capacity=8, num_queues=4, default_lifetime=1000)
        mq.insert("a", 1, now=0)
        mq.access("a", now=1)
        mq.insert("b", 2, now=2)
        assert mq.entry("a").queue_index == 1


class TestValidation:
    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            MultiQueue(capacity=0)

    def test_invalid_num_queues(self):
        with pytest.raises(ValueError):
            MultiQueue(capacity=4, num_queues=0)

    def test_set_popularity_replaces_and_requires_residency(self):
        mq = MultiQueue(capacity=4, num_queues=8)
        mq.insert("a", 1, now=1)
        mq.set_popularity("a", 200, now=2)
        assert mq.entry("a").popularity == 200
        with pytest.raises(KeyError):
            mq.set_popularity("ghost", 5, now=3)

    def test_queue_lengths_sum_to_len(self):
        mq = MultiQueue(capacity=16, num_queues=4)
        for i in range(10):
            mq.insert(i, i, now=i)
        assert sum(mq.queue_lengths()) == len(mq) == 10


class TestSetPopularityPlacement:
    """set_popularity restores persisted state: direct queue placement."""

    def test_places_directly_in_log2_queue(self):
        mq = MultiQueue(capacity=8, num_queues=8)
        mq.insert("a", "payload", now=1)
        mq.set_popularity("a", 30, now=2)   # floor(log2(31)) == 4
        entry = mq.entry("a")
        assert entry.popularity == 30
        assert entry.queue_index == 4
        mq.check_invariants()

    def test_can_demote_directly(self):
        mq = MultiQueue(capacity=8, num_queues=8)
        mq.insert("a", "payload", now=1, popularity=1)
        mq.set_popularity("a", 30, now=2)
        mq.set_popularity("a", 1, now=3)   # floor(log2(2)) == 1
        assert mq.entry("a").queue_index == 1
        mq.check_invariants()

    def test_missing_key_raises(self):
        mq = MultiQueue(capacity=8, num_queues=8)
        with pytest.raises(KeyError):
            mq.set_popularity("ghost", 5, now=1)

    def test_same_queue_refreshes_recency(self):
        mq = MultiQueue(capacity=8, num_queues=8)
        mq.insert("a", "pa", now=1)
        mq.insert("b", "pb", now=2)
        mq.set_popularity("a", 2, now=3)   # both end up in queue 1
        mq.set_popularity("b", 2, now=4)
        mq.set_popularity("a", 2, now=5)   # same queue: move to MRU tail
        assert mq.keys_in_queue(1) == ["b", "a"]


class TestExpiryDemotionCascade:
    """An untouched hot entry cascades down one queue per expired check."""

    def _promoted_entry(self, mq):
        # Accesses at consecutive times: hottest interval becomes 1, so
        # the entry's expiration is tight and easy to outwait.
        mq.insert("hot", "payload", now=1)
        for now in range(2, 9):
            mq.access("hot", now)
        return mq.entry("hot")

    def test_cascade_one_level_per_update(self):
        mq = MultiQueue(capacity=64, num_queues=4)
        entry = self._promoted_entry(mq)
        start = entry.queue_index
        assert start == 3    # popularity 8 -> floor(log2(9)) == 3
        now = 100
        seen = [start]
        filler = 0
        while entry.queue_index > 0:
            mq.insert(f"filler-{filler}", None, now=now)
            filler += 1
            now += 100
            seen.append(entry.queue_index)
        # Strictly one level at a time, never skipping a queue.
        drops = [a - b for a, b in zip(seen, seen[1:])]
        assert all(drop in (0, 1) for drop in drops)
        assert seen[-1] == 0
        assert mq.demotions >= start
        mq.check_invariants()

    def test_fresh_entries_are_not_demoted(self):
        mq = MultiQueue(capacity=64, num_queues=4)
        entry = self._promoted_entry(mq)
        before = entry.queue_index
        mq.access("hot", now=9)  # refreshed: expire_time = 10
        mq.insert("other", None, now=9)  # before expiry: no demotion
        assert entry.queue_index >= before


class TestHottestTrackingAfterEviction:
    """Evicting/removing the hottest key must not wedge interval tracking."""

    def test_interval_retained_after_hottest_removed(self):
        mq = MultiQueue(capacity=8, num_queues=4)
        mq.insert("hot", None, now=1)
        mq.access("hot", now=4)
        mq.access("hot", now=7)      # interval 3 observed
        assert mq.hottest_interval == 3
        mq.remove("hot")
        assert mq.hottest_interval == 3   # last observation survives

    def test_new_hottest_reestablishes_interval(self):
        mq = MultiQueue(capacity=8, num_queues=4)
        mq.insert("hot", None, now=1)
        mq.access("hot", now=2)
        mq.access("hot", now=3)      # interval 1
        mq.remove("hot")
        mq.insert("successor", None, now=10)
        mq.access("successor", now=15)
        mq.access("successor", now=25)    # interval 10
        assert mq.hottest_interval == 10

    def test_eviction_of_hottest_then_updates_are_safe(self):
        mq = MultiQueue(capacity=2, num_queues=4)
        mq.insert("hot", None, now=1)
        mq.access("hot", now=2)
        # Force the hottest entry out through capacity pressure.
        while "hot" in mq:
            mq.evict_one()
        mq.insert("x", None, now=3)
        mq.access("x", now=4)
        mq.check_invariants()

"""Deterministic, seeded fault injection for the simulated drive.

The reproduction's device model is otherwise *perfect*: programs never
fail, blocks never wear out, reads never need ECC retries and power never
drops.  Real NAND does all of those, and the dead-value pool is a
RAM-resident structure over flash state — so the interesting questions
("what is revival worth on a realistic device?", "how fast does the pool
re-warm after a crash wipes it?") need a failure model.

:class:`FaultConfig` is the frozen, picklable knob set: per-operation
failure probabilities, the ECC retry bound, the spare-block budget and an
optional power-loss point.  It rides inside a
:class:`~repro.perf.spec.RunSpec`, so fault runs fan out over worker
processes exactly like fault-free ones.

:class:`FaultModel` is the live, seeded generator built from a config.
Each fault category draws from its own :class:`random.Random` stream
(seeded from ``(seed, category)``), so the decision sequence of one
category never depends on how often another category was consulted — the
property that makes fault runs bit-identical across ``--jobs 1`` and
``--jobs 8`` (each run cell owns a fresh model and replays the identical
request sequence).

Faults default **off**: a zero-probability category never touches its
stream, and an FTL without an attached model pays one ``is None`` check
per operation, keeping the fault-free path digest-identical to a build
without this module.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from random import Random
from typing import Dict, List, Optional, Union

__all__ = ["FaultConfig", "FaultStats", "FaultModel"]


@dataclass(frozen=True)
class FaultConfig:
    """Frozen fault-injection knobs (picklable; rides inside a RunSpec).

    Parameters
    ----------
    seed:
        Seeds every category stream; same seed ⇒ identical fault sequence.
    program_failure_prob:
        Per-program probability that the page fails to program and the
        write is retried on another page (page-level remap).
    erase_failure_prob:
        Per-erase probability that the erase fails and the block is
        retired to the bad-block list.
    read_error_prob:
        Per-read probability that the page needs ECC read-retry rounds
        before it decodes (read disturb / retention errors).
    max_read_retries:
        Worst-case ECC retry rounds for one erroneous read; the actual
        count is drawn uniformly from ``[1, max_read_retries]``.
    max_program_retries:
        Write-retry bound; a write whose every attempt fails is rejected
        (counted, never raised).
    program_failure_retire_threshold:
        Program failures a block may accumulate before it is marked for
        retirement at its next erase.
    spare_block_fraction:
        Fraction of each *plane's* blocks held as its reserved spare
        share (at least one per plane; a spare can only remap failures
        within its own plane).  When any plane's retirements exhaust
        its share the drive degrades to read-only.
    crash_after_requests:
        Power loss after this many serviced host requests: the volatile
        DVP/MQ state is dropped and the L2P map is rebuilt by an
        OOB-metadata scan (see :mod:`repro.faults.recovery`).
    """

    seed: int = 0
    program_failure_prob: float = 0.0
    erase_failure_prob: float = 0.0
    read_error_prob: float = 0.0
    max_read_retries: int = 3
    max_program_retries: int = 4
    program_failure_retire_threshold: int = 2
    spare_block_fraction: float = 0.02
    crash_after_requests: Optional[int] = None

    def __post_init__(self) -> None:
        for name in (
            "program_failure_prob",
            "erase_failure_prob",
            "read_error_prob",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")
        if self.max_read_retries < 1:
            raise ValueError("max_read_retries must be at least 1")
        if self.max_program_retries < 1:
            raise ValueError("max_program_retries must be at least 1")
        if self.program_failure_retire_threshold < 1:
            raise ValueError(
                "program_failure_retire_threshold must be at least 1"
            )
        if not 0.0 <= self.spare_block_fraction < 1.0:
            raise ValueError("spare_block_fraction must be in [0, 1)")
        if (
            self.crash_after_requests is not None
            and self.crash_after_requests <= 0
        ):
            raise ValueError("crash_after_requests must be positive")

    @property
    def enabled(self) -> bool:
        """Whether this config injects anything at all."""
        return (
            self.program_failure_prob > 0.0
            or self.erase_failure_prob > 0.0
            or self.read_error_prob > 0.0
            or self.crash_after_requests is not None
        )

    def with_seed(self, seed: int) -> "FaultConfig":
        return replace(self, seed=seed)


@dataclass
class FaultStats:
    """Everything the fault layer did to one run, counted exactly once."""

    program_failures: int = 0     # failed page programs (each retried)
    rejected_writes: int = 0      # writes dropped: retries exhausted or RO
    erase_failures: int = 0       # erases that retired their block
    read_errors: int = 0          # reads that needed ECC retries
    read_retries: int = 0         # total ECC retry rounds across reads
    retired_blocks: int = 0       # blocks removed from service
    remaps: int = 0               # retirements covered by the spare pool
    crashes: int = 0              # power-loss events survived
    recovery_times_us: List[float] = field(default_factory=list)

    @property
    def recovery_count(self) -> int:
        return len(self.recovery_times_us)

    @property
    def mean_recovery_us(self) -> float:
        times = self.recovery_times_us
        return sum(times) / len(times) if times else 0.0

    def summary(self) -> Dict[str, Union[int, float]]:
        """Flat dict for reports, JSON dumps and result digests."""
        return {
            "program_failures": self.program_failures,
            "rejected_writes": self.rejected_writes,
            "erase_failures": self.erase_failures,
            "read_errors": self.read_errors,
            "read_retries": self.read_retries,
            "retired_blocks": self.retired_blocks,
            "remaps": self.remaps,
            "crashes": self.crashes,
            "recoveries": self.recovery_count,
            "mean_recovery_us": self.mean_recovery_us,
        }


class FaultModel:
    """Live fault generator: seeded streams plus the run's fault counters.

    One model serves one run.  Query methods draw from their category's
    stream only when that category is enabled, so a disabled category is
    free and never perturbs the others.
    """

    def __init__(self, config: FaultConfig):
        self.config = config
        self.stats = FaultStats()
        self._program_rng = Random(f"{config.seed}:program")
        self._erase_rng = Random(f"{config.seed}:erase")
        self._read_rng = Random(f"{config.seed}:read")

    # ------------------------------------------------------------------
    # Per-category enable flags (hot-path short circuits)
    # ------------------------------------------------------------------

    @property
    def injects_program_failures(self) -> bool:
        return self.config.program_failure_prob > 0.0

    @property
    def injects_erase_failures(self) -> bool:
        return self.config.erase_failure_prob > 0.0

    @property
    def injects_read_errors(self) -> bool:
        return self.config.read_error_prob > 0.0

    # ------------------------------------------------------------------
    # Draws
    # ------------------------------------------------------------------

    def program_fails(self) -> bool:
        """Whether the next page program fails (one draw per attempt)."""
        if not self.injects_program_failures:
            return False
        if self._program_rng.random() < self.config.program_failure_prob:
            self.stats.program_failures += 1
            return True
        return False

    def erase_fails(self) -> bool:
        """Whether the next block erase fails (one draw per attempt)."""
        if not self.injects_erase_failures:
            return False
        if self._erase_rng.random() < self.config.erase_failure_prob:
            self.stats.erase_failures += 1
            return True
        return False

    def read_retry_rounds(self) -> int:
        """ECC retry rounds the next flash read needs (0 = clean read)."""
        if not self.injects_read_errors:
            return 0
        if self._read_rng.random() >= self.config.read_error_prob:
            return 0
        rounds = self._read_rng.randint(1, self.config.max_read_retries)
        self.stats.read_errors += 1
        self.stats.read_retries += rounds
        return rounds

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    def register_metrics(self, registry) -> None:
        """Expose the fault counters as gauges on a
        :class:`~repro.obs.MetricRegistry` (sampled per snapshot)."""
        stats = self.stats
        registry.gauge(
            "faults.program_failures", lambda: stats.program_failures
        )
        registry.gauge("faults.rejected_writes", lambda: stats.rejected_writes)
        registry.gauge("faults.erase_failures", lambda: stats.erase_failures)
        registry.gauge("faults.read_errors", lambda: stats.read_errors)
        registry.gauge("faults.read_retries", lambda: stats.read_retries)
        registry.gauge("faults.retired_blocks", lambda: stats.retired_blocks)
        registry.gauge("faults.remaps", lambda: stats.remaps)
        registry.gauge("faults.crashes", lambda: stats.crashes)
        registry.gauge("faults.recoveries", lambda: stats.recovery_count)
        registry.gauge(
            "faults.mean_recovery_us", lambda: stats.mean_recovery_us
        )

"""Unit tests for utilisation reporting."""

import pytest

from repro.analysis.utilization import (
    ResourceUsage,
    UtilisationReport,
    utilisation_report,
)
from repro.ftl.ftl import BaseFTL
from repro.sim.des_ssd import EventDrivenSSD
from repro.sim.request import IORequest, OpType
from repro.sim.ssd import SimulatedSSD


def w(t, lpn, value):
    return IORequest(t, OpType.WRITE, lpn, value)


class TestResourceUsage:
    def test_utilisation_fraction(self):
        usage = ResourceUsage("chip0", busy_time_us=25.0, op_count=3)
        assert usage.utilisation(100.0) == 0.25

    def test_zero_horizon(self):
        assert ResourceUsage("x", 10.0, 1).utilisation(0.0) == 0.0

    def test_capped_at_one(self):
        assert ResourceUsage("x", 200.0, 1).utilisation(100.0) == 1.0


class TestReportFromTimelineModel:
    def _run(self, config, n=50):
        device = SimulatedSSD(BaseFTL(config))
        for i in range(n):
            device.submit(w(i * 200.0, i % 16, i))
        return device

    def test_report_covers_all_resources(self, tiny_config):
        device = self._run(tiny_config)
        report = utilisation_report(device)
        assert len(report.chips) == tiny_config.total_chips
        assert len(report.channels) == tiny_config.channels
        assert report.hash_unit.op_count == 0  # baseline never hashes

    def test_mean_and_peak_bounds(self, tiny_config):
        report = utilisation_report(self._run(tiny_config))
        assert 0.0 < report.mean_chip_utilisation <= 1.0
        assert report.peak_chip_utilisation >= report.mean_chip_utilisation

    def test_striping_keeps_chips_balanced(self, tiny_config):
        report = utilisation_report(self._run(tiny_config, n=400))
        assert report.chip_imbalance < 1.5

    def test_rows_render(self, tiny_config):
        from repro.analysis.report import render_table

        report = utilisation_report(self._run(tiny_config))
        text = render_table(["resource", "util", "ops"], report.rows())
        assert "chip0" in text and "hash" in text


class TestReportFromEventModel:
    def test_event_model_supported(self, tiny_config):
        device = EventDrivenSSD(BaseFTL(tiny_config))
        device.run([w(i * 200.0, i % 16, i) for i in range(50)])
        report = utilisation_report(device)
        assert report.mean_chip_utilisation > 0.0
        assert len(report.chips) == tiny_config.total_chips

    def test_models_report_similar_utilisation(self, tiny_config):
        trace = [w(i * 200.0, i % 16, i) for i in range(200)]
        timeline = SimulatedSSD(BaseFTL(tiny_config))
        for request in trace:
            timeline.submit(request)
        des = EventDrivenSSD(BaseFTL(tiny_config))
        des.run(trace)
        a = utilisation_report(timeline)
        b = utilisation_report(des)
        assert a.mean_chip_utilisation == pytest.approx(
            b.mean_chip_utilisation, rel=0.05
        )


class TestEmptyReport:
    def test_empty_report_defaults(self):
        report = UtilisationReport(
            horizon_us=0.0, chips=[], channels=[],
            hash_unit=ResourceUsage("hash", 0.0, 0),
        )
        assert report.mean_chip_utilisation == 0.0
        assert report.peak_chip_utilisation == 0.0
        assert report.chip_imbalance == 1.0

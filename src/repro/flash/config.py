"""SSD configuration (paper Table I) and scaled variants for fast runs.

The paper's modeled SSD: 8 channels × 8 chips, 4 dies/chip, 2 planes/die,
256 pages/block, 4KB pages, 1TB capacity, 15% over-provisioning, with
read/program/erase latencies of 75µs/400µs/3.8ms and a 12µs hashing latency
charged to every incoming write when content hashing is enabled.

A full 1TB geometry is far too large for a pure-Python trace replay, so
:func:`SSDConfig.scaled` produces geometrically-similar small drives: same
channel/chip parallelism ratios and the same timing, with block counts sized
to the workload's footprint.  EXPERIMENTS.md records the scale used for each
reproduced figure.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

__all__ = ["TimingParams", "SSDConfig", "paper_config", "scaled_config"]


@dataclass(frozen=True)
class TimingParams:
    """Flash and controller latencies, in microseconds (Table I)."""

    read_us: float = 75.0
    program_us: float = 400.0
    erase_us: float = 3800.0
    hash_us: float = 12.0          # Helion-style hardware hash core [35]
    channel_xfer_us: float = 10.0  # ONFi 4.0 transfer of a 4KB page
    mapping_us: float = 1.0        # FTL table lookup/update on the controller
    read_retry_us: float = 40.0    # one ECC read-retry round (shifted Vref sense)

    def __post_init__(self) -> None:
        for name in (
            "read_us",
            "program_us",
            "erase_us",
            "hash_us",
            "channel_xfer_us",
            "mapping_us",
            "read_retry_us",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    def read_service_us(self, retry_rounds: int = 0) -> float:
        """Array time of one read including ``retry_rounds`` ECC retries."""
        return self.read_us + retry_rounds * self.read_retry_us


@dataclass(frozen=True)
class SSDConfig:
    """Geometry and policy knobs of the simulated drive."""

    channels: int = 8
    chips_per_channel: int = 8
    dies_per_chip: int = 4
    planes_per_die: int = 2
    # Not listed in Table I; derived from the 1TB raw capacity:
    # 2048 blocks x 256 pages x 4KB x 512 planes = 1TB.
    blocks_per_plane: int = 2048
    pages_per_block: int = 256
    page_size: int = 4096
    overprovision: float = 0.15
    timing: TimingParams = field(default_factory=TimingParams)
    # GC policy: start collecting when the free-page fraction of the raw
    # capacity drops below ``gc_threshold``; collect until ``gc_target``.
    gc_threshold: float = 0.05
    gc_target: float = 0.07

    def __post_init__(self) -> None:
        for name in (
            "channels",
            "chips_per_channel",
            "dies_per_chip",
            "planes_per_die",
            "blocks_per_plane",
            "pages_per_block",
            "page_size",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if not 0.0 <= self.overprovision < 1.0:
            raise ValueError("overprovision must be in [0, 1)")
        if not 0.0 < self.gc_threshold <= self.gc_target < 1.0:
            raise ValueError("require 0 < gc_threshold <= gc_target < 1")

    # ------------------------------------------------------------------
    # Derived sizes
    # ------------------------------------------------------------------

    @property
    def total_chips(self) -> int:
        return self.channels * self.chips_per_channel

    @property
    def planes_per_chip(self) -> int:
        return self.dies_per_chip * self.planes_per_die

    @property
    def total_planes(self) -> int:
        return self.total_chips * self.planes_per_chip

    @property
    def total_blocks(self) -> int:
        return self.total_planes * self.blocks_per_plane

    @property
    def total_pages(self) -> int:
        """Raw physical pages."""
        return self.total_blocks * self.pages_per_block

    @property
    def logical_pages(self) -> int:
        """Pages exported to the host after over-provisioning."""
        return int(self.total_pages * (1.0 - self.overprovision))

    @property
    def raw_capacity_bytes(self) -> int:
        return self.total_pages * self.page_size

    @property
    def logical_capacity_bytes(self) -> int:
        return self.logical_pages * self.page_size

    def with_timing(self, **kwargs: float) -> "SSDConfig":
        """A copy with some timing parameters overridden."""
        return replace(self, timing=replace(self.timing, **kwargs))


def paper_config() -> SSDConfig:
    """The exact Table I drive (1TB raw; impractical to simulate fully)."""
    return SSDConfig()


def scaled_config(
    logical_pages: int,
    channels: int = 4,
    chips_per_channel: int = 2,
    dies_per_chip: int = 1,
    planes_per_die: int = 1,
    pages_per_block: int = 64,
    overprovision: float = 0.15,
) -> SSDConfig:
    """A small drive with the paper's timing and ratios, sized to a workload.

    ``logical_pages`` is the host-visible footprint needed; the block count
    per plane is derived so the raw capacity covers it plus
    over-provisioning.  The default geometry keeps the paper's channel/chip
    parallelism but collapses dies and planes to one each, so every plane
    has enough blocks for GC watermarks to behave like a real drive even at
    small capacities.
    """
    if logical_pages <= 0:
        raise ValueError("logical_pages must be positive")
    planes = channels * chips_per_channel * dies_per_chip * planes_per_die
    raw_pages_needed = int(logical_pages / (1.0 - overprovision)) + 1
    blocks_needed = -(-raw_pages_needed // pages_per_block)  # ceil div
    # Floor of 16 blocks/plane: a plane must fit two active blocks
    # (host + GC relocation) plus the GC watermark with room to spare.
    blocks_per_plane = max(16, -(-blocks_needed // planes))
    return SSDConfig(
        channels=channels,
        chips_per_channel=chips_per_channel,
        dies_per_chip=dies_per_chip,
        planes_per_die=planes_per_die,
        blocks_per_plane=blocks_per_plane,
        pages_per_block=pages_per_block,
        overprovision=overprovision,
    )

"""Meta-tests: the shipped tree satisfies its own linter.

``make lint`` runs ``repro lint src/repro`` from the repo root; these
tests pin the same invariant inside the plain pytest suite, so a change
that introduces a determinism/layering violation (or lets the tracked
baseline rot) fails even for contributors who skip ``make lint``.
"""

import inspect
import pathlib

import pytest

import repro.core.dvp as dvp
from repro.lint import Baseline, LintEngine
from repro.lint.rules.proto import _FALLBACK_POOL_SURFACE

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]


@pytest.fixture()
def repo_cwd(monkeypatch):
    """Run from the repo root so baseline paths (src/repro/...) match."""
    if not (REPO_ROOT / "src" / "repro").is_dir():
        pytest.skip("not running from a source checkout")
    monkeypatch.chdir(REPO_ROOT)


def test_live_tree_is_lint_clean(repo_cwd):
    baseline = Baseline.load("lint-baseline.json")
    engine = LintEngine(baseline=baseline)
    result = engine.run(["src/repro"])
    assert result.clean, "\n".join(
        f"{v.location()}: {v.code} {v.message}" for v in result.violations
    )
    # the tracked baseline only ever shrinks: every entry still matches
    assert result.stale_baseline == []


def test_live_tree_exercises_both_suppression_channels(repo_cwd):
    """The shipped tree deliberately carries one inline disable (mq.py)
    and one baselined family (report.py) so both escape hatches stay
    exercised end to end; if either count drops to zero the comment or
    baseline entry went stale and should be pruned with this test."""
    engine = LintEngine(baseline=Baseline.load("lint-baseline.json"))
    result = engine.run(["src/repro"])
    assert result.suppressed >= 1
    assert result.baselined >= 1


def test_fallback_pool_surface_matches_live_protocol():
    """proto.pool-surface falls back to a hardcoded method tuple when
    the DeadValuePool Protocol class is not in the linted tree; keep
    that tuple in sync with the real protocol."""
    live = {
        name
        for name, member in inspect.getmembers(
            dvp.DeadValuePool, predicate=inspect.isfunction
        )
        if not name.startswith("_") or name in ("__len__", "__contains__")
    }
    assert set(_FALLBACK_POOL_SURFACE) == live


@pytest.mark.parametrize("pool_name", sorted(dvp.POOL_NAMES))
def test_every_shipped_pool_passes_the_surface_rule(repo_cwd, pool_name):
    """Belt and braces for proto.pool-surface: each shipped pool really
    does define the full surface with concrete bodies (the rule checks
    this statically; here we check the same thing at runtime)."""
    pool = dvp.pool_from_name(pool_name)
    for method in _FALLBACK_POOL_SURFACE:
        attr = getattr(type(pool), method, None)
        assert callable(attr), f"{type(pool).__name__} missing {method}"

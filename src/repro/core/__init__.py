"""Core algorithms: fingerprints, replacement policies, the Multi-Queue
algorithm, dead-value pools and value life-cycle tracking.

This package is substrate-free — nothing here knows about flash geometry or
simulation time — so every piece can be unit- and property-tested in
isolation and reused by both the trace analyses (Section II of the paper)
and the full SSD simulator (Sections V–VII).
"""

from .adaptive import AdaptiveMQDeadValuePool
from .hashing import Fingerprint, fingerprint_of_bytes, fingerprint_of_value
from .lifecycle import LifecycleStats, LifecycleTracker, ValueStats
from .mq import MQEntry, MultiQueue, queue_index_for_popularity
from .policies import LFUCache, LRUCache
from .dvp import (
    POOL_NAMES,
    DeadValuePool,
    InfiniteDeadValuePool,
    LBARecencyPool,
    LRUDeadValuePool,
    MQDeadValuePool,
    PoolBase,
    PoolStats,
    pool_from_name,
)

__all__ = [
    "Fingerprint",
    "fingerprint_of_bytes",
    "fingerprint_of_value",
    "LRUCache",
    "LFUCache",
    "MultiQueue",
    "MQEntry",
    "queue_index_for_popularity",
    "DeadValuePool",
    "PoolBase",
    "InfiniteDeadValuePool",
    "LRUDeadValuePool",
    "MQDeadValuePool",
    "AdaptiveMQDeadValuePool",
    "LBARecencyPool",
    "PoolStats",
    "pool_from_name",
    "POOL_NAMES",
    "LifecycleTracker",
    "LifecycleStats",
    "ValueStats",
]

"""Property-based tests for the life-cycle tracker's conservation laws."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.lifecycle import LifecycleTracker


streams = st.lists(
    st.tuples(
        st.booleans(),                                 # write?
        st.integers(min_value=0, max_value=30),        # lpn
        st.integers(min_value=0, max_value=10),        # value
    ),
    max_size=300,
)


def replay(operations, dedup=False):
    tracker = LifecycleTracker(dedup=dedup)
    for is_write, lpn, value in operations:
        if is_write:
            tracker.on_write(lpn, value)
        else:
            tracker.on_read(lpn, value)
    return tracker


@given(operations=streams)
@settings(max_examples=80)
def test_write_conservation(operations):
    t = replay(operations)
    s = t.stats
    assert s.programs + s.rebirths + s.dedup_eliminated == s.total_writes
    assert s.total_writes + s.total_reads == s.total_requests


@given(operations=streams, dedup=st.booleans())
@settings(max_examples=80)
def test_copy_conservation_per_value(operations, dedup):
    """live + dead copies of a value never go negative and reconcile with
    its writes/rebirths/invalidations."""
    t = replay(operations, dedup)
    for stats in t.values.values():
        assert stats.live_copies >= 0
        assert stats.dead_copies >= 0
        assert stats.rebirths <= stats.invalidations
        assert stats.dead_copies == stats.invalidations - stats.rebirths


@given(operations=streams)
@settings(max_examples=80)
def test_deaths_bounded_by_writes(operations):
    t = replay(operations)
    assert t.stats.deaths <= t.stats.total_writes
    assert t.stats.rebirths <= t.stats.deaths


@given(operations=streams)
@settings(max_examples=80)
def test_dedup_never_reuses_more(operations):
    plain = replay(operations, dedup=False)
    dedup = replay(operations, dedup=True)
    assert dedup.stats.rebirths <= plain.stats.rebirths
    # dedup can only reduce flash programs
    assert dedup.stats.programs <= plain.stats.programs


@given(operations=streams)
@settings(max_examples=80)
def test_live_copies_match_address_space(operations):
    """Sum of live copies equals the number of mapped logical pages."""
    t = replay(operations)
    mapped = len(t._page_content)
    assert sum(v.live_copies for v in t.values.values()) == mapped


@given(operations=streams)
@settings(max_examples=80)
def test_intervals_nonnegative(operations):
    t = replay(operations)
    for stats in t.values.values():
        assert stats.creation_to_death_sum >= 0
        assert stats.death_to_rebirth_sum >= 0
        if stats.creation_to_death_n:
            assert stats.mean_creation_to_death >= 0

"""Integration tests for the timeline-vs-DES differential harness."""

import pytest

from repro.check import DifferentialMismatch, differential_run
from repro.experiments.config import RunConfig
from repro.faults.model import FaultConfig

SCALE = 0.008


class TestPromisedEquivalence:
    @pytest.mark.parametrize("system", ["baseline", "mq-dvp", "dedup"])
    def test_models_agree_fault_free(self, system):
        report = differential_run(
            "web", system, config=RunConfig(scale=SCALE)
        )
        assert report.ok, report.verify()
        assert report.requests > 0

    def test_agreement_holds_with_trims(self):
        report = differential_run(
            "mail", "mq-dvp",
            config=RunConfig(scale=SCALE, trim_every=11),
        )
        report.verify()

    def test_agreement_holds_under_full_checking(self):
        """Sanitizer + oracle + differential in one replay: the checked
        runs must agree exactly like the unchecked ones (checking reads
        but never mutates)."""
        checked = differential_run(
            "web", "mq-dvp",
            config=RunConfig(scale=SCALE, check_interval=250, oracle=True),
        ).verify()
        plain = differential_run(
            "web", "mq-dvp", config=RunConfig(scale=SCALE)
        ).verify()
        assert checked.requests == plain.requests


class TestEnvelopeRejection:
    def test_faulted_config_rejected(self):
        with pytest.raises(ValueError, match="fault-free"):
            differential_run(
                "web", "baseline",
                config=RunConfig(
                    scale=SCALE,
                    faults=FaultConfig(seed=1, program_failure_prob=0.01),
                ),
            )

    def test_queue_depth_rejected(self):
        with pytest.raises(ValueError, match="open-loop"):
            differential_run(
                "web", "baseline",
                config=RunConfig(scale=SCALE, queue_depth=8),
            )


class TestReportMechanics:
    def test_mismatch_report_raises_with_detail(self):
        from repro.check import DifferentialReport

        report = DifferentialReport(
            workload="web", system="baseline", requests=10,
            counter_mismatches={"programs": (5, 6)},
        )
        assert not report.ok
        with pytest.raises(DifferentialMismatch, match="programs"):
            report.verify()

    def test_clean_report_verifies_to_itself(self):
        from repro.check import DifferentialReport

        report = DifferentialReport(
            workload="web", system="baseline", requests=10,
        )
        assert report.verify() is report

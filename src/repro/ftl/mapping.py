"""Page-level address mapping: LPN → PPN, with the paper's popularity byte.

The mapping unit (paper Section IV-B/C, Figure 8) is a page-level table
from Logical Page Number to Physical Page Number, extended with one byte
per LPN that persists the write-popularity of the data block mapped there
so the popularity degree survives dead-value-pool evictions.

The table also supports many-to-one mappings (several LPNs pointing at the
same PPN) because the deduplicated FTL of Section VII needs reference
counting; the plain FTL simply keeps every PPN's reference set at size one.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set

__all__ = ["MappingTable", "POPULARITY_MAX"]

#: The popularity field is 1 byte (Section IV-C), so it saturates at 255.
POPULARITY_MAX = 255


class MappingTable:
    """LPN→PPN table with reverse index and per-LPN popularity byte."""

    def __init__(self) -> None:
        self._lpn_to_ppn: Dict[int, int] = {}
        self._ppn_to_lpns: Dict[int, Set[int]] = {}
        self._popularity: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Forward mapping
    # ------------------------------------------------------------------

    def lookup(self, lpn: int) -> Optional[int]:
        """PPN currently mapped at ``lpn``, or ``None`` if unmapped."""
        return self._lpn_to_ppn.get(lpn)

    def map(self, lpn: int, ppn: int) -> None:
        """Point ``lpn`` at ``ppn`` (the LPN must currently be unmapped)."""
        if lpn in self._lpn_to_ppn:
            raise RuntimeError(f"LPN {lpn} is already mapped; unmap first")
        self._lpn_to_ppn[lpn] = ppn
        self._ppn_to_lpns.setdefault(ppn, set()).add(lpn)

    def unmap(self, lpn: int) -> Optional[int]:
        """Remove ``lpn``'s mapping; return the PPN it pointed at."""
        ppn = self._lpn_to_ppn.pop(lpn, None)
        if ppn is None:
            return None
        lpns = self._ppn_to_lpns[ppn]
        lpns.discard(lpn)
        if not lpns:
            del self._ppn_to_lpns[ppn]
        return ppn

    def remap_ppn(self, old_ppn: int, new_ppn: int) -> int:
        """Repoint every LPN referencing ``old_ppn`` to ``new_ppn``.

        Used by GC relocation; returns the number of LPNs moved.
        """
        lpns = self._ppn_to_lpns.pop(old_ppn, set())
        for lpn in lpns:
            self._lpn_to_ppn[lpn] = new_ppn
        if lpns:
            self._ppn_to_lpns.setdefault(new_ppn, set()).update(lpns)
        return len(lpns)

    # ------------------------------------------------------------------
    # Reverse mapping / reference counts
    # ------------------------------------------------------------------

    def lpns_of(self, ppn: int) -> Set[int]:
        """LPNs currently referencing ``ppn`` (copy-safe view)."""
        return set(self._ppn_to_lpns.get(ppn, ()))

    def refcount(self, ppn: int) -> int:
        """How many LPNs point at ``ppn`` (dedup keeps this > 1)."""
        return len(self._ppn_to_lpns.get(ppn, ()))

    def mapped_lpn_count(self) -> int:
        return len(self._lpn_to_ppn)

    def mapped_ppns(self) -> Iterable[int]:
        return self._ppn_to_lpns.keys()

    def forward_items(self) -> Dict[int, int]:
        """A copy of the full LPN→PPN table (crash-recovery verification)."""
        return dict(self._lpn_to_ppn)

    # ------------------------------------------------------------------
    # Popularity byte (Figure 8)
    # ------------------------------------------------------------------

    def popularity(self, lpn: int) -> int:
        return self._popularity.get(lpn, 0)

    def set_popularity(self, lpn: int, value: int) -> None:
        self._popularity[lpn] = min(max(value, 0), POPULARITY_MAX)

    def bump_popularity(self, lpn: int) -> int:
        """Saturating increment of ``lpn``'s popularity byte; returns it."""
        value = min(self._popularity.get(lpn, 0) + 1, POPULARITY_MAX)
        self._popularity[lpn] = value
        return value

    def check_invariants(self) -> None:
        """Forward and reverse tables must agree exactly (test hook)."""
        for lpn, ppn in self._lpn_to_ppn.items():
            assert lpn in self._ppn_to_lpns.get(ppn, ()), (
                f"reverse map missing LPN {lpn} -> PPN {ppn}"
            )
        count = sum(len(s) for s in self._ppn_to_lpns.values())
        assert count == len(self._lpn_to_ppn), "reverse map has stale LPNs"

"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------

``run``
    Simulate one system on one workload and print the result summary.
``compare``
    Run several systems on one workload; print a comparison table
    normalised to the first system.
``figure``
    Regenerate one paper figure/table by id (fig01..fig15, table1,
    table2) and print it.
``characterize``
    The Section II analysis bundle for one workload.
``replicate``
    Multi-seed improvement statistics for one system/metric.

All output goes to stdout; ``--json`` switches machine-readable output
where applicable.  Exit code 0 on success, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from .analysis.characterize import (
    invalidation_cdf,
    reuse_opportunity,
    run_lifecycle,
    value_cdfs,
)
from .analysis.report import render_table
from .experiments import figures as figures_mod
from .experiments.figures import EvaluationMatrix
from .experiments.replication import paired_improvement
from .experiments.runner import DEFAULT_SCALE, ExperimentContext, run_system
from .ftl.dvp_ftl import SYSTEMS
from .traces.profiles import PROFILES
from .traces.synthetic import generate_trace

__all__ = ["main", "build_parser"]

#: figure id → (callable, needs_matrix)
FIGURES = {
    "fig01": (figures_mod.fig01_reuse_opportunity, False),
    "fig02": (figures_mod.fig02_invalidation_cdf, False),
    "fig03": (figures_mod.fig03_value_cdfs, False),
    "fig04": (figures_mod.fig04_lifecycle, False),
    "fig05": (figures_mod.fig05_lru_sweep, False),
    "fig06": (figures_mod.fig06_lru_misses, False),
    "table1": (lambda scale: figures_mod.table1_configuration(), False),
    "table2": (figures_mod.table2_workloads, False),
    "fig09": (figures_mod.fig09_write_reduction, True),
    "fig10": (figures_mod.fig10_erase_reduction, True),
    "fig11": (figures_mod.fig11_mean_latency, True),
    "fig12": (figures_mod.fig12_tail_latency, True),
    "fig14": (figures_mod.fig14_dedup_writes, True),
    "fig15": (figures_mod.fig15_dedup_latency, True),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reviving Zombie Pages on SSDs — reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--scale", type=float, default=DEFAULT_SCALE,
                       help=f"workload scale (default {DEFAULT_SCALE})")

    run_p = sub.add_parser("run", help="simulate one system on one workload")
    run_p.add_argument("--workload", choices=sorted(PROFILES), required=True)
    run_p.add_argument("--system", choices=sorted(SYSTEMS), required=True)
    run_p.add_argument("--pool", type=int, default=200_000,
                       help="pool size in paper-label entries (default 200K)")
    run_p.add_argument("--json", action="store_true")
    run_p.add_argument(
        "--obs", metavar="PATH", default=None,
        help="write a JSONL time series of internal state to PATH "
             "(see DESIGN.md, 'Observability')",
    )
    run_p.add_argument(
        "--obs-interval", type=int, default=1000, metavar="N",
        help="sample every N completed host requests (default 1000)",
    )
    run_p.add_argument(
        "--obs-interval-us", type=float, default=None, metavar="M",
        help="also sample every M simulated microseconds",
    )
    run_p.add_argument(
        "--profile", action="store_true",
        help="trace wall-clock spans (FTL write/read, GC) and print them",
    )
    add_common(run_p)

    cmp_p = sub.add_parser("compare", help="compare systems on one workload")
    cmp_p.add_argument("--workload", choices=sorted(PROFILES), required=True)
    cmp_p.add_argument(
        "--systems", default="baseline,mq-dvp,dedup,dvp+dedup",
        help="comma-separated system names (first is the reference)",
    )
    cmp_p.add_argument("--pool", type=int, default=200_000)
    add_common(cmp_p)

    fig_p = sub.add_parser("figure", help="regenerate one paper artifact")
    fig_p.add_argument("id", choices=sorted(FIGURES))
    add_common(fig_p)

    chr_p = sub.add_parser(
        "characterize", help="Section II analysis for one workload"
    )
    chr_p.add_argument("--workload", choices=sorted(PROFILES), required=True)
    add_common(chr_p)

    report_p = sub.add_parser(
        "report", help="regenerate every artifact into one document"
    )
    report_p.add_argument("--out", default=None,
                          help="write to this file instead of stdout")
    add_common(report_p)

    rep_p = sub.add_parser(
        "replicate", help="multi-seed improvement statistics"
    )
    rep_p.add_argument("--workload", choices=sorted(PROFILES), required=True)
    rep_p.add_argument("--system", choices=sorted(SYSTEMS), required=True)
    rep_p.add_argument("--metric", default="flash_writes")
    rep_p.add_argument("--seeds", default="1,2,3",
                       help="comma-separated seeds")
    add_common(rep_p)
    return parser


def _cmd_run(args: argparse.Namespace) -> int:
    context = ExperimentContext.for_workload(args.workload, args.scale)
    observer = writer = registry = tracer = None
    if args.obs:
        from .obs import JsonlWriter, MetricRegistry, TimeSeriesSampler

        registry = MetricRegistry()
        try:
            # Validate the cadence before opening the output file so a
            # bad flag value does not leave an empty JSONL behind.
            observer = TimeSeriesSampler(
                interval_requests=args.obs_interval,
                interval_us=args.obs_interval_us,
                registry=registry,
            )
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        try:
            writer = JsonlWriter(args.obs)
        except OSError as exc:
            print(f"error: cannot open --obs file: {exc}", file=sys.stderr)
            return 2
        observer.sink = writer
    if args.profile:
        from .obs import Tracer

        tracer = Tracer()
    try:
        result = run_system(
            args.system, context, args.pool, args.scale,
            observer=observer, registry=registry, tracer=tracer,
        )
    finally:
        if writer is not None:
            writer.close()
    summary = result.summary()
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        rows = [(k, v) for k, v in sorted(summary.items())]
        print(render_table(
            ["metric", "value"], rows,
            title=f"{args.system} on {args.workload} (scale {args.scale})",
        ))
    if observer is not None:
        print(f"observability: {observer.sample_count} samples -> {args.obs}",
              file=sys.stderr)
    if tracer is not None:
        print(render_table(
            ["span", "count", "total (s)", "mean (us)", "max (us)"],
            [
                (name, s["count"], f"{s['total_s']:.3f}",
                 f"{s['mean_us']:.1f}", f"{s['max_us']:.1f}")
                for name, s in tracer.summary().items()
            ],
            title="wall-clock profile",
        ))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    systems = [s.strip() for s in args.systems.split(",") if s.strip()]
    unknown = [s for s in systems if s not in SYSTEMS]
    if unknown:
        print(f"unknown systems: {', '.join(unknown)}", file=sys.stderr)
        return 2
    context = ExperimentContext.for_workload(args.workload, args.scale)
    rows = []
    reference = None
    for system in systems:
        summary = run_system(system, context, args.pool, args.scale).summary()
        if reference is None:
            reference = summary
        rows.append((
            system,
            f"{summary['flash_writes']:.0f}",
            f"{summary['erases']:.0f}",
            f"{summary['mean_latency_us']:.1f}",
            f"{100 * (1 - summary['mean_latency_us'] / reference['mean_latency_us']):.1f}"
            if reference["mean_latency_us"] else "0.0",
        ))
    print(render_table(
        ["system", "flash writes", "erases", "mean latency (us)",
         f"latency cut vs {systems[0]} (%)"],
        rows, title=f"{args.workload} at scale {args.scale}",
    ))
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    func, needs_matrix = FIGURES[args.id]
    if needs_matrix:
        result = func(EvaluationMatrix(scale=args.scale))
    else:
        result = func(args.scale)
    print(f"[{args.id}]")
    _print_result(result)
    return 0


def _print_result(result: object) -> None:
    """Best-effort generic rendering of a figure function's return value."""
    if isinstance(result, dict):
        for key, value in result.items():
            print(f"{key}: {value}")
    elif isinstance(result, list):
        for item in result:
            print(item)
    else:
        print(result)


def _cmd_characterize(args: argparse.Namespace) -> int:
    profile = PROFILES[args.workload].scaled(args.scale)
    trace = generate_trace(profile)
    tracker = run_lifecycle(trace)
    reuse = reuse_opportunity(trace, profile.name)
    inval = invalidation_cdf(tracker)
    cdfs = value_cdfs(tracker)
    rows = [
        ("requests", len(trace)),
        ("writes", tracker.stats.total_writes),
        ("unique values written", tracker.unique_value_count()),
        ("deaths", tracker.stats.deaths),
        ("rebirths", tracker.stats.rebirths),
        ("P(reuse), infinite buffer", f"{reuse.without_dedup:.3f}"),
        ("P(reuse) after dedup", f"{reuse.with_dedup:.3f}"),
        ("values never invalidated", f"{inval.never_invalidated_frac:.3f}"),
        ("values live at end", f"{inval.live_value_frac:.3f}"),
        ("write share of top 20% values", f"{cdfs.share_at('write', 0.2):.3f}"),
        ("rebirth share of top 20% values",
         f"{cdfs.share_at('rebirth', 0.2):.3f}"),
    ]
    print(render_table(
        ["metric", "value"], rows,
        title=f"Section II characterisation: {args.workload} "
              f"(scale {args.scale})",
    ))
    return 0


def _cmd_replicate(args: argparse.Namespace) -> int:
    seeds = [int(s) for s in args.seeds.split(",") if s.strip()]
    reps = paired_improvement(
        args.workload, args.system, args.metric, seeds, args.scale,
    )
    print(f"{args.system} vs baseline on {args.workload}, "
          f"{args.metric} improvement: {reps.summary()}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .experiments.report import generate_report

    text = generate_report(args.scale)
    if args.out:
        with open(args.out, "w") as f:
            f.write(text)
        print(f"wrote {args.out}")
    else:
        print(text)
    return 0


COMMANDS = {
    "run": _cmd_run,
    "report": _cmd_report,
    "compare": _cmd_compare,
    "figure": _cmd_figure,
    "characterize": _cmd_characterize,
    "replicate": _cmd_replicate,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())

"""Host I/O requests as the simulator consumes them.

Every request is one 4KB page operation — the granularity of the FIU/OSU
traces the paper uses (Section II-A: "All traces contain identical request
sizes of 4KB with 16B hash of the content for each request").  Multi-page
host requests are split into page requests by the trace layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..core.hashing import Fingerprint, fingerprint_of_value

__all__ = ["OpType", "IORequest", "CompletedRequest"]


class OpType(Enum):
    READ = "R"
    WRITE = "W"
    #: Host discard/TRIM: the logical page's content is dropped.  Not part
    #: of the paper's traces; supported as an FTL substrate feature (the
    #: dead-value pool keeps trimmed content revivable until erased).
    TRIM = "T"


@dataclass(frozen=True, slots=True)
class IORequest:
    """One 4KB host operation.

    ``value_id`` identifies the 4KB content being written (or expected to be
    read); it is the synthetic stand-in for the traces' MD5 digest.  Reads
    carry it only for analysis purposes — the device never checks it.
    """

    arrival_us: float
    op: OpType
    lpn: int
    value_id: int

    @property
    def is_write(self) -> bool:
        return self.op is OpType.WRITE

    @property
    def fingerprint(self) -> Fingerprint:
        return fingerprint_of_value(self.value_id)


@dataclass(frozen=True, slots=True)
class CompletedRequest:
    """A serviced request with its measured latency."""

    request: IORequest
    start_us: float
    finish_us: float
    short_circuited: bool = False
    dedup_hit: bool = False

    @property
    def latency_us(self) -> float:
        return self.finish_us - self.request.arrival_us

"""JSON-lines trace format: one request per line, self-describing.

The FIU format (:mod:`repro.traces.fiu`) matches the paper's sources; this
format is for tool interchange — each line is a JSON object with explicit
keys, so traces survive round trips through jq/pandas/spreadsheets without
positional-field fragility::

    {"t": 12.5, "op": "W", "lpn": 42, "value": 7}

``value`` is the synthetic content id (omitted for reads where unknown);
``t`` is the arrival time in microseconds.  Unknown keys are ignored on
read, so annotated traces load fine.
"""

from __future__ import annotations

import json
from typing import Iterable, Iterator, TextIO

from ..sim.request import IORequest, OpType

__all__ = [
    "JSONLFormatError",
    "record_of_request",
    "request_of_record",
    "write_jsonl",
    "iter_jsonl_requests",
]


class JSONLFormatError(ValueError):
    """A malformed JSONL trace line."""


def record_of_request(request: IORequest) -> dict:
    """The self-describing dict form of one request (one JSONL line)."""
    return {
        "t": request.arrival_us,
        "op": request.op.value,
        "lpn": request.lpn,
        "value": request.value_id,
    }


def request_of_record(record: dict) -> IORequest:
    """Parse one request dict; raises :class:`JSONLFormatError` on bad
    fields.  The inverse of :func:`record_of_request` (round trips are
    lossless: JSON floats serialise via ``repr``); shared by the trace
    files and the ``repro serve`` wire protocol, so the two surfaces
    cannot drift apart."""
    try:
        op = OpType(record["op"])
        return IORequest(
            arrival_us=float(record["t"]),
            op=op,
            lpn=int(record["lpn"]),
            value_id=int(record.get("value", 0)),
        )
    except (KeyError, ValueError, TypeError) as exc:
        raise JSONLFormatError(str(exc)) from None


def write_jsonl(stream: TextIO, requests: Iterable[IORequest]) -> int:
    """Write a trace as JSON lines; returns the line count."""
    count = 0
    for request in requests:
        stream.write(
            json.dumps(record_of_request(request), separators=(",", ":"))
        )
        stream.write("\n")
        count += 1
    return count


def iter_jsonl_requests(stream: TextIO) -> Iterator[IORequest]:
    """Parse a JSONL trace, skipping blank lines.

    Raises :class:`JSONLFormatError` with the line number on bad input.
    """
    for lineno, line in enumerate(stream, start=1):
        stripped = line.strip()
        if not stripped:
            continue
        try:
            record = json.loads(stripped)
        except json.JSONDecodeError as exc:
            raise JSONLFormatError(f"line {lineno}: invalid JSON: {exc}")
        if not isinstance(record, dict):
            raise JSONLFormatError(f"line {lineno}: expected an object")
        try:
            yield request_of_record(record)
        except JSONLFormatError as exc:
            raise JSONLFormatError(f"line {lineno}: {exc}") from None

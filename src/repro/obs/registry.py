"""Named counters and gauges with a zero-cost disabled mode.

Subsystems ask the registry for a :class:`Counter` once (at construction
or attach time) and then call ``inc()`` on the handle in their hot path.
When the registry is disabled it hands out :data:`NULL_COUNTER`, whose
``inc`` is a no-op — instrumented code never branches on an "enabled"
flag itself.

Gauges are pull-based: a callable sampled only when a snapshot is taken,
so registering one costs nothing per request.

Histograms record individual observations (e.g. per-crash recovery
times); they keep exact samples — the events they record are rare, so a
sample list beats bucketing for the reports this repo produces.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Union

__all__ = ["Counter", "Gauge", "Histogram", "MetricRegistry", "NULL_COUNTER", "NULL_HISTOGRAM"]

Number = Union[int, float]


class Counter:
    """A monotonically increasing named counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: Number = 1) -> None:
        self.value += amount

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name!r}, {self.value})"


class _NullCounter(Counter):
    """Shared sink for disabled registries: counting is a no-op."""

    __slots__ = ()

    def inc(self, amount: Number = 1) -> None:
        pass


#: The one no-op counter every disabled registry hands out.
NULL_COUNTER = _NullCounter("null")


class Gauge:
    """A named pull-based gauge: ``fn`` is called at snapshot time."""

    __slots__ = ("name", "fn")

    def __init__(self, name: str, fn: Callable[[], Number]):
        self.name = name
        self.fn = fn

    def read(self) -> Number:
        return self.fn()


class Histogram:
    """A named exact-sample histogram for rare, heavyweight events."""

    __slots__ = ("name", "samples")

    def __init__(self, name: str):
        self.name = name
        self.samples: List[Number] = []

    def observe(self, value: Number) -> None:
        self.samples.append(value)

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> Number:
        return sum(self.samples) / len(self.samples) if self.samples else 0.0

    @property
    def maximum(self) -> Number:
        return max(self.samples) if self.samples else 0.0

    def summary(self) -> Dict[str, Number]:
        return {"count": self.count, "mean": self.mean, "max": self.maximum}


class _NullHistogram(Histogram):
    """Shared sink for disabled registries: observing is a no-op."""

    __slots__ = ()

    def observe(self, value: Number) -> None:
        pass


#: The one no-op histogram every disabled registry hands out.
NULL_HISTOGRAM = _NullHistogram("null")


class MetricRegistry:
    """Registry of named counters and gauges.

    Parameters
    ----------
    enabled:
        When ``False``, :meth:`counter` returns :data:`NULL_COUNTER` and
        :meth:`gauge` discards the registration, so instrumented
        subsystems impose no bookkeeping cost at all.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """The counter registered under ``name`` (created on first use)."""
        if not self.enabled:
            return NULL_COUNTER
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def gauge(self, name: str, fn: Callable[[], Number]) -> None:
        """Register a pull-based gauge; last registration under a name wins."""
        if not self.enabled:
            return
        self._gauges[name] = Gauge(name, fn)

    def unregister_gauge(self, name: str) -> None:
        self._gauges.pop(name, None)

    def histogram(self, name: str) -> Histogram:
        """The histogram registered under ``name`` (created on first use)."""
        if not self.enabled:
            return NULL_HISTOGRAM
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram(name)
        return histogram

    def counters(self) -> Dict[str, Number]:
        return {name: c.value for name, c in sorted(self._counters.items())}

    def gauges(self) -> Dict[str, Number]:
        return {name: g.read() for name, g in sorted(self._gauges.items())}

    def histograms(self) -> Dict[str, Dict[str, Number]]:
        return {
            name: h.summary() for name, h in sorted(self._histograms.items())
        }

    def snapshot(self) -> Dict[str, Number]:
        """All metric values in one flat dict (counters shadow nothing:
        a name collision between a counter and a gauge is a caller bug,
        and the gauge wins so stale counts never mask live state)."""
        out: Dict[str, Number] = {}
        out.update(self.counters())
        out.update(self.gauges())
        return out

    def reset_counters(self) -> None:
        for counter in self._counters.values():
            counter.reset()

"""Workload profiles calibrated to Table II of the paper.

The paper evaluates six FIU/OSU block traces (web, home, mail, hadoop,
trans, desktop) whose per-request content hashes are not redistributable.
Each :class:`WorkloadProfile` carries:

* the **published Table II characteristics** (:class:`TableIITargets`) —
  write ratio and the percentage of requests carrying unique values — that
  the synthetic trace should land near; and
* the **generator knobs** (new-value probability, Zipf skews, footprint)
  tuned so a generated trace *audits* close to those targets.

The split keeps calibration honest: :func:`audit_trace` measures a
generated trace exactly the way Table II measures the originals, and the
calibration tests compare audit to targets.

Footprints and skews also encode the paper's qualitative statements:
mail has the largest footprint and by far the highest write redundancy;
desktop and trans are small with low recycling skew (Section VI-A).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Dict, Iterable

from ..sim.request import IORequest, OpType

__all__ = [
    "TableIITargets",
    "WorkloadProfile",
    "PROFILES",
    "profile_by_name",
    "TraceAudit",
    "audit_trace",
]


@dataclass(frozen=True)
class TableIITargets:
    """The published characteristics of one workload (Table II)."""

    write_ratio: float        # "WR [%]" / 100
    unique_write_frac: float  # unique-value writes / writes
    unique_read_frac: float   # unique-value reads / reads


@dataclass(frozen=True)
class WorkloadProfile:
    """Generator parameters for one paper workload."""

    name: str
    targets: TableIITargets
    new_value_prob: float       # P(a write introduces a fresh value)
    value_zipf_s: float         # redraw skew over existing values
    lpn_zipf_s: float           # update skew over the logical space
    read_zipf_s: float          # hot-read skew over the logical space
    cold_read_frac: float       # P(a read is uniform over the cold region)
    cold_region_factor: float   # cold-read space / write working set
    working_set_pages: int      # logical footprint (mail largest)
    num_requests: int
    mean_interarrival_us: float
    seed: int = 1
    #: Fraction of the drive's exported capacity this workload's footprint
    #: occupies.  The paper replays day-traces against a 1TB drive, so
    #: small-footprint workloads (trans, desktop) see plenty of slack and
    #: correspondingly mild GC; 0.92 models a well-filled drive.
    fill_fraction: float = 0.92
    #: Probability that a write's target page is chosen *correlated* with
    #: its value's popularity rank (popular values land on hot pages, the
    #: way repeatedly-rewritten file blocks carry recurring content).
    #: This is what makes popular values die sooner (Figure 4a).
    placement_corr: float = 0.5
    #: Scan bursts: every ``scan_every_writes`` host writes, a sequential
    #: burst of ``scan_length`` unique-content writes sweeps through the
    #: working set (nightly backup / virus-scan / log-rotation behaviour of
    #: the FIU servers).  Bursts flood a recency-only dead-value pool with
    #: one-shot garbage — exactly the LRU failure mode of Figure 6 that
    #: motivates the MQ design.  0 disables bursts.
    scan_every_writes: int = 0
    scan_length: int = 0

    def __post_init__(self) -> None:
        for frac_name in ("new_value_prob", "cold_read_frac"):
            value = getattr(self, frac_name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{frac_name} must be in [0, 1]")
        if self.working_set_pages <= 0 or self.num_requests <= 0:
            raise ValueError("sizes must be positive")
        if self.mean_interarrival_us <= 0:
            raise ValueError("mean_interarrival_us must be positive")
        if self.cold_region_factor < 1.0:
            raise ValueError("cold_region_factor must be >= 1")
        if not 0.0 < self.fill_fraction <= 1.0:
            raise ValueError("fill_fraction must be in (0, 1]")
        if not 0.0 <= self.placement_corr <= 1.0:
            raise ValueError("placement_corr must be in [0, 1]")
        if self.scan_every_writes < 0 or self.scan_length < 0:
            raise ValueError("scan parameters must be non-negative")
        if self.scan_every_writes and self.scan_length >= self.scan_every_writes:
            raise ValueError("scan_length must be < scan_every_writes")

    @property
    def write_ratio(self) -> float:
        return self.targets.write_ratio

    @property
    def total_pages(self) -> int:
        """Logical pages a drive must export to replay this workload:
        the write working set plus the read-only cold region."""
        return int(self.working_set_pages * self.cold_region_factor)

    def day(self, index: int) -> "WorkloadProfile":
        """Day-variant of this workload (the m1/m2/h1/w1… of Figures 1, 5).

        Different collection days of the same server share characteristics
        but differ in detail; we model that as a reseed plus a small
        deterministic jitter of the redundancy level.
        """
        if index < 1:
            raise ValueError("day index starts at 1")
        jitter_rng = random.Random(self.seed * 1_000_003 + index)
        jitter = 1.0 + 0.3 * (jitter_rng.random() - 0.5)
        fresh = min(1.0, max(0.01, self.new_value_prob * jitter))
        return replace(
            self,
            name=f"{self.name[0]}{index}",
            new_value_prob=fresh,
            seed=self.seed * 1000 + index,
        )

    def scaled(self, scale: float) -> "WorkloadProfile":
        """Shrink/grow the trace and footprint together (see DESIGN.md §4)."""
        if scale <= 0:
            raise ValueError("scale must be positive")
        return replace(
            self,
            num_requests=max(1000, int(self.num_requests * scale)),
            working_set_pages=max(256, int(self.working_set_pages * scale)),
        )


def _profile(
    name: str,
    targets: TableIITargets,
    new_value_prob: float,
    value_s: float,
    lpn_s: float,
    read_s: float,
    cold_read_frac: float,
    cold_region_factor: float,
    pages: int,
    requests: int,
    interarrival: float,
    seed: int,
    fill_fraction: float = 0.92,
) -> WorkloadProfile:
    return WorkloadProfile(
        name=name,
        targets=targets,
        new_value_prob=new_value_prob,
        value_zipf_s=value_s,
        lpn_zipf_s=lpn_s,
        read_zipf_s=read_s,
        cold_read_frac=cold_read_frac,
        cold_region_factor=cold_region_factor,
        working_set_pages=pages,
        num_requests=requests,
        mean_interarrival_us=interarrival,
        seed=seed,
        fill_fraction=fill_fraction,
    )


#: Table II workloads.  ``targets`` come straight from the paper; the knobs
#: are tuned so that ``audit_trace(generate_trace(p))`` lands near them
#: (see tests/unit/test_profiles.py).
PROFILES: Dict[str, WorkloadProfile] = {
    "web": _profile(
        "web", TableIITargets(0.77, 0.42, 0.32),
        0.52, 1.05, 1.10, 1.55, 0.20, 2.0, 40000, 240000, 150.0, 11, 0.85,
    ),
    "home": _profile(
        "home", TableIITargets(0.96, 0.66, 0.80),
        0.75, 0.95, 1.05, 1.05, 0.70, 2.0, 48000, 240000, 220.0, 22,
    ),
    "mail": _profile(
        "mail", TableIITargets(0.77, 0.08, 0.80),
        0.15, 1.15, 1.20, 1.20, 0.94, 5.0, 48000, 240000, 140.0, 33, 0.99,
    ),
    "hadoop": _profile(
        "hadoop", TableIITargets(0.30, 0.639, 0.175),
        0.76, 0.90, 1.00, 1.35, 0.16, 2.0, 32000, 240000, 110.0, 44, 0.80,
    ),
    "trans": _profile(
        "trans", TableIITargets(0.55, 0.774, 0.138),
        0.86, 0.80, 0.95, 1.80, 0.05, 1.5, 24000, 240000, 130.0, 55, 0.55,
    ),
    "desktop": _profile(
        "desktop", TableIITargets(0.42, 0.747, 0.497),
        0.84, 0.80, 0.95, 1.55, 0.52, 14.0, 12000, 240000, 100.0, 66, 0.75,
    ),
}


def profile_by_name(name: str) -> WorkloadProfile:
    try:
        return PROFILES[name]
    except KeyError:
        raise ValueError(
            f"unknown workload {name!r}; choose from {sorted(PROFILES)}"
        ) from None


@dataclass(frozen=True)
class TraceAudit:
    """Measured characteristics of a trace, Table II style."""

    requests: int
    writes: int
    reads: int
    unique_write_values: int
    unique_read_values: int
    write_ratio: float
    unique_write_frac: float   # unique-value writes / writes
    unique_read_frac: float    # unique-value reads / reads

    def row(self) -> str:
        return (
            f"{self.write_ratio * 100:5.1f}  "
            f"{self.unique_write_frac * 100:5.1f}  "
            f"{self.unique_read_frac * 100:5.1f}"
        )


def audit_trace(requests: Iterable[IORequest]) -> TraceAudit:
    """Measure a trace the way Table II does.

    A write is "unique" when its value is written exactly once in the whole
    trace; likewise for reads ("the percentage of read (write) requests
    which read (write) unique 4KB chunks").
    """
    write_counts: Dict[int, int] = {}
    read_counts: Dict[int, int] = {}
    writes = reads = total = 0
    for request in requests:
        total += 1
        if request.op is OpType.WRITE:
            writes += 1
            write_counts[request.value_id] = (
                write_counts.get(request.value_id, 0) + 1
            )
        else:
            reads += 1
            read_counts[request.value_id] = (
                read_counts.get(request.value_id, 0) + 1
            )
    unique_writes = sum(1 for c in write_counts.values() if c == 1)
    unique_reads = sum(1 for c in read_counts.values() if c == 1)
    return TraceAudit(
        requests=total,
        writes=writes,
        reads=reads,
        unique_write_values=len(write_counts),
        unique_read_values=len(read_counts),
        write_ratio=writes / total if total else 0.0,
        unique_write_frac=unique_writes / writes if writes else 0.0,
        unique_read_frac=unique_reads / reads if reads else 0.0,
    )

"""Property-based tests for simulator timing semantics."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flash.config import SSDConfig
from repro.flash.timing import ResourceTimeline
from repro.ftl.dvp_ftl import build_system
from repro.sim.request import IORequest, OpType
from repro.sim.ssd import SimulatedSSD


def config() -> SSDConfig:
    return SSDConfig(
        channels=2, chips_per_channel=1, dies_per_chip=1, planes_per_die=1,
        blocks_per_plane=12, pages_per_block=8, overprovision=0.2,
    )


LOGICAL = config().logical_pages


request_lists = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=1000.0, allow_nan=False),
        st.booleans(),
        st.integers(min_value=0, max_value=min(40, LOGICAL - 1)),
        st.integers(min_value=0, max_value=10),
    ),
    max_size=120,
)


def to_trace(raw):
    raw = sorted(raw, key=lambda r: r[0])
    return [
        IORequest(t, OpType.WRITE if w else OpType.READ, lpn, value)
        for t, w, lpn, value in raw
    ]


@given(raw=request_lists, system=st.sampled_from(["baseline", "mq-dvp", "dedup"]))
@settings(max_examples=30, deadline=None)
def test_latencies_nonnegative_and_causal(raw, system):
    """No request finishes before it arrives, and latency >= service floor
    for any operation that touched flash."""
    trace = to_trace(raw)
    device = SimulatedSSD(build_system(system, config(), 16))
    timing = config().timing
    for request in trace:
        done = device.submit(request)
        assert done.finish_us >= request.arrival_us
        assert done.latency_us >= 0.0
        if request.is_write and not (done.short_circuited or done.dedup_hit):
            assert done.latency_us >= timing.program_us


@given(raw=request_lists)
@settings(max_examples=30, deadline=None)
def test_horizon_is_max_finish(raw):
    trace = to_trace(raw)
    device = SimulatedSSD(build_system("baseline", config(), 16))
    finishes = [device.submit(r).finish_us for r in trace]
    if finishes:
        assert device.horizon_us == max(finishes)


@given(
    jobs=st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=100, allow_nan=False),
            st.floats(min_value=0, max_value=50, allow_nan=False),
        ),
        max_size=50,
    )
)
@settings(max_examples=80)
def test_timeline_fifo_no_overlap(jobs):
    """Scheduled intervals on one resource never overlap and never run
    backwards in time."""
    timeline = ResourceTimeline("r")
    jobs = sorted(jobs, key=lambda j: j[0])
    last_end = 0.0
    for arrival, duration in jobs:
        start, end = timeline.schedule(arrival, duration)
        assert start >= arrival
        assert start >= last_end
        assert end == start + duration
        last_end = end
    assert timeline.busy_time == sum(d for _, d in jobs)

"""Figure 3: CDFs of (a) writes, (b) invalidations, (c) rebirths per value.

Paper: ~20% of values account for ~80% of writes, and the same skew shows
in invalidations and rebirths — popular values die and are reborn more.
"""

from repro.analysis.report import render_table
from repro.experiments.figures import fig03_value_cdfs

from .conftest import emit


def test_fig03_value_cdfs(benchmark, scale):
    cdfs = benchmark.pedantic(
        lambda: fig03_value_cdfs(scale), rounds=1, iterations=1
    )
    checkpoints = (0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0)
    rows = [
        (
            f"top {int(frac * 100)}%",
            f"{cdfs.share_at('write', frac):.3f}",
            f"{cdfs.share_at('invalidation', frac):.3f}",
            f"{cdfs.share_at('rebirth', frac):.3f}",
        )
        for frac in checkpoints
    ]
    emit(render_table(
        ["values", "write share", "invalidation share", "rebirth share"],
        rows,
        title="Figure 3: cumulative shares over values sorted by writes (mail)",
    ))
    # Shape: heavy skew, same trend across the three metrics.
    assert cdfs.share_at("write", 0.2) > 0.6
    assert cdfs.share_at("invalidation", 0.2) > 0.6
    assert cdfs.share_at("rebirth", 0.2) > 0.6

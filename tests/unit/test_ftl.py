"""Unit tests for the base FTL: writes, updates, revival, GC interplay."""

import pytest

from repro.core.dvp import InfiniteDeadValuePool, MQDeadValuePool
from repro.core.hashing import fingerprint_of_value as fp
from repro.flash.block import PageState
from repro.ftl.ftl import BaseFTL


@pytest.fixture
def ftl(tiny_config):
    return BaseFTL(tiny_config)


@pytest.fixture
def dvp_ftl(tiny_config):
    return BaseFTL(tiny_config, pool=InfiniteDeadValuePool())


class TestBasicWriteRead:
    def test_write_programs_a_page(self, ftl):
        outcome = ftl.write(0, fp(1))
        assert outcome.programmed
        assert not outcome.hashed          # baseline has no hashing
        assert ftl.counters.programs == 1
        assert ftl.mapping.lookup(0) == outcome.program_ppn

    def test_read_mapped_page(self, ftl):
        out_w = ftl.write(0, fp(1))
        out_r = ftl.read(0)
        assert out_r.flash_read
        assert out_r.ppn == out_w.program_ppn
        assert ftl.counters.flash_reads == 1

    def test_read_unmapped_is_free(self, ftl):
        out = ftl.read(5)
        assert not out.flash_read
        assert ftl.counters.flash_reads == 0

    def test_lpn_bounds_enforced(self, ftl, tiny_config):
        with pytest.raises(ValueError):
            ftl.write(tiny_config.logical_pages, fp(1))
        with pytest.raises(ValueError):
            ftl.read(-1)

    def test_update_invalidates_old_page(self, ftl):
        first = ftl.write(0, fp(1))
        ftl.write(0, fp(2))
        assert ftl.array.state_of(first.program_ppn) is PageState.INVALID
        assert ftl.counters.invalidations == 1

    def test_write_clock_counts_writes(self, ftl):
        ftl.write(0, fp(1))
        ftl.read(0)
        ftl.write(1, fp(2))
        assert ftl.write_clock == 2

    def test_popularity_tracked_per_value(self, ftl):
        for _ in range(3):
            ftl.write(0, fp(7))
        assert ftl.write_popularity_of(fp(7)) == 3
        assert ftl.mapping.popularity(0) == 3


class TestDeadValuePoolIntegration:
    def test_death_inserts_into_pool(self, dvp_ftl):
        first = dvp_ftl.write(0, fp(1))
        dvp_ftl.write(0, fp(2))
        assert fp(1) in dvp_ftl.pool
        assert dvp_ftl.pool.stats.insertions == 1

    def test_rebirth_short_circuits_write(self, dvp_ftl):
        first = dvp_ftl.write(0, fp(1))
        dvp_ftl.write(0, fp(2))              # fp(1) dies
        outcome = dvp_ftl.write(1, fp(1))    # fp(1) reborn
        assert outcome.short_circuited
        assert outcome.revived_ppn == first.program_ppn
        assert not outcome.programmed
        assert dvp_ftl.counters.short_circuits == 1
        assert dvp_ftl.array.state_of(first.program_ppn) is PageState.VALID
        assert dvp_ftl.mapping.lookup(1) == first.program_ppn

    def test_revived_page_leaves_pool(self, dvp_ftl):
        dvp_ftl.write(0, fp(1))
        dvp_ftl.write(0, fp(2))
        dvp_ftl.write(1, fp(1))
        assert fp(1) not in dvp_ftl.pool

    def test_same_content_overwrite_revives_in_place(self, dvp_ftl):
        """Rewriting identical content to the same LPN: the dying copy is
        itself the rebirth candidate — zero flash programs."""
        first = dvp_ftl.write(0, fp(1))
        outcome = dvp_ftl.write(0, fp(1))
        assert outcome.short_circuited
        assert outcome.revived_ppn == first.program_ppn
        assert dvp_ftl.mapping.lookup(0) == first.program_ppn
        assert dvp_ftl.counters.programs == 1

    def test_content_aware_writes_are_hashed(self, dvp_ftl):
        assert dvp_ftl.write(0, fp(1)).hashed

    def test_read_data_integrity_through_revival(self, dvp_ftl):
        """After any mix of writes, each LPN's mapped page must hold the
        fingerprint most recently written to it."""
        dvp_ftl.write(0, fp(1))
        dvp_ftl.write(0, fp(2))
        dvp_ftl.write(1, fp(1))   # revival
        dvp_ftl.write(2, fp(2))
        assert dvp_ftl.fingerprint_at(dvp_ftl.mapping.lookup(0)) == fp(2)
        assert dvp_ftl.fingerprint_at(dvp_ftl.mapping.lookup(1)) == fp(1)
        assert dvp_ftl.fingerprint_at(dvp_ftl.mapping.lookup(2)) == fp(2)

    def test_pool_popularity_comes_from_write_counts(self, tiny_config):
        ftl = BaseFTL(tiny_config, pool=MQDeadValuePool(64))
        for _ in range(5):
            ftl.write(0, fp(9))   # popularity of value 9 climbs
        ftl.write(0, fp(1))       # fp(9) dies, inserted with popularity 6?
        entry = ftl.pool.mq.entry(fp(9))
        assert entry is not None
        assert entry.popularity >= 5


class TestGCIntegration:
    def _churn(self, ftl, tiny_config, writes):
        """Overwrite a small working set to force GC."""
        ws = tiny_config.logical_pages // 2
        for i in range(writes):
            ftl.write(i % ws, fp(1_000_000 + i))

    def test_gc_triggers_under_churn(self, ftl, tiny_config):
        self._churn(ftl, tiny_config, tiny_config.total_pages * 2)
        assert ftl.counters.gc_erases > 0
        ftl.check_invariants()

    def test_gc_preserves_mapping_integrity(self, ftl, tiny_config):
        self._churn(ftl, tiny_config, tiny_config.total_pages * 2)
        ws = tiny_config.logical_pages // 2
        for lpn in range(ws):
            ppn = ftl.mapping.lookup(lpn)
            assert ppn is not None
            assert ftl.array.state_of(ppn) is PageState.VALID

    def test_gc_discards_pool_entries_of_erased_pages(self, tiny_config):
        ftl = BaseFTL(tiny_config, pool=InfiniteDeadValuePool())
        self._churn(ftl, tiny_config, tiny_config.total_pages * 2)
        # every pool-tracked PPN must still be a real INVALID page
        pool = ftl.pool
        for fp_key, entry in list(pool._entries.items()):
            for ppn in entry.ppns:
                assert ftl.array.state_of(ppn) is PageState.INVALID
        assert pool.stats.gc_removals > 0

    def test_relocation_counter_matches_work(self, ftl, tiny_config):
        self._churn(ftl, tiny_config, tiny_config.total_pages * 2)
        assert ftl.counters.gc_relocations >= 0
        assert ftl.counters.gc_erases > 0

    def test_popularity_aware_gc_runs(self, tiny_config):
        ftl = BaseFTL(
            tiny_config, pool=MQDeadValuePool(64), popularity_aware_gc=True
        )
        self._churn(ftl, tiny_config, tiny_config.total_pages * 2)
        assert ftl.counters.gc_erases > 0
        ftl.check_invariants()


class TestReadPopularity:
    def test_reads_tracked_when_enabled(self, tiny_config):
        from repro.core.dvp import LBARecencyPool

        ftl = BaseFTL(
            tiny_config, pool=LBARecencyPool(16), combine_read_popularity=True
        )
        ftl.write(0, fp(1))
        for _ in range(4):
            ftl.read(0)
        assert ftl._read_popularity[fp(1)] == 4

    def test_reads_not_tracked_by_default(self, dvp_ftl):
        dvp_ftl.write(0, fp(1))
        dvp_ftl.read(0)
        assert fp(1) not in dvp_ftl._read_popularity

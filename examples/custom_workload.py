#!/usr/bin/env python3
"""Bring your own workload: profile → FIU trace file → simulation.

Shows the full round trip a user with real traces would take:

1. define a custom :class:`WorkloadProfile` (here: a bursty VM-image
   server with heavy content redundancy),
2. generate the trace and export it as an FIU-format file — the format of
   the paper's original traces (one line per 4KB request, MD5 included),
3. parse the file back and replay it through the simulator,
4. compare baseline vs MQ-DVP on *your* workload.

Run:  python examples/custom_workload.py
"""

import tempfile
from pathlib import Path

from repro.analysis.report import render_table
from repro.experiments.runner import config_for_profile, prefill
from repro.ftl.dvp_ftl import make_baseline, make_mq_dvp
from repro.sim.ssd import SimulatedSSD
from repro.traces.fiu import iter_fiu_requests, write_fiu
from repro.traces.profiles import TableIITargets, WorkloadProfile, audit_trace
from repro.traces.synthetic import generate_trace


def vm_image_server() -> WorkloadProfile:
    """A hypothetical VM-image store: write-heavy, hugely redundant
    (identical OS blocks across images), moderate footprint."""
    return WorkloadProfile(
        name="vmstore",
        targets=TableIITargets(
            write_ratio=0.85, unique_write_frac=0.15, unique_read_frac=0.4,
        ),
        new_value_prob=0.18,
        value_zipf_s=1.1,
        lpn_zipf_s=1.1,
        read_zipf_s=1.3,
        cold_read_frac=0.5,
        cold_region_factor=2.0,
        working_set_pages=6000,
        num_requests=30_000,
        mean_interarrival_us=220.0,
        seed=2026,
    )


def main():
    profile = vm_image_server()
    trace = generate_trace(profile)
    audit = audit_trace(trace)
    print(f"generated '{profile.name}': {audit.requests} requests, "
          f"WR {audit.write_ratio:.0%}, "
          f"unique writes {audit.unique_write_frac:.1%}")

    # --- export / re-import through the FIU format ---------------------
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "vmstore.fiu"
        with open(path, "w") as f:
            lines = write_fiu(f, trace)
        size_kb = path.stat().st_size / 1024
        print(f"exported {lines} FIU lines ({size_kb:.0f} KiB) -> {path.name}")
        with open(path) as f:
            replayed = list(iter_fiu_requests(f))
    print(f"re-imported {len(replayed)} requests from disk")

    # --- simulate both systems on the file-sourced trace ---------------
    config = config_for_profile(profile)
    rows = []
    base = None
    for label, ftl in (
        ("baseline", make_baseline(config)),
        ("mq-dvp", make_mq_dvp(config, pool_entries=2500)),
    ):
        prefill(ftl, profile)
        summary = SimulatedSSD(ftl).run(replayed).summary()
        if base is None:
            base = summary
        rows.append((
            label,
            f"{summary['flash_writes']:.0f}",
            f"{summary['erases']:.0f}",
            f"{summary['mean_latency_us']:.1f}",
            f"{100 * (1 - summary['mean_latency_us'] / base['mean_latency_us']):.1f}",
        ))
    print()
    print(render_table(
        ["system", "flash writes", "erases", "mean latency (us)",
         "latency cut (%)"],
        rows, title="vmstore workload, replayed from the FIU file:",
    ))


if __name__ == "__main__":
    main()

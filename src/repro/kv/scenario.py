"""The KV-SSD scenario: keyed workloads driven end-to-end over real FTLs.

:func:`execute_kv_spec` wires the whole stack together — zoo stream →
:class:`~repro.kv.store.KVStore` translation → the standard
:class:`~repro.experiments.device.Device` lifecycle — so a keyed workload
runs against *any* in-tree system (``mq-dvp``, ``dedup``, and notably
``dftl-mq-dvp``, where mapping lookups themselves cost flash reads).

Phases mirror the block runner's discipline:

1. **Load**: the zoo's :func:`~repro.kv.zoo.load_stream` populates the
   store, applied *directly* against the FTL (no DES timing), then FTL
   counters / pool stats / KV stats reset — the keyed analogue of
   :func:`~repro.experiments.runner.prefill`, so measurements cover only
   the transaction window over a warm store and a garbage-bearing drive.
2. **Transactions**: :func:`~repro.kv.zoo.txn_stream` translates lazily
   into page requests and streams through the timing device in one pass
   (never materialised).

:class:`KVRunResult` pairs the page-level :class:`~repro.sim.metrics.
RunResult` with the store's KV counters and a combined content digest;
:func:`run_kv_specs` fans specs over worker processes with the same
spec-order determinism contract as :func:`~repro.perf.parallel.run_specs`
(``jobs=N`` is digest-identical to ``jobs=1`` — enforced by the kv_smoke
tests), and :func:`run_kv_ablation` pairs a system with its pool-off
counterpart to isolate what revival buys under keyed traffic.
"""

from __future__ import annotations

import hashlib
import pickle
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.dvp import PoolStats
from ..core.hashing import fingerprint_of_value
from ..experiments.config import DEFAULT_SCALE, RunConfig
from ..experiments.device import Device
from ..experiments.runner import scaled_pool_entries
from ..flash.config import scaled_config
from ..ftl.dvp_ftl import POOL_OFF_SYSTEM, SYSTEMS
from ..ftl.ftl import FTLCounters
from ..perf.parallel import pool_chunksize, resolve_jobs
from ..sim.metrics import RunResult
from ..sim.request import OpType
from .inline import PackerStats
from .store import KVStats, KVStore
from .zoo import KVWorkload, kv_workload, load_stream, txn_stream

__all__ = [
    "KVSpec",
    "KVRunResult",
    "kv_result_digest",
    "execute_kv_spec",
    "run_kv_specs",
    "run_kv_ablation",
]

#: Same pinned protocol as :data:`~repro.perf.spec._DIGEST_PROTOCOL`.
_DIGEST_PROTOCOL = 4

#: Store footprint over exported capacity (drive slack matters for GC,
#: like the block profiles' ``fill_fraction``).
DEFAULT_FILL_FRACTION = 0.55


@dataclass(frozen=True)
class KVSpec:
    """One keyed run, by value — frozen and picklable, like RunSpec."""

    workload: str = "ycsb-a"
    system: str = "mq-dvp"
    paper_pool_entries: int = 200_000
    scale: float = DEFAULT_SCALE
    seed: Optional[int] = None
    fill_fraction: float = DEFAULT_FILL_FRACTION
    queue_depth: Optional[int] = None

    def __post_init__(self) -> None:
        # Validate by name here so a bad spec fails at construction, in
        # the submitting process, not inside a worker.
        kv_workload(self.workload)
        if self.system not in SYSTEMS:
            raise ValueError(
                f"unknown system {self.system!r}; choose from "
                f"{sorted(SYSTEMS)}"
            )
        if self.paper_pool_entries <= 0:
            raise ValueError("paper_pool_entries must be positive")
        if self.scale <= 0:
            raise ValueError("scale must be positive")
        if not 0.0 < self.fill_fraction <= 0.9:
            raise ValueError("fill_fraction must be in (0, 0.9]")
        if self.queue_depth is not None and self.queue_depth <= 0:
            raise ValueError("queue_depth must be positive when set")

    def workload_config(self) -> KVWorkload:
        """The scaled (and optionally reseeded) zoo workload."""
        workload = kv_workload(self.workload).scaled(self.scale)
        if self.seed is not None:
            workload = workload.reseeded(self.seed)
        return workload

    def pool_off(self) -> "KVSpec":
        """The same run with this system's pool-off counterpart."""
        try:
            return replace(self, system=POOL_OFF_SYSTEM[self.system])
        except KeyError:
            raise ValueError(
                f"system {self.system!r} has no pool to ablate; "
                f"ablatable systems: {sorted(POOL_OFF_SYSTEM)}"
            ) from None


@dataclass(frozen=True)
class KVRunResult:
    """Everything one keyed run observably produced."""

    spec: KVSpec
    result: RunResult          # the page-level device outcome
    kv_counters: Dict[str, int] = field(default_factory=dict)
    digest: str = ""

    @property
    def write_amplification(self) -> float:
        counters = self.result.counters
        if not counters.host_writes:
            return 0.0
        return (
            (counters.programs + counters.gc_relocations)
            / counters.host_writes
        )

    @property
    def revival_rate(self) -> float:
        counters = self.result.counters
        if not counters.host_writes:
            return 0.0
        return counters.short_circuits / counters.host_writes


def kv_result_digest(
    result: RunResult, kv_counters: Dict[str, int]
) -> str:
    """Content hash over the device outcome *and* the store's counters,
    so a jobs=1 / jobs=N divergence in either layer is caught."""
    from ..perf.spec import result_digest

    payload = (result_digest(result), sorted(kv_counters.items()))
    return hashlib.sha256(
        pickle.dumps(payload, protocol=_DIGEST_PROTOCOL)
    ).hexdigest()


def _apply_untimed(ftl, store: KVStore, stream) -> None:
    """Apply translated page ops directly to the FTL (load phase: state
    transitions only, no DES timing)."""
    for request in store.translate(stream):
        if request.op is OpType.WRITE:
            ftl.write(request.lpn, fingerprint_of_value(request.value_id))
        elif request.op is OpType.READ:
            ftl.read(request.lpn)
        else:
            ftl.trim(request.lpn)


def execute_kv_spec(spec: KVSpec) -> KVRunResult:
    """Run one keyed spec end to end.  Pure function of the spec."""
    workload = spec.workload_config()
    ssd_config = scaled_config(
        int(workload.estimated_pages() / spec.fill_fraction)
    )
    device = Device(
        spec.system,
        ssd_config,
        scaled_pool_entries(spec.paper_pool_entries, spec.scale),
    ).build()
    store = KVStore(
        page_bytes=ssd_config.page_size,
        max_pages=ssd_config.logical_pages,
    )
    ftl = device.ftl

    # Phase 1: load — populate the store against the bare FTL, then
    # reset every counter (the keyed analogue of prefill()'s epilogue).
    _apply_untimed(ftl, store, load_stream(workload))
    for request in store.flush(arrival_us=0.0):
        ftl.write(request.lpn, fingerprint_of_value(request.value_id))
    ftl.counters = FTLCounters()
    if ftl.pool is not None:
        ftl.pool.stats = PoolStats()
    store.stats = KVStats()
    store.packer.stats = PackerStats()

    # Phase 2: transactions — one lazy stream through the timing device.
    device.attach(RunConfig(
        paper_pool_entries=spec.paper_pool_entries,
        scale=spec.scale,
        queue_depth=spec.queue_depth,
    ))
    device.step(store.translate(txn_stream(workload)))
    result = device.finalize(workload=f"kv:{workload.name}")

    kv_counters = store.counters()
    return KVRunResult(
        spec=spec,
        result=result,
        kv_counters=kv_counters,
        digest=kv_result_digest(result, kv_counters),
    )


def _execute_kv_worker(spec: KVSpec) -> KVRunResult:
    return execute_kv_spec(spec)


def run_kv_specs(
    specs: Sequence[KVSpec], jobs: Optional[int] = 1
) -> List[KVRunResult]:
    """Execute ``specs``, results in spec order (the run_specs contract:
    ``jobs=1`` serial in-process; ``jobs=None``/``0`` all cores; each
    cell a pure function of its spec, so fan-out is digest-identical)."""
    jobs = resolve_jobs(jobs)
    if jobs == 1 or len(specs) <= 1:
        return [execute_kv_spec(spec) for spec in specs]
    workers = min(jobs, len(specs))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(
            _execute_kv_worker,
            specs,
            chunksize=pool_chunksize(len(specs), workers),
        ))


def run_kv_ablation(
    spec: KVSpec, jobs: Optional[int] = 1
) -> Tuple[KVRunResult, KVRunResult]:
    """Run ``spec`` with its pool on and off; returns ``(on, off)``.

    The off leg is the system's :data:`~repro.ftl.dvp_ftl.
    POOL_OFF_SYSTEM` counterpart on the *same* workload, drive geometry
    and store, so the delta isolates exactly what revival buys under
    keyed traffic (the KV ablation cell of ``make bench`` tracks it).
    """
    on_spec, off_spec = spec, spec.pool_off()
    on, off = run_kv_specs([on_spec, off_spec], jobs=jobs)
    return on, off

"""repro.perf — parallel, cache-aware experiment engine.

Three cooperating pieces turn the serial one-process evaluation matrix
into a parallel one without changing a single result bit:

- :mod:`.trace_cache` — content-keyed trace cache (profile hash →
  materialised trace, in-memory LRU + optional disk tier), so each
  workload's trace is generated once per matrix instead of once per cell.
- :mod:`.snapshot` — prefill snapshot/restore: precondition once per
  (FTL family, config, profile), then rehydrate sibling runs by copy.
- :mod:`.spec` / :mod:`.parallel` — picklable :class:`RunSpec` cells and
  a ``ProcessPoolExecutor`` fan-out with ordered deterministic collection
  (``jobs=N`` is digest-identical to ``jobs=1``).

:mod:`.bench` drives the tracked ``BENCH_matrix.json`` harness on top.

Attribute access is lazy (PEP 562): :mod:`repro.experiments.runner`
imports the trace cache at module level while :mod:`.spec` imports the
runner, so eager re-exports here would complete a cycle.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

__all__ = [
    "RunSpec",
    "execute_spec",
    "execute_spec_timed",
    "result_digest",
    "pool_chunksize",
    "resolve_jobs",
    "run_specs",
    "run_specs_timed",
    "TraceCache",
    "profile_cache_key",
    "default_trace_cache",
    "cached_trace",
    "PrefillCache",
    "default_prefill_cache",
    "run_benchmark",
    "write_benchmark",
]

_EXPORTS = {
    "RunSpec": ".spec",
    "execute_spec": ".spec",
    "execute_spec_timed": ".spec",
    "result_digest": ".spec",
    "pool_chunksize": ".parallel",
    "resolve_jobs": ".parallel",
    "run_specs": ".parallel",
    "run_specs_timed": ".parallel",
    "TraceCache": ".trace_cache",
    "profile_cache_key": ".trace_cache",
    "default_trace_cache": ".trace_cache",
    "cached_trace": ".trace_cache",
    "PrefillCache": ".snapshot",
    "default_prefill_cache": ".snapshot",
    "run_benchmark": ".bench",
    "write_benchmark": ".bench",
}

if TYPE_CHECKING:  # pragma: no cover - static analysis only
    from .bench import run_benchmark, write_benchmark
    from .parallel import (
        pool_chunksize,
        resolve_jobs,
        run_specs,
        run_specs_timed,
    )
    from .snapshot import PrefillCache, default_prefill_cache
    from .spec import (
        RunSpec,
        execute_spec,
        execute_spec_timed,
        result_digest,
    )
    from .trace_cache import (
        TraceCache,
        cached_trace,
        default_trace_cache,
        profile_cache_key,
    )


def __getattr__(name: str):
    module = _EXPORTS.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    from importlib import import_module

    return getattr(import_module(module, __name__), name)


def __dir__():
    return sorted(__all__)

"""Power-loss crash recovery: rebuild the L2P mapping from OOB metadata.

What a power loss destroys is exactly the RAM-resident state (paper
Section IV-C puts the whole MQ-DVP in controller RAM): the LPN→PPN table,
the dead-value pool, and every popularity counter.  What survives is the
flash itself — and, as on a real drive, the out-of-band spare area of each
programmed page, which the FTL journals with ``(lpn, seq)`` on every
program, revival and relocation (see ``BaseFTL._record_oob``).

Recovery replays what real page-mapping FTLs do after an unclean
shutdown: scan every programmed page's OOB area and keep, per LPN, the
copy with the highest sequence number — provided the page is still VALID
and the LPN was not trimmed later.  The rebuilt table is verified against
the pre-crash mapping (they must be identical — the journal is complete
by construction), installed, and everything volatile is cleared: the pool
restarts cold, which is precisely the "revival-rate warmup" effect the
recovery experiment (:mod:`repro.experiments.recovery`) measures.

The scan cost is modelled, not just counted: every programmed page must
be read once, spread across all chips in parallel, giving a recovery time
during which the drive services nothing.

Deduplicated FTLs are *not* recoverable this way: a many-to-one mapping
cannot be reconstructed from single-LPN OOB records (a real dedup FTL
journals its fingerprint store separately), so :func:`crash_and_recover`
refuses them explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Tuple

from ..flash.block import PageState
from ..ftl.mapping import MappingTable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..ftl.ftl import BaseFTL

__all__ = ["RecoveryError", "RecoveryReport", "rebuild_mapping", "crash_and_recover"]


class RecoveryError(RuntimeError):
    """Crash recovery could not reconstruct a consistent mapping."""


@dataclass(frozen=True)
class RecoveryReport:
    """What one power-loss event cost."""

    at_us: float            # simulated time of the power loss
    scanned_pages: int      # programmed pages whose OOB area was read
    rebuilt_lpns: int       # forward-map entries reconstructed
    dropped_pool_ppns: int  # revivable garbage pages forgotten with the pool
    recovery_us: float      # scan duration (device services nothing)


def rebuild_mapping(ftl: "BaseFTL") -> MappingTable:
    """Reconstruct the L2P table purely from the OOB journal.

    Newest sequence number per LPN wins; a copy loses if the LPN was
    trimmed after it was written, or if the page is no longer VALID (its
    write was superseded — e.g. a failed-then-rejected rewrite left the
    old copy invalidated with no successor).
    """
    best: Dict[int, Tuple[int, int]] = {}
    for ppn, (lpn, seq) in ftl._oob.items():
        current = best.get(lpn)
        if current is None or seq > current[1]:
            best[lpn] = (ppn, seq)
    table = MappingTable(ftl.config.logical_pages, ftl.config.total_pages)
    trims = ftl._oob_trims
    state_of = ftl.array.state_of
    for lpn in sorted(best):
        ppn, seq = best[lpn]
        # Trim wins ties.  ``_oob_seq`` is a single monotonic clock shared
        # by page records and trim records, so equal sequence numbers are
        # unreachable on a well-formed journal — but if a malformed journal
        # ever produced one, dropping the copy (treating it as trimmed) is
        # the fail-safe direction: resurrecting possibly-discarded data is
        # the dangerous mistake, reporting an LPN unmapped is not.
        if trims.get(lpn, -1) >= seq:
            continue
        if state_of(ppn) is not PageState.VALID:
            continue
        table.map(lpn, ppn)
    return table


def crash_and_recover(
    ftl: "BaseFTL", at_us: float = 0.0, verify: bool = True
) -> RecoveryReport:
    """Simulate a power loss on ``ftl`` *now* and bring it back up.

    Drops all volatile state (mapping table, dead-value pool, popularity
    counters), rebuilds the mapping from the OOB journal and installs it.
    With ``verify`` (the default) the rebuilt forward map is compared
    entry-for-entry against the pre-crash table; any difference raises
    :class:`RecoveryError` — the journal makes recovery lossless, so a
    mismatch is a simulator bug, never an expected outcome.

    Returns a :class:`RecoveryReport`; the recovery time models one OOB
    read per programmed page, parallelised over all chips.
    """
    from ..ftl.dedup import DedupFTL

    if isinstance(ftl, DedupFTL):
        raise RecoveryError(
            "OOB-scan recovery cannot rebuild a deduplicated (many-to-one) "
            "mapping; dedup FTLs need a separately journaled fingerprint "
            "store"
        )
    pre_crash = ftl.mapping.forward_items()
    rebuilt = rebuild_mapping(ftl)
    if verify:
        recovered = rebuilt.forward_items()
        if recovered != pre_crash:
            missing = len(pre_crash.keys() - recovered.keys())
            spurious = len(recovered.keys() - pre_crash.keys())
            raise RecoveryError(
                f"rebuilt mapping disagrees with pre-crash state "
                f"({missing} lost, {spurious} spurious of {len(pre_crash)})"
            )
    # Install the recovered table.  The per-LPN popularity byte lived in
    # the RAM copy of the table and is gone; so is every other popularity
    # structure and the pool itself.
    ftl.mapping = rebuilt
    dropped_pool_ppns = 0
    if ftl.pool is not None:
        dropped_pool_ppns = ftl.pool.tracked_ppn_count()
        ftl.pool.clear_volatile()
    ftl._write_popularity = {}
    ftl._read_popularity = {}
    ftl._block_garbage_pop = {}
    ftl._garbage_pop_of_ppn = {}
    # Scan cost: one OOB read (no data transfer) per programmed page,
    # striped across every chip.
    scanned = ftl.array.valid_pages + ftl.array.invalid_pages
    timing = ftl.config.timing
    per_chip = -(-scanned // ftl.config.total_chips)  # ceil div
    recovery_us = per_chip * timing.read_us
    if ftl.faults is not None:
        ftl.faults.stats.crashes += 1
        ftl.faults.stats.recovery_times_us.append(recovery_us)
    if ftl._registry is not None:
        ftl._registry.histogram("faults.recovery_us").observe(recovery_us)
    return RecoveryReport(
        at_us=at_us,
        scanned_pages=scanned,
        rebuilt_lpns=rebuilt.mapped_lpn_count(),
        dropped_pool_ppns=dropped_pool_ppns,
        recovery_us=recovery_us,
    )

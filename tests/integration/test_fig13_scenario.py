"""Integration test of the Figure 13 timeline, through the full simulator.

Figure 13's scenario: data block "D" is written at t0; W2 and W3 rewrite
the same content while D is live (dedup removes them); updates then turn
D's physical page to garbage at t3; W4 writes D again at t4.

* Dedup alone covers [t0, t3) but must program flash for W4.
* DVP covers (t3, t4] — W4 revives the garbage page.
* DVP+Dedup covers both windows.
"""

import pytest

from repro.ftl.dvp_ftl import build_system
from repro.sim.request import IORequest, OpType
from repro.sim.ssd import SimulatedSSD


D = 100  # the value id of data block "D"


def scenario():
    """The write sequence of Figure 13 (timestamps far apart to isolate)."""
    t = iter(range(0, 100_000, 10_000))
    return [
        IORequest(float(next(t)), OpType.WRITE, 0, D),    # t0: D created
        IORequest(float(next(t)), OpType.WRITE, 1, D),    # W2
        IORequest(float(next(t)), OpType.WRITE, 2, D),    # W3
        IORequest(float(next(t)), OpType.WRITE, 0, 1),    # updates kill D
        IORequest(float(next(t)), OpType.WRITE, 1, 2),
        IORequest(float(next(t)), OpType.WRITE, 2, 3),    # t3: D all-garbage
        IORequest(float(next(t)), OpType.WRITE, 3, D),    # t4: W4
    ]


def run(system, tiny_config):
    ftl = build_system(system, tiny_config, 64)
    device = SimulatedSSD(ftl)
    completions = [device.submit(req) for req in scenario()]
    return ftl, completions


class TestBaseline:
    def test_every_write_programs(self, tiny_config):
        ftl, _ = run("baseline", tiny_config)
        assert ftl.counters.programs == 7


class TestDedupAlone:
    def test_w2_w3_deduped_but_w4_programs(self, tiny_config):
        ftl, completions = run("dedup", tiny_config)
        assert completions[1].dedup_hit and completions[2].dedup_hit
        w4 = completions[6]
        assert not w4.dedup_hit and not w4.short_circuited
        # 5 programs: D, the three updates, and W4 again
        assert ftl.counters.programs == 5


class TestDVPAlone:
    def test_w4_revived_but_w2_w3_program(self, tiny_config):
        ftl, completions = run("mq-dvp", tiny_config)
        # No live dedup: W2/W3 program their own copies of D.
        assert not completions[1].dedup_hit
        assert not completions[2].dedup_hit
        assert ftl.counters.dedup_hits == 0
        w4 = completions[6]
        assert w4.short_circuited
        # Updates killed three copies of D; W4 revives one of them.
        assert ftl.counters.short_circuits == 1


class TestDVPDedup:
    def test_both_windows_covered(self, tiny_config):
        ftl, completions = run("dvp+dedup", tiny_config)
        assert completions[1].dedup_hit and completions[2].dedup_hit
        w4 = completions[6]
        assert w4.short_circuited
        # Only 4 flash programs: D once + the three updates.
        assert ftl.counters.programs == 4

    def test_w4_faster_than_a_programmed_write(self, tiny_config):
        _, completions = run("dvp+dedup", tiny_config)
        t = tiny_config.timing
        programmed_floor = t.channel_xfer_us + t.program_us
        assert completions[6].latency_us < programmed_floor


class TestCrossSystemWriteCounts:
    def test_figure13_program_ordering(self, tiny_config):
        counts = {
            system: run(system, tiny_config)[0].counters.programs
            for system in ("baseline", "dedup", "mq-dvp", "dvp+dedup")
        }
        assert counts["baseline"] == 7
        assert counts["dvp+dedup"] < counts["dedup"] < counts["baseline"]
        assert counts["dvp+dedup"] < counts["mq-dvp"] < counts["baseline"]

"""Adaptive-capacity MQ dead-value pool (the paper's stated future work).

Section V-A, footnote 5: *"In the future, we are planing to add more
capabilities to our design, such as dynamically tuning the total capacity
for MQ, in order to adapt itself to any changes in the workload."*

:class:`AdaptiveMQDeadValuePool` implements that extension.  It watches a
sliding window of pool activity and resizes the underlying multi-queue:

* **grow** when the pool is under capacity pressure — a meaningful share
  of the window's insertions caused evictions while lookups were hitting
  (the pool is earning its memory and losing candidates);
* **shrink** when the pool is over-provisioned — no evictions occurred
  and occupancy sits well below capacity, so RAM can be handed back.

Both moves are multiplicative (×``grow_factor`` / ÷``grow_factor``) and
clamped to ``[min_entries, max_entries]``.  Shrinking evicts coldest-first
through the MQ machinery, so popular dead values survive a downsize.

Counters (`resizes_up`, `resizes_down`, `capacity_high_water`) are exposed
for the ablation benchmark (``benchmarks/test_ablation_adaptive.py``).
"""

from __future__ import annotations

from typing import List, Optional

from .dvp import MQDeadValuePool
from .hashing import Fingerprint

__all__ = ["AdaptiveMQDeadValuePool"]


class AdaptiveMQDeadValuePool(MQDeadValuePool):
    """An MQ dead-value pool that tunes its own capacity.

    Parameters
    ----------
    initial_entries:
        Starting capacity.
    min_entries / max_entries:
        Hard clamps on the adaptation (the RAM budget).
    window:
        Number of pool events (lookups + insertions) per adaptation step.
    grow_factor:
        Multiplicative step for both directions.
    pressure_threshold:
        Fraction of window insertions that must cause evictions before
        the pool grows.
    slack_threshold:
        Maximum occupancy/capacity ratio at which the pool shrinks
        (given the window also saw zero evictions).
    """

    def __init__(
        self,
        initial_entries: int,
        min_entries: Optional[int] = None,
        max_entries: Optional[int] = None,
        num_queues: int = 8,
        window: int = 2048,
        grow_factor: float = 1.5,
        pressure_threshold: float = 0.05,
        slack_threshold: float = 0.5,
    ):
        super().__init__(initial_entries, num_queues=num_queues)
        if window <= 0:
            raise ValueError("window must be positive")
        if grow_factor <= 1.0:
            raise ValueError("grow_factor must exceed 1")
        if not 0.0 <= pressure_threshold <= 1.0:
            raise ValueError("pressure_threshold must be in [0, 1]")
        if not 0.0 < slack_threshold < 1.0:
            raise ValueError("slack_threshold must be in (0, 1)")
        self.min_entries = min_entries or max(64, initial_entries // 8)
        self.max_entries = max_entries or initial_entries * 8
        if not self.min_entries <= initial_entries <= self.max_entries:
            raise ValueError("initial capacity outside [min, max]")
        self.window = window
        self.grow_factor = grow_factor
        self.pressure_threshold = pressure_threshold
        self.slack_threshold = slack_threshold
        # Window accumulators and adaptation telemetry.
        self._window_events = 0
        self._window_insertions = 0
        self._window_evictions = 0
        self.resizes_up = 0
        self.resizes_down = 0
        self.capacity_high_water = initial_entries

    # ------------------------------------------------------------------

    @property
    def capacity(self) -> int:
        return self._mq.capacity

    def register_metrics(self, registry) -> None:
        """Adaptive-capacity gauges on top of the MQ ones."""
        super().register_metrics(registry)
        registry.gauge("pool.capacity", lambda: self.capacity)
        registry.gauge("pool.resizes_up", lambda: self.resizes_up)
        registry.gauge("pool.resizes_down", lambda: self.resizes_down)
        registry.gauge(
            "pool.capacity_high_water", lambda: self.capacity_high_water
        )

    def lookup_for_write(self, fp: Fingerprint, now: int) -> Optional[int]:
        hit = super().lookup_for_write(fp, now)
        self._tick()
        return hit

    def insert_garbage(
        self,
        fp: Fingerprint,
        ppn: int,
        now: int,
        popularity: int = 1,
        lpn: Optional[int] = None,
    ) -> List[int]:
        before = self.stats.evictions
        dropped = super().insert_garbage(fp, ppn, now, popularity, lpn)
        self._window_insertions += 1
        self._window_evictions += self.stats.evictions - before
        self._tick()
        return dropped

    def clear_volatile(self) -> None:
        """Power loss: drop entries and the in-flight adaptation window.

        The current capacity is kept (it is a firmware sizing decision,
        re-derivable but harmless to retain); telemetry counters survive
        as measurements.
        """
        super().clear_volatile()
        self._window_events = 0
        self._window_insertions = 0
        self._window_evictions = 0

    # ------------------------------------------------------------------

    def _tick(self) -> None:
        self._window_events += 1
        if self._window_events < self.window:
            return
        self._adapt()
        self._window_events = 0
        self._window_insertions = 0
        self._window_evictions = 0

    def _adapt(self) -> None:
        insertions = self._window_insertions
        if insertions == 0:
            return
        pressure = self._window_evictions / insertions
        if pressure > self.pressure_threshold:
            self._resize(min(
                self.max_entries, int(self.capacity * self.grow_factor)
            ))
        elif (
            self._window_evictions == 0
            and len(self) < self.capacity * self.slack_threshold
        ):
            self._resize(max(
                self.min_entries, int(self.capacity / self.grow_factor)
            ))

    def _resize(self, new_capacity: int) -> None:
        if new_capacity == self.capacity:
            return
        if new_capacity > self.capacity:
            self.resizes_up += 1
        else:
            self.resizes_down += 1
        evicted = self._mq.set_capacity(new_capacity)
        for _, entry in evicted:
            self.stats.evictions += 1
            self.stats.evicted_ppns += len(entry.ppns)
            self._notify_drops(entry.ppns)
        if new_capacity > self.capacity_high_water:
            self.capacity_high_water = new_capacity

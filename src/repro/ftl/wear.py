"""Wear accounting and levelling statistics.

Flash blocks endure a limited number of erases (Section I), so every erase
saved by reviving garbage pages is lifetime gained — Figure 10's erase-count
reduction is the paper's lifetime claim.  :class:`WearTracker` summarises
the erase distribution across blocks (total, max, mean, spread) and offers
the standard wear-levelling guard used by victim policies: refuse blocks
whose wear is already far above the drive average.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..flash.array import FlashArray

__all__ = ["WearStats", "WearTracker"]


@dataclass(frozen=True)
class WearStats:
    """Snapshot of the drive's erase distribution."""

    total_erases: int
    max_erases: int
    min_erases: int
    mean_erases: float

    @property
    def spread(self) -> int:
        """Max-min erase gap; small spread = well-levelled wear."""
        return self.max_erases - self.min_erases


class WearTracker:
    """Reads wear out of the flash array and applies levelling guards."""

    def __init__(self, array: FlashArray, guard_margin: int = 8):
        if guard_margin < 0:
            raise ValueError("guard_margin must be non-negative")
        self.array = array
        self.guard_margin = guard_margin
        # Cached drive-mean erase count for the levelling guard.  The
        # guard runs once per GC candidate, so recomputing the mean for
        # every candidate of every collection pass added up; the mean
        # only changes on erase, so recompute lazily when total_erases
        # moved.  The cached value is the *identical* float division,
        # keeping victim choices bit-for-bit unchanged.
        self._num_blocks = len(array.blocks)
        self._known_total = 0
        self._mean = 0.0

    def stats(self) -> WearStats:
        counts = [b.erase_count for b in self.array.blocks]
        total = sum(counts)
        return WearStats(
            total_erases=total,
            max_erases=max(counts),
            min_erases=min(counts),
            mean_erases=total / len(counts),
        )

    def erase_histogram(self) -> List[int]:
        """Per-block erase counts, in flat block order."""
        return [b.erase_count for b in self.array.blocks]

    def allows_erase(self, block_global: int) -> bool:
        """Wear-levelling guard: veto blocks far above the drive mean.

        GC may still erase a vetoed block when no alternative exists; the
        guard only shapes preference, never correctness.
        """
        block = self.array.block(block_global)
        total = self.array.total_erases
        if total != self._known_total:
            self._known_total = total
            self._mean = total / self._num_blocks
        return block.erase_count <= self._mean + self.guard_margin

"""Trace transforms: reshape request streams without regenerating them.

Trace-driven studies constantly need derived traces — the same accesses at
a different intensity, a time window, one operation class, a merged
multi-tenant stream, or a remapped address range.  These are pure functions
over request sequences, so any transform output feeds straight back into
the simulator, the analyses or the FIU writer.

All transforms preserve per-request identity (op, LPN, value) unless the
transform's purpose is to change it, and every output is in arrival order.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Iterator, List, Sequence

from ..sim.request import IORequest, OpType

__all__ = [
    "scale_time",
    "window",
    "take",
    "filter_ops",
    "shift_lpns",
    "with_trims",
    "merge_traces",
    "interleave_tenants",
]


def scale_time(
    trace: Iterable[IORequest], factor: float
) -> Iterator[IORequest]:
    """Stretch (>1) or compress (<1) inter-arrival times by ``factor``.

    Compressing a trace is the standard way to raise offered load without
    changing the access pattern (e.g. for saturation studies).
    """
    if factor <= 0:
        raise ValueError("factor must be positive")
    for request in trace:
        yield IORequest(
            arrival_us=request.arrival_us * factor,
            op=request.op,
            lpn=request.lpn,
            value_id=request.value_id,
        )


def window(
    trace: Iterable[IORequest], start_us: float, end_us: float
) -> Iterator[IORequest]:
    """Requests arriving in ``[start_us, end_us)``, re-based to time 0."""
    if end_us <= start_us:
        raise ValueError("end_us must exceed start_us")
    for request in trace:
        if start_us <= request.arrival_us < end_us:
            yield IORequest(
                arrival_us=request.arrival_us - start_us,
                op=request.op,
                lpn=request.lpn,
                value_id=request.value_id,
            )


def take(trace: Iterable[IORequest], count: int) -> Iterator[IORequest]:
    """The first ``count`` requests."""
    if count < 0:
        raise ValueError("count must be non-negative")
    for index, request in enumerate(trace):
        if index >= count:
            return
        yield request


def filter_ops(
    trace: Iterable[IORequest], op: OpType
) -> Iterator[IORequest]:
    """Only the requests of one operation class."""
    return (request for request in trace if request.op is op)


def shift_lpns(
    trace: Iterable[IORequest], offset: int
) -> Iterator[IORequest]:
    """Relocate the trace's address range by ``offset`` pages.

    Used to place multiple tenants in disjoint LPN ranges before merging.
    """
    for request in trace:
        lpn = request.lpn + offset
        if lpn < 0:
            raise ValueError(
                f"shift makes LPN negative ({request.lpn} + {offset})"
            )
        yield IORequest(
            arrival_us=request.arrival_us,
            op=request.op,
            lpn=lpn,
            value_id=request.value_id,
        )


def with_trims(
    trace: Iterable[IORequest], every_writes: int
) -> Iterator[IORequest]:
    """Inject a TRIM after every ``every_writes``-th write, discarding
    that write's LPN at the same arrival time.

    The synthetic profiles never emit TRIM (the paper does not evaluate
    it), but the FTL's trim path — discard journalling, revivable-garbage
    creation, crash-recovery ordering — needs traffic to be exercised at
    all.  Trimming an address immediately after writing it is the
    workload's worst case for those paths: every injected TRIM kills a
    just-written page and journals a discard that recovery must order
    against the preceding write.  Arrival times of the original requests
    are untouched, so the remaining stream keeps its timing shape.

    Lazy like every other transform, so it composes with streaming
    generators without materialising the trace.
    """
    if every_writes <= 0:
        raise ValueError("every_writes must be positive")
    writes = 0
    for request in trace:
        yield request
        if request.op is OpType.WRITE:
            writes += 1
            if writes % every_writes == 0:
                yield IORequest(
                    arrival_us=request.arrival_us,
                    op=OpType.TRIM,
                    lpn=request.lpn,
                    value_id=0,
                )


def merge_traces(
    *traces: Iterable[IORequest],
) -> Iterator[IORequest]:
    """Merge arrival-ordered traces into one arrival-ordered stream.

    A lazy k-way merge — inputs may be generators of any length.  Ties
    break deterministically by input position.
    """
    return iter(
        heapq.merge(
            *traces, key=lambda request: request.arrival_us,
        )
    )


def interleave_tenants(
    tenants: Sequence[Sequence[IORequest]],
    pages_per_tenant: int,
    value_space: int = 1 << 30,
    share_values: bool = False,
) -> List[IORequest]:
    """Build a multi-tenant workload from per-tenant traces.

    Each tenant's LPNs move to a private range of ``pages_per_tenant``
    pages.  By default each tenant's value ids also move to a private
    namespace, so cross-tenant deduplication/revival cannot occur — the
    conservative assumption.  ``share_values=True`` keeps the original
    ids instead, modelling tenants with genuinely common content (VM
    images, shared base layers), where the dead-value pool can revive one
    tenant's garbage to serve another's write.
    """
    if pages_per_tenant <= 0:
        raise ValueError("pages_per_tenant must be positive")
    if value_space <= 0:
        raise ValueError("value_space must be positive")
    streams = []
    for index, tenant in enumerate(tenants):
        base = index * pages_per_tenant
        for request in tenant:
            if request.lpn >= pages_per_tenant:
                raise ValueError(
                    f"tenant {index} LPN {request.lpn} exceeds its range"
                )
            # A value id at or past ``value_space`` would land in the next
            # tenant's private namespace after the shift, silently enabling
            # the exact cross-tenant revival the namespaces exist to rule
            # out — reject instead of producing a biased workload.
            if not share_values and request.value_id >= value_space:
                raise ValueError(
                    f"tenant {index} value_id {request.value_id} does not "
                    f"fit its private namespace (value_space={value_space}); "
                    "raise value_space or pass share_values=True"
                )
        value_base = 0 if share_values else index * value_space
        streams.append([
            IORequest(
                arrival_us=request.arrival_us,
                op=request.op,
                lpn=request.lpn + base,
                value_id=request.value_id + value_base,
            )
            for request in tenant
        ])
    return list(merge_traces(*streams))

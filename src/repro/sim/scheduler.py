"""Host-side request admission: outstanding-request (queue-depth) control.

The trace-driven simulator is open-loop by default: requests enter at their
trace timestamps regardless of device backlog, which is how SSDSim replays
traces and how GC stalls become visible as latency.  For stability studies
and the closed-loop examples, :class:`HostQueue` optionally caps the number
of outstanding requests: when the cap is reached, the next request is
admitted only when a slot frees, and its queueing delay counts toward its
latency (measured from the original arrival).
"""

from __future__ import annotations

import heapq
from typing import List, Optional

__all__ = ["HostQueue"]


class HostQueue:
    """Tracks in-flight completions to enforce an optional queue depth."""

    def __init__(self, depth: Optional[int] = None):
        if depth is not None and depth <= 0:
            raise ValueError("queue depth must be positive")
        self.depth = depth
        self._completions: List[float] = []  # min-heap of finish times
        self.max_observed = 0

    def admit(self, arrival_us: float) -> float:
        """When may a request arriving at ``arrival_us`` start service?

        Unlimited depth: immediately.  Limited: after the oldest in-flight
        request finishes, if the queue is full at that instant.
        """
        heap = self._completions
        # Retire everything that finished before this arrival.
        while heap and heap[0] <= arrival_us:
            heapq.heappop(heap)
        if self.depth is None or len(heap) < self.depth:
            return arrival_us
        # Wait for the earliest completion to free a slot.
        return heapq.heappop(heap)

    def register(self, finish_us: float) -> None:
        """Record a newly dispatched request's completion time."""
        heapq.heappush(self._completions, finish_us)
        if len(self._completions) > self.max_observed:
            self.max_observed = len(self._completions)

    def in_flight(self, now_us: float) -> int:
        """Requests still outstanding at ``now_us`` (diagnostic).

        Prunes completions at or before ``now_us`` from the heap — the
        same boundary :meth:`admit` retires against (a request finishing
        exactly at ``now_us`` is no longer in flight) — so repeated polls
        are amortised O(log n) instead of a full O(n) scan.  Safe only
        because callers poll with non-decreasing timestamps, which the
        simulators guarantee (completion times never precede arrivals).
        """
        heap = self._completions
        while heap and heap[0] <= now_us:
            heapq.heappop(heap)
        return len(heap)

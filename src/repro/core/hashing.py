"""Content fingerprints for 4KB values.

The paper identifies a page's *value* (its 4KB content) by a 16-byte hash
(MD5 in the FIU traces, SHA-1 in the OSU ones) and stores those hashes in
the dead-value pool rather than the content itself.  The simulator mostly
deals in synthetic values: a unique integer ``value_id`` stands in for one
unique 4KB content.  This module maps both synthetic ids and raw bytes to
:class:`Fingerprint` objects, the single currency used by the pools, the
dedup FTL and the analysis code.

Fingerprints compare and hash by digest, so two values collide exactly when
their digests collide — which for synthetic ids never happens, because the
digest embeds the id.

Representation: a :class:`Fingerprint` *is* an ``int`` (columnar-state
rework, ISSUE 6).  A synthetic id is stored as itself; a raw 16-byte
digest is stored as its 128-bit big-endian value with bit 128 set, which
keeps the two key spaces disjoint without any per-instance storage.  The
payoff is on the hot paths: hashing and equality inside the pool, MQ and
dedup dictionaries run at C speed instead of calling back into Python for
every probe, and instances carry no ``__dict__``/slot storage at all.
"""

from __future__ import annotations

import hashlib
from functools import lru_cache
from typing import Union

__all__ = [
    "Fingerprint",
    "fingerprint_of_value",
    "fingerprint_of_bytes",
    "DIGEST_SIZE",
]

#: Size of a stored fingerprint in bytes (matches the 16B MD5 hashes in the
#: FIU traces, see paper Section II-A).
DIGEST_SIZE = 16

#: Bit 128: set on bytes-keyed fingerprints so a digest whose value happens
#: to equal a synthetic id can never compare equal to it.
_BYTES_TAG = 1 << (8 * DIGEST_SIZE)


class Fingerprint(int):
    """A 16-byte content fingerprint.

    Wraps either a synthetic ``value_id`` (fast path used by generated
    traces) or a real digest of raw bytes.  Instances are immutable,
    hashable and compare equal iff their digests are equal.  Equality is
    restricted to other fingerprints: a fingerprint never compares equal
    to a plain ``int``, even though it is one underneath.
    """

    __slots__ = ()

    def __new__(cls, key: Union[int, bytes]) -> "Fingerprint":
        if isinstance(key, bytes):
            if len(key) != DIGEST_SIZE:
                raise ValueError(
                    f"digest must be {DIGEST_SIZE} bytes, got {len(key)}"
                )
            return int.__new__(cls, _BYTES_TAG | int.from_bytes(key, "big"))
        if isinstance(key, int):
            if key < 0:
                raise ValueError("synthetic value ids must be non-negative")
            if key >= _BYTES_TAG:
                raise ValueError(
                    f"synthetic value ids must fit in {8 * DIGEST_SIZE} bits"
                )
            return int.__new__(cls, key)
        raise TypeError(f"fingerprint key must be int or bytes, got {type(key)!r}")

    @property
    def key(self) -> Union[int, bytes]:
        """The underlying key: an ``int`` value id or a 16-byte digest."""
        value = int(self)
        if value >= _BYTES_TAG:
            return (value - _BYTES_TAG).to_bytes(DIGEST_SIZE, "big")
        return value

    @property
    def digest(self) -> bytes:
        """A canonical 16-byte digest (materialised once per fingerprint)."""
        return _digest_of(self)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Fingerprint):
            return int.__eq__(self, other)
        # Plain False, not NotImplemented: the reflected int comparison
        # would otherwise declare Fingerprint(5) == 5.
        return False

    def __ne__(self, other: object) -> bool:
        if isinstance(other, Fingerprint):
            return int.__ne__(self, other)
        return True

    __hash__ = int.__hash__

    def __repr__(self) -> str:
        value = int(self)
        if value >= _BYTES_TAG:
            digest = (value - _BYTES_TAG).to_bytes(DIGEST_SIZE, "big")
            return f"Fingerprint(digest={digest.hex()})"
        return f"Fingerprint(value_id={value})"

    def __reduce__(self):
        # Round-trip through the validating constructor; default int
        # pickling would drop the subclass distinction on some paths.
        return (Fingerprint, (self.key,))


#: Interning bound for synthetic-id fingerprints.  Hot value ids (popular
#: rewrites, the per-LPN initial values every prefill touches) repeat
#: millions of times across a matrix; interning returns one shared
#: immutable instance instead of re-allocating per request.
INTERN_CACHE_SIZE = 1 << 18


@lru_cache(maxsize=INTERN_CACHE_SIZE)
def _interned(value_id: int) -> Fingerprint:
    return Fingerprint(value_id)


@lru_cache(maxsize=INTERN_CACHE_SIZE)
def _digest_of(fp: Fingerprint) -> bytes:
    value = int(fp)
    if value >= _BYTES_TAG:
        return (value - _BYTES_TAG).to_bytes(DIGEST_SIZE, "big")
    return value.to_bytes(DIGEST_SIZE, "big")


def fingerprint_of_value(value_id: int) -> Fingerprint:
    """Fingerprint of a synthetic value id.

    Synthetic traces number every distinct 4KB content with an integer; two
    requests carry the same ``value_id`` exactly when the paper's traces
    would carry the same MD5.  Instances are interned (LRU-bounded), so hot
    ids — including the ``initial_value_of`` ids prefill writes — reuse one
    shared immutable object.
    """
    return _interned(value_id)


def fingerprint_of_bytes(data: bytes) -> Fingerprint:
    """MD5 fingerprint of a raw 4KB chunk (real-trace / real-data path)."""
    return Fingerprint(hashlib.md5(data).digest())

"""FIU SRCMap-style trace format: parsing and writing.

The paper's traces (Koller & Rangaswami, FAST 2010) are plain-text block
traces with one request per line::

    <timestamp> <pid> <process> <lba> <size> <op> <major> <minor> <md5>

where ``lba``/``size`` are in 512-byte sectors, ``op`` is ``W`` or ``R``
and ``md5`` is the hex digest of each 4KB chunk's content.  This module
converts such files to the simulator's page-granular
:class:`~repro.sim.request.IORequest` stream (interning digests as dense
``value_id`` integers) and can write generated traces back out in the same
format, so the whole pipeline also runs on real FIU data when available.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, TextIO

from ..sim.request import IORequest, OpType

__all__ = [
    "SECTOR_SIZE",
    "SECTORS_PER_PAGE",
    "FIUFormatError",
    "RawFIURecord",
    "parse_fiu_line",
    "read_fiu",
    "iter_fiu_requests",
    "format_fiu_line",
    "write_fiu",
]

SECTOR_SIZE = 512
PAGE_SIZE = 4096
SECTORS_PER_PAGE = PAGE_SIZE // SECTOR_SIZE


class FIUFormatError(ValueError):
    """A malformed FIU trace line."""


@dataclass(frozen=True)
class RawFIURecord:
    """One line of an FIU trace, faithfully."""

    timestamp: float
    pid: int
    process: str
    lba: int          # in 512B sectors
    size: int         # in 512B sectors
    op: OpType
    major: int
    minor: int
    md5: str          # hex digest of the 4KB content

    @property
    def lpn(self) -> int:
        """4KB logical page number the first sector falls into."""
        return self.lba // SECTORS_PER_PAGE


def parse_fiu_line(line: str, lineno: int = 0) -> RawFIURecord:
    """Parse one trace line; raises :class:`FIUFormatError` with context."""
    fields = line.split()
    if len(fields) != 9:
        raise FIUFormatError(
            f"line {lineno}: expected 9 fields, got {len(fields)}"
        )
    try:
        op = OpType(fields[5].upper())
    except ValueError:
        raise FIUFormatError(
            f"line {lineno}: op must be W or R, got {fields[5]!r}"
        ) from None
    try:
        return RawFIURecord(
            timestamp=float(fields[0]),
            pid=int(fields[1]),
            process=fields[2],
            lba=int(fields[3]),
            size=int(fields[4]),
            op=op,
            major=int(fields[6]),
            minor=int(fields[7]),
            md5=fields[8].lower(),
        )
    except ValueError as exc:
        raise FIUFormatError(f"line {lineno}: {exc}") from None


def read_fiu(stream: TextIO) -> Iterator[RawFIURecord]:
    """Yield raw records, skipping blank and ``#`` comment lines."""
    for lineno, line in enumerate(stream, start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        yield parse_fiu_line(stripped, lineno)


def iter_fiu_requests(
    stream: TextIO, timestamp_unit_us: float = 1.0
) -> Iterator[IORequest]:
    """Convert an FIU trace to page-granular simulator requests.

    MD5 digests are interned to dense integer value ids in first-seen
    order.  Requests larger than one page are split into per-page requests
    sharing the digest (the FIU traces themselves are 4KB-per-line, so the
    split is a robustness measure for other sources).
    """
    intern: Dict[str, int] = {}
    for record in read_fiu(stream):
        value_id = intern.setdefault(record.md5, len(intern))
        pages = max(1, -(-record.size // SECTORS_PER_PAGE))
        for offset in range(pages):
            yield IORequest(
                arrival_us=record.timestamp * timestamp_unit_us,
                op=record.op,
                lpn=record.lpn + offset,
                value_id=value_id,
            )


def format_fiu_line(request: IORequest, pid: int = 0, process: str = "repro") -> str:
    """Render one request as a valid FIU trace line.

    The synthetic value id is rendered as a 32-hex-digit pseudo-MD5 (its
    fingerprint digest), which round-trips through
    :func:`iter_fiu_requests` to the same value identity.
    """
    md5 = request.fingerprint.digest.hex()
    return (
        f"{request.arrival_us:.3f} {pid} {process} "
        f"{request.lpn * SECTORS_PER_PAGE} {SECTORS_PER_PAGE} "
        f"{request.op.value} 0 0 {md5}"
    )


def write_fiu(stream: TextIO, requests: Iterable[IORequest]) -> int:
    """Write a trace file; returns the number of lines written."""
    count = 0
    for request in requests:
        stream.write(format_fiu_line(request))
        stream.write("\n")
        count += 1
    return count

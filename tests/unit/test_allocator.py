"""Unit tests for page allocation (striping, hot/cold separation)."""

import pytest

from repro.flash.array import FlashArray
from repro.ftl.allocator import OutOfSpaceError, PageAllocator


@pytest.fixture
def array(tiny_config):
    return FlashArray(tiny_config)


@pytest.fixture
def allocator(array):
    return PageAllocator(array)


class TestStriping:
    def test_round_robin_over_planes(self, allocator, array):
        planes = [
            array.geometry.split_ppn(allocator.allocate())[0]
            for _ in range(array.geometry.total_planes * 2)
        ]
        first = planes[: array.geometry.total_planes]
        assert first == list(range(array.geometry.total_planes))
        assert planes[array.geometry.total_planes:] == first

    def test_plane_of_next_write_peeks(self, allocator, array):
        peeked = allocator.plane_of_next_write()
        ppn = allocator.allocate()
        assert array.geometry.split_ppn(ppn)[0] == peeked

    def test_sequential_pages_within_active_block(self, allocator, array):
        first = allocator.allocate_in_plane(0)
        second = allocator.allocate_in_plane(0)
        assert second == first + 1


class TestBlockLifecycle:
    def test_opens_new_block_when_active_full(self, allocator, array, tiny_config):
        ppb = tiny_config.pages_per_block
        ppns = [allocator.allocate_in_plane(0) for _ in range(ppb + 1)]
        blocks = {array.geometry.block_of_ppn(p) for p in ppns}
        assert len(blocks) == 2

    def test_free_block_count_decreases(self, allocator, tiny_config):
        before = allocator.free_block_count(0)
        allocator.allocate_in_plane(0)
        assert allocator.free_block_count(0) == before - 1

    def test_release_block_returns_to_pool(self, allocator, array, tiny_config):
        ppb = tiny_config.pages_per_block
        for _ in range(ppb):
            array.invalidate(allocator.allocate_in_plane(0))
        block = array.geometry.block_of_ppn(0)
        array.erase(block)
        before = allocator.free_block_count(0)
        allocator.release_block(block)
        assert allocator.free_block_count(0) == before + 1

    def test_out_of_space(self, allocator, tiny_config):
        total_in_plane = tiny_config.blocks_per_plane * tiny_config.pages_per_block
        for _ in range(total_in_plane):
            allocator.allocate_in_plane(0)
        with pytest.raises(OutOfSpaceError):
            allocator.allocate_in_plane(0)


class TestHotColdSeparation:
    def test_gc_writes_use_separate_block(self, allocator, array):
        host = allocator.allocate_in_plane(0)
        gc = allocator.allocate_in_plane(0, for_gc=True)
        assert array.geometry.block_of_ppn(host) != array.geometry.block_of_ppn(gc)

    def test_both_actives_counted_in_writable_pages(self, allocator, array, tiny_config):
        total = tiny_config.blocks_per_plane * tiny_config.pages_per_block
        assert allocator.writable_pages(0) == total
        allocator.allocate_in_plane(0)
        allocator.allocate_in_plane(0, for_gc=True)
        assert allocator.writable_pages(0) == total - 2

    def test_is_active_covers_both(self, allocator, array):
        host = allocator.allocate_in_plane(0)
        gc = allocator.allocate_in_plane(0, for_gc=True)
        assert allocator.is_active(array.geometry.block_of_ppn(host))
        assert allocator.is_active(array.geometry.block_of_ppn(gc))

    def test_invariants(self, allocator):
        for _ in range(5):
            allocator.allocate()
        allocator.allocate_in_plane(0, for_gc=True)
        allocator.check_invariants()

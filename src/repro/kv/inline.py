"""Small-value inlining: pack sub-page values into shared flash pages.

KV values are usually far smaller than the 4KB flash page; writing one
page per value would waste most of the device.  The packer batches
sub-page values into an *open* RAM buffer and seals it to one flash page
when full, like a log-structured KV device (and the memtable→SST path of
LSM stores).

Revival-awareness is the interesting part.  A sealed pack page's content
identity (its ``value_id``) is a deterministic fold over the ordered
``(key, content_id, size)`` membership of the page.  Overwrites and
deletes kill member slots; when a sealed page's live fraction drops
below the repack threshold, the packer *repacks*: reads the page, re-adds
the surviving slots (identity preserved, original order) to the open
buffer and TRIMs the old page.  Two consequences for the dead-value
pool:

* the TRIMed pack page is revivable garbage — if the identical member
  set seals again later (a common pattern under cyclic overwrites), the
  write short-circuits against the dead page;
* survivors keep their identity across repacks, so recurring co-location
  reproduces recurring page contents instead of fresh ones.

The packer is pure bookkeeping: it never touches the FTL.  It emits
symbolic flash actions (``("write", lpn, value_id)``, ``("read", lpn)``,
``("trim", lpn)``) that :class:`~repro.kv.store.KVStore` turns into
:class:`~repro.sim.request.IORequest`\\ s, and it allocates/releases LPNs
through callbacks the store provides.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from .requests import Key, mix64

__all__ = ["InlineSlot", "InlinePacker", "pack_value_id", "FlashAction"]

#: ("write", lpn, value_id) | ("read", lpn, 0) | ("trim", lpn, 0)
FlashAction = Tuple[str, int, int]

_PACK_SEED = 0x9E3779B97F4A7C15


@dataclass(slots=True)
class InlineSlot:
    """One packed value's identity: what it is, not where it lives."""

    key_int: int
    content_id: int
    size: int


def pack_value_id(slots: List[InlineSlot]) -> int:
    """Content identity of a pack page: an order-sensitive deterministic
    fold over its member slots.  Identical ordered membership — including
    after a repack round-trip — yields the identical page content, which
    is exactly what value-locality revival needs to observe."""
    acc = _PACK_SEED
    for slot in slots:
        acc = mix64(
            acc
            ^ mix64(slot.key_int)
            ^ mix64(slot.content_id * 2 + 1)
            ^ slot.size
        )
    return acc


@dataclass(slots=True)
class _SealedPage:
    lpn: int
    members: int                       # slot count at seal time
    live: "Dict[Key, InlineSlot]"      # insertion-ordered survivors


@dataclass(slots=True)
class PackerStats:
    seals: int = 0
    repacks: int = 0
    repack_reads: int = 0
    trims: int = 0
    buffered_bytes_peak: int = 0


class InlinePacker:
    """Open-buffer + sealed-page bookkeeping for sub-page values."""

    def __init__(
        self,
        page_bytes: int,
        alloc: Callable[[], int],
        release: Callable[[int], None],
        repack_threshold: float = 0.5,
    ):
        if page_bytes <= 0:
            raise ValueError("page_bytes must be positive")
        if not 0.0 <= repack_threshold < 1.0:
            raise ValueError("repack_threshold must be in [0, 1)")
        self.page_bytes = page_bytes
        self.repack_threshold = repack_threshold
        self._alloc = alloc
        self._release = release
        #: open-buffer membership in insertion order.
        self._open: "Dict[Key, InlineSlot]" = {}
        self._open_bytes = 0
        self._sealed: Dict[int, _SealedPage] = {}
        #: key -> sealed page LPN; keys in the open buffer are absent here.
        self._home: Dict[Key, int] = {}
        self.stats = PackerStats()

    # -- queries -------------------------------------------------------

    def __contains__(self, key: Key) -> bool:
        return key in self._open or key in self._home

    def lpn_of(self, key: Key) -> Optional[int]:
        """Sealed-page LPN holding ``key``, or ``None`` while buffered."""
        return self._home.get(key)

    @property
    def buffered_count(self) -> int:
        return len(self._open)

    @property
    def live_count(self) -> int:
        """Live packed values, buffered or sealed."""
        return len(self._open) + len(self._home)

    @property
    def sealed_pages(self) -> int:
        return len(self._sealed)

    # -- mutations -----------------------------------------------------

    def add(self, key: Key, slot: InlineSlot) -> List[FlashAction]:
        """Admit one sub-page value; the caller must have killed any
        previous version of ``key`` first."""
        if slot.size <= 0 or slot.size > self.page_bytes:
            raise ValueError(
                f"inline value size {slot.size} outside (0, "
                f"{self.page_bytes}]"
            )
        if key in self:
            raise ValueError(f"key {key!r} already packed; kill it first")
        actions: List[FlashAction] = []
        if self._open_bytes + slot.size > self.page_bytes:
            actions.extend(self._seal())
        self._open[key] = slot
        self._open_bytes += slot.size
        if self._open_bytes > self.stats.buffered_bytes_peak:
            self.stats.buffered_bytes_peak = self._open_bytes
        return actions

    def kill(self, key: Key) -> List[FlashAction]:
        """Drop ``key``'s value; may trigger a TRIM or a repack."""
        if key in self._open:
            self._open_bytes -= self._open.pop(key).size
            return []
        lpn = self._home.pop(key)
        page = self._sealed[lpn]
        del page.live[key]
        if not page.live:
            del self._sealed[lpn]
            self._release(lpn)
            self.stats.trims += 1
            return [("trim", lpn, 0)]
        if len(page.live) / page.members < self.repack_threshold:
            return self._repack(page)
        return []

    def flush(self) -> List[FlashAction]:
        """Seal a non-empty open buffer (end of a load phase)."""
        if not self._open:
            return []
        return self._seal()

    # -- internals -----------------------------------------------------

    def _seal(self) -> List[FlashAction]:
        lpn = self._alloc()
        slots = list(self._open.values())
        self._sealed[lpn] = _SealedPage(
            lpn=lpn, members=len(slots), live=self._open
        )
        for key in self._open:
            self._home[key] = lpn
        self._open = {}
        self._open_bytes = 0
        self.stats.seals += 1
        return [("write", lpn, pack_value_id(slots))]

    def _repack(self, page: _SealedPage) -> List[FlashAction]:
        """Read a sparse page, re-buffer its survivors (identity and
        relative order preserved), discard the old page."""
        actions: List[FlashAction] = [("read", page.lpn, 0)]
        self.stats.repacks += 1
        self.stats.repack_reads += 1
        survivors = list(page.live.items())
        del self._sealed[page.lpn]
        for key, _ in survivors:
            del self._home[key]
        for key, slot in survivors:
            if self._open_bytes + slot.size > self.page_bytes:
                actions.extend(self._seal())
            self._open[key] = slot
            self._open_bytes += slot.size
        self._release(page.lpn)
        self.stats.trims += 1
        actions.append(("trim", page.lpn, 0))
        return actions

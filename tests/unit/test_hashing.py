"""Unit tests for content fingerprints."""

import pytest

from repro.core.hashing import (
    DIGEST_SIZE,
    Fingerprint,
    fingerprint_of_bytes,
    fingerprint_of_value,
)


class TestFingerprintConstruction:
    def test_int_key(self):
        fp = Fingerprint(42)
        assert fp.key == 42

    def test_negative_int_rejected(self):
        with pytest.raises(ValueError):
            Fingerprint(-1)

    def test_bytes_key_must_be_digest_sized(self):
        with pytest.raises(ValueError):
            Fingerprint(b"short")

    def test_bytes_key_accepted(self):
        digest = bytes(range(DIGEST_SIZE))
        assert Fingerprint(digest).key == digest

    def test_other_types_rejected(self):
        with pytest.raises(TypeError):
            Fingerprint("not-a-key")  # type: ignore[arg-type]


class TestFingerprintEquality:
    def test_equal_ids_equal_fingerprints(self):
        assert fingerprint_of_value(7) == fingerprint_of_value(7)

    def test_distinct_ids_differ(self):
        assert fingerprint_of_value(7) != fingerprint_of_value(8)

    def test_hashable_and_usable_as_dict_key(self):
        d = {fingerprint_of_value(1): "a"}
        assert d[fingerprint_of_value(1)] == "a"

    def test_not_equal_to_other_types(self):
        assert fingerprint_of_value(1) != 1

    def test_int_and_equivalent_digest_do_not_collide_accidentally(self):
        fp_int = fingerprint_of_value(5)
        fp_bytes = Fingerprint((5).to_bytes(DIGEST_SIZE, "big"))
        # Same canonical digest, but identity is by key.
        assert fp_int.digest == fp_bytes.digest


class TestDigests:
    def test_int_digest_is_16_bytes(self):
        assert len(fingerprint_of_value(123456).digest) == DIGEST_SIZE

    def test_bytes_digest_roundtrip(self):
        fp = fingerprint_of_bytes(b"x" * 4096)
        assert len(fp.digest) == DIGEST_SIZE

    def test_same_content_same_digest(self):
        assert fingerprint_of_bytes(b"a" * 100) == fingerprint_of_bytes(b"a" * 100)

    def test_different_content_different_digest(self):
        assert fingerprint_of_bytes(b"a") != fingerprint_of_bytes(b"b")

    def test_repr_mentions_value_id(self):
        assert "42" in repr(fingerprint_of_value(42))

    def test_digest_is_memoised_for_int_keys(self):
        fp = Fingerprint(77)
        assert fp.digest is fp.digest  # materialised once, then cached

    def test_digest_matches_to_bytes(self):
        assert Fingerprint(77).digest == (77).to_bytes(DIGEST_SIZE, "big")


class TestInterning:
    def test_hot_ids_share_one_instance(self):
        assert fingerprint_of_value(12345) is fingerprint_of_value(12345)

    def test_direct_construction_not_interned(self):
        # The constructor stays a plain allocation; only the factory interns.
        assert Fingerprint(9) == fingerprint_of_value(9)
        assert Fingerprint(9) is not Fingerprint(9)

    def test_negative_id_still_rejected_through_factory(self):
        with pytest.raises(ValueError):
            fingerprint_of_value(-3)

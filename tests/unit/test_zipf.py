"""Unit tests for Zipf sampling."""

import random
from collections import Counter

import pytest

from repro.traces.zipf import ZipfSampler, top_fraction_share, zipf_rank


class TestZipfRank:
    def test_bounds(self):
        rng = random.Random(1)
        for n in (1, 2, 10, 1000):
            for _ in range(200):
                assert 1 <= zipf_rank(rng, n, 1.1) <= n

    def test_n_one_always_one(self):
        rng = random.Random(1)
        assert all(zipf_rank(rng, 1, 1.0) == 1 for _ in range(10))

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            zipf_rank(random.Random(1), 0, 1.0)

    def test_skew_concentrates_on_low_ranks(self):
        rng = random.Random(42)
        draws = [zipf_rank(rng, 1000, 1.2) for _ in range(20_000)]
        counts = Counter(draws)
        top10 = sum(counts[r] for r in range(1, 11))
        assert top10 / len(draws) > 0.4

    def test_s1_log_branch(self):
        rng = random.Random(42)
        draws = [zipf_rank(rng, 1000, 1.0) for _ in range(20_000)]
        counts = Counter(draws)
        assert counts[1] > counts.get(500, 0)

    def test_higher_s_more_skew(self):
        rng1, rng2 = random.Random(7), random.Random(7)
        mild = [zipf_rank(rng1, 1000, 0.8) for _ in range(20_000)]
        steep = [zipf_rank(rng2, 1000, 1.5) for _ in range(20_000)]
        assert Counter(steep)[1] > Counter(mild)[1]


class TestZipfSampler:
    def test_probabilities_sum_to_one(self):
        sampler = ZipfSampler(100, 1.0)
        total = sum(sampler.probability(i) for i in range(100))
        assert total == pytest.approx(1.0)

    def test_rank_zero_most_probable(self):
        sampler = ZipfSampler(100, 1.0)
        assert sampler.probability(0) > sampler.probability(1)

    def test_sample_in_range(self):
        sampler = ZipfSampler(50, 1.2)
        rng = random.Random(3)
        assert all(0 <= sampler.sample(rng) < 50 for _ in range(1000))

    def test_s_zero_is_uniform(self):
        sampler = ZipfSampler(10, 0.0)
        assert sampler.probability(0) == pytest.approx(0.1)
        assert sampler.probability(9) == pytest.approx(0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            ZipfSampler(0, 1.0)
        with pytest.raises(ValueError):
            ZipfSampler(10, -0.1)
        with pytest.raises(IndexError):
            ZipfSampler(10, 1.0).probability(10)

    def test_empirical_matches_theoretical(self):
        sampler = ZipfSampler(20, 1.0)
        rng = random.Random(11)
        counts = Counter(sampler.sample(rng) for _ in range(50_000))
        assert counts[0] / 50_000 == pytest.approx(sampler.probability(0), rel=0.1)


class TestTopFractionShare:
    def test_uniform_counts(self):
        assert top_fraction_share([10] * 10, 0.2) == pytest.approx(0.2)

    def test_all_mass_on_one(self):
        counts = [100] + [0] * 9
        assert top_fraction_share(counts, 0.1) == 1.0

    def test_empty(self):
        assert top_fraction_share([], 0.2) == 0.0

    def test_zero_total(self):
        assert top_fraction_share([0, 0, 0], 0.5) == 0.0

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            top_fraction_share([1], 0.0)
        with pytest.raises(ValueError):
            top_fraction_share([1], 1.5)

"""Multi-page host requests: splitting and joint completion.

The paper's traces are strictly 4KB per request, so the core simulator
works page-at-a-time.  Real hosts issue larger I/Os; a 64KB write is
striped over 16 pages across chips and *completes when its last page
does*.  :class:`HostAdapter` provides that layer: it splits a
:class:`HostRequest` into page operations, feeds them through the device,
and reports the host-visible latency (max page finish − arrival).

Useful for replaying block traces with mixed request sizes and for
studying how striping hides (or fails to hide) the paper's GC stalls on
large requests — one slow page stalls the whole I/O.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from .metrics import LatencyStats
from .request import IORequest, OpType
from .ssd import SimulatedSSD

__all__ = ["HostRequest", "HostCompletion", "HostAdapter"]


@dataclass(frozen=True)
class HostRequest:
    """One host I/O spanning ``len(value_ids)`` consecutive pages.

    For reads, ``value_ids`` may be zeros — the device ignores them.
    """

    arrival_us: float
    op: OpType
    lpn: int
    value_ids: Tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.value_ids:
            raise ValueError("a host request spans at least one page")

    @property
    def size_pages(self) -> int:
        return len(self.value_ids)

    def pages(self) -> List[IORequest]:
        """The page-granular operations this request decomposes into."""
        return [
            IORequest(
                arrival_us=self.arrival_us,
                op=self.op,
                lpn=self.lpn + offset,
                value_id=value_id,
            )
            for offset, value_id in enumerate(self.value_ids)
        ]


@dataclass(frozen=True)
class HostCompletion:
    """Joint completion of a multi-page host request."""

    request: HostRequest
    finish_us: float          # when the *last* page finished
    first_page_finish_us: float

    @property
    def latency_us(self) -> float:
        return self.finish_us - self.request.arrival_us

    @property
    def stripe_skew_us(self) -> float:
        """Gap between the fastest and slowest page — how unevenly the
        stripe was serviced (GC on one chip shows up here)."""
        return self.finish_us - self.first_page_finish_us


class HostAdapter:
    """Feeds multi-page host requests through a page-granular device."""

    def __init__(self, device: SimulatedSSD):
        self.device = device
        self.host_latencies = LatencyStats()

    def submit(self, request: HostRequest) -> HostCompletion:
        finishes = [
            self.device.submit(page).finish_us for page in request.pages()
        ]
        completion = HostCompletion(
            request=request,
            finish_us=max(finishes),
            first_page_finish_us=min(finishes),
        )
        self.host_latencies.record(completion.latency_us)
        return completion

    def run(self, requests: Sequence[HostRequest]) -> LatencyStats:
        for request in requests:
            self.submit(request)
        return self.host_latencies

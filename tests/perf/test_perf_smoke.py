"""perf-smoke marker: a tiny end-to-end pass through the parallel engine.

Selected with ``-m perf_smoke`` (``make perf-smoke``); also runs as part
of the plain tier-1 suite.  Kept tiny — two workloads, three systems,
``--jobs 2`` — so it exercises the process-pool round trip, the caches
and the bench harness in seconds.
"""

import json

import pytest

from repro.perf.bench import run_benchmark, write_benchmark
from repro.perf.parallel import pool_chunksize, resolve_jobs, run_specs
from repro.perf.spec import RunSpec, result_digest

SCALE = 0.004
SPECS = [
    RunSpec(w, s, scale=SCALE)
    for w in ("web", "trans")
    for s in ("baseline", "mq-dvp", "dedup")
]


@pytest.mark.perf_smoke
class TestPerfSmoke:
    def test_tiny_matrix_parallel_round_trip(self):
        results = run_specs(SPECS, jobs=2)
        assert len(results) == len(SPECS)
        for spec, result in zip(SPECS, results):
            assert result.system == spec.system
            assert result.workload == spec.workload
            assert result.reads.count + result.writes.count > 0

    def test_parallel_identical_to_serial(self):
        serial = [result_digest(r) for r in run_specs(SPECS, jobs=1)]
        parallel = [result_digest(r) for r in run_specs(SPECS, jobs=2)]
        assert serial == parallel

    def test_bench_report_shape(self):
        report = run_benchmark(
            workloads=("web",),
            systems=("baseline", "mq-dvp"),
            scale=SCALE,
            jobs=2,
        )
        assert report["schema"] == "repro.perf.bench_matrix/v1"
        assert report["identical_results"] is True
        assert len(report["cells"]) == 2
        for cell in report["cells"]:
            assert cell["serial_seconds"] >= 0
            assert cell["requests"] > 0
            assert len(cell["digest"]) == 64
        assert report["serial_seconds"] > 0
        assert report["parallel_seconds"] > 0

    def test_write_benchmark_emits_json(self, tmp_path):
        path = tmp_path / "BENCH_matrix.json"
        write_benchmark(
            str(path),
            workloads=("web",),
            systems=("baseline",),
            scale=SCALE,
            jobs=2,
        )
        report = json.loads(path.read_text())
        assert report["schema"] == "repro.perf.bench_matrix/v1"
        assert report["identical_results"] is True


class TestResolveJobs:
    def test_explicit(self):
        assert resolve_jobs(3) == 3

    def test_all_cores(self):
        assert resolve_jobs(0) >= 1
        assert resolve_jobs(None) >= 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_jobs(-1)

    def test_capped_at_task_count(self):
        # A fleet of 4 long-lived shards can never keep 16 workers busy.
        assert resolve_jobs(16, tasks=4) == 4
        assert resolve_jobs(2, tasks=4) == 2
        assert resolve_jobs(0, tasks=1) == 1

    def test_task_cap_ignored_when_not_positive(self):
        assert resolve_jobs(3, tasks=0) == 3
        assert resolve_jobs(3, tasks=None) == 3


class TestPoolChunksize:
    def test_no_idle_workers_on_uneven_split(self):
        # The old ceil division gave 6 tasks / 4 workers chunksize 2 —
        # three chunks, one worker idle for the whole run.  Floor keeps
        # everyone busy.
        assert pool_chunksize(6, 4) == 1

    def test_exact_division_amortises_dispatch(self):
        assert pool_chunksize(8, 4) == 2
        assert pool_chunksize(4, 4) == 1

    def test_never_below_one(self):
        assert pool_chunksize(2, 4) == 1
        assert pool_chunksize(0, 4) == 1
        assert pool_chunksize(5, 0) == 1

    def test_long_lived_shard_shape(self):
        # One chunk per worker when shards == workers: each worker owns
        # exactly one long-lived shard.
        for shards in (2, 4, 8):
            assert pool_chunksize(shards, shards) == 1

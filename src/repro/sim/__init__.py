"""Trace-driven SSD simulator (the paper's modified-SSDSim substitute)."""

from .background import BackgroundGCSSD
from .des_ssd import ChipOp, ChipServer, EventDrivenSSD
from .engine import EventEngine, EventHandle
from .host import HostAdapter, HostCompletion, HostRequest
from .logging import CompletionLog, LoggedRequest
from .metrics import LatencyStats, RunResult, percent_improvement
from .request import CompletedRequest, IORequest, OpType
from .scheduler import HostQueue
from .ssd import SimulatedSSD, replay

__all__ = [
    "IORequest",
    "OpType",
    "CompletedRequest",
    "LatencyStats",
    "RunResult",
    "percent_improvement",
    "HostQueue",
    "CompletionLog",
    "LoggedRequest",
    "SimulatedSSD",
    "BackgroundGCSSD",
    "EventEngine",
    "EventHandle",
    "EventDrivenSSD",
    "ChipServer",
    "ChipOp",
    "HostAdapter",
    "HostRequest",
    "HostCompletion",
    "replay",
]

"""``flow.*`` — whole-program (interprocedural) rules.

These four rules are thin renderers over one shared analysis
(:func:`repro.lint.flow.flow_report`, memoised per program): the
per-file facts, symbol table, call graph and passes live in
:mod:`repro.lint.flow`; this module only turns findings into
:class:`~repro.lint.violations.Violation` records so they ride the
existing suppression/baseline/report machinery.

* ``flow.taint-digest`` — a nondeterminism source (wall clock, global
  ``random``, ``os.environ``, ``id()``/``hash()``, unordered set
  iteration) flows through any number of call hops into a digest /
  fingerprint / ``repro.api`` record sink.  Anchored at the *source*
  (that is the line to fix), with the full source→sink call chain in
  the message.
* ``flow.hot-effect`` — a function reachable from the per-op hot set
  (``Device.step``, FTL read/write/trim, GC collection, MQ access)
  performs file/socket I/O, ``logging``, lock acquisition, ``print``,
  or unbounded per-op allocation.  Anchored at the effect.
* ``flow.blocking-async`` — a coroutine in ``repro.serve`` transitively
  calls a blocking primitive (``time.sleep``, sync file I/O,
  ``subprocess``).  Anchored at the blocking call.
* ``flow.spec-pickle`` — a dataclass in the transitive reference
  closure of ``RunSpec``/``KVSpec``/``ShardSpec`` has a field the
  process-pool engine cannot ship by value (closes the transitive gap
  ``frozen.spec-picklable`` leaves open).  Anchored at the field.
"""

from __future__ import annotations

from typing import Iterator

from ..engine import Program
from ..flow import flow_report
from ..registry import Rule, register_rule
from ..violations import Violation

__all__ = [
    "BlockingAsyncRule",
    "HotEffectRule",
    "SpecPickleRule",
    "TaintDigestRule",
]


def _context(report, fn_fq: str) -> str:
    """Module-relative qualname of a fq function (baseline key)."""
    module = report.table.function_module.get(fn_fq, "")
    if module and fn_fq.startswith(module + "."):
        return fn_fq[len(module) + 1:]
    return fn_fq


_EFFECT_LABEL = {
    "io": "file I/O",
    "socket": "socket I/O",
    "logging": "a logging call",
    "lock": "lock acquisition",
    "print": "print()",
    "alloc": "per-op container allocation",
    "sleep": "a blocking sleep",
    "subprocess": "a subprocess",
}


@register_rule
class TaintDigestRule(Rule):
    """Nondeterminism flowing into a digest/record sink."""

    code = "flow.taint-digest"
    summary = "nondeterminism source reaching a digest/fingerprint sink"

    def check(self, program: Program) -> Iterator[Violation]:
        report = flow_report(program)
        for finding in report.taint:
            path, _line = report.location_of(finding.source_fn)
            sink_path, _ = report.location_of(finding.sink_fn)
            yield Violation(
                path=path,
                line=finding.source.line,
                col=finding.source.col,
                code=self.code,
                message=(
                    f"{finding.source.kind} source "
                    f"{finding.source.name} reaches digest sink "
                    f"{finding.sink_name}() at "
                    f"{sink_path}:{finding.sink_line}; flow: "
                    f"{report.render_chain(finding.chain)}"
                ),
                context=_context(report, finding.source_fn),
            )


@register_rule
class HotEffectRule(Rule):
    """Disallowed effect on the per-op hot path."""

    code = "flow.hot-effect"
    summary = "I/O, logging, locking or allocation reachable per-op"

    def check(self, program: Program) -> Iterator[Violation]:
        report = flow_report(program)
        for finding in report.hot_effects:
            path, _line = report.location_of(finding.fn)
            label = _EFFECT_LABEL.get(
                finding.effect.kind, finding.effect.kind
            )
            yield Violation(
                path=path,
                line=finding.effect.line,
                col=finding.effect.col,
                code=self.code,
                message=(
                    f"{label} ({finding.effect.name}) runs on the "
                    f"per-op hot path, reachable from {finding.root}; "
                    f"reach: {report.render_chain(finding.path)}"
                ),
                context=_context(report, finding.fn),
            )


@register_rule
class BlockingAsyncRule(Rule):
    """Blocking primitive reachable from a serve coroutine."""

    code = "flow.blocking-async"
    summary = "async def in repro.serve reaching a blocking primitive"

    def check(self, program: Program) -> Iterator[Violation]:
        report = flow_report(program)
        for finding in report.blocking:
            path, _line = report.location_of(finding.fn)
            label = _EFFECT_LABEL.get(
                finding.effect.kind, finding.effect.kind
            )
            yield Violation(
                path=path,
                line=finding.effect.line,
                col=finding.effect.col,
                code=self.code,
                message=(
                    f"{label} ({finding.effect.name}) blocks the event "
                    f"loop, reachable from coroutine "
                    f"{finding.coroutine}; path: "
                    f"{report.render_chain(finding.path)}; hand it to "
                    "run_in_executor or use the asyncio equivalent"
                ),
                context=_context(report, finding.fn),
            )


@register_rule
class SpecPickleRule(Rule):
    """Transitively unpicklable field in the spec closure."""

    code = "flow.spec-pickle"
    summary = "spec-reference closure field not statically picklable"

    def check(self, program: Program) -> Iterator[Violation]:
        report = flow_report(program)
        for finding in report.spec_pickle:
            entry = report.table.classes.get(finding.cls_fq)
            facts = (
                report.table.modules.get(entry[0])
                if entry is not None else None
            )
            path = facts.path if facts is not None else "<unknown>"
            cls_name = finding.cls_fq.rsplit(".", 1)[-1]
            yield Violation(
                path=path,
                line=finding.line,
                col=1,
                code=self.code,
                message=(
                    f"{cls_name}.{finding.field} is annotated with "
                    f"{', '.join(finding.bad_parts)}, which the "
                    "process-pool engine cannot ship by value; this "
                    "class is pickled transitively via "
                    f"{' -> '.join(finding.chain)}"
                ),
                context=cls_name,
            )

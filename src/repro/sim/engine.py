"""A minimal discrete-event simulation engine.

The timeline model in :mod:`repro.sim.ssd` prices operations analytically
(FIFO resources, start = max(arrival, busy_until)).  That is fast and
exact for FIFO service, but cannot express *scheduling decisions* — e.g. a
chip that lets queued reads overtake queued GC writes.  This engine is the
general substrate: a classic event loop (heap of timestamped callbacks,
deterministic FIFO tie-breaking) on which :mod:`repro.sim.des_ssd` builds
an event-driven device with pluggable per-chip schedulers.

The engine is intentionally tiny and fully deterministic: two events at
the same timestamp fire in scheduling order.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, List, Optional

__all__ = ["EventHandle", "EventEngine"]


@dataclass(order=True, slots=True)
class _ScheduledEvent:
    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


@dataclass(frozen=True)
class EventHandle:
    """Opaque handle returned by :meth:`EventEngine.schedule`."""

    _event: _ScheduledEvent

    @property
    def time(self) -> float:
        return self._event.time

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled


#: Cancelled events are lazily dropped when popped; once more than this
#: many (and more than half the heap) are dead, the heap is compacted so
#: cancel-heavy workloads don't leak memory or slow the heap operations.
_PURGE_MIN_CANCELLED = 64


class EventEngine:
    """Deterministic event loop."""

    def __init__(self) -> None:
        self._heap: List[_ScheduledEvent] = []
        self._seq = 0
        self._now = 0.0
        self.events_fired = 0
        self.events_cancelled = 0
        self._pending = 0        # live (not-fired, not-cancelled) events
        self._dead_in_heap = 0   # cancelled events still in the heap
        #: Optional :class:`~repro.obs.Tracer`; when set, each event
        #: callback runs inside a ``des.event`` span.
        self.tracer = None

    @property
    def now(self) -> float:
        """Current simulation time (µs, by this package's convention)."""
        return self._now

    def schedule(
        self, time: float, callback: Callable[[], None]
    ) -> EventHandle:
        """Schedule ``callback`` to fire at ``time`` (>= now)."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule at {time} before now ({self._now})"
            )
        event = _ScheduledEvent(time=time, seq=self._seq, callback=callback)
        self._seq += 1
        heapq.heappush(self._heap, event)
        self._pending += 1
        return EventHandle(event)

    def schedule_in(
        self, delay: float, callback: Callable[[], None]
    ) -> EventHandle:
        """Schedule ``callback`` ``delay`` time units from now."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        return self.schedule(self._now + delay, callback)

    def cancel(self, handle: EventHandle) -> None:
        """Cancel a pending event (firing a cancelled event is a no-op)."""
        event = handle._event
        if event.cancelled:
            return
        event.cancelled = True
        self._pending -= 1
        self._dead_in_heap += 1
        self.events_cancelled += 1
        self._maybe_purge()

    def pending(self) -> int:
        """Number of not-yet-fired, not-cancelled events (O(1))."""
        return self._pending

    def _maybe_purge(self) -> None:
        """Rebuild the heap without cancelled events once they dominate."""
        if (
            self._dead_in_heap > _PURGE_MIN_CANCELLED
            and self._dead_in_heap * 2 > len(self._heap)
        ):
            self._heap = [e for e in self._heap if not e.cancelled]
            heapq.heapify(self._heap)
            self._dead_in_heap = 0

    def step(self) -> bool:
        """Fire the next event; returns False when the heap is empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                self._dead_in_heap -= 1
                continue
            self._now = event.time
            self.events_fired += 1
            self._pending -= 1
            if self.tracer is not None:
                with self.tracer.span("des.event"):
                    event.callback()
            else:
                event.callback()
            return True
        return False

    def run(self, until: Optional[float] = None) -> None:
        """Fire events until the heap empties (or past ``until``).

        With ``until``, events strictly after it remain pending and the
        clock advances to exactly ``until``.
        """
        while self._heap:
            head = self._heap[0]
            if head.cancelled:
                heapq.heappop(self._heap)
                self._dead_in_heap -= 1
                continue
            if until is not None and head.time > until:
                break
            self.step()
        if until is not None and until > self._now:
            self._now = until

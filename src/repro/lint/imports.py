"""Static import-graph construction and cycle detection.

Two views of every module's imports are collected in one AST pass:

``top_level``
    Imports executed at module import time (module-body statements,
    including those nested in module-level ``if``/``try`` blocks).
    These are the edges that can create *runtime* import cycles, so
    cycle detection runs on exactly this set.
``all_imports``
    The above plus lazy (function/method-body) imports.  Layering rules
    use this view: a function-level ``from repro.experiments import x``
    inside the simulator is still an architecture violation even though
    it dodges the import-time cycle.

Imports guarded by ``if TYPE_CHECKING:`` are excluded from both views —
they never execute, and the layering rules should not force runtime
workarounds for annotations.

Relative imports are resolved against the importing module's dotted
name, so the graph is correct for any package root the engine maps.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

__all__ = [
    "ImportEdge",
    "ImportGraph",
    "ModuleImports",
    "build_import_graph",
    "find_cycles",
]


@dataclass(frozen=True)
class ImportEdge:
    """One import statement: where it is and what it pulls in."""

    target: str          # absolute dotted module name
    line: int
    col: int
    lazy: bool           # inside a function/method body


@dataclass
class ModuleImports:
    """All imports of one module, split by execution time."""

    module: str
    top_level: List[ImportEdge] = field(default_factory=list)
    lazy: List[ImportEdge] = field(default_factory=list)

    @property
    def all_imports(self) -> List[ImportEdge]:
        return self.top_level + self.lazy


class ImportGraph:
    """The per-module import tables plus derived adjacency."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleImports] = {}

    def add(self, imports: ModuleImports) -> None:
        self.modules[imports.module] = imports

    def edges(
        self, module: str, include_lazy: bool = True
    ) -> List[ImportEdge]:
        info = self.modules.get(module)
        if info is None:
            return []
        return info.all_imports if include_lazy else list(info.top_level)

    def adjacency(self, include_lazy: bool = False) -> Dict[str, Set[str]]:
        """Module → imported modules, restricted to analyzed modules.

        Importing a package resolves to its ``__init__`` module, which
        the analyzed set contains under the bare package name; imports
        of modules outside the analyzed set (stdlib, third-party) are
        dropped — they cannot participate in an internal cycle.
        """
        known = set(self.modules)
        adj: Dict[str, Set[str]] = {m: set() for m in known}
        for module, info in self.modules.items():
            edges = info.all_imports if include_lazy else info.top_level
            for edge in edges:
                target = edge.target
                # ``from repro.ftl.ftl import BaseFTL`` records target
                # repro.ftl.ftl; ``from repro.ftl import ftl`` records
                # repro.ftl — both resolve into the known set directly.
                # A target like repro.ftl.ftl.BaseFTL (attribute tail)
                # is trimmed to its longest known prefix.
                while target and target not in known:
                    if "." not in target:
                        target = ""
                        break
                    target = target.rsplit(".", 1)[0]
                if target and target != module:
                    adj[module].add(target)
        return adj


class _ImportCollector(ast.NodeVisitor):
    """One-pass collector distinguishing top-level / lazy / typing-only."""

    def __init__(self, module: str, is_package: bool) -> None:
        self.module = module
        self.is_package = is_package
        self.result = ModuleImports(module)
        self._function_depth = 0
        self._typing_depth = 0

    # -- scope tracking ------------------------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._function_depth += 1
        self.generic_visit(node)
        self._function_depth -= 1

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._function_depth += 1
        self.generic_visit(node)
        self._function_depth -= 1

    def visit_If(self, node: ast.If) -> None:
        if _is_type_checking_test(node.test):
            self._typing_depth += 1
            for child in node.body:
                self.visit(child)
            self._typing_depth -= 1
            for child in node.orelse:
                self.visit(child)
            return
        self.generic_visit(node)

    # -- imports -------------------------------------------------------

    def _record(self, target: str, node: ast.AST) -> None:
        if self._typing_depth:
            return
        edge = ImportEdge(
            target=target,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            lazy=self._function_depth > 0,
        )
        if edge.lazy:
            self.result.lazy.append(edge)
        else:
            self.result.top_level.append(edge)

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self._record(alias.name, node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        base = _resolve_from_import(
            self.module, self.is_package, node.level, node.module
        )
        if base is None:
            return
        self._record(base, node)
        # ``from pkg import b`` may be importing the *submodule* pkg.b,
        # which creates a real runtime edge to it.  Record each alias as
        # a candidate; adjacency() trims names that turn out to be plain
        # attributes back to their longest known module prefix.
        for alias in node.names:
            if alias.name != "*":
                self._record(f"{base}.{alias.name}", node)

    def collect(self, tree: ast.AST) -> ModuleImports:
        self.visit(tree)
        return self.result


def _is_type_checking_test(test: ast.expr) -> bool:
    """``if TYPE_CHECKING:`` / ``if typing.TYPE_CHECKING:`` (negations
    and boolean combinations are deliberately not recognised — keep the
    guard simple or the import counts)."""
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return False


def _resolve_from_import(
    module: str, is_package: bool, level: int, target: Optional[str]
) -> Optional[str]:
    """Absolute dotted name for a (possibly relative) ``from`` import."""
    if level == 0:
        return target
    parts = module.split(".")
    # level 1 anchors at the containing package: the module itself when
    # this is a package __init__, its parent otherwise.
    anchor = parts if is_package else parts[:-1]
    drop = level - 1
    if drop >= len(anchor):
        return None  # relative import escaping the analyzed root
    if drop:
        anchor = anchor[:-drop]
    base = ".".join(anchor)
    if target:
        return f"{base}.{target}" if base else target
    return base or None


def collect_module_imports(
    module: str, tree: ast.AST, is_package: bool
) -> ModuleImports:
    """The import table of one parsed module."""
    return _ImportCollector(module, is_package).collect(tree)


def build_import_graph(
    modules: Iterable[Tuple[str, ast.AST, bool]]
) -> ImportGraph:
    """Graph over ``(dotted_name, tree, is_package)`` triples."""
    graph = ImportGraph()
    for name, tree, is_package in modules:
        graph.add(collect_module_imports(name, tree, is_package))
    return graph


def find_cycles(adjacency: Dict[str, Set[str]]) -> List[List[str]]:
    """Every elementary import cycle, as module-name paths.

    Iterative DFS (no recursion limit risk on big trees) reporting each
    back edge's stack slice.  Cycles are canonicalised to start at their
    lexicographically smallest module and deduplicated, so the output is
    stable for tests and baselines.
    """
    seen_cycles: Set[Tuple[str, ...]] = set()
    cycles: List[List[str]] = []
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {m: WHITE for m in adjacency}

    for root in sorted(adjacency):
        if color[root] != WHITE:
            continue
        stack: List[Tuple[str, Iterable[str]]] = [
            (root, iter(sorted(adjacency[root])))
        ]
        path = [root]
        color[root] = GRAY
        while stack:
            node, children = stack[-1]
            advanced = False
            for child in children:
                if child not in adjacency:
                    continue
                if color[child] == GRAY:
                    cycle = path[path.index(child):]
                    key = _canonical(cycle)
                    if key not in seen_cycles:
                        seen_cycles.add(key)
                        cycles.append(list(key) + [key[0]])
                elif color[child] == WHITE:
                    color[child] = GRAY
                    path.append(child)
                    stack.append((child, iter(sorted(adjacency[child]))))
                    advanced = True
                    break
            if not advanced:
                stack.pop()
                path.pop()
                color[node] = BLACK
    return cycles


def _canonical(cycle: List[str]) -> Tuple[str, ...]:
    """Rotate so the smallest member leads (stable identity)."""
    pivot = cycle.index(min(cycle))
    return tuple(cycle[pivot:] + cycle[:pivot])

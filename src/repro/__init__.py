"""repro — a reproduction of "Reviving Zombie Pages on SSDs" (IISWC 2018).

The package rebuilds, in pure Python, everything the paper's evaluation
needs: a trace-driven SSD simulator (flash geometry, timing, FTL, GC), the
Multi-Queue dead-value pool that revives garbage pages to short-circuit
redundant writes, the deduplicating and LX-SSD baselines, synthetic
FIU-style workloads, and the Section II characterisation toolkit.

Quickstart::

    from repro import (
        profile_by_name, generate_trace, scaled_config, make_mq_dvp, replay,
    )

    profile = profile_by_name("mail").scaled(0.25)
    trace = generate_trace(profile)
    config = scaled_config(profile.working_set_pages)
    result = replay(make_mq_dvp(config, pool_entries=10_000), trace)
    print(result.summary())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every reproduced table and figure.
"""

from .core import (
    Fingerprint,
    InfiniteDeadValuePool,
    LBARecencyPool,
    LifecycleTracker,
    LRUCache,
    LRUDeadValuePool,
    MQDeadValuePool,
    MultiQueue,
    fingerprint_of_bytes,
    fingerprint_of_value,
)
from .flash import SSDConfig, TimingParams, paper_config, scaled_config
from .ftl import (
    SYSTEMS,
    BaseFTL,
    DedupFTL,
    build_system,
    make_baseline,
    make_dedup,
    make_dvp_dedup,
    make_ideal,
    make_lru_dvp,
    make_lxssd,
    make_mq_dvp,
)
from .sim import IORequest, OpType, RunResult, SimulatedSSD, replay
from .traces import (
    PROFILES,
    SyntheticTraceGenerator,
    WorkloadProfile,
    audit_trace,
    generate_trace,
    profile_by_name,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "Fingerprint",
    "fingerprint_of_value",
    "fingerprint_of_bytes",
    "LRUCache",
    "MultiQueue",
    "LRUDeadValuePool",
    "MQDeadValuePool",
    "InfiniteDeadValuePool",
    "LBARecencyPool",
    "LifecycleTracker",
    # flash
    "SSDConfig",
    "TimingParams",
    "paper_config",
    "scaled_config",
    # ftl
    "BaseFTL",
    "DedupFTL",
    "SYSTEMS",
    "build_system",
    "make_baseline",
    "make_lru_dvp",
    "make_mq_dvp",
    "make_ideal",
    "make_lxssd",
    "make_dedup",
    "make_dvp_dedup",
    # sim
    "IORequest",
    "OpType",
    "RunResult",
    "SimulatedSSD",
    "replay",
    # traces
    "WorkloadProfile",
    "PROFILES",
    "profile_by_name",
    "SyntheticTraceGenerator",
    "generate_trace",
    "audit_trace",
]

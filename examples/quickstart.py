#!/usr/bin/env python3
"""Quickstart: revive zombie pages on a simulated SSD.

Generates a small mail-server-like workload (the paper's most redundant
trace), replays it against the baseline SSD and against the same drive
with the MQ dead-value pool enabled, and prints what the pool saved.

Run:  python examples/quickstart.py
"""

from repro import (
    generate_trace,
    make_baseline,
    make_mq_dvp,
    profile_by_name,
)
from repro.experiments.runner import (
    config_for_profile,
    prefill,
    scaled_pool_entries,
)
from repro.sim.ssd import SimulatedSSD

SCALE = 0.1  # ~24K requests; bump toward 1.0 for a full-size run


def run(system_name, ftl, profile, trace):
    prefill(ftl, profile)  # precondition the drive: every page holds data
    result = SimulatedSSD(ftl).run(trace, system=system_name,
                                   workload=profile.name)
    summary = result.summary()
    print(f"\n[{system_name}]")
    print(f"  flash programs : {summary['flash_writes']:>8.0f}")
    print(f"  GC erases      : {summary['erases']:>8.0f}")
    print(f"  short-circuits : {summary['short_circuits']:>8.0f}")
    print(f"  mean latency   : {summary['mean_latency_us']:>8.1f} us")
    print(f"  p99 latency    : {summary['p99_latency_us']:>8.1f} us")
    return summary


def main():
    profile = profile_by_name("mail").scaled(SCALE)
    trace = generate_trace(profile)
    config = config_for_profile(profile)
    print(f"workload: {profile.name}, {len(trace)} requests, "
          f"{profile.total_pages} logical pages")
    print(f"drive: {config.total_pages} raw pages, "
          f"{config.channels}x{config.chips_per_channel} chips")

    base = run("baseline", make_baseline(config), profile, trace)

    pool_entries = scaled_pool_entries(200_000, SCALE)
    dvp = run(
        f"mq-dvp ({pool_entries} entries)",
        make_mq_dvp(config, pool_entries),
        profile, trace,
    )

    write_cut = 100 * (1 - dvp["flash_writes"] / base["flash_writes"])
    latency_cut = 100 * (1 - dvp["mean_latency_us"] / base["mean_latency_us"])
    print(f"\n=> dead-value pool removed {write_cut:.1f}% of flash writes "
          f"and {latency_cut:.1f}% of mean latency")


if __name__ == "__main__":
    main()

"""Cross-structure invariant sanitizer for the FTL state machine.

The FTL's hot paths maintain half a dozen mutually-redundant structures —
the L2P table and its reverse index, per-block valid bitmaps, the array's
incremental page totals, the dead-value pool's PPN lists, the per-block
garbage-popularity mass, the allocator's free lists and the OOB crash
journal.  A bug in any path (PR 1 shipped a batch of them) silently skews
write amplification and revival rates long before anything crashes.

:class:`InvariantChecker` is the sanitizer in the ASan/TSan shape: cheap
O(1) checks ride along on every host operation, and every ``interval``
events a **full audit** cross-checks every structure against every other
and raises :class:`InvariantViolation` — a hard failure carrying the
violation *kind* (a stable dotted name tests can assert on) and a state
diff of the disagreeing values.

The audit is also available stand-alone via :func:`audit` for tests that
want the complete violation list instead of the first failure.

Invariant catalog (kinds raised):

``mapping.reverse-missing`` / ``mapping.reverse-stale``
    Forward and reverse L2P tables disagree.
``mapping.dead-ppn``
    A mapped PPN is not VALID in the flash array.
``mapping.no-fingerprint`` / ``mapping.no-oob``
    A mapped PPN lost its content fingerprint or OOB journal record.
``array.accounting``
    The array's incremental free/valid/invalid/erase totals disagree with
    a from-scratch recount of every block.
``array.unmapped-valid``
    A VALID flash page is referenced by no LPN (a double-valid / leaked
    revival).
``pool.empty-entry``
    A pool entry tracks zero PPNs (should have been removed).
``pool.duplicate-ppn``
    The same garbage PPN is tracked under two fingerprints.
``pool.orphan-ppn``
    A pool-tracked PPN is not an INVALID flash page (it was revived,
    erased or never died).
``pool.fingerprint-mismatch``
    The pool tracks a PPN under a different fingerprint than the FTL's
    content index says the page holds.
``pool.mq-internal``
    The MQ structure underneath an MQ pool failed its own queue/entry
    consistency check.
``pool.popularity-orphan`` / ``pool.popularity-leak`` / ``pool.block-popularity``
    The garbage-popularity side tables (``_garbage_pop_of_ppn`` /
    ``_block_garbage_pop``) disagree with the pool's tracked set — the
    exact skew that silently biases popularity-aware GC victim choice.
``allocator.free-list`` / ``allocator.duplicate-block`` / ``allocator.retired-free``
    A free-listed block has programmed pages, appears twice, or is
    retired.
``allocator.active-full``
    An active append point is already full.
``allocator.leaked-block``
    An erased block is on no free list and not active — its pages are
    unreachable (leaked free space).
``gc.stranded-plane``
    A plane has zero writable pages and no collectible victim while the
    drive is not read-only — the next write must hard-fail.
``gc.headroom``
    A collection pass violated its own postcondition (erased victim not
    actually erased, or reclaim accounting off).
``oob.sequence``
    OOB sequence numbers are not unique or exceed the journal clock.
``oob.free-page-record``
    The OOB journal records a page that is FREE (erase should have
    dropped it).
``oob.trim-order``
    A mapped LPN's newest copy is not newer than the LPN's last trim —
    crash recovery would drop live data.
``oob.recovery-divergence``
    Replaying the OOB journal (:func:`repro.faults.recovery.rebuild_mapping`)
    does not reproduce the live L2P table.
``oracle.*``
    Lockstep oracle disagreements (see :mod:`repro.check.oracle`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

from ..flash.block import PageState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..ftl.ftl import BaseFTL
    from ..ftl.gc import GCWork
    from .oracle import OracleFTL

__all__ = ["InvariantViolation", "InvariantChecker", "audit"]


class InvariantViolation(AssertionError):
    """A cross-structure consistency check failed.

    ``kind`` is a stable dotted name from the catalog above; ``diff``
    maps structure names to the disagreeing values, so the failure
    message is a usable state diff rather than a bare assertion.
    """

    def __init__(self, kind: str, detail: str, diff: Optional[Dict] = None):
        self.kind = kind
        self.detail = detail
        self.diff = dict(diff or {})
        lines = [f"[{kind}] {detail}"]
        for key, value in self.diff.items():
            lines.append(f"    {key} = {value!r}")
        super().__init__("\n".join(lines))


def _mapping_violations(ftl: "BaseFTL", out: List[InvariantViolation]) -> None:
    # The audit reads the mapping's columns directly (forward array, owner
    # array, shared-spill dict) so it cross-checks the real redundant
    # state, not an accessor's view of it.
    from ..ftl.mapping import _NONE, _SHARED

    mapping = ftl.mapping
    l2p = mapping._l2p
    owner = mapping._owner
    shared = mapping._shared
    forward_total = 0
    for lpn in range(len(l2p)):
        ppn = l2p[lpn]
        if ppn < 0:
            continue
        forward_total += 1
        current = owner[ppn] if 0 <= ppn < len(owner) else _NONE
        if current != lpn and not (
            current == _SHARED and lpn in shared.get(ppn, ())
        ):
            out.append(InvariantViolation(
                "mapping.reverse-missing",
                f"LPN {lpn} -> PPN {ppn} absent from the reverse index",
                {"lpn": lpn, "ppn": ppn,
                 "reverse_lpns": sorted(mapping.lpns_of(ppn))},
            ))
    reverse_total = 0
    for ppn in range(len(owner)):
        current = owner[ppn]
        if current == _NONE:
            continue
        reverse_total += (
            len(shared.get(ppn, ())) if current == _SHARED else 1
        )
    if reverse_total != forward_total:
        out.append(InvariantViolation(
            "mapping.reverse-stale",
            "reverse index holds LPNs the forward table does not",
            {"forward_entries": forward_total,
             "reverse_entries": reverse_total},
        ))
    if forward_total != mapping.mapped_lpn_count():
        out.append(InvariantViolation(
            "mapping.reverse-stale",
            "incremental mapped-LPN counter disagrees with a forward-column "
            "recount",
            {"forward_entries": forward_total,
             "mapped_lpn_count": mapping.mapped_lpn_count()},
        ))
    for ppn in mapping.mapped_ppns():
        state = ftl.array.state_of(ppn)
        if state is not PageState.VALID:
            out.append(InvariantViolation(
                "mapping.dead-ppn",
                f"mapped PPN {ppn} is {state.name}, not VALID",
                {"ppn": ppn, "state": state.name,
                 "lpns": sorted(mapping.lpns_of(ppn))},
            ))
        if ppn not in ftl._ppn_fp:
            out.append(InvariantViolation(
                "mapping.no-fingerprint",
                f"mapped PPN {ppn} has no content fingerprint",
                {"ppn": ppn},
            ))
        if ppn not in ftl._oob:
            out.append(InvariantViolation(
                "mapping.no-oob",
                f"mapped PPN {ppn} has no OOB journal record",
                {"ppn": ppn},
            ))


def _array_violations(ftl: "BaseFTL", out: List[InvariantViolation]) -> None:
    array = ftl.array
    free = valid = invalid = retired = 0
    refcount = ftl.mapping.refcount
    geometry = array.geometry
    for index, block in enumerate(array.blocks):
        if block.retired:
            retired += 1
            continue
        valid += block.valid_count
        invalid += block.invalid_count
        free += block.pages_per_block - block.write_pointer
        base = geometry.first_ppn_of_block(index)
        for page in block.valid_page_indexes():
            ppn = base + page
            if refcount(ppn) == 0:
                out.append(InvariantViolation(
                    "array.unmapped-valid",
                    f"VALID page {ppn} is referenced by no LPN",
                    {"ppn": ppn, "block": index},
                ))
    recounted = {
        "free_pages": free,
        "valid_pages": valid,
        "invalid_pages": invalid,
        "retired_blocks": retired,
    }
    incremental = {
        "free_pages": array.free_pages,
        "valid_pages": array.valid_pages,
        "invalid_pages": array.invalid_pages,
        "retired_blocks": array.retired_blocks,
    }
    if recounted != incremental:
        out.append(InvariantViolation(
            "array.accounting",
            "incremental page totals disagree with a full recount",
            {"recounted": recounted, "incremental": incremental},
        ))


def _pool_violations(ftl: "BaseFTL", out: List[InvariantViolation]) -> None:
    pool = ftl.pool
    garbage_pop = ftl._garbage_pop_of_ppn
    if pool is None:
        if garbage_pop:
            out.append(InvariantViolation(
                "pool.popularity-leak",
                "garbage popularity tracked without a pool",
                {"ppns": sorted(garbage_pop)[:16]},
            ))
        return
    seen: Dict[int, object] = {}
    fingerprints = set()
    pairs = 0
    for fp, ppn in pool.tracked_items():
        fingerprints.add(fp)
        pairs += 1
        if ppn in seen:
            out.append(InvariantViolation(
                "pool.duplicate-ppn",
                f"PPN {ppn} tracked under two fingerprints",
                {"ppn": ppn, "first_fp": seen[ppn], "second_fp": fp},
            ))
            continue
        seen[ppn] = fp
        state = ftl.array.state_of(ppn)
        if state is not PageState.INVALID:
            out.append(InvariantViolation(
                "pool.orphan-ppn",
                f"pool-tracked PPN {ppn} is {state.name}, not INVALID",
                {"ppn": ppn, "state": state.name, "fp": fp},
            ))
        stored = ftl._ppn_fp.get(ppn)
        if stored != fp:
            out.append(InvariantViolation(
                "pool.fingerprint-mismatch",
                f"pool tracks PPN {ppn} under a fingerprint the page "
                f"does not hold",
                {"ppn": ppn, "pool_fp": fp, "page_fp": stored},
            ))
    # ``len(pool)`` counts resident entries.  Fingerprint-keyed pools
    # (Infinite/LRU/MQ) hold >= 1 PPN per entry, so distinct fingerprints
    # must match; the LBA-keyed pool holds exactly one PPN per slot and
    # may track one value under several slots, so pair count matches.
    from ..core.dvp import LBARecencyPool

    tracked_entries = (
        pairs if isinstance(pool, LBARecencyPool) else len(fingerprints)
    )
    if tracked_entries != len(pool):
        out.append(InvariantViolation(
            "pool.empty-entry",
            "pool entry count disagrees with entries holding PPNs",
            {"resident_entries": len(pool),
             "entries_with_ppns": tracked_entries},
        ))
    mq = getattr(pool, "mq", None)
    if mq is not None:
        try:
            mq.check_invariants()
        except AssertionError as exc:
            out.append(InvariantViolation(
                "pool.mq-internal",
                f"multi-queue internal check failed: {exc}",
            ))
    # Popularity-mass side tables: exactly the tracked set, and per-block
    # sums that match the per-PPN degrees (the popularity-aware GC input).
    tracked = set(seen)
    popped = set(garbage_pop)
    for ppn in sorted(popped - tracked)[:16]:
        out.append(InvariantViolation(
            "pool.popularity-leak",
            f"PPN {ppn} carries garbage popularity but is not pool-tracked",
            {"ppn": ppn, "popularity": garbage_pop[ppn]},
        ))
    for ppn in sorted(tracked - popped)[:16]:
        out.append(InvariantViolation(
            "pool.popularity-orphan",
            f"pool-tracked PPN {ppn} has no garbage-popularity record",
            {"ppn": ppn, "fp": seen[ppn]},
        ))
    sums: Dict[int, int] = {}
    block_of = ftl.array.geometry.block_of_ppn
    for ppn, pop in garbage_pop.items():
        block = block_of(ppn)
        sums[block] = sums.get(block, 0) + pop
    if sums != ftl._block_garbage_pop:
        diff_blocks = {
            block: (sums.get(block), ftl._block_garbage_pop.get(block))
            for block in set(sums) ^ set(ftl._block_garbage_pop)
            | {b for b in set(sums) & set(ftl._block_garbage_pop)
               if sums[b] != ftl._block_garbage_pop[b]}
        }
        out.append(InvariantViolation(
            "pool.block-popularity",
            "per-block garbage-popularity mass disagrees with per-PPN "
            "degrees (recomputed, incremental)",
            {"blocks": diff_blocks},
        ))


def _allocator_violations(ftl: "BaseFTL", out: List[InvariantViolation]) -> None:
    allocator = ftl.allocator
    array = ftl.array
    listed = set()
    for plane, blocks in enumerate(allocator.free_blocks):
        for block in blocks:
            if block in listed:
                out.append(InvariantViolation(
                    "allocator.duplicate-block",
                    f"block {block} appears twice on the free lists",
                    {"block": block, "plane": plane},
                ))
            listed.add(block)
            b = array.block(block)
            if b.retired:
                out.append(InvariantViolation(
                    "allocator.retired-free",
                    f"retired block {block} is on a free list",
                    {"block": block, "plane": plane},
                ))
            elif b.write_pointer != 0:
                out.append(InvariantViolation(
                    "allocator.free-list",
                    f"free-listed block {block} has programmed pages",
                    {"block": block, "write_pointer": b.write_pointer},
                ))
    active = set()
    for actives in (allocator._active, allocator._active_gc):
        for block in actives:
            if block is None:
                continue
            active.add(block)
            if array.block(block).is_full:
                out.append(InvariantViolation(
                    "allocator.active-full",
                    f"active block {block} is full (should have been "
                    f"closed at allocation)",
                    {"block": block},
                ))
    for index, block in enumerate(array.blocks):
        if (
            not block.retired
            and block.write_pointer == 0
            and index not in listed
            and index not in active
        ):
            out.append(InvariantViolation(
                "allocator.leaked-block",
                f"erased block {index} is unreachable: on no free list "
                f"and not an active append point",
                {"block": index,
                 "plane": array.geometry.plane_of_block(index)},
            ))


def _gc_violations(ftl: "BaseFTL", out: List[InvariantViolation]) -> None:
    if ftl.read_only:
        return
    allocator = ftl.allocator
    geometry = ftl.array.geometry
    for plane in range(geometry.total_planes):
        if allocator.writable_pages(plane) > 0:
            continue
        base = plane * geometry.blocks_per_plane
        collectible = False
        for block in range(base, base + geometry.blocks_per_plane):
            b = ftl.array.block(block)
            # With zero writable pages nothing can be relocated, so only
            # an all-invalid full block makes progress possible.
            if (
                not b.retired
                and b.is_full
                and b.invalid_count > 0
                and b.valid_count == 0
            ):
                collectible = True
                break
        if not collectible:
            out.append(InvariantViolation(
                "gc.stranded-plane",
                f"plane {plane} has no writable pages and no collectible "
                f"victim while the drive is not read-only",
                {"plane": plane,
                 "free_blocks": allocator.free_block_count(plane)},
            ))


def _oob_violations(ftl: "BaseFTL", out: List[InvariantViolation]) -> None:
    seqs: Dict[int, str] = {}
    clock = ftl._oob_seq
    for ppn, (lpn, seq) in ftl._oob.items():
        record = f"oob[{ppn}]=(lpn {lpn}, seq {seq})"
        if seq in seqs or seq > clock:
            out.append(InvariantViolation(
                "oob.sequence",
                "OOB sequence numbers must be unique and bounded by the "
                "journal clock",
                {"record": record, "clock": clock,
                 "colliding": seqs.get(seq)},
            ))
        seqs[seq] = record
        if ftl.array.state_of(ppn) is PageState.FREE:
            out.append(InvariantViolation(
                "oob.free-page-record",
                f"OOB journal records FREE page {ppn}",
                {"ppn": ppn, "lpn": lpn, "seq": seq},
            ))
    for lpn, seq in ftl._oob_trims.items():
        record = f"trim[{lpn}]=seq {seq}"
        if seq in seqs or seq > clock:
            out.append(InvariantViolation(
                "oob.sequence",
                "trim journal sequence collides or exceeds the clock",
                {"record": record, "clock": clock,
                 "colliding": seqs.get(seq)},
            ))
        seqs[seq] = record
    # Recovery semantics only hold for one-to-one mappings; a dedup FTL's
    # many-to-one table is explicitly unrecoverable from single-LPN OOB
    # records (see repro.faults.recovery).
    from ..ftl.dedup import DedupFTL

    if isinstance(ftl, DedupFTL):
        return
    trims = ftl._oob_trims
    for lpn, ppn in ftl.mapping.forward_items().items():
        entry = ftl._oob.get(ppn)
        if entry is None:
            continue  # already reported as mapping.no-oob
        oob_lpn, seq = entry
        if oob_lpn != lpn:
            out.append(InvariantViolation(
                "oob.trim-order",
                f"PPN {ppn} is mapped at LPN {lpn} but journaled for "
                f"LPN {oob_lpn}",
                {"ppn": ppn, "mapped_lpn": lpn, "oob_lpn": oob_lpn},
            ))
        elif trims.get(lpn, -1) >= seq:
            out.append(InvariantViolation(
                "oob.trim-order",
                f"LPN {lpn}'s live copy is not newer than its last trim "
                f"(recovery would drop it)",
                {"lpn": lpn, "copy_seq": seq, "trim_seq": trims[lpn]},
            ))
    from ..faults.recovery import rebuild_mapping

    rebuilt = rebuild_mapping(ftl).forward_items()
    live = ftl.mapping.forward_items()
    if rebuilt != live:
        lost = {k: live[k] for k in set(live) - set(rebuilt)}
        spurious = {k: rebuilt[k] for k in set(rebuilt) - set(live)}
        moved = {
            k: (live[k], rebuilt[k])
            for k in set(live) & set(rebuilt)
            if live[k] != rebuilt[k]
        }
        out.append(InvariantViolation(
            "oob.recovery-divergence",
            "replaying the OOB journal does not reproduce the live L2P "
            "table (lost/spurious/moved shown as lpn: ppn)",
            {"lost": dict(sorted(lost.items())[:8]),
             "spurious": dict(sorted(spurious.items())[:8]),
             "moved": dict(sorted(moved.items())[:8])},
        ))


def audit(ftl: "BaseFTL") -> List[InvariantViolation]:
    """Full cross-structure audit; returns *all* violations found.

    O(total pages + pool size + journal size) — run this at intervals,
    not per operation.
    """
    out: List[InvariantViolation] = []
    _mapping_violations(ftl, out)
    _array_violations(ftl, out)
    _pool_violations(ftl, out)
    _allocator_violations(ftl, out)
    _gc_violations(ftl, out)
    _oob_violations(ftl, out)
    return out


class InvariantChecker:
    """Sanitizer harness: cheap per-event checks plus periodic full audits.

    Attach to a live FTL via :meth:`BaseFTL.attach_checker`; the FTL's
    write/read/trim paths and the garbage collector then call back in.
    ``interval`` is in host events (writes + reads + trims); ``oracle``
    optionally adds the lockstep reference model of
    :mod:`repro.check.oracle` so every read result and revival decision
    is cross-checked against a geometry-free model of the drive.
    """

    #: Default audit cadence (host events between full audits).
    DEFAULT_INTERVAL = 1000

    def __init__(
        self,
        interval: int = DEFAULT_INTERVAL,
        oracle: Optional["OracleFTL"] = None,
    ):
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.interval = interval
        self.oracle = oracle
        self.events = 0
        self.audits = 0
        self.gc_checks = 0
        self._last_write_clock = -1

    # ------------------------------------------------------------------
    # Attachment
    # ------------------------------------------------------------------

    def on_attach(self, ftl: "BaseFTL") -> None:
        """Adopt the FTL's current state as the checked baseline."""
        if self.oracle is not None:
            self.oracle.sync_from(ftl)
        self._last_write_clock = ftl.write_clock

    # ------------------------------------------------------------------
    # Hot-path hooks (O(1) unless the interval fires)
    # ------------------------------------------------------------------

    def after_write(self, ftl: "BaseFTL", lpn: int, fp, outcome) -> None:
        self._cheap(ftl)
        if ftl.write_clock <= self._last_write_clock:
            raise InvariantViolation(
                "mapping.reverse-stale",
                "write clock did not advance across a host write",
                {"write_clock": ftl.write_clock,
                 "previous": self._last_write_clock},
            )
        self._last_write_clock = ftl.write_clock
        if self.oracle is not None:
            self.oracle.observe_write(ftl, lpn, fp, outcome)
        self._tick(ftl)

    def after_read(self, ftl: "BaseFTL", lpn: int, outcome) -> None:
        self._cheap(ftl)
        if self.oracle is not None:
            self.oracle.observe_read(ftl, lpn, outcome)
        self._tick(ftl)

    def after_trim(self, ftl: "BaseFTL", lpn: int) -> None:
        self._cheap(ftl)
        if self.oracle is not None:
            self.oracle.observe_trim(ftl, lpn)
        self._tick(ftl)

    def after_gc(self, ftl: "BaseFTL", plane: int, work: "GCWork") -> None:
        """Cheap postcondition check after one collection invocation."""
        self.gc_checks += 1
        pages_per_block = ftl.config.pages_per_block
        expected = len(work.erased_blocks) * pages_per_block
        if work.reclaimed_pages != expected:
            raise InvariantViolation(
                "gc.headroom",
                "collection reclaim accounting is off: every victim is a "
                "full block, so reclaimed pages must be erased blocks x "
                "pages per block",
                {"reclaimed_pages": work.reclaimed_pages,
                 "expected": expected, "plane": plane},
            )
        for block in work.erased_blocks:
            if ftl.array.block(block).write_pointer != 0:
                raise InvariantViolation(
                    "gc.headroom",
                    f"erased victim {block} still has programmed pages",
                    {"block": block,
                     "write_pointer": ftl.array.block(block).write_pointer},
                )
        for block in work.retired_blocks:
            if not ftl.array.block(block).retired:
                raise InvariantViolation(
                    "gc.headroom",
                    f"block {block} was reported retired but is still in "
                    f"service",
                    {"block": block},
                )

    # ------------------------------------------------------------------

    def _cheap(self, ftl: "BaseFTL") -> None:
        """O(1) conservation law over the array's incremental counters."""
        array = ftl.array
        accounted = (
            array.free_pages
            + array.valid_pages
            + array.invalid_pages
            + array.retired_blocks * ftl.config.pages_per_block
        )
        if accounted != ftl.config.total_pages:
            raise InvariantViolation(
                "array.accounting",
                "page conservation violated: free + valid + invalid + "
                "retired must equal raw capacity",
                {"free": array.free_pages, "valid": array.valid_pages,
                 "invalid": array.invalid_pages,
                 "retired_blocks": array.retired_blocks,
                 "accounted": accounted,
                 "total_pages": ftl.config.total_pages},
            )

    def _tick(self, ftl: "BaseFTL") -> None:
        self.events += 1
        if self.events % self.interval == 0:
            self.run_audit(ftl)

    def run_audit(self, ftl: "BaseFTL") -> None:
        """Run the full audit now; raise the first violation found."""
        self.audits += 1
        violations = audit(ftl)
        if violations:
            first = violations[0]
            if len(violations) > 1:
                first.diff["additional_violations"] = [
                    v.kind for v in violations[1:]
                ]
            raise first

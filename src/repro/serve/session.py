"""Tenant sessions: one streamed device (or shard set) per tenant.

A :class:`TenantSession` is the serve-side twin of the batch entry
points, built so a streamed trace finishes **bit-identical** to the same
trace run in batch:

* ``shards == 1`` mirrors :func:`~repro.experiments.runner.run_system`
  construction exactly — same profile scaling, same
  :func:`~repro.experiments.runner.config_for_profile` drive, same
  scaled pool entries, preconditioned through the same prefill cache,
  finalized under the same workload label — so the session's final
  :func:`~repro.perf.spec.result_digest` equals the batch digest.
* ``shards > 1`` builds each shard through the fleet layer's own
  :func:`~repro.fleet.fleet.build_shard_device` and routes requests over
  the same :class:`~repro.fleet.ring.HashRing` assignment, so per-shard
  digests equal :func:`~repro.fleet.fleet.execute_shard`'s and the
  session digest equals the batch fleet digest.

Streamed requests buffer per shard and step in ``batch_requests``
batches; batch boundaries cannot perturb results because
:meth:`~repro.sim.ssd.SimulatedSSD.service` keeps one global request
index across calls (the chunked-stepping invariant the fleet layer
already relies on).

Checkpointing pickles the complete mid-run device graph
(:func:`~repro.perf.snapshot.capture_live_state`) plus the unstepped
buffers, so a session restored by :meth:`TenantSession.from_blob`
continues exactly where the captured one stopped — the kill/resume
tests prove digest identity with an uninterrupted stream.
"""

from __future__ import annotations

import pickle
import re
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Mapping, Optional

from ..api import ResultRecord, aggregate_record, record_from_run, session_digest
from ..experiments.config import DEFAULT_SCALE, RunConfig
from ..experiments.device import Device
from ..experiments.runner import config_for_profile, scaled_pool_entries
from ..fleet.fleet import FleetSpec, build_shard_device
from ..perf.snapshot import capture_live_state, restore_live_state
from ..sim.request import IORequest
from ..traces.profiles import WorkloadProfile, profile_by_name
from .config import DEFAULT_BATCH_REQUESTS, ServeSettings

__all__ = [
    "SESSION_STATE_VERSION",
    "SessionError",
    "SessionConfig",
    "session_config_of_open",
    "TenantSession",
]

#: Version tag inside session checkpoint blobs; readers refuse blobs
#: from an incompatible writer instead of grafting mismatched state.
SESSION_STATE_VERSION = 1

#: Tenant names become checkpoint file names, so they are restricted to
#: a filesystem-safe alphabet.
_TENANT_RE = re.compile(r"^[A-Za-z0-9._-]{1,64}$")


class SessionError(ValueError):
    """A session-level request the server must refuse (bad open config,
    unknown lpn, tenant conflicts, ...) — reported to the client as an
    ``error`` reply, never a dropped connection."""


@dataclass(frozen=True)
class SessionConfig:
    """Everything that identifies one tenant's streamed run.

    The field set deliberately matches the batch surfaces: a
    ``shards == 1`` config maps onto :class:`RunConfig` + workload the
    way ``run_system`` is called; ``shards > 1`` maps onto a
    :class:`~repro.fleet.fleet.FleetSpec`.  Frozen and picklable — the
    config rides inside every checkpoint blob, and resuming requires
    the client to reopen with an *equal* config.
    """

    tenant: str
    workload: str
    system: str
    shards: int = 1
    scale: float = DEFAULT_SCALE
    seed: Optional[int] = None
    paper_pool_entries: int = 200_000
    queue_depth: Optional[int] = None
    check_interval: Optional[int] = None
    oracle: bool = False
    batch_requests: int = DEFAULT_BATCH_REQUESTS

    def __post_init__(self) -> None:
        if not _TENANT_RE.match(self.tenant):
            raise SessionError(
                "tenant must be 1-64 chars of [A-Za-z0-9._-], got "
                f"{self.tenant!r}"
            )
        if self.shards <= 0:
            raise SessionError("shards must be positive")
        if self.scale <= 0:
            raise SessionError("scale must be positive")
        if self.batch_requests <= 0:
            raise SessionError("batch_requests must be positive")

    def run_config(self) -> RunConfig:
        """The single-drive :class:`RunConfig` this session attaches —
        field-for-field what batch ``run_system`` would receive."""
        return RunConfig(
            paper_pool_entries=self.paper_pool_entries,
            scale=self.scale,
            queue_depth=self.queue_depth,
            check_interval=self.check_interval,
            oracle=self.oracle,
        )

    def fleet_spec(self) -> FleetSpec:
        """The :class:`FleetSpec` naming this session's shard set."""
        return FleetSpec(
            workload=self.workload,
            system=self.system,
            shards=self.shards,
            paper_pool_entries=self.paper_pool_entries,
            scale=self.scale,
            seed=self.seed,
            queue_depth=self.queue_depth,
            check_interval=self.check_interval,
            oracle=self.oracle,
        )


def session_config_of_open(
    message: Mapping[str, Any], settings: ServeSettings
) -> SessionConfig:
    """A :class:`SessionConfig` from an ``open`` message.

    Omitted fields fall back to the server's session defaults
    (``settings.default_seed`` / ``check_interval`` / ``oracle`` /
    ``batch_requests``); unknown extra keys are ignored so clients can
    annotate opens without a version bump.
    """
    try:
        return SessionConfig(
            tenant=str(message["tenant"]),
            workload=str(message["workload"]),
            system=str(message["system"]),
            shards=int(message.get("shards", 1)),
            scale=float(message.get("scale", DEFAULT_SCALE)),
            seed=(
                int(message["seed"])
                if message.get("seed") is not None
                else settings.default_seed
            ),
            paper_pool_entries=int(
                message.get("paper_pool_entries", 200_000)
            ),
            queue_depth=(
                int(message["queue_depth"])
                if message.get("queue_depth") is not None
                else None
            ),
            check_interval=(
                int(message["check_interval"])
                if message.get("check_interval") is not None
                else settings.check_interval
            ),
            oracle=bool(message.get("oracle", settings.oracle)),
            batch_requests=int(
                message.get("batch_requests", settings.batch_requests)
            ),
        )
    except (KeyError, TypeError, ValueError) as exc:
        if isinstance(exc, SessionError):
            raise
        raise SessionError(f"bad open message: {exc}") from None


def _profile_for(config: SessionConfig) -> WorkloadProfile:
    """The scaled (seed-overridden) profile — exactly how
    :meth:`ExperimentContext.for_workload` derives it, minus the trace
    generation a streamed session never needs."""
    profile = profile_by_name(config.workload).scaled(config.scale)
    if config.seed is not None:
        profile = replace(profile, seed=config.seed)
    return profile


class TenantSession:
    """One tenant's long-lived streamed run (single drive or shard set)."""

    def __init__(
        self,
        config: SessionConfig,
        _state: Optional[Dict[str, Any]] = None,
    ):
        self.config = config
        self.profile = _profile_for(config)
        self.served = 0
        #: ``served`` at the last periodic checkpoint (server cadence).
        self.checkpointed_at = 0
        self.finished = False
        if config.shards == 1:
            self._owners = None
            self._local_of: List[Dict[int, int]] = [{}]
            self._labels = [self.profile.name]
        else:
            fleet = config.fleet_spec()
            self._owners = fleet.ring().assignments(self.profile.total_pages)
            self._labels = [
                fleet.shard(i).label(self.profile.name)
                for i in range(config.shards)
            ]
        self._buffers: List[List[IORequest]] = [
            [] for _ in range(config.shards)
        ]
        if _state is None:
            self._build_devices()
        else:
            self._restore_devices(_state)

    # -- construction --------------------------------------------------

    def _build_devices(self) -> None:
        config = self.config
        if config.shards == 1:
            # Mirror run_system: same drive geometry, same scaled pool,
            # same prefill-cache preconditioning, same attach config.
            entries = scaled_pool_entries(
                config.paper_pool_entries, config.scale
            )
            device = Device(
                config.system, config_for_profile(self.profile), entries
            )
            device.precondition(self.profile)
            device.attach(config.run_config())
            self._devices = [device]
            return
        fleet = config.fleet_spec()
        self._devices = []
        self._local_of = []
        for index in range(config.shards):
            device, local_of = build_shard_device(
                fleet, index, self._owners, self.profile.fill_fraction
            )
            self._devices.append(device)
            self._local_of.append(local_of)

    def _restore_devices(self, state: Dict[str, Any]) -> None:
        config = self.config
        entries = (
            scaled_pool_entries(config.paper_pool_entries, config.scale)
            if config.shards == 1
            else config.fleet_spec().shard_pool_entries()
        )
        self._devices = []
        for blob in state["blobs"]:
            ftl, ssd = restore_live_state(blob)
            device = Device(config.system, ftl.config, entries)
            device.ftl = ftl
            device.ssd = ssd
            device._observer = None
            self._devices.append(device)
        if config.shards > 1:
            # Routing tables are pure functions of the config; recompute
            # instead of checkpointing them.
            self._local_of = [
                {
                    lpn: local
                    for local, lpn in enumerate(
                        l for l, owner in enumerate(self._owners)
                        if owner == index
                    )
                }
                for index in range(config.shards)
            ]
        self._buffers = [list(buffered) for buffered in state["buffers"]]
        self.served = state["served"]
        self.checkpointed_at = self.served

    # -- streaming -----------------------------------------------------

    @property
    def pending(self) -> int:
        """Requests buffered but not yet stepped."""
        return sum(len(buffered) for buffered in self._buffers)

    def push(self, request: IORequest) -> None:
        """Buffer one streamed request, routed to its owning shard."""
        if self.finished:
            raise SessionError("session already closed")
        if not 0 <= request.lpn < self.profile.total_pages:
            raise SessionError(
                f"lpn {request.lpn} outside the workload's "
                f"{self.profile.total_pages}-page space"
            )
        if self.config.shards == 1:
            self._buffers[0].append(request)
            return
        shard = self._owners[request.lpn]
        self._buffers[shard].append(
            replace(request, lpn=self._local_of[shard][request.lpn])
        )

    def step_due(self) -> bool:
        """Whether any shard's buffer reached the batching threshold."""
        batch = self.config.batch_requests
        return any(len(buffered) >= batch for buffered in self._buffers)

    def flush(self) -> int:
        """Step every buffered request; returns how many were serviced."""
        stepped = 0
        for index, buffered in enumerate(self._buffers):
            if not buffered:
                continue
            stepped += self._devices[index].step(buffered)
            self._buffers[index] = []
        self.served += stepped
        return stepped

    # -- records -------------------------------------------------------

    def _meta(self) -> Dict[str, Any]:
        return {
            "tenant": self.config.tenant,
            "shards": self.config.shards,
            "served": self.served,
            "pending": self.pending,
        }

    def metrics_record(self) -> ResultRecord:
        """Incremental mid-stream snapshot under the unified schema.

        A pure read of the accumulated state — no digest (the run is not
        final) and no stepping (the server flushes first).
        """
        results = [
            device.ssd.result(system=self.config.system, workload=label)
            for device, label in zip(self._devices, self._labels)
        ]
        if self.config.shards == 1:
            return record_from_run(
                results[0],
                kind="serve.metrics",
                with_digest=False,
                meta=self._meta(),
            )
        return aggregate_record(
            results,
            kind="serve.metrics",
            system=self.config.system,
            workload=self.profile.name,
            meta=self._meta(),
        )

    def finalize(self) -> ResultRecord:
        """Drain the buffers, finalize every device and mint the final
        ``serve.session`` record.

        The record's ``digest`` is the session's identity — equal to the
        batch ``run_system`` digest for a single drive and to the batch
        fleet digest for a shard set (the serve parity tests enforce
        both).
        """
        from ..perf.spec import result_digest  # lazy: heavy import chain

        if self.finished:
            raise SessionError("session already closed")
        self.flush()
        self.finished = True
        results = [
            device.finalize(workload=label)
            for device, label in zip(self._devices, self._labels)
        ]
        if self.config.shards == 1:
            return record_from_run(
                results[0], kind="serve.session", meta=self._meta()
            )
        digests = [result_digest(result) for result in results]
        meta = self._meta()
        meta["shard_digests"] = digests
        return aggregate_record(
            results,
            kind="serve.session",
            system=self.config.system,
            workload=self.profile.name,
            digest=session_digest(digests),
            meta=meta,
        )

    # -- checkpointing -------------------------------------------------

    def checkpoint_blob(self) -> bytes:
        """The complete resumable state of this session as one blob."""
        if self.finished:
            raise SessionError("cannot checkpoint a closed session")
        blob = pickle.dumps(
            {
                "version": SESSION_STATE_VERSION,
                "config": self.config,
                "served": self.served,
                "buffers": [list(buffered) for buffered in self._buffers],
                "blobs": [
                    capture_live_state(device.ftl, device.ssd)
                    for device in self._devices
                ],
            },
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        self.checkpointed_at = self.served
        return blob

    @classmethod
    def from_blob(cls, blob: bytes) -> "TenantSession":
        """Rehydrate a checkpointed session, bit-exact."""
        try:
            state = pickle.loads(blob)
        except Exception as exc:
            raise SessionError(f"corrupt session checkpoint: {exc}") from None
        version = state.get("version") if isinstance(state, dict) else None
        if version != SESSION_STATE_VERSION:
            raise SessionError(
                f"session checkpoint version {version!r} != supported "
                f"{SESSION_STATE_VERSION}"
            )
        return cls(state["config"], _state=state)

"""Resource timelines: the contention model of the simulator.

The simulator charges every flash or controller operation to a
:class:`ResourceTimeline` — one per flash chip, one per channel, and one for
the controller's hash unit.  A timeline is a single-server FIFO resource:
an operation submitted at time *t* starts at ``max(t, busy_until)`` and
occupies the resource for its duration.  This is what produces the queueing
behaviour the paper measures: reads stuck behind a 400µs program or a 3.8ms
erase, and hash computation delaying incoming writes (Section V-A).

The model deliberately trades per-die granularity for speed: contention is
tracked per chip (plus the shared channel for data transfers), which is the
granularity at which the paper's latency effects — program/erase blocking —
arise.
"""

from __future__ import annotations

from typing import List

__all__ = ["ResourceTimeline", "TimelineSet"]


class ResourceTimeline:
    """A single-server FIFO resource with utilisation accounting."""

    __slots__ = ("name", "busy_until", "busy_time", "op_count")

    def __init__(self, name: str):
        self.name = name
        self.busy_until = 0.0
        self.busy_time = 0.0
        self.op_count = 0

    def schedule(self, arrival: float, duration: float) -> tuple[float, float]:
        """Occupy the resource for ``duration`` starting no earlier than
        ``arrival``; returns ``(start, end)`` and advances the timeline."""
        if duration < 0:
            raise ValueError("duration must be non-negative")
        start = max(arrival, self.busy_until)
        end = start + duration
        self.busy_until = end
        self.busy_time += duration
        self.op_count += 1
        return start, end

    def peek_start(self, arrival: float) -> float:
        """When an op arriving at ``arrival`` would start (no side effect)."""
        return max(arrival, self.busy_until)

    def utilisation(self, horizon: float) -> float:
        """Busy fraction over ``[0, horizon]``."""
        if horizon <= 0:
            return 0.0
        return min(1.0, self.busy_time / horizon)


class TimelineSet:
    """The full set of timelines for one simulated drive."""

    def __init__(self, num_chips: int, num_channels: int, chips_per_channel: int):
        if num_chips != num_channels * chips_per_channel:
            raise ValueError("chip/channel geometry mismatch")
        self.chips: List[ResourceTimeline] = [
            ResourceTimeline(f"chip{i}") for i in range(num_chips)
        ]
        self.channels: List[ResourceTimeline] = [
            ResourceTimeline(f"chan{i}") for i in range(num_channels)
        ]
        self.hash_unit = ResourceTimeline("hash")
        self._chips_per_channel = chips_per_channel

    def channel_of_chip(self, chip: int) -> ResourceTimeline:
        return self.channels[chip // self._chips_per_channel]

    def chip_op(
        self, chip: int, arrival: float, flash_us: float, xfer_us: float
    ) -> float:
        """Run one flash op on ``chip``: a channel transfer serialised with
        the chip's array operation.  Returns the completion time.

        The transfer occupies the shared channel, the array time only the
        chip; both are charged FIFO.  This captures the first-order
        interference the paper relies on (ops queueing behind programs and
        erases) without per-die bookkeeping.
        """
        channel = self.channel_of_chip(chip)
        _, xfer_end = channel.schedule(arrival, xfer_us)
        _, end = self.chips[chip].schedule(xfer_end, flash_us)
        return end

    def hash_op(self, arrival: float, hash_us: float) -> float:
        """Charge a content-hash computation to the controller hash unit."""
        _, end = self.hash_unit.schedule(arrival, hash_us)
        return end

    def stall_all(self, until: float) -> None:
        """Hold every resource busy until ``until`` (crash-recovery stall).

        Used by the fault layer: after a power-loss event the drive spends
        the recovery scan rebuilding its mapping, during which no host or
        GC operation can start.  Idle time is pushed forward without being
        counted as busy time, so utilisation stays an activity measure.
        """
        for timeline in self.chips:
            timeline.busy_until = max(timeline.busy_until, until)
        for timeline in self.channels:
            timeline.busy_until = max(timeline.busy_until, until)
        self.hash_unit.busy_until = max(self.hash_unit.busy_until, until)

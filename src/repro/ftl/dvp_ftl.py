"""Factories assembling the paper's studied systems (Section V-A).

Each factory wires an FTL variant to the right dead-value pool and GC
policy.  The string registry :data:`SYSTEMS` is what the experiment runner
and the benchmarks select systems by.

===================  ========================================================
Name                 Composition
===================  ========================================================
``baseline``         plain FTL, greedy GC, no content machinery
``lru-dvp``          FTL + LRU dead-value pool (Section III-A strawman)
``mq-dvp``           FTL + MQ dead-value pool + popularity-aware GC (proposal)
``ideal``            FTL + infinite dead-value pool (upper bound)
``lxssd``            FTL + LBA-recency pool, read+write popularity (prior art)
``dedup``            deduplicating FTL, no pool
``dvp+dedup``        deduplicating FTL + MQ pool + popularity-aware GC
``adaptive-dvp``     FTL + self-sizing MQ pool (the paper's future work)
``dftl-baseline``    demand-paged mapping (DFTL CMT), no pool
``dftl-mq-dvp``      demand-paged mapping + MQ pool + popularity-aware GC
===================  ========================================================

The ``dftl-*`` variants price mapping lookups as flash traffic
(translation-page reads/programs, see :mod:`repro.ftl.dftl`); they answer
the adopter question of whether pool gains survive realistic mapping cost,
and give the KV scenario (:mod:`repro.kv`) its DFTL backdrop.
"""

from __future__ import annotations

from typing import Callable, Dict

from ..core.dvp import pool_from_name
from ..flash.config import SSDConfig
from .dedup import DedupFTL
from .dftl import DFTLFtl
from .ftl import BaseFTL

__all__ = [
    "make_baseline",
    "make_lru_dvp",
    "make_mq_dvp",
    "make_ideal",
    "make_lxssd",
    "make_adaptive_dvp",
    "make_dedup",
    "make_dvp_dedup",
    "make_dftl_baseline",
    "make_dftl_mq_dvp",
    "SYSTEMS",
    "POOL_OFF_SYSTEM",
    "build_system",
]

#: The paper's default pool: 8 queues, 200K entries ≈ 5MB (Section V-A).
DEFAULT_NUM_QUEUES = 8


def make_baseline(config: SSDConfig) -> BaseFTL:
    """The baseline system: no dead-value pool, greedy GC."""
    return BaseFTL(config)


def make_lru_dvp(config: SSDConfig, pool_entries: int) -> BaseFTL:
    """FTL with the recency-only pool of Figure 5."""
    return BaseFTL(config, pool=pool_from_name("lru", pool_entries))


def make_mq_dvp(
    config: SSDConfig,
    pool_entries: int,
    num_queues: int = DEFAULT_NUM_QUEUES,
    popularity_aware_gc: bool = True,
    gc_weight: float = 1.0,
) -> BaseFTL:
    """The proposal: MQ dead-value pool plus popularity-aware GC."""
    return BaseFTL(
        config,
        pool=pool_from_name("mq", pool_entries, num_queues=num_queues),
        popularity_aware_gc=popularity_aware_gc,
        gc_weight=gc_weight,
    )


def make_ideal(config: SSDConfig) -> BaseFTL:
    """Infinite pool: the maximum achievable gain, not implementable."""
    return BaseFTL(config, pool=pool_from_name("infinite"))


def make_lxssd(config: SSDConfig, pool_entries: int) -> BaseFTL:
    """LX-SSD (Zhou et al., MSST 2017) as characterised by the paper."""
    return BaseFTL(
        config,
        pool=pool_from_name("lba-recency", pool_entries),
        combine_read_popularity=True,
    )


def make_adaptive_dvp(
    config: SSDConfig,
    pool_entries: int,
    num_queues: int = DEFAULT_NUM_QUEUES,
    popularity_aware_gc: bool = True,
) -> BaseFTL:
    """The future-work variant: the MQ pool resizes itself to the workload
    (starts at a quarter of the given budget, may grow to it)."""
    return BaseFTL(
        config,
        pool=pool_from_name("adaptive", pool_entries, num_queues=num_queues),
        popularity_aware_gc=popularity_aware_gc,
    )


def make_dedup(config: SSDConfig) -> DedupFTL:
    """Deduplicated SSD, no garbage recycling."""
    return DedupFTL(config)


def make_dvp_dedup(
    config: SSDConfig,
    pool_entries: int,
    num_queues: int = DEFAULT_NUM_QUEUES,
    gc_weight: float = 1.0,
) -> DedupFTL:
    """DVP+Dedup: the combined system of Section VII."""
    return DedupFTL(
        config,
        pool=pool_from_name("mq", pool_entries, num_queues=num_queues),
        popularity_aware_gc=True,
        gc_weight=gc_weight,
    )


def make_dftl_baseline(config: SSDConfig) -> DFTLFtl:
    """Demand-paged mapping, no content machinery."""
    return DFTLFtl(config)


def make_dftl_mq_dvp(
    config: SSDConfig,
    pool_entries: int,
    num_queues: int = DEFAULT_NUM_QUEUES,
) -> DFTLFtl:
    """The proposal on a demand-paged mapping table: every host op pays
    CMT cost, so revival savings compete with translation traffic."""
    return DFTLFtl(
        config,
        pool=pool_from_name("mq", pool_entries, num_queues=num_queues),
        popularity_aware_gc=True,
    )


#: name → factory(config, pool_entries) used by the experiment harness.
#: Factories that take no pool size ignore the argument.
SYSTEMS: Dict[str, Callable[[SSDConfig, int], BaseFTL]] = {
    "baseline": lambda cfg, n: make_baseline(cfg),
    "lru-dvp": make_lru_dvp,
    "mq-dvp": make_mq_dvp,
    "ideal": lambda cfg, n: make_ideal(cfg),
    "lxssd": make_lxssd,
    "adaptive-dvp": make_adaptive_dvp,
    "dedup": lambda cfg, n: make_dedup(cfg),
    "dvp+dedup": make_dvp_dedup,
    "dftl-baseline": lambda cfg, n: make_dftl_baseline(cfg),
    "dftl-mq-dvp": make_dftl_mq_dvp,
}

#: Each pool-bearing system's pool-less counterpart, for on/off ablations
#: (same FTL family and GC policy machinery, no dead-value pool).
POOL_OFF_SYSTEM: Dict[str, str] = {
    "lru-dvp": "baseline",
    "mq-dvp": "baseline",
    "ideal": "baseline",
    "lxssd": "baseline",
    "adaptive-dvp": "baseline",
    "dvp+dedup": "dedup",
    "dftl-mq-dvp": "dftl-baseline",
}


def build_system(name: str, config: SSDConfig, pool_entries: int) -> BaseFTL:
    """Instantiate a studied system by registry name."""
    try:
        factory = SYSTEMS[name]
    except KeyError:
        raise ValueError(
            f"unknown system {name!r}; choose from {sorted(SYSTEMS)}"
        ) from None
    return factory(config, pool_entries)

"""Event-driven SSD model with pluggable per-chip schedulers.

The timeline model (:class:`~repro.sim.ssd.SimulatedSSD`) serves every
resource FIFO.  SSDSim — the paper's platform — is event-driven with
request schedulers; some of the paper's related work (HIOS [11]) is about
exactly such scheduling.  This module rebuilds the device on the
:class:`~repro.sim.engine.EventEngine` so the per-chip service *order*
becomes a policy:

``fifo``
    Serve chip operations in submission order — semantically identical to
    the timeline model (the cross-validation tests assert equal results).
``read-priority``
    Queued host reads overtake queued programs/erases (an ongoing
    operation is never preempted).  This is the classic mitigation for
    the read-behind-write/GC interference the paper measures; the
    benchmark ``test_ablation_read_priority.py`` quantifies how much of
    the paper's latency win it does (and does not) replace.

The FTL is shared unchanged: state mutates at request arrival (same as
the timeline model), the DES prices the physical work.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Iterable, Optional

from ..ftl.ftl import BaseFTL
from ..ftl.gc import GCWork
from .engine import EventEngine
from .logging import CompletionLog
from .metrics import LatencyStats, RunResult
from .request import CompletedRequest, IORequest, OpType

__all__ = ["ChipOp", "ChipServer", "EventDrivenSSD"]


@dataclass(slots=True)
class ChipOp:
    """One flash-array operation queued at a chip."""

    kind: str                 # 'read' | 'program' | 'erase'
    duration_us: float
    on_complete: Callable[[float], None] = field(
        default=lambda _t: None
    )
    is_host_read: bool = False


class ChipServer:
    """A chip with a queue and a scheduling policy."""

    def __init__(self, engine: EventEngine, policy: str = "fifo"):
        if policy not in ("fifo", "read-priority"):
            raise ValueError(f"unknown policy {policy!r}")
        self.engine = engine
        self.policy = policy
        self.queue: Deque[ChipOp] = deque()
        self.busy = False
        self.busy_time = 0.0
        self.op_count = 0

    def submit(self, op: ChipOp) -> None:
        self.queue.append(op)
        if not self.busy:
            self._start_next()

    def _pick(self) -> ChipOp:
        if self.policy == "read-priority":
            for index, op in enumerate(self.queue):
                if op.is_host_read:
                    del self.queue[index]
                    return op
        return self.queue.popleft()

    def _start_next(self) -> None:
        if not self.queue:
            return
        op = self._pick()
        self.busy = True
        self.busy_time += op.duration_us
        self.op_count += 1

        def complete() -> None:
            self.busy = False
            op.on_complete(self.engine.now)
            self._start_next()

        self.engine.schedule_in(op.duration_us, complete)

    @property
    def idle(self) -> bool:
        return not self.busy and not self.queue


class EventDrivenSSD:
    """The event-driven counterpart of :class:`~repro.sim.ssd.SimulatedSSD`.

    Channels and the hash unit stay FIFO (there is no sensible reordering
    for a wire); chips take the configurable policy.
    """

    def __init__(
        self,
        ftl: BaseFTL,
        chip_policy: str = "fifo",
        log: Optional[CompletionLog] = None,
        observer=None,
    ):
        self.ftl = ftl
        #: Optional :class:`~repro.obs.TimeSeriesSampler`, ticked once
        #: per completed host request with the completion time.
        self.observer = observer
        if observer is not None:
            observer.attach(ftl)
        config = ftl.config
        self.timing = config.timing
        self.geometry = ftl.array.geometry
        self.engine = EventEngine()
        self.chips = [
            ChipServer(self.engine, chip_policy)
            for _ in range(config.total_chips)
        ]
        self.channels = [
            ChipServer(self.engine, "fifo") for _ in range(config.channels)
        ]
        self.hash_unit = ChipServer(self.engine, "fifo")
        self._chips_per_channel = config.chips_per_channel
        self.log = log
        self.reads = LatencyStats()
        self.writes = LatencyStats()
        self.horizon_us = 0.0

    # ------------------------------------------------------------------
    # Op-chain plumbing
    # ------------------------------------------------------------------

    def _channel_of(self, chip: int) -> ChipServer:
        return self.channels[chip // self._chips_per_channel]

    def _chip_op(
        self,
        chip: int,
        kind: str,
        flash_us: float,
        then: Callable[[float], None],
        is_host_read: bool = False,
    ) -> None:
        """Channel transfer followed by the chip array operation."""

        def after_xfer(_t: float) -> None:
            self.chips[chip].submit(ChipOp(
                kind=kind, duration_us=flash_us, on_complete=then,
                is_host_read=is_host_read,
            ))

        self._channel_of(chip).submit(ChipOp(
            kind="xfer", duration_us=self.timing.channel_xfer_us,
            on_complete=after_xfer,
        ))

    def _erase_op(
        self, chip: int, then: Callable[[float], None]
    ) -> None:
        self.chips[chip].submit(ChipOp(
            kind="erase", duration_us=self.timing.erase_us, on_complete=then,
        ))

    def _charge_gc(self, work: GCWork) -> None:
        for old_ppn, _new_ppn in work.relocations:
            chip = self.geometry.chip_of_ppn(old_ppn)
            self._chip_op(chip, "read", self.timing.read_us, lambda _t: None)
            self._chip_op(
                chip, "program", self.timing.program_us, lambda _t: None
            )
        for block in work.erased_blocks:
            self._erase_op(self.geometry.chip_of_block(block), lambda _t: None)

    # ------------------------------------------------------------------
    # Request handling (fires inside arrival events)
    # ------------------------------------------------------------------

    def _finish(self, request: IORequest, finish_us: float,
                short_circuited: bool = False, dedup_hit: bool = False) -> None:
        completed = CompletedRequest(
            request=request, start_us=request.arrival_us,
            finish_us=finish_us, short_circuited=short_circuited,
            dedup_hit=dedup_hit,
        )
        latency = completed.latency_us
        if request.op is OpType.WRITE:
            self.writes.record(latency)
        elif request.op is OpType.READ:
            self.reads.record(latency)
        if self.log is not None:
            self.log.record(completed)
        if finish_us > self.horizon_us:
            self.horizon_us = finish_us
        if self.observer is not None:
            self.observer.on_request(finish_us)

    def _handle_write(self, request: IORequest) -> None:
        outcome = self.ftl.write(request.lpn, request.fingerprint)

        def place() -> None:
            """Mapping tables are updated; move the data (or don't)."""
            if outcome.program_ppn is None:
                self._finish(
                    request, self.engine.now,
                    short_circuited=outcome.short_circuited,
                    dedup_hit=outcome.dedup_hit,
                )
                return
            # GC ran before the allocation: its ops occupy the chip first.
            if outcome.gc is not None:
                self._charge_gc(outcome.gc)
            chip = self.geometry.chip_of_ppn(outcome.program_ppn)
            self._chip_op(
                chip, "program", self.timing.program_us,
                lambda finish: self._finish(request, finish),
            )

        def after_mapping() -> None:
            if outcome.verify_read_ppn is not None:
                chip = self.geometry.chip_of_ppn(outcome.verify_read_ppn)
                self._chip_op(
                    chip, "read", self.timing.read_us, lambda _t: place()
                )
            else:
                place()

        def after_hash(_t: float) -> None:
            self.engine.schedule_in(self.timing.mapping_us, after_mapping)

        if outcome.hashed:
            self.hash_unit.submit(ChipOp(
                kind="hash", duration_us=self.timing.hash_us,
                on_complete=after_hash,
            ))
        else:
            after_hash(self.engine.now)

    def _handle_read(self, request: IORequest) -> None:
        outcome = self.ftl.read(request.lpn)
        if outcome.ppn is None:
            self._finish(request, self.engine.now + self.timing.mapping_us)
            return

        def after_mapping() -> None:
            chip = self.geometry.chip_of_ppn(outcome.ppn)
            self._chip_op(
                chip, "read", self.timing.read_us,
                lambda finish: self._finish(request, finish),
                is_host_read=True,
            )

        self.engine.schedule_in(self.timing.mapping_us, after_mapping)

    def _handle_trim(self, request: IORequest) -> None:
        self.ftl.trim(request.lpn)
        self._finish(request, self.engine.now + self.timing.mapping_us)

    # ------------------------------------------------------------------

    def run(
        self,
        requests: Iterable[IORequest],
        system: str = "",
        workload: str = "",
    ) -> RunResult:
        """Replay a whole trace through the event loop."""
        handlers = {
            OpType.WRITE: self._handle_write,
            OpType.READ: self._handle_read,
            OpType.TRIM: self._handle_trim,
        }
        for request in requests:
            self.engine.schedule(
                request.arrival_us,
                lambda r=request: handlers[r.op](r),
            )
        self.engine.run()
        return RunResult(
            system=system,
            workload=workload,
            counters=self.ftl.counters,
            reads=self.reads,
            writes=self.writes,
            horizon_us=self.horizon_us,
        )

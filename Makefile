PYTHON ?= python
export PYTHONPATH := src

.PHONY: test lint perf-smoke bench figures

test: lint
	$(PYTHON) -m pytest -q

# Static checks over the newest surfaces (the fault layer and the pool
# Protocol).  Both tools are optional: environments without ruff/mypy
# (e.g. the minimal CI image) skip them with a notice instead of failing.
lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src/repro/faults src/repro/core/dvp.py; \
	else \
		echo "lint: ruff not installed, skipping"; \
	fi
	@if command -v mypy >/dev/null 2>&1; then \
		mypy src/repro/faults src/repro/core/dvp.py; \
	else \
		echo "lint: mypy not installed, skipping"; \
	fi

# Tiny parallel-engine smoke: process-pool round trip, caches, bench
# harness shape.  Part of the plain suite too; this target isolates it.
perf-smoke:
	$(PYTHON) -m pytest -q -m perf_smoke

# Refresh the tracked perf report (serial vs parallel canonical matrix).
bench:
	$(PYTHON) benchmarks/perf/harness.py --out BENCH_matrix.json

figures:
	$(PYTHON) -m pytest benchmarks -q -s

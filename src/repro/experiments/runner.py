"""Experiment runner: trace → prefilled drive → simulated system → results.

The paper's evaluation replays day-long traces against a 1TB drive with
dead-value pools of 100K–1M entries.  A pure-Python run scales everything
down together (DESIGN.md §4): the trace (`scale` × requests and footprint),
the drive (sized to the workload's footprint) and the pool
(:func:`scaled_pool_entries` keeps the paper's 100K/200K/300K labels but
shrinks the entry counts proportionally, so the Figure 5/9 sweep shape —
growth then saturation around the 200K point — is preserved).

Every run starts from a *preconditioned* drive: each exported logical page
is written once with its unique initial value (matching the trace
generator's content model), then counters, pool statistics and latency
state are reset.  This is what lets cold reads hit real flash pages and
puts GC in steady state from the first trace request.

:func:`run_system` is a thin driver over the composable
:class:`~repro.experiments.device.Device` lifecycle
(build → precondition → attach → step → finalize); the fleet layer
(:mod:`repro.fleet`) drives the same lifecycle per shard, so single-drive
and sharded semantics cannot drift apart.

All entry points take a :class:`RunConfig`.  The pre-RunConfig flat
kwargs (``run_system(system, context, paper_pool_entries=..., scale=...)``
and friends) were deprecated in PR 3 and have been removed; passing
anything but a :class:`RunConfig` (or ``None``) raises :class:`TypeError`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Optional,
    Sequence,
)

from ..core.dvp import PoolStats
from ..core.hashing import fingerprint_of_value
from ..flash.config import SSDConfig, scaled_config
from ..ftl.ftl import BaseFTL, FTLCounters
from ..sim.metrics import RunResult
from ..sim.request import IORequest
from ..traces.profiles import WorkloadProfile, profile_by_name
from ..traces.synthetic import generate_trace, initial_value_of
from .config import DEFAULT_SCALE, RunConfig
from .device import Device

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..obs.sampler import TimeSeriesSampler

__all__ = [
    "DEFAULT_SCALE",
    "POOL_ENTRY_SCALE",
    "RunConfig",
    "scaled_pool_entries",
    "prefill",
    "config_for_profile",
    "run_system",
    "run_matrix",
    "ExperimentContext",
]

#: Paper pool entries → scaled entries: at scale s, a "200K-entry" pool
#: becomes 200_000 * s * POOL_ENTRY_SCALE entries.  The factor was chosen
#: so the scaled sweep saturates around the 200K label the way Figure 9
#: does on the full traces.
POOL_ENTRY_SCALE = 1.0 / 12.0


def scaled_pool_entries(paper_entries: int, scale: float) -> int:
    """Scaled pool capacity for a paper-labelled pool size."""
    if paper_entries <= 0:
        raise ValueError("paper_entries must be positive")
    return max(64, int(paper_entries * scale * POOL_ENTRY_SCALE))


def config_for_profile(profile: WorkloadProfile) -> SSDConfig:
    """A drive sized so the workload's footprint occupies only its
    ``fill_fraction`` of the exported capacity (drive slack matters: the
    paper replays day-traces against a 1TB drive)."""
    return scaled_config(int(profile.total_pages / profile.fill_fraction))


def prefill(ftl: BaseFTL, profile: WorkloadProfile) -> int:
    """Precondition the drive: write every page's initial unique value.

    Returns the number of pages written.  Counters and pool statistics are
    reset afterwards so measurements cover only the trace window.
    """
    pages = profile.total_pages
    for lpn in range(pages):
        ftl.write(lpn, fingerprint_of_value(initial_value_of(lpn)))
    ftl.counters = FTLCounters()
    if ftl.pool is not None:
        ftl.pool.stats = PoolStats()
    return pages


@dataclass
class ExperimentContext:
    """Shared setup for a family of runs over one workload."""

    profile: WorkloadProfile
    trace: Sequence[IORequest]
    config: SSDConfig

    @classmethod
    def for_workload(
        cls,
        workload: str,
        scale: float = DEFAULT_SCALE,
        seed: Optional[int] = None,
        use_cache: bool = True,
    ) -> "ExperimentContext":
        """Build the shared context for one workload.

        ``seed`` overrides the profile's generator seed (replication runs
        vary it).  With ``use_cache`` the trace comes from the process
        trace cache — generated at most once per distinct profile — and
        is a *tuple*: cached traces are shared across every context built
        for the profile, and handing out something list-like once let an
        in-place ``sort()`` in one analysis poison every later run.  Pass
        ``use_cache=False`` for a private, mutable list.
        """
        profile = profile_by_name(workload).scaled(scale)
        if seed is not None:
            profile = replace(profile, seed=seed)
        trace: Sequence[IORequest]
        if use_cache:
            from ..perf.trace_cache import cached_trace

            trace = cached_trace(profile)
        else:
            trace = generate_trace(profile)
        return cls(
            profile=profile,
            trace=trace,
            config=config_for_profile(profile),
        )


def _coerce_config(func: str, config: Optional[RunConfig]) -> RunConfig:
    """Validate the ``config`` argument (the legacy flat kwargs are gone)."""
    if config is None:
        return RunConfig()
    if not isinstance(config, RunConfig):
        raise TypeError(
            f"{func} takes config=RunConfig(...); the pre-RunConfig "
            f"positional/keyword arguments were removed (see README, "
            f"'Migrating to RunConfig')"
        )
    return config


def run_system(
    system: str,
    context: ExperimentContext,
    config: Optional[RunConfig] = None,
) -> RunResult:
    """Run one studied system over one prepared workload context.

    ``config`` (a :class:`RunConfig`) carries every run parameter beyond
    the (system, workload) identity; ``run_system(system, context)``
    alone runs with the defaults.

    ``config.observer`` (a :class:`~repro.obs.TimeSeriesSampler`) is
    attached after preconditioning so samples cover only the measured
    trace window; a final sample is forced at the run horizon so short
    traces always produce at least one record.  ``registry``/``tracer``
    are wired through :meth:`BaseFTL.attach_observability`, and
    ``config.faults`` attaches a fresh seeded
    :class:`~repro.faults.FaultModel` — also post-precondition, so the
    prefill snapshot cache stays fault-free.

    With ``config.reuse_prefill`` (the default) preconditioning goes
    through the process prefill cache: the first run of an FTL family
    pays the per-page write loop, siblings restore the snapshot by copy.
    The restored state is bit-identical to a direct prefill (the
    determinism tests enforce this).
    """
    cfg = _coerce_config("run_system", config)
    entries = scaled_pool_entries(cfg.paper_pool_entries, cfg.scale)
    device = Device(system, context.config, entries)
    device.precondition(context.profile, reuse_prefill=cfg.reuse_prefill)
    device.attach(cfg)
    trace = context.trace
    if cfg.trim_every:
        from ..traces.transforms import with_trims

        trace = with_trims(trace, cfg.trim_every)
    device.step(trace)
    return device.finalize(workload=context.profile.name)


def run_matrix(
    workloads: Sequence[str],
    systems: Sequence[str],
    config: Optional[RunConfig] = None,
    *,
    observer_factory: Optional[
        Callable[[str, str], "TimeSeriesSampler"]
    ] = None,
) -> Dict[str, Dict[str, RunResult]]:
    """Run every (workload, system) pair; results[workload][system].

    ``config`` (a :class:`RunConfig`) carries the per-run parameters;
    its ``jobs`` field fans cells out over worker processes (``0`` = all
    cores); results are collected in deterministic (workload, system)
    order and are digest-identical to the serial path.

    ``observer_factory(workload, system)`` builds a fresh per-cell
    :class:`~repro.obs.TimeSeriesSampler`; samplers hold callbacks that
    cannot cross a process boundary, so observers require ``jobs=1``.
    ``config.faults`` applies the *same* fault config to every cell —
    each cell gets its own freshly seeded model, which is what keeps
    fault matrices bit-identical across ``jobs`` settings.
    """
    cfg = _coerce_config("run_matrix", config)
    if observer_factory is not None and cfg.jobs != 1:
        raise ValueError(
            "observer_factory requires jobs=1: samplers are attached to "
            "the live device and cannot be shipped to worker processes"
        )
    if cfg.jobs != 1:
        if not cfg.picklable:
            raise ValueError(
                "a RunConfig carrying an observer/registry/tracer cannot "
                "fan out to worker processes; use jobs=1"
            )
        from ..perf.parallel import run_specs
        from ..perf.spec import RunSpec

        specs = [
            RunSpec.from_config(workload, system, cfg)
            for workload in workloads
            for system in systems
        ]
        flat = iter(run_specs(specs, jobs=cfg.jobs))
        return {
            workload: {system: next(flat) for system in systems}
            for workload in workloads
        }
    results: Dict[str, Dict[str, RunResult]] = {}
    for workload in workloads:
        context = ExperimentContext.for_workload(workload, cfg.scale)
        results[workload] = {}
        for system in systems:
            cell_cfg = cfg
            if observer_factory is not None:
                cell_cfg = cfg.replace(
                    observer=observer_factory(workload, system)
                )
            results[workload][system] = run_system(
                system, context, config=cell_cfg
            )
    return results

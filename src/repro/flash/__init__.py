"""NAND flash substrate: geometry, timing, block/array state.

This package rebuilds the device model the paper gets from SSDSim [13]:
the Table I drive (channels × chips × dies × planes × blocks × pages with
asymmetric read/program/erase latencies) as pure-Python state machines.
"""

from .array import FlashArray
from .block import Block, PageState
from .config import SSDConfig, TimingParams, paper_config, scaled_config
from .geometry import Geometry, PageAddress
from .timing import ResourceTimeline, TimelineSet

__all__ = [
    "SSDConfig",
    "TimingParams",
    "paper_config",
    "scaled_config",
    "Geometry",
    "PageAddress",
    "Block",
    "PageState",
    "FlashArray",
    "ResourceTimeline",
    "TimelineSet",
]

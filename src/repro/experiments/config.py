"""One frozen configuration object for every way the repo runs a system.

Run parameters used to travel as a flat kwarg list (`paper_pool_entries`,
``scale``, ``queue_depth``, ...) copied across :func:`~repro.experiments.
runner.run_system`, :func:`~repro.experiments.runner.run_matrix`,
:class:`~repro.experiments.figures.EvaluationMatrix` and
:class:`~repro.perf.spec.RunSpec` — four signatures to keep in sync, and
no place to put new knobs (the fault layer added three more).

:class:`RunConfig` replaces that: one frozen dataclass carrying everything
a run needs beyond its identity (workload/system stay positional — they
*name* the run; the config describes *how* to run it).  It is immutable,
so one instance can safely be shared across a whole matrix, and —
``observer``/``registry``/``tracer`` aside — picklable, so
``RunSpec.from_config`` can ship it to worker processes.

The old kwargs still work for one release and raise
``DeprecationWarning``; see README's migration notes.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from ..faults.model import FaultConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs.registry import MetricRegistry
    from ..obs.sampler import TimeSeriesSampler
    from ..obs.tracer import Tracer

__all__ = ["DEFAULT_SCALE", "RunConfig"]

#: Default down-scale applied by the benchmarks (see EXPERIMENTS.md).
DEFAULT_SCALE = 0.25


@dataclass(frozen=True)
class RunConfig:
    """How to run a system: everything but the (workload, system) identity.

    Parameters
    ----------
    paper_pool_entries:
        Dead-value-pool size in the paper's own labels (100K/200K/...);
        scaled down via :func:`~repro.experiments.runner.scaled_pool_entries`.
    scale:
        Workload down-scale factor (DESIGN.md §4).
    queue_depth:
        Device queue depth override (``None`` = the config's value).
    observer:
        A :class:`~repro.obs.TimeSeriesSampler` attached to the device for
        the measured window.  Holds callbacks — not picklable, so configs
        carrying one cannot fan out to worker processes.
    registry / tracer:
        Wired through :meth:`~repro.ftl.ftl.BaseFTL.attach_observability`.
    reuse_prefill:
        Precondition via the process prefill cache (bit-identical to a
        direct prefill; the determinism tests enforce it).
    jobs:
        Worker processes for multi-cell entry points (``run_matrix``,
        ``EvaluationMatrix``); ignored by single-run ``run_system``.
        ``0`` means all cores.
    faults:
        A :class:`~repro.faults.FaultConfig`, or ``None`` for the perfect
        device.  The fault model attaches *after* preconditioning, so the
        prefill snapshot cache stays fault-free and a ``faults=None`` run
        is digest-identical to one from a build without the fault layer.
    check_interval:
        Events between full :class:`~repro.check.InvariantChecker` audits
        (``None`` disables checking entirely — the default; checking reads
        but never mutates FTL state, so enabling it leaves result digests
        unchanged).
    oracle:
        Also run the lockstep :class:`~repro.check.OracleFTL`, cross-
        checking every read result, revival decision and trim against a
        dict-based reference model.  Implies checking even when
        ``check_interval`` is ``None`` (the default audit cadence is
        used).
    trim_every:
        Inject a TRIM after every Nth write of the trace (``0`` = none),
        via :func:`~repro.traces.transforms.with_trims`.  Exercises the
        discard/revival/recovery paths the synthetic profiles never
        touch; note this *changes the trace*, so digests differ from the
        untrimmed run by construction.
    """

    paper_pool_entries: int = 200_000
    scale: float = DEFAULT_SCALE
    queue_depth: Optional[int] = None
    observer: Optional["TimeSeriesSampler"] = None
    registry: Optional["MetricRegistry"] = None
    tracer: Optional["Tracer"] = None
    reuse_prefill: bool = True
    jobs: int = 1
    faults: Optional[FaultConfig] = None
    check_interval: Optional[int] = None
    oracle: bool = False
    trim_every: int = 0

    def __post_init__(self) -> None:
        if self.paper_pool_entries <= 0:
            raise ValueError("paper_pool_entries must be positive")
        if self.scale <= 0:
            raise ValueError("scale must be positive")
        if self.queue_depth is not None and self.queue_depth <= 0:
            raise ValueError("queue_depth must be positive when set")
        if self.jobs < 0:
            raise ValueError("jobs must be >= 0 (0 = all cores)")
        if self.faults is not None and not isinstance(self.faults, FaultConfig):
            raise TypeError("faults must be a FaultConfig or None")
        if self.check_interval is not None and self.check_interval <= 0:
            raise ValueError("check_interval must be positive when set")
        if self.trim_every < 0:
            raise ValueError("trim_every must be non-negative (0 = no trims)")

    def replace(self, **changes: object) -> "RunConfig":
        """A copy with ``changes`` applied (the dataclasses idiom, bound
        as a method so call sites need no extra import)."""
        return dataclasses.replace(self, **changes)

    @property
    def checking(self) -> bool:
        """Whether this run attaches an invariant checker (either knob)."""
        return self.check_interval is not None or self.oracle

    @property
    def picklable(self) -> bool:
        """Whether this config can cross a process boundary (observers,
        registries and tracers hold live callbacks and cannot)."""
        return (
            self.observer is None
            and self.registry is None
            and self.tracer is None
        )

"""End-to-end integration: trace generation → prefill → simulation → metrics.

These tests run the whole pipeline the way the benchmarks do, just smaller,
and check cross-module consistency that no unit test can see.
"""

import pytest

from repro.experiments.runner import (
    ExperimentContext,
    RunConfig,
    config_for_profile,
    prefill,
    run_system,
)
from repro.flash.block import PageState
from repro.ftl.dvp_ftl import build_system
from repro.sim.request import OpType
from repro.sim.ssd import SimulatedSSD
from repro.traces.synthetic import generate_trace

from ..conftest import make_profile


@pytest.fixture(scope="module")
def context():
    profile = make_profile(
        num_requests=8000, working_set_pages=800, new_value_prob=0.2,
        targets=__import__(
            "repro.traces.profiles", fromlist=["TableIITargets"]
        ).TableIITargets(0.8, 0.2, 0.5),
    )
    return ExperimentContext(
        profile=profile,
        trace=generate_trace(profile),
        config=config_for_profile(profile),
    )


ALL_SYSTEMS = [
    "baseline", "lru-dvp", "mq-dvp", "ideal", "lxssd", "dedup", "dvp+dedup",
]


@pytest.fixture(scope="module")
def results(context):
    return {
        system: run_system(
            system, context,
            RunConfig(paper_pool_entries=200_000, scale=0.05),
        )
        for system in ALL_SYSTEMS
    }


class TestAccountingIdentities:
    @pytest.mark.parametrize("system", ALL_SYSTEMS)
    def test_every_write_is_accounted(self, results, context, system):
        c = results[system].counters
        writes = sum(1 for r in context.trace if r.op is OpType.WRITE)
        assert c.host_writes == writes
        assert c.programs + c.short_circuits + c.dedup_hits == writes

    @pytest.mark.parametrize("system", ALL_SYSTEMS)
    def test_every_request_measured(self, results, context, system):
        result = results[system]
        assert result.all_requests.count == len(context.trace)

    @pytest.mark.parametrize("system", ALL_SYSTEMS)
    def test_nonnegative_latencies(self, results, system):
        result = results[system]
        assert result.mean_latency_us >= 0
        assert result.p99_latency_us >= result.all_requests.percentile(50)


class TestSystemOrdering:
    """The partial order the paper's evaluation relies on."""

    def test_ideal_saves_at_least_as_much_as_mq(self, results):
        assert results["ideal"].flash_writes <= results["mq-dvp"].flash_writes

    def test_mq_beats_lru_at_equal_size(self, results):
        assert (
            results["mq-dvp"].flash_writes <= results["lru-dvp"].flash_writes
        )

    def test_dvp_beats_lxssd(self, results):
        assert results["mq-dvp"].flash_writes < results["lxssd"].flash_writes

    def test_every_dvp_variant_beats_baseline(self, results):
        base = results["baseline"].flash_writes
        for system in ("mq-dvp", "ideal", "lru-dvp", "lxssd"):
            assert results[system].flash_writes < base

    def test_dvp_dedup_beats_dedup_alone(self, results):
        assert (
            results["dvp+dedup"].flash_writes <= results["dedup"].flash_writes
        )

    def test_short_circuits_only_in_pool_systems(self, results):
        assert results["baseline"].counters.short_circuits == 0
        assert results["dedup"].counters.short_circuits == 0
        assert results["mq-dvp"].counters.short_circuits > 0
        assert results["dvp+dedup"].counters.short_circuits > 0


class TestDriveStateAfterRun:
    @pytest.mark.parametrize("system", ALL_SYSTEMS)
    def test_ftl_invariants_hold_after_full_run(self, context, system):
        ftl = build_system(system, context.config, 512)
        prefill(ftl, context.profile)
        device = SimulatedSSD(ftl)
        for request in context.trace:
            device.submit(request)
        ftl.check_invariants()

    def test_mapped_content_matches_trace(self, context):
        """After the run, every logical page holds exactly the last value
        the trace wrote there (or its initial value)."""
        from repro.traces.synthetic import initial_value_of

        ftl = build_system("mq-dvp", context.config, 512)
        prefill(ftl, context.profile)
        device = SimulatedSSD(ftl)
        final = {}
        for request in context.trace:
            device.submit(request)
            if request.op is OpType.WRITE:
                final[request.lpn] = request.value_id
        for lpn in range(0, context.profile.total_pages, 37):
            expected = final.get(lpn, initial_value_of(lpn))
            ppn = ftl.mapping.lookup(lpn)
            assert ppn is not None
            assert ftl.fingerprint_at(ppn).key == expected
            assert ftl.array.state_of(ppn) is PageState.VALID

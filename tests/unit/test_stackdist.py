"""Unit tests for the stack-distance (Mattson) LRU pool analysis."""

import pytest

from repro.analysis.characterize import pool_write_study
from repro.analysis.stackdist import lru_hit_curve
from repro.core.dvp import LRUDeadValuePool
from repro.sim.request import IORequest, OpType
from repro.traces.synthetic import generate_trace

from ..conftest import make_profile


def w(lpn, value):
    return IORequest(0.0, OpType.WRITE, lpn, value)


class TestBasics:
    def test_no_redundancy_no_hits(self):
        trace = [w(i, i) for i in range(50)]
        analysis = lru_hit_curve(trace)
        assert analysis.total_writes == 50
        assert analysis.infinite_hits == 0
        assert analysis.hits_for_capacity(1000) == 0

    def test_immediate_rebirth_distance_two(self):
        # Alternating two values on one page: each lookup finds its value
        # behind the *other* value's just-inserted death -> distance 2,
        # so a 1-entry pool misses every time (matching the exact pool).
        trace = [w(0, i % 2) for i in range(20)]
        analysis = lru_hit_curve(trace)
        assert analysis.infinite_hits == 18
        assert analysis.distance_histogram == {2: 18}
        assert analysis.hits_for_capacity(1) == 0
        assert analysis.hits_for_capacity(2) == 18

    def test_distance_counts_intervening_entries(self):
        # Kill values 1, 2, 3 (in that order), then rewrite value 1:
        # entries 3 and 2 are fresher, so 1 sits at distance 3.
        trace = [
            w(0, 1), w(1, 2), w(2, 3),
            w(0, 10), w(1, 20), w(2, 30),   # deaths: 1, 2, 3
            w(3, 1),                          # rebirth of value 1
        ]
        analysis = lru_hit_curve(trace)
        assert analysis.distance_histogram == {3: 1}
        assert analysis.hits_for_capacity(2) == 0
        assert analysis.hits_for_capacity(3) == 1

    def test_curve_monotone(self):
        trace = generate_trace(make_profile(num_requests=4000))
        analysis = lru_hit_curve(trace)
        capacities = [1, 8, 64, 512, 4096]
        serviced = [s for _, s in analysis.curve(capacities)]
        assert serviced == sorted(serviced, reverse=True)

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            lru_hit_curve([]).hits_for_capacity(0)


class TestAgainstExactSimulation:
    @pytest.fixture(scope="class")
    def trace(self):
        return generate_trace(
            make_profile(num_requests=8000, new_value_prob=0.25)
        )

    def test_infinite_hits_exact(self, trace):
        from repro.core.dvp import InfiniteDeadValuePool

        analysis = lru_hit_curve(trace)
        exact = pool_write_study(trace, InfiniteDeadValuePool())
        assert analysis.infinite_hits == exact.short_circuited

    @pytest.mark.parametrize("capacity", [32, 128, 1024])
    def test_bounded_prediction_close_to_exact(self, trace, capacity):
        """Multi-copy consumption makes the curve approximate; on
        paper-like workloads the error stays within a few percent."""
        analysis = lru_hit_curve(trace)
        exact = pool_write_study(trace, LRUDeadValuePool(capacity))
        predicted = analysis.hits_for_capacity(capacity)
        # Consumption of multi-copy entries makes the inclusion property
        # approximate: the one-pass curve overestimates small pools by up
        # to ~10% and converges to exact as capacity grows.
        assert predicted == pytest.approx(
            exact.short_circuited, rel=0.10, abs=20
        )
        assert predicted >= exact.short_circuited - 20

"""Model-based round trips: columnar MappingTable/Block vs naive references.

ISSUE 6 replaced the dict-backed mapping table and the enum-list block
states with packed columns (``array('q')`` + ``bytearray``).  These tests
drive random operation streams through the columnar structures and through
deliberately naive reference models (plain dicts, plain lists — the PR-5
semantics), asserting the observable behaviour never diverges.  The
reference models are too slow to simulate with but trivially correct, so
any representation bug in the packed columns (sentinel confusion, shared
spill/collapse, memset bounds) shows up as a divergence here long before
it would corrupt a digest.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flash.block import Block, PageState
from repro.ftl.mapping import POPULARITY_MAX, MappingTable

LPNS = 48
PPNS = 96


# ----------------------------------------------------------------------
# Reference models (PR-5 semantics, naively stored)
# ----------------------------------------------------------------------


class DictMapping:
    """The pre-columnar mapping semantics: two dicts, a set per PPN."""

    def __init__(self):
        self.forward = {}
        self.reverse = {}
        self.pop = {}

    def lookup(self, lpn):
        return self.forward.get(lpn)

    def map(self, lpn, ppn):
        assert lpn not in self.forward
        self.forward[lpn] = ppn
        self.reverse.setdefault(ppn, set()).add(lpn)

    def unmap(self, lpn):
        ppn = self.forward.pop(lpn, None)
        if ppn is None:
            return None
        lpns = self.reverse[ppn]
        lpns.discard(lpn)
        if not lpns:
            del self.reverse[ppn]
        return ppn

    def remap_ppn(self, old_ppn, new_ppn):
        lpns = self.reverse.pop(old_ppn, set())
        for lpn in lpns:
            self.forward[lpn] = new_ppn
            self.reverse.setdefault(new_ppn, set()).add(lpn)
        return len(lpns)

    def lpns_of(self, ppn):
        return set(self.reverse.get(ppn, ()))

    def refcount(self, ppn):
        return len(self.reverse.get(ppn, ()))

    def mapped_lpn_count(self):
        return len(self.forward)

    def mapped_ppns(self):
        return sorted(self.reverse)

    def forward_items(self):
        return dict(sorted(self.forward.items()))

    def popularity(self, lpn):
        return self.pop.get(lpn, 0)

    def set_popularity(self, lpn, value):
        self.pop[lpn] = min(max(value, 0), POPULARITY_MAX)

    def bump_popularity(self, lpn):
        value = min(self.pop.get(lpn, 0) + 1, POPULARITY_MAX)
        self.pop[lpn] = value
        return value


class ListBlock:
    """The pre-columnar block semantics: a plain list of PageState."""

    def __init__(self, pages):
        self.pages_per_block = pages
        self.states = [PageState.FREE] * pages
        self.write_pointer = 0
        self.erase_count = 0

    def program_next(self):
        page = self.write_pointer
        assert page < self.pages_per_block
        self.states[page] = PageState.VALID
        self.write_pointer = page + 1
        return page

    def invalidate(self, page):
        assert self.states[page] is PageState.VALID
        self.states[page] = PageState.INVALID

    def revive(self, page):
        assert self.states[page] is PageState.INVALID
        self.states[page] = PageState.VALID

    def erase(self):
        assert self.valid_count == 0
        self.states = [PageState.FREE] * self.pages_per_block
        self.write_pointer = 0
        self.erase_count += 1

    @property
    def valid_count(self):
        return self.states.count(PageState.VALID)

    @property
    def invalid_count(self):
        return self.states.count(PageState.INVALID)

    def valid_page_indexes(self):
        return [
            i
            for i in range(self.write_pointer)
            if self.states[i] is PageState.VALID
        ]


# ----------------------------------------------------------------------
# Operation streams
# ----------------------------------------------------------------------

lpn_st = st.integers(min_value=0, max_value=LPNS - 1)
ppn_st = st.integers(min_value=0, max_value=PPNS - 1)

mapping_ops = st.lists(
    st.one_of(
        st.tuples(st.just("map"), lpn_st, ppn_st),
        st.tuples(st.just("unmap"), lpn_st, st.just(0)),
        st.tuples(st.just("remap"), ppn_st, ppn_st),
        st.tuples(st.just("bump"), lpn_st, st.just(0)),
        st.tuples(st.just("setpop"), lpn_st, st.integers(0, 400)),
    ),
    max_size=300,
)


def mapping_observation(table):
    """Everything externally observable about a mapping table."""
    return {
        "forward": dict(table.forward_items()),
        "count": table.mapped_lpn_count(),
        "ppns": list(table.mapped_ppns()),
        "lpns_of": {p: table.lpns_of(p) for p in range(PPNS)},
        "refcount": [table.refcount(p) for p in range(PPNS)],
        "lookup": [table.lookup(lpn) for lpn in range(LPNS)],
        "pop": [table.popularity(lpn) for lpn in range(LPNS)],
    }


class TestMappingModel:
    @given(operations=mapping_ops)
    @settings(max_examples=60, deadline=None)
    def test_columnar_matches_dict_reference(self, operations):
        columnar = MappingTable(LPNS, PPNS)
        reference = DictMapping()
        for op, a, b in operations:
            if op == "map":
                # Keep the stream legal: PR-5 also forbade double-mapping.
                if reference.lookup(a) is not None:
                    continue
                columnar.map(a, b)
                reference.map(a, b)
            elif op == "unmap":
                assert columnar.unmap(a) == reference.unmap(a)
            elif op == "remap":
                if a == b:
                    continue
                assert columnar.remap_ppn(a, b) == reference.remap_ppn(a, b)
            elif op == "bump":
                assert columnar.bump_popularity(a) == (
                    reference.bump_popularity(a)
                )
            elif op == "setpop":
                columnar.set_popularity(a, b)
                reference.set_popularity(a, b)
            columnar.check_invariants()
        assert mapping_observation(columnar) == mapping_observation(reference)

    @given(operations=mapping_ops)
    @settings(max_examples=20, deadline=None)
    def test_lazy_table_matches_preallocated(self, operations):
        """Auto-growing columns behave exactly like preallocated ones."""
        lazy = MappingTable()
        sized = MappingTable(LPNS, PPNS)
        for op, a, b in operations:
            if op == "map":
                if sized.lookup(a) is not None:
                    continue
                lazy.map(a, b)
                sized.map(a, b)
            elif op == "unmap":
                assert lazy.unmap(a) == sized.unmap(a)
            elif op == "remap":
                if a == b:
                    continue
                assert lazy.remap_ppn(a, b) == sized.remap_ppn(a, b)
            elif op == "bump":
                assert lazy.bump_popularity(a) == sized.bump_popularity(a)
            elif op == "setpop":
                lazy.set_popularity(a, b)
                sized.set_popularity(a, b)
            lazy.check_invariants()
        assert mapping_observation(lazy) == mapping_observation(sized)

    def test_shared_spill_and_collapse(self):
        """Dedup path: refcount 1 → 2 spills, 2 → 1 collapses back dense."""
        table = MappingTable(8, 8)
        table.map(0, 5)
        assert table._owner[5] == 0 and 5 not in table._shared
        table.map(1, 5)
        assert 5 in table._shared  # spilled
        table.map(2, 5)
        assert table.refcount(5) == 3
        table.unmap(1)
        table.unmap(0)
        assert 5 not in table._shared  # collapsed back to single owner
        assert table._owner[5] == 2
        table.check_invariants()


PAGES = 16

block_ops = st.lists(
    st.one_of(
        st.tuples(st.just("program"), st.just(0)),
        st.tuples(st.just("invalidate"), st.integers(0, PAGES - 1)),
        st.tuples(st.just("revive"), st.integers(0, PAGES - 1)),
        st.tuples(st.just("erase"), st.just(0)),
    ),
    max_size=200,
)


class TestBlockModel:
    @given(operations=block_ops)
    @settings(max_examples=60, deadline=None)
    def test_packed_states_match_list_reference(self, operations):
        packed = Block(PAGES)
        reference = ListBlock(PAGES)
        for op, page in operations:
            if op == "program":
                if reference.write_pointer >= PAGES:
                    continue
                assert packed.program_next() == reference.program_next()
            elif op == "invalidate":
                if reference.states[page] is not PageState.VALID:
                    continue
                packed.invalidate(page)
                reference.invalidate(page)
            elif op == "revive":
                if reference.states[page] is not PageState.INVALID:
                    continue
                packed.revive(page)
                reference.revive(page)
            elif op == "erase":
                if reference.valid_count != 0:
                    packed.check_invariants()
                    continue
                packed.erase()
                reference.erase()
            packed.check_invariants()
            assert packed.valid_count == reference.valid_count
            assert packed.invalid_count == reference.invalid_count
            assert packed.write_pointer == reference.write_pointer
        assert [packed.state_of(i) for i in range(PAGES)] == reference.states
        assert packed.valid_page_indexes() == reference.valid_page_indexes()
        assert packed.erase_count == reference.erase_count

    def test_erase_resets_storage_in_place(self):
        """ISSUE 6 satellite: erase must memset the same buffer, not
        reallocate it (the FlashArray shares no buffer, but in-place reset
        is what keeps erase O(programmed prefix) and allocation-free)."""
        block = Block(PAGES)
        buffer_before = block.states
        for _ in range(PAGES):
            block.program_next()
        for page in range(PAGES):
            block.invalidate(page)
        block.erase()
        assert block.states is buffer_before
        assert not any(block.states)
        assert block.valid_count == block.invalid_count == 0
        assert block.write_pointer == 0

    def test_retire_resets_storage_in_place(self):
        block = Block(PAGES)
        buffer_before = block.states
        block.program_next()
        block.invalidate(0)
        block.retire()
        assert block.states is buffer_before
        assert block.retired
        with pytest.raises(RuntimeError):
            block.program_next()


class TestRemapDeterminism:
    def test_shared_remap_is_ascending(self):
        """GC relocation of a deduplicated PPN must touch LPNs in
        ascending order regardless of insertion order — the digest
        contract depends on it (ISSUE 6 satellite)."""
        for insertion in ([3, 1, 2], [2, 3, 1], [1, 2, 3]):
            table = MappingTable(8, 8)
            for lpn in insertion:
                table.map(lpn, 4)
            moved = table.remap_ppn(4, 5)
            assert moved == 3
            assert table.lpns_of(5) == {1, 2, 3}
            table.check_invariants()

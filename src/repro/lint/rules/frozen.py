"""``frozen.*`` — frozen-dataclass hygiene and process-pool picklability.

``RunConfig``/``RunSpec``/``FaultConfig`` are frozen precisely so one
instance can be shared across a whole matrix and shipped to worker
processes.  Two static escapes undo that:

* ``frozen.setattr`` — ``object.__setattr__`` is the blessed way for a
  frozen dataclass's ``__post_init__`` to fill derived fields, and the
  *only* place it is tolerated.  Anywhere else it is a mutation of a
  value other code assumes immutable (and shares across threads,
  caches, and digest computations).
* ``frozen.spec-picklable`` — the parallel engine pickles ``RunSpec``s
  into worker processes.  A field whose annotated type is not in the
  statically-picklable grammar (scalars, Optional/Tuple/List/Dict of
  picklable, other analyzed dataclasses) fails at fan-out time on the
  first ``--jobs 2`` run — or worse, pickles by reference and decouples
  worker state from the parent.  Caught here instead.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set, Tuple

from ..engine import ModuleInfo, Program
from ..registry import ModuleRule, Rule, register_rule
from ..violations import Violation

__all__ = ["FrozenSetattrRule", "SpecPicklableRule"]


@register_rule
class FrozenSetattrRule(ModuleRule):
    """``object.__setattr__`` only inside ``__post_init__``."""

    code = "frozen.setattr"
    summary = "object.__setattr__ outside __post_init__"

    #: The one method allowed to bypass dataclass frozenness.
    allowed_methods = frozenset({"__post_init__"})

    def check_module(
        self, program: Program, module: ModuleInfo
    ) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (
                isinstance(func, ast.Attribute)
                and func.attr == "__setattr__"
                and isinstance(func.value, ast.Name)
                and func.value.id == "object"
            ):
                continue
            context = module.context_at(node)
            method = context.rsplit(".", 1)[-1]
            if method in self.allowed_methods:
                continue
            yield self.violation(
                module, node,
                "object.__setattr__ outside __post_init__ mutates a "
                "frozen dataclass other code assumes immutable; build a "
                "new instance with dataclasses.replace instead",
            )


#: Atomic annotation names that always pickle by value.
_PICKLABLE_ATOMS = frozenset({
    "int", "float", "str", "bool", "bytes", "None", "NoneType", "complex",
})

#: Generic containers whose picklability is their parameters'.
_PICKLABLE_GENERICS = frozenset({
    "Optional", "Union", "Tuple", "List", "Dict", "FrozenSet", "Set",
    "Sequence", "Mapping", "tuple", "list", "dict", "frozenset", "set",
})


@register_rule
class SpecPicklableRule(Rule):
    """``RunSpec``/``FaultConfig`` field types must be statically picklable."""

    code = "frozen.spec-picklable"
    summary = "RunSpec/FaultConfig field type not statically picklable"

    #: Dataclasses the process-pool engine ships by value.
    target_classes: Tuple[str, ...] = ("RunSpec", "FaultConfig")

    def check(self, program: Program) -> Iterator[Violation]:
        dataclass_names = _dataclass_names(program)
        for module in program.modules:
            for node in ast.walk(module.tree):
                if not (
                    isinstance(node, ast.ClassDef)
                    and node.name in self.target_classes
                    and _is_dataclass(node)
                ):
                    continue
                for stmt in node.body:
                    if not isinstance(stmt, ast.AnnAssign):
                        continue
                    if not isinstance(stmt.target, ast.Name):
                        continue
                    bad = _unpicklable_parts(
                        stmt.annotation, dataclass_names
                    )
                    if not bad:
                        continue
                    field_name = stmt.target.id
                    yield self.violation(
                        module, stmt,
                        f"{node.name}.{field_name} is annotated with "
                        f"{', '.join(sorted(bad))}, which the process-"
                        "pool engine cannot ship by value; use scalars, "
                        "containers of scalars, or another frozen "
                        "dataclass",
                    )


def _dataclass_names(program: Program) -> Set[str]:
    """Names of every @dataclass-decorated class in the analyzed tree.

    Referencing one of these in a spec field is allowed: dataclasses of
    picklable fields pickle by value, and the targets list pulls the
    ones the engine actually ships through this same rule.
    """
    names: Set[str] = set()
    for module in program.modules:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef) and _is_dataclass(node):
                names.add(node.name)
    return names


def _is_dataclass(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        name = None
        if isinstance(target, ast.Name):
            name = target.id
        elif isinstance(target, ast.Attribute):
            name = target.attr
        if name == "dataclass":
            return True
    return False


def _unpicklable_parts(
    annotation: ast.expr, dataclass_names: Set[str]
) -> Set[str]:
    """The annotation's atoms that fall outside the picklable grammar."""
    try:
        return _validate(annotation, dataclass_names)
    except _Unparseable as exc:
        return {str(exc)}


class _Unparseable(Exception):
    pass


def _validate(node: ast.expr, dataclass_names: Set[str]) -> Set[str]:
    # string annotation: "FaultConfig" / "Optional[int]"
    if isinstance(node, ast.Constant):
        if node.value is None:
            return set()
        if isinstance(node.value, str):
            try:
                parsed = ast.parse(node.value, mode="eval").body
            except SyntaxError:
                raise _Unparseable(repr(node.value))
            return _validate(parsed, dataclass_names)
        if node.value is Ellipsis:  # Tuple[int, ...]
            return set()
        raise _Unparseable(repr(node.value))
    if isinstance(node, ast.Name):
        if (
            node.id in _PICKLABLE_ATOMS
            or node.id in dataclass_names
        ):
            return set()
        return {node.id}
    if isinstance(node, ast.Attribute):
        # typing.Optional / faults.FaultConfig — judge by the tail name
        tail = node.attr
        if tail in _PICKLABLE_ATOMS or tail in dataclass_names:
            return set()
        return {tail}
    if isinstance(node, ast.Subscript):
        head = node.value
        head_name = None
        if isinstance(head, ast.Name):
            head_name = head.id
        elif isinstance(head, ast.Attribute):
            head_name = head.attr
        if head_name not in _PICKLABLE_GENERICS:
            return {head_name or ast.dump(head)}
        inner = node.slice
        elements = (
            inner.elts if isinstance(inner, ast.Tuple) else [inner]
        )
        bad: Set[str] = set()
        for element in elements:
            bad |= _validate(element, dataclass_names)
        return bad
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        # PEP 604: int | None
        return _validate(node.left, dataclass_names) | _validate(
            node.right, dataclass_names
        )
    raise _Unparseable(type(node).__name__)

"""Figure 6: average LRU-pool misses per popularity degree (m2, 100K pool).

Paper: plain LRU still misses a lot, notably for popular values — the
motivation for accommodating popularity in the replacement policy (MQ).
"""

from repro.analysis.report import render_series
from repro.experiments.figures import fig06_lru_misses

from .conftest import emit


def test_fig06_lru_misses(benchmark, scale):
    breakdown = benchmark.pedantic(
        lambda: fig06_lru_misses(scale), rounds=1, iterations=1
    )
    emit(render_series(
        {"avg misses": [(k, breakdown[k]) for k in sorted(breakdown)]},
        title="Figure 6: average LRU capacity misses per popularity degree "
              "(m2, 100K-equivalent pool)",
        y_format="{:.2f}",
    ))
    # Shape: misses are not confined to unpopular values — values written
    # multiple times (degree >= 3) still miss under plain LRU.
    popular = {k: v for k, v in breakdown.items() if k >= 3}
    assert popular
    assert sum(popular.values()) > 0

"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import EventEngine


class TestScheduling:
    def test_events_fire_in_time_order(self):
        engine = EventEngine()
        fired = []
        engine.schedule(30.0, lambda: fired.append("c"))
        engine.schedule(10.0, lambda: fired.append("a"))
        engine.schedule(20.0, lambda: fired.append("b"))
        engine.run()
        assert fired == ["a", "b", "c"]

    def test_ties_fire_in_schedule_order(self):
        engine = EventEngine()
        fired = []
        for name in "abc":
            engine.schedule(5.0, lambda n=name: fired.append(n))
        engine.run()
        assert fired == ["a", "b", "c"]

    def test_now_advances_to_event_time(self):
        engine = EventEngine()
        seen = []
        engine.schedule(7.5, lambda: seen.append(engine.now))
        engine.run()
        assert seen == [7.5]
        assert engine.now == 7.5

    def test_cannot_schedule_in_the_past(self):
        engine = EventEngine()
        engine.schedule(10.0, lambda: None)
        engine.run()
        with pytest.raises(ValueError):
            engine.schedule(5.0, lambda: None)

    def test_schedule_in_relative(self):
        engine = EventEngine()
        seen = []
        engine.schedule(10.0, lambda: engine.schedule_in(
            5.0, lambda: seen.append(engine.now)
        ))
        engine.run()
        assert seen == [15.0]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            EventEngine().schedule_in(-1.0, lambda: None)


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        engine = EventEngine()
        fired = []
        handle = engine.schedule(10.0, lambda: fired.append("x"))
        engine.cancel(handle)
        engine.run()
        assert fired == []
        assert handle.cancelled

    def test_pending_excludes_cancelled(self):
        engine = EventEngine()
        keep = engine.schedule(10.0, lambda: None)
        drop = engine.schedule(20.0, lambda: None)
        engine.cancel(drop)
        assert engine.pending() == 1


class TestRunControl:
    def test_step_returns_false_when_empty(self):
        assert EventEngine().step() is False

    def test_run_until_leaves_later_events(self):
        engine = EventEngine()
        fired = []
        engine.schedule(10.0, lambda: fired.append("early"))
        engine.schedule(100.0, lambda: fired.append("late"))
        engine.run(until=50.0)
        assert fired == ["early"]
        assert engine.now == 50.0
        assert engine.pending() == 1
        engine.run()
        assert fired == ["early", "late"]

    def test_cascading_events(self):
        """Events scheduled from callbacks fire in the same run."""
        engine = EventEngine()
        fired = []

        def chain(depth):
            fired.append(depth)
            if depth < 5:
                engine.schedule_in(1.0, lambda: chain(depth + 1))

        engine.schedule(0.0, lambda: chain(0))
        engine.run()
        assert fired == [0, 1, 2, 3, 4, 5]
        assert engine.events_fired == 6


class TestPendingAccounting:
    """pending() is O(1) bookkeeping, not a heap scan."""

    def test_pending_tracks_schedule_and_fire(self):
        engine = EventEngine()
        for t in (1.0, 2.0, 3.0):
            engine.schedule(t, lambda: None)
        assert engine.pending() == 3
        engine.step()
        assert engine.pending() == 2
        engine.run()
        assert engine.pending() == 0

    def test_cancel_decrements_pending(self):
        engine = EventEngine()
        handles = [engine.schedule(float(t), lambda: None) for t in range(5)]
        engine.cancel(handles[1])
        engine.cancel(handles[3])
        assert engine.pending() == 3
        assert engine.events_cancelled == 2

    def test_cancel_is_idempotent(self):
        engine = EventEngine()
        handle = engine.schedule(1.0, lambda: None)
        engine.cancel(handle)
        engine.cancel(handle)
        assert engine.pending() == 0
        assert engine.events_cancelled == 1

    def test_cancelled_events_do_not_fire(self):
        engine = EventEngine()
        fired = []
        keep = engine.schedule(1.0, lambda: fired.append("keep"))
        drop = engine.schedule(2.0, lambda: fired.append("drop"))
        engine.cancel(drop)
        engine.run()
        assert fired == ["keep"]
        assert keep.cancelled is False


class TestCancelledEventPurge:
    """Cancelled events are compacted out of the heap, not leaked."""

    def test_heap_compacts_when_cancellations_dominate(self):
        engine = EventEngine()
        handles = [
            engine.schedule(float(t), lambda: None) for t in range(200)
        ]
        for handle in handles[:150]:
            engine.cancel(handle)
        # Compaction fired at least once: the heap cannot still hold all
        # 150 cancelled events (only the post-purge stragglers remain).
        assert len(engine._heap) < 150
        assert engine.pending() == 50

    def test_firing_order_survives_compaction(self):
        engine = EventEngine()
        fired = []
        handles = []
        for t in range(200):
            handles.append(
                engine.schedule(float(t), lambda t=t: fired.append(t))
            )
        for handle in handles[:150]:
            engine.cancel(handle)
        engine.run()
        assert fired == list(range(150, 200))

    def test_small_cancel_counts_do_not_trigger_compaction(self):
        engine = EventEngine()
        handles = [
            engine.schedule(float(t), lambda: None) for t in range(40)
        ]
        for handle in handles[:30]:
            engine.cancel(handle)
        # Below the purge floor: lazily dropped on pop instead.
        assert len(engine._heap) == 40
        engine.run()
        assert engine.events_fired == 10

"""Picklable run specifications — the unit of work the parallel engine ships.

A :class:`RunSpec` names one evaluation-matrix cell by value: workload,
system, paper pool label, scale, optional seed override and queue depth.
It is frozen, hashable and (unlike an :class:`~repro.experiments.runner.
ExperimentContext`, which drags a materialised trace along) cheap to
pickle, so a matrix fans out to worker processes as a flat list of specs
and each worker rebuilds its context from the shared caches.

:func:`result_digest` is the bit-identity oracle: it hashes the *complete*
observable outcome of a run — every counter and the exact latency sample
sequences, not summary statistics — under a pinned pickle protocol, so a
digest match between a serial and a parallel run means the runs were
indistinguishable.
"""

from __future__ import annotations

import hashlib
import pickle
import time
from dataclasses import asdict, dataclass, replace
from typing import Optional, Tuple

from ..experiments.config import DEFAULT_SCALE, RunConfig
from ..experiments.runner import ExperimentContext, run_system
from ..faults.model import FaultConfig
from ..sim.metrics import RunResult
from ..traces.profiles import WorkloadProfile, profile_by_name

__all__ = [
    "RunSpec",
    "execute_spec",
    "execute_spec_timed",
    "result_digest",
]

#: Digest pickling is pinned (not HIGHEST_PROTOCOL) so digests stay
#: comparable across interpreter versions in tracked BENCH files.
_DIGEST_PROTOCOL = 4


@dataclass(frozen=True)
class RunSpec:
    """One (workload, system, pool, scale, seed, qd, faults) cell, by value."""

    workload: str
    system: str
    paper_pool_entries: int = 200_000
    scale: float = DEFAULT_SCALE
    seed: Optional[int] = None
    queue_depth: Optional[int] = None
    faults: Optional[FaultConfig] = None
    check_interval: Optional[int] = None
    oracle: bool = False
    trim_every: int = 0

    @classmethod
    def from_config(
        cls,
        workload: str,
        system: str,
        config: RunConfig,
        seed: Optional[int] = None,
    ) -> "RunSpec":
        """The spec that runs ``(workload, system)`` under ``config``.

        Only the picklable, by-value parts of the config ride along
        (``observer``/``registry``/``tracer`` are per-process live
        objects; the caller attaches them on the receiving side if it
        needs them).
        """
        return cls(
            workload=workload,
            system=system,
            paper_pool_entries=config.paper_pool_entries,
            scale=config.scale,
            seed=seed,
            queue_depth=config.queue_depth,
            faults=config.faults,
            check_interval=config.check_interval,
            oracle=config.oracle,
            trim_every=config.trim_every,
        )

    def run_config(self, reuse_prefill: bool = True) -> RunConfig:
        """The :class:`RunConfig` equivalent of this spec."""
        return RunConfig(
            paper_pool_entries=self.paper_pool_entries,
            scale=self.scale,
            queue_depth=self.queue_depth,
            reuse_prefill=reuse_prefill,
            faults=self.faults,
            check_interval=self.check_interval,
            oracle=self.oracle,
            trim_every=self.trim_every,
        )

    def profile(self) -> WorkloadProfile:
        """The scaled workload profile this spec runs (seed applied)."""
        profile = profile_by_name(self.workload).scaled(self.scale)
        if self.seed is not None:
            profile = replace(profile, seed=self.seed)
        return profile

    def context(self) -> ExperimentContext:
        """Materialise the trace/config context (hits the trace cache)."""
        return ExperimentContext.for_workload(
            self.workload, self.scale, seed=self.seed
        )


def execute_spec(spec: RunSpec, reuse_prefill: bool = True) -> RunResult:
    """Run one cell.  Pure function of the spec — the determinism tests
    rely on ``execute_spec(s)`` matching ``run_system`` run by hand.
    A spec carrying a fault config builds a fresh seeded model for the
    run, so execution order across workers cannot perturb fault draws."""
    return run_system(
        spec.system,
        spec.context(),
        config=spec.run_config(reuse_prefill=reuse_prefill),
    )


def execute_spec_timed(
    spec: RunSpec, reuse_prefill: bool = True
) -> Tuple[RunResult, float]:
    """Run one cell and report its wall-clock seconds (cache costs
    included — the first cell of a family pays generation/prefill)."""
    start = time.perf_counter()
    result = execute_spec(spec, reuse_prefill=reuse_prefill)
    return result, time.perf_counter() - start


def result_digest(result: RunResult) -> str:
    """Content hash of everything a run observably produced.

    Covers identity, all counters, pool statistics, the horizon and the
    exact per-request latency sequences.  Two runs with equal digests
    produced bit-identical :class:`RunResult`s.

    Fault statistics join the payload only when the run carried a fault
    model, so fault-free digests stay byte-for-byte comparable with
    digests minted before the fault layer existed (tracked BENCH files
    and the golden digests in the determinism tests rely on this).
    """
    payload = (
        result.system,
        result.workload,
        asdict(result.counters),
        result.reads.samples,
        result.writes.samples,
        result.horizon_us,
        result.pool_stats,
    )
    if result.fault_stats is not None:
        payload = payload + (result.fault_stats,)
    return hashlib.sha256(
        pickle.dumps(payload, protocol=_DIGEST_PROTOCOL)
    ).hexdigest()

"""Orchestration: facts → cache → graph → the three passes.

:func:`flow_report` is the single entry point the registered rules
share.  It is memoised on the :class:`~repro.lint.engine.Program`
instance, so however many ``flow.*`` rules are selected, the analysis
runs once per lint invocation.

The cost model (the reason this can live inside ``make lint``):

* per-file fact extraction is the only part that touches an AST, and
  it is cached on disk keyed by content SHA-256 — a warm run touches
  only the dirty frontier (edited files);
* a cold run can fan extraction out over a process pool (``--jobs``),
  reusing the worker-count/chunk-size policy of :mod:`repro.perf`;
* the whole-graph passes (taint fixpoint, hot-cone BFS, closure walks)
  are pure dict work over the summaries and re-run every time — they
  are the part that *must* see the whole program, and they are cheap.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from .cache import FactsCache, content_key
from .effects import EffectFinding, analyze_hot_effects
from .facts import ModuleFacts, extract_module_facts
from .graph import CallGraph, SymbolTable, build_symbol_table
from .safety import (
    BlockingFinding,
    PickleFinding,
    analyze_blocking_async,
    analyze_spec_pickle,
)
from .taint import TaintFinding, analyze_taint

__all__ = ["FlowOptions", "FlowReport", "flow_report"]

#: Below this many dirty files a process pool costs more than it saves.
_MIN_PARALLEL_FILES = 8


@dataclass(frozen=True)
class FlowOptions:
    """Knobs threaded from the CLI into the analysis."""

    #: worker processes for cold extraction (None → in-process)
    jobs: Optional[int] = None
    #: facts cache directory (None → memory-only, no disk tier)
    cache_dir: Optional[str] = None


@dataclass
class FlowReport:
    """Everything the four ``flow.*`` rules read."""

    table: SymbolTable
    graph: CallGraph
    taint: List[TaintFinding] = field(default_factory=list)
    hot_effects: List[EffectFinding] = field(default_factory=list)
    blocking: List[BlockingFinding] = field(default_factory=list)
    spec_pickle: List[PickleFinding] = field(default_factory=list)
    files: int = 0
    cache_hits: int = 0
    cache_misses: int = 0

    # -- rendering helpers (shared by the rules) -----------------------

    def location_of(self, fn_fq: str) -> Tuple[str, int]:
        """(path, line) of a fq function, for chain rendering."""
        module = self.table.function_module.get(fn_fq)
        facts = self.table.modules.get(module) if module else None
        fn = self.table.functions.get(fn_fq)
        return (
            facts.path if facts is not None else "<unknown>",
            fn.line if fn is not None else 1,
        )

    def render_chain(self, chain: Sequence[str]) -> str:
        steps = []
        for fn_fq in chain:
            path, line = self.location_of(fn_fq)
            steps.append(f"{fn_fq} ({path}:{line})")
        return " -> ".join(steps)


def _extract_worker(
    payload: Tuple[str, str, str, bool]
) -> Tuple[str, dict]:
    """Process-pool worker: parse + extract one file, return JSON facts.

    Top-level (picklable) on purpose; re-parses from source because AST
    objects do not cross process boundaries.
    """
    module, path, source, is_package = payload
    tree = ast.parse(source, filename=path)
    facts = extract_module_facts(module, path, tree, is_package)
    return module, facts.to_dict()


def flow_report(program, options: Optional[FlowOptions] = None) -> FlowReport:
    """The memoised whole-program analysis for one lint invocation."""
    cached = getattr(program, "_flow_report", None)
    if cached is not None:
        return cached
    if options is None:
        options = getattr(program, "flow_options", None) or FlowOptions()

    cache = FactsCache(
        Path(options.cache_dir) if options.cache_dir else None
    )
    facts_by_module: Dict[str, ModuleFacts] = {}
    dirty: List[Tuple[str, object]] = []  # (cache key, ModuleInfo)
    for module in program.modules:
        key = content_key(
            module.source.encode("utf-8"), module.name, module.path
        )
        hit = cache.get(key)
        if hit is not None:
            facts_by_module[module.name] = hit
        else:
            dirty.append((key, module))

    jobs = 1
    if options.jobs is not None and len(dirty) >= _MIN_PARALLEL_FILES:
        from repro.perf.parallel import resolve_jobs

        jobs = resolve_jobs(options.jobs, tasks=len(dirty))

    if jobs > 1:
        from concurrent.futures import ProcessPoolExecutor

        from repro.perf.parallel import pool_chunksize

        payloads = [
            (m.name, m.path, m.source, m.is_package) for _key, m in dirty
        ]
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            extracted = dict(pool.map(
                _extract_worker, payloads,
                chunksize=pool_chunksize(len(payloads), jobs),
            ))
        for key, module in dirty:
            facts = ModuleFacts.from_dict(extracted[module.name])
            cache.put(key, facts)
            facts_by_module[module.name] = facts
    else:
        for key, module in dirty:
            facts = extract_module_facts(
                module.name, module.path, module.tree, module.is_package
            )
            cache.put(key, facts)
            facts_by_module[module.name] = facts

    table = build_symbol_table(facts_by_module.values())
    graph = CallGraph.build(table)
    report = FlowReport(
        table=table,
        graph=graph,
        taint=analyze_taint(graph),
        hot_effects=analyze_hot_effects(graph),
        blocking=analyze_blocking_async(graph),
        spec_pickle=analyze_spec_pickle(table),
        files=len(program.modules),
        cache_hits=cache.hits,
        cache_misses=cache.misses,
    )
    try:
        setattr(program, "_flow_report", report)
    except AttributeError:  # pragma: no cover - slotted stand-ins
        pass
    return report

"""Unit tests for workload profiles and Table II calibration."""

import pytest

from repro.sim.request import IORequest, OpType
from repro.traces.profiles import (
    PROFILES,
    TableIITargets,
    audit_trace,
    profile_by_name,
)
from repro.traces.synthetic import generate_trace

from ..conftest import make_profile


class TestProfileRegistry:
    def test_all_six_paper_workloads(self):
        assert set(PROFILES) == {
            "web", "home", "mail", "hadoop", "trans", "desktop",
        }

    def test_profile_by_name(self):
        assert profile_by_name("mail").name == "mail"

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            profile_by_name("nope")

    def test_table2_write_ratios_encoded(self):
        assert profile_by_name("home").targets.write_ratio == 0.96
        assert profile_by_name("hadoop").targets.write_ratio == 0.30
        assert profile_by_name("mail").targets.unique_write_frac == 0.08

    def test_mail_has_largest_footprint(self):
        mail = profile_by_name("mail").working_set_pages
        assert all(
            mail >= p.working_set_pages for p in PROFILES.values()
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            make_profile(new_value_prob=1.5)
        with pytest.raises(ValueError):
            make_profile(working_set_pages=0)
        with pytest.raises(ValueError):
            make_profile(mean_interarrival_us=0)
        with pytest.raises(ValueError):
            make_profile(cold_region_factor=0.5)
        with pytest.raises(ValueError):
            make_profile(fill_fraction=0.0)


class TestDerivedProfiles:
    def test_scaled_shrinks_together(self):
        base = profile_by_name("mail")
        scaled = base.scaled(0.5)
        assert scaled.num_requests == base.num_requests // 2
        assert scaled.working_set_pages == base.working_set_pages // 2

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            profile_by_name("mail").scaled(0)

    def test_day_variants_differ(self):
        base = profile_by_name("mail")
        d1, d2 = base.day(1), base.day(2)
        assert d1.name == "m1" and d2.name == "m2"
        assert d1.seed != d2.seed
        assert d1.targets == base.targets

    def test_day_index_starts_at_one(self):
        with pytest.raises(ValueError):
            profile_by_name("mail").day(0)

    def test_day_traces_are_different_but_similar(self):
        base = profile_by_name("mail").scaled(0.05)
        t1 = generate_trace(base.day(1))
        t2 = generate_trace(base.day(2))
        assert t1 != t2
        a1, a2 = audit_trace(t1), audit_trace(t2)
        assert abs(a1.write_ratio - a2.write_ratio) < 0.05

    def test_total_pages_includes_cold_region(self):
        profile = make_profile(working_set_pages=100, cold_region_factor=3.0)
        assert profile.total_pages == 300


class TestAudit:
    def test_empty_trace(self):
        audit = audit_trace([])
        assert audit.requests == 0
        assert audit.write_ratio == 0.0

    def test_counts_unique_values_exactly(self):
        trace = [
            IORequest(0, OpType.WRITE, 0, 1),
            IORequest(1, OpType.WRITE, 1, 1),   # value 1 written twice
            IORequest(2, OpType.WRITE, 2, 2),   # value 2 once -> unique
            IORequest(3, OpType.READ, 0, 1),
            IORequest(4, OpType.READ, 2, 2),    # each read value once
        ]
        audit = audit_trace(trace)
        assert audit.writes == 3 and audit.reads == 2
        assert audit.unique_write_frac == pytest.approx(1 / 3)
        assert audit.unique_read_frac == 1.0
        assert audit.row()  # renders

    @pytest.mark.parametrize("name", sorted(PROFILES))
    def test_calibration_near_table2(self, name):
        """Generated traces audit close to the published Table II numbers.

        Write ratio is exact by construction; unique-value fractions are
        emergent, so they get a loose absolute tolerance.
        """
        profile = profile_by_name(name).scaled(0.2)
        audit = audit_trace(generate_trace(profile))
        targets = profile.targets
        assert audit.write_ratio == pytest.approx(targets.write_ratio, abs=0.02)
        assert audit.unique_write_frac == pytest.approx(
            targets.unique_write_frac, abs=0.08
        )
        assert audit.unique_read_frac == pytest.approx(
            targets.unique_read_frac, abs=0.17
        )

    def test_mail_is_most_redundant(self):
        audits = {
            name: audit_trace(generate_trace(p.scaled(0.1)))
            for name, p in PROFILES.items()
        }
        mail = audits["mail"].unique_write_frac
        assert all(
            mail <= a.unique_write_frac
            for name, a in audits.items() if name != "mail"
        )

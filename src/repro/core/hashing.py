"""Content fingerprints for 4KB values.

The paper identifies a page's *value* (its 4KB content) by a 16-byte hash
(MD5 in the FIU traces, SHA-1 in the OSU ones) and stores those hashes in
the dead-value pool rather than the content itself.  The simulator mostly
deals in synthetic values: a unique integer ``value_id`` stands in for one
unique 4KB content.  This module maps both synthetic ids and raw bytes to
:class:`Fingerprint` objects, the single currency used by the pools, the
dedup FTL and the analysis code.

Fingerprints compare and hash by digest, so two values collide exactly when
their digests collide — which for synthetic ids never happens, because the
digest embeds the id.
"""

from __future__ import annotations

import hashlib
from functools import lru_cache
from typing import Union

__all__ = [
    "Fingerprint",
    "fingerprint_of_value",
    "fingerprint_of_bytes",
    "DIGEST_SIZE",
]

#: Size of a stored fingerprint in bytes (matches the 16B MD5 hashes in the
#: FIU traces, see paper Section II-A).
DIGEST_SIZE = 16


class Fingerprint:
    """A 16-byte content fingerprint.

    Wraps either a synthetic ``value_id`` (fast path used by generated
    traces) or a real digest of raw bytes.  Instances are immutable,
    hashable and compare equal iff their digests are equal.
    """

    __slots__ = ("_key", "_digest")

    def __init__(self, key: Union[int, bytes]):
        if isinstance(key, int):
            if key < 0:
                raise ValueError("synthetic value ids must be non-negative")
            digest = None
        elif isinstance(key, bytes):
            if len(key) != DIGEST_SIZE:
                raise ValueError(
                    f"digest must be {DIGEST_SIZE} bytes, got {len(key)}"
                )
            digest = key
        else:
            raise TypeError(f"fingerprint key must be int or bytes, got {type(key)!r}")
        self._key = key
        self._digest = digest

    @property
    def key(self) -> Union[int, bytes]:
        """The underlying key: an ``int`` value id or a 16-byte digest."""
        return self._key

    @property
    def digest(self) -> bytes:
        """A canonical 16-byte digest (materialised once for int keys)."""
        digest = self._digest
        if digest is None:
            digest = self._key.to_bytes(DIGEST_SIZE, "big")
            self._digest = digest
        return digest

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Fingerprint):
            return self._key == other._key
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._key)

    def __repr__(self) -> str:
        if isinstance(self._key, int):
            return f"Fingerprint(value_id={self._key})"
        return f"Fingerprint(digest={self._key.hex()})"


#: Interning bound for synthetic-id fingerprints.  Hot value ids (popular
#: rewrites, the per-LPN initial values every prefill touches) repeat
#: millions of times across a matrix; interning returns one shared
#: immutable instance instead of re-allocating per request.
INTERN_CACHE_SIZE = 1 << 18


@lru_cache(maxsize=INTERN_CACHE_SIZE)
def _interned(value_id: int) -> Fingerprint:
    return Fingerprint(value_id)


def fingerprint_of_value(value_id: int) -> Fingerprint:
    """Fingerprint of a synthetic value id.

    Synthetic traces number every distinct 4KB content with an integer; two
    requests carry the same ``value_id`` exactly when the paper's traces
    would carry the same MD5.  Instances are interned (LRU-bounded), so hot
    ids — including the ``initial_value_of`` ids prefill writes — reuse one
    shared immutable object.
    """
    return _interned(value_id)


def fingerprint_of_bytes(data: bytes) -> Fingerprint:
    """MD5 fingerprint of a raw 4KB chunk (real-trace / real-data path)."""
    return Fingerprint(hashlib.md5(data).digest())

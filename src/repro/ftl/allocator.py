"""Page allocation: active blocks, per-plane free lists, channel striping.

Writes are striped round-robin across planes (and therefore channels and
chips) so independent requests land on independent resources — the
"dynamic allocation" scheme SSDSim uses to expose internal parallelism.
GC relocations stay inside the victim's plane, which is how real drives
avoid cross-channel copy traffic.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable, Deque, Dict, List, Optional, Set

from ..flash.array import FlashArray

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a runtime cycle
    from ..faults.model import FaultModel, FaultStats

__all__ = ["OutOfSpaceError", "PageAllocator", "BadBlockManager"]


class OutOfSpaceError(RuntimeError):
    """Raised when a plane has neither free pages nor reclaimable garbage."""


class PageAllocator:
    """Tracks one active block per plane and the free-block lists."""

    def __init__(self, array: FlashArray):
        self.array = array
        geometry = array.geometry
        self._planes = geometry.total_planes
        self._blocks_per_plane = geometry.blocks_per_plane
        # Free blocks per plane, as flat block indexes.
        self.free_blocks: List[Deque[int]] = []
        for plane in range(self._planes):
            base = plane * self._blocks_per_plane
            self.free_blocks.append(
                deque(range(base, base + self._blocks_per_plane))
            )
        # Separate append points for host data and GC relocations: mixing
        # hot host writes with cold relocated pages in one block is the
        # classic write-amplification trap, so each plane keeps two active
        # blocks (SSDSim's hot/cold separation).
        self._active: List[Optional[int]] = [None] * self._planes
        self._active_gc: List[Optional[int]] = [None] * self._planes
        self._next_plane = 0

    # ------------------------------------------------------------------

    def free_block_count(self, plane: int) -> int:
        return len(self.free_blocks[plane])

    def active_block(self, plane: int) -> Optional[int]:
        """The block currently accepting writes in ``plane`` (may be None)."""
        return self._active[plane]

    def writable_pages(self, plane: int) -> int:
        """Pages still programmable in ``plane`` without reclaiming space:
        both active blocks' free tails plus all free-listed blocks."""
        pages = len(self.free_blocks[plane]) * self.array.config.pages_per_block
        for actives in (self._active, self._active_gc):
            block = actives[plane]
            if block is not None:
                pages += self.array.block(block).free_pages
        return pages

    def plane_of_next_write(self) -> int:
        """Which plane the next host write will be striped to."""
        return self._next_plane

    def _open_block(self, plane: int, actives: List[Optional[int]]) -> int:
        if not self.free_blocks[plane]:
            raise OutOfSpaceError(f"plane {plane} has no free blocks")
        block = self.free_blocks[plane].popleft()
        actives[plane] = block
        return block

    def allocate(self) -> int:
        """Program one host page on the round-robin plane; return its PPN."""
        plane = self._next_plane
        self._next_plane = (self._next_plane + 1) % self._planes
        return self.allocate_in_plane(plane)

    def allocate_in_plane(self, plane: int, for_gc: bool = False) -> int:
        """Program one page in a specific plane.

        ``for_gc`` selects the plane's relocation block, so cold relocated
        pages never share a block with fresh host data (the hot/cold
        separation real FTLs use to keep write amplification down).
        """
        actives = self._active_gc if for_gc else self._active
        blocks = self.array.blocks
        block = actives[plane]
        if block is None or blocks[block].write_pointer >= blocks[block].pages_per_block:
            block = self._open_block(plane, actives)
        b = blocks[block]
        ppn = self.array.program_in_block(block)
        if b.write_pointer >= b.pages_per_block:
            actives[plane] = None
        return ppn

    def release_block(self, block_global: int) -> None:
        """Return an erased block to its plane's free list."""
        plane = self.array.geometry.plane_of_block(block_global)
        self.free_blocks[plane].append(block_global)

    def is_active(self, block_global: int) -> bool:
        plane = self.array.geometry.plane_of_block(block_global)
        return (
            self._active[plane] == block_global
            or self._active_gc[plane] == block_global
        )

    def actives_of_plane(self, plane: int):
        """Both append points of ``plane`` as ``(host, gc)`` (may be None).

        Lets a per-plane scan test activeness with two scalar compares
        instead of :meth:`is_active`'s per-block plane division.
        """
        return self._active[plane], self._active_gc[plane]

    def check_invariants(self) -> None:
        """Free-listed blocks must be fully erased; actives must be open."""
        for plane, blocks in enumerate(self.free_blocks):
            for block in blocks:
                b = self.array.block(block)
                assert not b.retired, (
                    f"retired block {block} on a free list"
                )
                assert b.write_pointer == 0, (
                    f"free-listed block {block} has programmed pages"
                )
        for actives in (self._active, self._active_gc):
            for plane, block in enumerate(actives):
                if block is not None:
                    assert not self.array.block(block).is_full, (
                        f"active block {block} is full"
                    )


class BadBlockManager:
    """Grown-bad-block bookkeeping: spare budget, retirement, degradation.

    Real drives ship a reserved pool of spare blocks *per plane* (a spare
    can only remap failures within its own plane's rotation) and remap
    grown-bad blocks onto it transparently.  The reproduction models the
    budget virtually: a retired block simply leaves its plane's rotation
    (it is never free-listed again) and is charged against that plane's
    ``spares_per_plane`` share; while the share lasts, the capacity loss
    is what a remap onto a spare would have absorbed.  Once any plane's
    retirements exceed its share, that plane has lost real exported
    capacity — and because host writes stripe round-robin over *all*
    planes, the drive degrades to read-only as a whole, exactly the
    end-of-life behaviour of a real SSD.  (A global budget would be
    wrong twice over: it lets one unlucky plane bleed out its free-block
    slack while the drive still looks healthy, which ends in a hard
    out-of-space failure mid-GC instead of a graceful rejection.)

    The manager is pure bookkeeping: the :class:`~repro.ftl.gc.GarbageCollector`
    asks :meth:`should_retire` at erase time and performs the physical
    retirement; the FTL reports program failures via
    :meth:`note_program_failure` as they happen.
    """

    def __init__(
        self,
        stats: "FaultStats",
        spares_per_plane: int,
        retire_threshold: int,
        plane_of_block: Callable[[int], int],
        planes: int,
    ):
        if spares_per_plane < 0:
            raise ValueError("spares_per_plane must be non-negative")
        if retire_threshold < 1:
            raise ValueError("retire_threshold must be at least 1")
        if planes < 1:
            raise ValueError("planes must be at least 1")
        self.stats = stats
        self.spares_per_plane = spares_per_plane
        self.retire_threshold = retire_threshold
        self.plane_of_block = plane_of_block
        self.planes = planes
        self.retired: Set[int] = set()
        self._retired_in_plane: Dict[int, int] = {}
        self._program_failures: Dict[int, int] = {}
        self._marked: Set[int] = set()

    @property
    def spare_blocks(self) -> int:
        """Total spare budget across all planes."""
        return self.spares_per_plane * self.planes

    @property
    def spares_remaining(self) -> int:
        """Unspent spares, summed over planes (each share is captive)."""
        spent = sum(
            min(count, self.spares_per_plane)
            for count in self._retired_in_plane.values()
        )
        return self.spare_blocks - spent

    @property
    def exhausted(self) -> bool:
        """Whether any plane has outspent its spare share."""
        return any(
            count > self.spares_per_plane
            for count in self._retired_in_plane.values()
        )

    def retired_in_plane(self, plane: int) -> int:
        return self._retired_in_plane.get(plane, 0)

    def note_program_failure(self, block_global: int) -> None:
        """A page program failed in this block; mark the block for
        retirement once failures reach the threshold."""
        count = self._program_failures.get(block_global, 0) + 1
        self._program_failures[block_global] = count
        if count >= self.retire_threshold:
            self._marked.add(block_global)

    def marked_for_retirement(self, block_global: int) -> bool:
        return block_global in self._marked

    def should_retire(
        self, block_global: int, faults: "Optional[FaultModel]"
    ) -> bool:
        """Decide at erase time: retire if the block accumulated enough
        program failures, or if the erase itself fails (one seeded draw)."""
        if block_global in self._marked:
            return True
        return faults is not None and faults.erase_fails()

    def retire(self, block_global: int) -> bool:
        """Record a retirement.  Returns ``True`` while the block's
        plane still has spare share to cover it (a remap), ``False``
        once that plane's reserve is exhausted and the drive must
        degrade to read-only."""
        self.retired.add(block_global)
        self._marked.discard(block_global)
        self._program_failures.pop(block_global, None)
        self.stats.retired_blocks += 1
        plane = self.plane_of_block(block_global)
        count = self._retired_in_plane.get(plane, 0) + 1
        self._retired_in_plane[plane] = count
        if count <= self.spares_per_plane:
            self.stats.remaps += 1
            return True
        return False

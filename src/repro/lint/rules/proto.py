"""``proto.*`` — protocol-surface completeness.

Runtime ``Protocol`` checks (``isinstance(pool, DeadValuePool)``) only
verify the attributes a run actually touches; a pool variant missing
``tracked_items`` passes every experiment and then explodes the first
time someone runs ``--check``.  These rules close that gap statically:

* ``proto.pool-surface`` — every concrete dead-value-pool class defines
  (or inherits a concrete definition of) the *entire*
  :class:`~repro.core.dvp.DeadValuePool` surface.  The required method
  list is read from the Protocol class itself when it is in the
  analyzed tree, so extending the Protocol automatically extends the
  rule.
* ``proto.ftl-hooks`` — an FTL subclass keeps auxiliary state keyed by
  physical page; GC moves and erases physical pages behind its back.
  Every ``BaseFTL`` subclass must therefore override ``relocate_page``,
  and one that hooks the content paths (``_on_page_death`` /
  ``_handle_write``) must also override ``erase_cleanup`` and
  ``check_invariants`` — the exact trio that silently desyncs when
  forgotten.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..engine import ModuleInfo, Program
from ..registry import Rule, register_rule
from ..violations import Violation

__all__ = ["ClassTable", "FtlHooksRule", "PoolSurfaceRule"]


@dataclass
class ClassInfo:
    """One class definition: bases (simple names) and method concreteness."""

    name: str
    module: ModuleInfo
    node: ast.ClassDef
    bases: List[str] = field(default_factory=list)
    #: method name → True when the body is a real implementation (not
    #: ``...``/``pass``/``raise NotImplementedError``/@abstractmethod).
    methods: Dict[str, bool] = field(default_factory=dict)
    #: methods explicitly declared @abstractmethod/@abstractproperty.
    abstract_decorated: Set[str] = field(default_factory=set)
    is_abstract_marked: bool = False  # ABC/Protocol in direct bases

    @property
    def declared_abstract(self) -> bool:
        """Abstract *by declaration* (ABC/Protocol base or @abstractmethod).

        A merely-stubbed method body does not count: a concrete class
        stubbing a protocol method with ``pass`` is exactly the bug the
        proto rules exist to catch, not an exemption from them.
        """
        return self.is_abstract_marked or bool(self.abstract_decorated)


class ClassTable:
    """All classes in the program, resolvable by simple name.

    Name collisions across modules are possible in principle; the table
    keeps the first definition per name (files are walked sorted, so
    this is deterministic) — good enough for the rule targets, whose
    names are unique in this repo.
    """

    def __init__(self, program: Program) -> None:
        self.by_name: Dict[str, ClassInfo] = {}
        for module in program.modules:
            for node in ast.walk(module.tree):
                if isinstance(node, ast.ClassDef):
                    info = _class_info(module, node)
                    self.by_name.setdefault(info.name, info)

    def mro_candidates(self, info: ClassInfo) -> List[ClassInfo]:
        """``info`` plus its resolvable ancestors, subclass-first.

        A DFS approximation of the MRO over the analyzed tree;
        unresolvable bases (stdlib, Protocol, ABC) are skipped.
        """
        ordered: List[ClassInfo] = []
        seen: Set[str] = set()
        stack = [info]
        while stack:
            current = stack.pop(0)
            if current.name in seen:
                continue
            seen.add(current.name)
            ordered.append(current)
            for base in current.bases:
                resolved = self.by_name.get(base)
                if resolved is not None:
                    stack.append(resolved)
        return ordered

    def derives_from(self, info: ClassInfo, ancestor: str) -> bool:
        return any(
            c.name == ancestor
            for c in self.mro_candidates(info)[1:]
        )

    def concrete_methods(
        self, info: ClassInfo, stop_at: Optional[str] = None
    ) -> Set[str]:
        """Concretely defined method names along the MRO.

        With ``stop_at``, ancestors from that class upward are excluded
        — "defined below BaseFTL" queries use this.
        """
        names: Set[str] = set()
        for cls in self.mro_candidates(info):
            if stop_at is not None and cls.name == stop_at:
                break
            names.update(
                name for name, concrete in cls.methods.items() if concrete
            )
        return names


def _class_info(module: ModuleInfo, node: ast.ClassDef) -> ClassInfo:
    bases = []
    for base in node.bases:
        if isinstance(base, ast.Name):
            bases.append(base.id)
        elif isinstance(base, ast.Attribute):
            bases.append(base.attr)
        elif isinstance(base, ast.Subscript):
            # Generic[...] / MultiQueue[K, V]-style bases
            inner = base.value
            if isinstance(inner, ast.Name):
                bases.append(inner.id)
            elif isinstance(inner, ast.Attribute):
                bases.append(inner.attr)
    methods: Dict[str, bool] = {}
    abstract_decorated: Set[str] = set()
    for child in node.body:
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            methods[child.name] = _is_concrete(child)
            if _is_abstract_decorated(child):
                abstract_decorated.add(child.name)
    return ClassInfo(
        name=node.name,
        module=module,
        node=node,
        bases=bases,
        methods=methods,
        abstract_decorated=abstract_decorated,
        is_abstract_marked=any(
            b in ("ABC", "Protocol", "ABCMeta") for b in bases
        ),
    )


def _is_abstract_decorated(func: ast.AST) -> bool:
    for decorator in getattr(func, "decorator_list", []):
        name = None
        if isinstance(decorator, ast.Name):
            name = decorator.id
        elif isinstance(decorator, ast.Attribute):
            name = decorator.attr
        if name in ("abstractmethod", "abstractproperty"):
            return True
    return False


def _is_concrete(func: ast.AST) -> bool:
    """A real implementation, not a stub or an abstract declaration."""
    for decorator in getattr(func, "decorator_list", []):
        name = None
        if isinstance(decorator, ast.Name):
            name = decorator.id
        elif isinstance(decorator, ast.Attribute):
            name = decorator.attr
        if name in ("abstractmethod", "abstractproperty"):
            return False
    body = list(getattr(func, "body", []))
    if body and isinstance(body[0], ast.Expr) and isinstance(
        body[0].value, ast.Constant
    ) and isinstance(body[0].value.value, str):
        body = body[1:]  # skip the docstring
    if not body:
        return False
    for stmt in body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(
            stmt.value, ast.Constant
        ) and stmt.value.value is Ellipsis:
            continue
        if isinstance(stmt, ast.Raise) and _raises_not_implemented(stmt):
            continue
        return True  # any other statement means real logic
    return False


def _raises_not_implemented(stmt: ast.Raise) -> bool:
    exc = stmt.exc
    if isinstance(exc, ast.Call):
        exc = exc.func
    return isinstance(exc, ast.Name) and exc.id == "NotImplementedError"


#: Fallback pool surface, used when the DeadValuePool Protocol class is
#: not part of the analyzed tree (synthetic test fixtures).  Kept in
#: sync by test_lint_clean's surface-extraction assertion.
_FALLBACK_POOL_SURFACE: Tuple[str, ...] = (
    "lookup_for_write",
    "insert_garbage",
    "discard_ppn",
    "clear_volatile",
    "tracked_ppn_count",
    "tracked_items",
    "__len__",
    "__contains__",
)


@register_rule
class PoolSurfaceRule(Rule):
    """Concrete pool classes define the full DeadValuePool surface."""

    code = "proto.pool-surface"
    summary = "dead-value pool missing part of the DeadValuePool protocol"

    #: Base class marking a class as a pool implementation.
    pool_base = "PoolBase"
    #: Protocol class the required surface is extracted from.
    protocol_name = "DeadValuePool"
    #: Structural trigger: defining both of these marks a class as a
    #: pool implementation even without inheriting PoolBase.
    structural_markers: Tuple[str, ...] = ("lookup_for_write", "insert_garbage")

    def _required_surface(self, table: ClassTable) -> Tuple[str, ...]:
        protocol = table.by_name.get(self.protocol_name)
        if protocol is None:
            return _FALLBACK_POOL_SURFACE
        return tuple(sorted(protocol.methods))

    def _is_pool(self, table: ClassTable, info: ClassInfo) -> bool:
        if info.name in (self.pool_base, self.protocol_name):
            return False
        if table.derives_from(info, self.pool_base):
            return True
        return all(m in info.methods for m in self.structural_markers)

    def check(self, program: Program) -> Iterator[Violation]:
        table = ClassTable(program)
        required = self._required_surface(table)
        for info in table.by_name.values():
            if not self._is_pool(table, info) or info.declared_abstract:
                continue
            concrete = table.concrete_methods(info)
            missing = [name for name in required if name not in concrete]
            if missing:
                yield self.violation(
                    info.module, info.node,
                    f"pool implementation {info.name} is missing "
                    f"{', '.join(missing)} from the DeadValuePool "
                    "protocol; every variant must define the full "
                    "surface (the invariant checker audits tracked_items)",
                )


@register_rule
class FtlHooksRule(Rule):
    """FTL subclasses override the GC hooks their extra state requires."""

    code = "proto.ftl-hooks"
    summary = "BaseFTL subclass missing a required GC/consistency hook"

    ftl_base = "BaseFTL"
    #: Every subclass must handle GC page movement.
    always_required: Tuple[str, ...] = ("relocate_page",)
    #: Hooking content bookkeeping obliges the erase/audit pair too.
    content_triggers: Tuple[str, ...] = ("_on_page_death", "_handle_write")
    content_required: Tuple[str, ...] = ("erase_cleanup", "check_invariants")

    def check(self, program: Program) -> Iterator[Violation]:
        table = ClassTable(program)
        for info in table.by_name.values():
            if info.name == self.ftl_base or not table.derives_from(
                info, self.ftl_base
            ):
                continue
            if info.declared_abstract:
                continue
            below_base = table.concrete_methods(info, stop_at=self.ftl_base)
            required = list(self.always_required)
            if any(t in below_base for t in self.content_triggers):
                required.extend(self.content_required)
            missing = [name for name in required if name not in below_base]
            if missing:
                yield self.violation(
                    info.module, info.node,
                    f"FTL subclass {info.name} must override "
                    f"{', '.join(missing)}: subclass state keyed by "
                    "physical page desyncs when GC relocates or erases "
                    "pages without these hooks",
                )

"""Flash Translation Layer: mapping, allocation, GC, wear, FTL variants.

Rebuilds the FTL of the paper's modified SSDSim (Section IV): page-level
mapping with a 1-byte popularity field, watermark-driven GC with greedy and
popularity-aware victim selection, and the write/update/eviction protocol
of the MQ dead-value pool, plus the deduplicating FTL of Section VII and
the LX-SSD prior-art baseline.
"""

from .allocator import OutOfSpaceError, PageAllocator
from .dedup import DedupFTL
from .dftl import CachedMappingTable, DFTLFtl, TranslationStats
from .dvp_ftl import (
    SYSTEMS,
    build_system,
    make_baseline,
    make_dedup,
    make_dvp_dedup,
    make_adaptive_dvp,
    make_ideal,
    make_lru_dvp,
    make_lxssd,
    make_mq_dvp,
)
from .ftl import BaseFTL, FTLCounters, ReadOutcome, WriteOutcome
from .gc import (
    GarbageCollector,
    GCWork,
    GreedyVictimPolicy,
    PopularityAwareVictimPolicy,
)
from .mapping import MappingTable, POPULARITY_MAX
from .wear import WearStats, WearTracker

__all__ = [
    "BaseFTL",
    "DedupFTL",
    "DFTLFtl",
    "CachedMappingTable",
    "TranslationStats",
    "FTLCounters",
    "WriteOutcome",
    "ReadOutcome",
    "MappingTable",
    "POPULARITY_MAX",
    "PageAllocator",
    "OutOfSpaceError",
    "GarbageCollector",
    "GCWork",
    "GreedyVictimPolicy",
    "PopularityAwareVictimPolicy",
    "WearTracker",
    "WearStats",
    "SYSTEMS",
    "build_system",
    "make_baseline",
    "make_lru_dvp",
    "make_mq_dvp",
    "make_ideal",
    "make_lxssd",
    "make_adaptive_dvp",
    "make_dedup",
    "make_dvp_dedup",
]

"""Extension figure: latency consistency (GC-stall episodes).

Section VI-B argues GC imposes "frequent short episodes of high latencies"
that hurt predictability, and that the dead-value pool cuts them.  The
paper quantifies this only through p99 (Figure 12); this extension uses
the completion log to count the episodes directly, and reports the full
latency percentile ladder for baseline vs MQ-DVP on mail.
"""

from repro.analysis.latency import latency_percentiles, stall_summary
from repro.analysis.report import render_table
from repro.experiments.runner import prefill, scaled_pool_entries
from repro.ftl.dvp_ftl import build_system
from repro.sim.logging import CompletionLog
from repro.sim.ssd import SimulatedSSD

from .conftest import BENCH_SCALE, emit

#: A request is "stalled" when its latency exceeds the erase time — it
#: observably waited behind at least one erase-scale event.
STALL_THRESHOLD_US = 3800.0


def test_ext_latency_consistency(benchmark, matrix):
    context = matrix.context("mail")

    def compute():
        out = {}
        for system in ("baseline", "mq-dvp"):
            log = CompletionLog()
            ftl = build_system(
                system, context.config,
                scaled_pool_entries(200_000, BENCH_SCALE),
            )
            prefill(ftl, context.profile)
            SimulatedSSD(ftl, log=log).run(context.trace)
            out[system] = {
                "percentiles": latency_percentiles(
                    log, (50, 90, 99, 99.9)
                ),
                "stalls": stall_summary(log, STALL_THRESHOLD_US),
            }
        return out

    results = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = []
    for system, data in results.items():
        p = data["percentiles"]
        s = data["stalls"]
        rows.append((
            system,
            f"{p[50]:.0f}", f"{p[90]:.0f}", f"{p[99]:.0f}", f"{p[99.9]:.0f}",
            f"{s['episodes']:.0f}", f"{s['stalled_fraction'] * 100:.2f}",
        ))
    emit(render_table(
        ["system", "p50 (us)", "p90", "p99", "p99.9",
         "stall episodes", "stalled req (%)"],
        rows,
        title="Extension: latency consistency on mail "
              f"(stall = latency > {STALL_THRESHOLD_US:.0f}us)",
    ))
    base = results["baseline"]["stalls"]
    dvp = results["mq-dvp"]["stalls"]
    assert base["episodes"] > 0          # the baseline does stall
    assert dvp["stalled_fraction"] < base["stalled_fraction"]
    assert dvp["episodes"] <= base["episodes"]

"""Unit tests for SSD configuration (Table I) and scaling."""

import pytest

from repro.flash.config import SSDConfig, TimingParams, paper_config, scaled_config


class TestPaperConfig:
    def test_table1_geometry(self):
        cfg = paper_config()
        assert cfg.channels == 8
        assert cfg.chips_per_channel == 8
        assert cfg.dies_per_chip == 4
        assert cfg.planes_per_die == 2
        assert cfg.pages_per_block == 256
        assert cfg.page_size == 4096
        assert cfg.overprovision == 0.15

    def test_table1_timing(self):
        t = paper_config().timing
        assert t.read_us == 75.0
        assert t.program_us == 400.0
        assert t.erase_us == 3800.0
        assert t.hash_us == 12.0

    def test_write_latency_is_much_slower_than_read(self):
        t = paper_config().timing
        assert t.program_us > 5 * t.read_us

    def test_erase_slowest(self):
        t = paper_config().timing
        assert t.erase_us > t.program_us > t.read_us

    def test_capacity_is_exactly_1tb(self):
        assert paper_config().raw_capacity_bytes == 1 << 40

    def test_logical_capacity_removes_op(self):
        cfg = paper_config()
        assert cfg.logical_pages == int(cfg.total_pages * 0.85)


class TestDerivedSizes:
    def test_totals_multiply_out(self):
        cfg = SSDConfig(
            channels=2, chips_per_channel=3, dies_per_chip=4,
            planes_per_die=2, blocks_per_plane=10, pages_per_block=16,
        )
        assert cfg.total_chips == 6
        assert cfg.planes_per_chip == 8
        assert cfg.total_planes == 48
        assert cfg.total_blocks == 480
        assert cfg.total_pages == 7680

    def test_with_timing_override(self):
        cfg = paper_config().with_timing(hash_us=20.0)
        assert cfg.timing.hash_us == 20.0
        assert cfg.timing.read_us == 75.0


class TestValidation:
    def test_zero_channels_rejected(self):
        with pytest.raises(ValueError):
            SSDConfig(channels=0)

    def test_bad_overprovision_rejected(self):
        with pytest.raises(ValueError):
            SSDConfig(overprovision=1.0)

    def test_bad_gc_thresholds_rejected(self):
        with pytest.raises(ValueError):
            SSDConfig(gc_threshold=0.5, gc_target=0.4)

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            TimingParams(read_us=-1.0)


class TestScaledConfig:
    def test_covers_requested_pages(self):
        cfg = scaled_config(10_000)
        assert cfg.logical_pages >= 10_000

    def test_keeps_paper_timing(self):
        assert scaled_config(1000).timing == paper_config().timing

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            scaled_config(0)

    def test_small_requests_get_minimum_blocks(self):
        cfg = scaled_config(1)
        assert cfg.blocks_per_plane >= 4

    def test_larger_footprint_means_more_blocks(self):
        small = scaled_config(5_000)
        large = scaled_config(50_000)
        assert large.total_pages > small.total_pages

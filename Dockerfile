# repro-serve: the streaming multi-tenant trace service, containerised.
#
# The package is pure stdlib, so the image is just a slim Python plus
# the src tree.  Configuration comes from REPRO_SERVE_* environment
# variables (see src/repro/serve/config.py); `docker stop` sends
# SIGTERM, which the server turns into a graceful drain — every tenant
# session is checkpointed into the volume before the process exits 0.

FROM python:3.12-slim

WORKDIR /app
COPY src/ src/
ENV PYTHONPATH=/app/src \
    PYTHONUNBUFFERED=1 \
    REPRO_SERVE_HOST=0.0.0.0 \
    REPRO_SERVE_PORT=9911 \
    REPRO_SERVE_CHECKPOINT_DIR=/data/checkpoints

VOLUME /data
EXPOSE 9911

# PID 1 must receive the SIGTERM itself (no shell wrapper), so the
# drain-and-checkpoint path runs on `docker stop`.
ENTRYPOINT ["python", "-m", "repro.serve.entrypoint"]

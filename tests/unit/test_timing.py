"""Unit tests for resource timelines (the contention model)."""

import pytest

from repro.flash.timing import ResourceTimeline, TimelineSet


class TestResourceTimeline:
    def test_idle_resource_starts_immediately(self):
        tl = ResourceTimeline("chip")
        start, end = tl.schedule(arrival=100.0, duration=50.0)
        assert (start, end) == (100.0, 150.0)

    def test_busy_resource_queues(self):
        tl = ResourceTimeline("chip")
        tl.schedule(0.0, 100.0)
        start, end = tl.schedule(arrival=10.0, duration=5.0)
        assert start == 100.0
        assert end == 105.0

    def test_gap_leaves_idle_time(self):
        tl = ResourceTimeline("chip")
        tl.schedule(0.0, 10.0)
        start, _ = tl.schedule(arrival=50.0, duration=10.0)
        assert start == 50.0

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            ResourceTimeline("x").schedule(0.0, -1.0)

    def test_utilisation(self):
        tl = ResourceTimeline("chip")
        tl.schedule(0.0, 25.0)
        assert tl.utilisation(100.0) == 0.25
        assert tl.utilisation(0.0) == 0.0

    def test_peek_start_has_no_side_effect(self):
        tl = ResourceTimeline("chip")
        tl.schedule(0.0, 100.0)
        assert tl.peek_start(10.0) == 100.0
        assert tl.op_count == 1

    def test_op_count_and_busy_time(self):
        tl = ResourceTimeline("chip")
        tl.schedule(0.0, 10.0)
        tl.schedule(0.0, 10.0)
        assert tl.op_count == 2
        assert tl.busy_time == 20.0


class TestTimelineSet:
    def test_geometry_mismatch_rejected(self):
        with pytest.raises(ValueError):
            TimelineSet(num_chips=5, num_channels=2, chips_per_channel=2)

    def test_channel_of_chip(self):
        ts = TimelineSet(num_chips=4, num_channels=2, chips_per_channel=2)
        assert ts.channel_of_chip(0) is ts.channels[0]
        assert ts.channel_of_chip(1) is ts.channels[0]
        assert ts.channel_of_chip(2) is ts.channels[1]

    def test_chip_op_serialises_transfer_then_array(self):
        ts = TimelineSet(num_chips=2, num_channels=1, chips_per_channel=2)
        end = ts.chip_op(chip=0, arrival=0.0, flash_us=400.0, xfer_us=10.0)
        assert end == 410.0

    def test_channel_shared_between_chips(self):
        ts = TimelineSet(num_chips=2, num_channels=1, chips_per_channel=2)
        end0 = ts.chip_op(0, arrival=0.0, flash_us=400.0, xfer_us=10.0)
        # Second op on the other chip must wait for the shared channel.
        end1 = ts.chip_op(1, arrival=0.0, flash_us=400.0, xfer_us=10.0)
        assert end0 == 410.0
        assert end1 == 420.0  # xfer waited until 10, chip1 idle

    def test_chips_are_independent_resources(self):
        ts = TimelineSet(num_chips=2, num_channels=2, chips_per_channel=1)
        end0 = ts.chip_op(0, 0.0, 400.0, 10.0)
        end1 = ts.chip_op(1, 0.0, 400.0, 10.0)
        assert end0 == end1 == 410.0  # separate channels: full parallelism

    def test_same_chip_ops_queue(self):
        ts = TimelineSet(num_chips=1, num_channels=1, chips_per_channel=1)
        ts.chip_op(0, 0.0, 400.0, 10.0)
        end = ts.chip_op(0, 0.0, 400.0, 10.0)
        assert end == 810.0  # second array op waits for the first

    def test_hash_unit_serialises(self):
        ts = TimelineSet(num_chips=1, num_channels=1, chips_per_channel=1)
        assert ts.hash_op(0.0, 12.0) == 12.0
        assert ts.hash_op(0.0, 12.0) == 24.0

"""Serve settings: the server-level knobs, env-readable for Docker.

This module is the *only* place the serve layer reads the environment
(the ``det.environ`` lint rule allows env access solely in ``config``
modules): the Docker entrypoint configures the server entirely through
``REPRO_SERVE_*`` variables, and the ``repro serve`` CLI flags override
whatever the environment provided.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Mapping, Optional

__all__ = [
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "DEFAULT_BATCH_REQUESTS",
    "DEFAULT_MAX_SESSIONS",
    "ServeSettings",
    "settings_from_env",
]

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 9911
#: Requests a tenant buffers before the server steps its devices.
DEFAULT_BATCH_REQUESTS = 256
DEFAULT_MAX_SESSIONS = 64


@dataclass(frozen=True)
class ServeSettings:
    """How one ``repro serve`` process runs.

    ``checkpoint_dir`` enables durability: sessions checkpoint there on
    detach, on periodic ``checkpoint_every`` boundaries and during
    graceful shutdown, and an ``open`` for a checkpointed tenant
    resumes its device state exactly.  ``obs_path`` streams every
    incremental/final session record through the
    :class:`~repro.obs.export.JsonlWriter` JSONL surface.  ``jobs``
    bounds the worker threads that step tenant devices (``0`` = all
    cores).
    """

    host: str = DEFAULT_HOST
    port: int = DEFAULT_PORT
    checkpoint_dir: Optional[str] = None
    obs_path: Optional[str] = None
    max_sessions: int = DEFAULT_MAX_SESSIONS
    batch_requests: int = DEFAULT_BATCH_REQUESTS
    #: Checkpoint a session every N served requests (None = only on
    #: detach/shutdown).  Periodic checkpoints are what make a *hard*
    #: kill (SIGKILL) resumable; graceful shutdown checkpoints anyway.
    checkpoint_every: Optional[int] = None
    jobs: int = 1
    #: Session defaults applied when an ``open`` message omits them.
    default_seed: Optional[int] = None
    check_interval: Optional[int] = None
    oracle: bool = False

    def __post_init__(self) -> None:
        if not 0 <= self.port <= 65535:
            raise ValueError("port must be in [0, 65535] (0 = ephemeral)")
        if self.max_sessions <= 0:
            raise ValueError("max_sessions must be positive")
        if self.batch_requests <= 0:
            raise ValueError("batch_requests must be positive")
        if self.checkpoint_every is not None and self.checkpoint_every <= 0:
            raise ValueError("checkpoint_every must be positive when set")
        if self.jobs < 0:
            raise ValueError("jobs must be >= 0 (0 = all cores)")


def _env_int(
    environ: Mapping[str, str], key: str, default: Optional[int]
) -> Optional[int]:
    raw = environ.get(key)
    if raw is None or raw == "":
        return default
    return int(raw)


def settings_from_env(
    environ: Optional[Mapping[str, str]] = None,
) -> ServeSettings:
    """Settings from ``REPRO_SERVE_*`` variables (Docker's surface).

    Unset variables fall back to the dataclass defaults; the CLI layers
    its flags on top of the result.
    """
    env = os.environ if environ is None else environ
    return ServeSettings(
        host=env.get("REPRO_SERVE_HOST", DEFAULT_HOST),
        port=_env_int(env, "REPRO_SERVE_PORT", DEFAULT_PORT),
        checkpoint_dir=env.get("REPRO_SERVE_CHECKPOINT_DIR") or None,
        obs_path=env.get("REPRO_SERVE_OBS") or None,
        max_sessions=_env_int(
            env, "REPRO_SERVE_MAX_SESSIONS", DEFAULT_MAX_SESSIONS
        ),
        batch_requests=_env_int(
            env, "REPRO_SERVE_BATCH_REQUESTS", DEFAULT_BATCH_REQUESTS
        ),
        checkpoint_every=_env_int(env, "REPRO_SERVE_CHECKPOINT_EVERY", None),
        jobs=_env_int(env, "REPRO_SERVE_JOBS", 1),
    )

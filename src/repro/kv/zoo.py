"""The keyed workload zoo: streaming YCSB-style generators.

Block traces answer the paper's original question; these generators ask
the ROADMAP's follow-up — does value-locality revival survive when the
host speaks KV?  Every generator yields
:class:`~repro.kv.requests.KVRequest` lazily (never materialising a
trace), so multi-billion-request runs hold only O(live keys) of state,
and composes with :meth:`~repro.kv.store.KVStore.translate` into an
equally lazy page stream.

Shapes:

* **YCSB A–E** — the standard mixes (update-heavy, read-mostly, read-only,
  read-latest, scan-heavy) with zipfian key popularity, a value-size
  distribution spanning inline and multi-page values, and a value
  *content* model with redraw locality (updates rewrite popular existing
  contents with ``1 - new_content_prob``, exactly the recurrence the
  dead-value pool feeds on).
* **trim-heavy** — churn: inserts and deletes dominate, so the keyed
  delete path generates sustained TRIM traffic (Frankie et al.,
  PAPERS.md: trim's effect on effective over-provisioning).
* **diurnal** — N tenants with sinusoidally modulated arrival rates at
  staggered phases (simulated time only), merged lazily into one bursty
  multi-tenant stream with per-tenant key and content namespaces.

Tenant namespaces follow the same contract as
:func:`~repro.traces.transforms.interleave_tenants` after its collision
fix: a tenant emitting a key or content id outside its private space
raises instead of silently aliasing a neighbour's namespace.

Load vs transactions: :func:`load_stream` inserts every initial key
(key ``k`` starts with its own unique content ``k``, like the block
generator's prefill content model); :func:`txn_stream` then draws the
op mix.  The scenario runner applies the load phase as preconditioning
(directly against the FTL, counters reset afterwards) and measures only
the transaction phase.
"""

from __future__ import annotations

import heapq
import math
import random
from dataclasses import dataclass, replace
from typing import Dict, Iterable, Iterator, List, Sequence, Tuple

from ..traces.zipf import zipf_rank
from .requests import KVOp, KVRequest, mix64

__all__ = [
    "KVWorkload",
    "KV_WORKLOADS",
    "kv_workload",
    "load_stream",
    "txn_stream",
    "interleave_kv_tenants",
    "TENANT_CONTENT_SPACE",
]

#: Private per-tenant content-id space (mirrors ``interleave_tenants``).
TENANT_CONTENT_SPACE = 1 << 40


@dataclass(frozen=True)
class KVWorkload:
    """One keyed workload shape (frozen, picklable, reseedable)."""

    name: str
    num_keys: int = 3_000           # per tenant, loaded before measuring
    num_requests: int = 18_000      # per tenant, transaction phase
    read_prop: float = 0.0
    update_prop: float = 0.0
    insert_prop: float = 0.0
    delete_prop: float = 0.0
    scan_prop: float = 0.0
    key_zipf_s: float = 0.99        # YCSB's default zipfian constant
    favor_latest: bool = False      # YCSB-D: newest keys are hottest
    scan_length_max: int = 32
    value_sizes: Tuple[int, ...] = (128, 512, 1536, 4096, 12_288)
    value_size_weights: Tuple[float, ...] = (30.0, 30.0, 20.0, 15.0, 5.0)
    new_content_prob: float = 0.3
    content_zipf_s: float = 1.15    # mail-like value-popularity skew
    mean_interarrival_us: float = 120.0
    tenants: int = 1
    diurnal_amplitude: float = 0.0  # 0 = steady arrivals
    diurnal_period_us: float = 4_000_000.0
    seed: int = 1

    def __post_init__(self) -> None:
        props = (self.read_prop + self.update_prop + self.insert_prop
                 + self.delete_prop + self.scan_prop)
        if abs(props - 1.0) > 1e-9:
            raise ValueError(f"op proportions sum to {props}, not 1")
        if self.num_keys <= 0 or self.num_requests <= 0:
            raise ValueError("num_keys and num_requests must be positive")
        if len(self.value_sizes) != len(self.value_size_weights):
            raise ValueError("value_sizes/value_size_weights length mismatch")
        if min(self.value_sizes) <= 0:
            raise ValueError("value sizes must be positive")
        if not 0.0 <= self.new_content_prob <= 1.0:
            raise ValueError("new_content_prob must be in [0, 1]")
        if self.tenants < 1:
            raise ValueError("tenants must be >= 1")
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ValueError("diurnal_amplitude must be in [0, 1)")
        if self.mean_interarrival_us <= 0 or self.diurnal_period_us <= 0:
            raise ValueError("time parameters must be positive")
        if self.scan_prop and self.scan_length_max <= 0:
            raise ValueError("scan_length_max must be positive with scans")

    # -- derived -------------------------------------------------------

    def scaled(self, scale: float) -> "KVWorkload":
        """Shrink (or grow) keys and requests together, like the block
        profiles' ``scaled``."""
        if scale <= 0:
            raise ValueError("scale must be positive")
        return replace(
            self,
            num_keys=max(64, int(self.num_keys * scale)),
            num_requests=max(256, int(self.num_requests * scale)),
        )

    def reseeded(self, seed: int) -> "KVWorkload":
        return replace(self, seed=seed)

    @property
    def tenant_key_space(self) -> int:
        """Private per-tenant key range: initial keys plus every insert
        the transaction phase could possibly make."""
        return self.num_keys + self.num_requests + 1

    def estimated_pages(self, page_bytes: int = 4096) -> int:
        """Footprint estimate for drive sizing (with packing slack)."""
        threshold = page_bytes // 2
        weight_sum = sum(self.value_size_weights)
        expected = sum(
            weight * (
                -(-size // page_bytes) if size >= threshold
                else size / page_bytes
            )
            for size, weight in zip(self.value_sizes,
                                    self.value_size_weights)
        ) / weight_sum
        values = self.num_keys + int(self.num_requests * self.insert_prop)
        return int(values * self.tenants * expected * 1.5) + 64


# -- per-tenant building blocks ----------------------------------------


def _rng(workload: KVWorkload, tenant: int, phase: int) -> random.Random:
    """A deterministic per-(workload, tenant, phase) generator."""
    return random.Random(mix64(
        (workload.seed << 20) ^ (tenant << 4) ^ phase
    ))


def _draw_size(workload: KVWorkload, rng: random.Random) -> int:
    return rng.choices(
        workload.value_sizes, weights=workload.value_size_weights,
    )[0]


class _ContentModel:
    """Growing content universe with zipfian redraw locality.

    The initial load gives key ``k`` unique content ``k``; transaction
    PUTs then either mint fresh content (``new_content_prob``) or redraw
    an existing one with creation-rank zipf skew — the same shape the
    block generator uses, expressed over KV values.
    """

    __slots__ = ("created", "new_prob", "s")

    def __init__(self, created: int, new_prob: float, s: float):
        self.created = created
        self.new_prob = new_prob
        self.s = s

    def draw(self, rng: random.Random) -> int:
        if self.created == 0 or rng.random() < self.new_prob:
            content_id = self.created
            self.created += 1
            return content_id
        return zipf_rank(rng, self.created, self.s) - 1


def _tenant_load(workload: KVWorkload, tenant: int) -> Iterator[KVRequest]:
    """Insert keys ``0..num_keys-1``, each with its own unique content."""
    rng = _rng(workload, tenant, phase=0)
    clock = 0.0
    for key in range(workload.num_keys):
        yield KVRequest(
            arrival_us=clock,
            op=KVOp.PUT,
            key=key,
            value_bytes=_draw_size(workload, rng),
            content_id=key,
        )
        clock += workload.mean_interarrival_us


def _pick_index(
    rng: random.Random, count: int, s: float, latest: bool
) -> int:
    """A zipfian index into a live-key list: rank 1 is the oldest key
    (stable hot set), or the newest when ``latest``."""
    rank = zipf_rank(rng, count, s)
    return count - rank if latest else rank - 1


def _tenant_txns(workload: KVWorkload, tenant: int) -> Iterator[KVRequest]:
    rng = _rng(workload, tenant, phase=1)
    content = _ContentModel(
        created=workload.num_keys,
        new_prob=workload.new_content_prob,
        s=workload.content_zipf_s,
    )
    live: List[int] = list(range(workload.num_keys))
    next_key = workload.num_keys
    # Phase-staggered sinusoidal rate: tenants peak at different times,
    # in *simulated* microseconds only (wall clock never enters).
    phase = 2.0 * math.pi * tenant / max(1, workload.tenants)
    cum_read = workload.read_prop
    cum_update = cum_read + workload.update_prop
    cum_insert = cum_update + workload.insert_prop
    cum_delete = cum_insert + workload.delete_prop
    clock = 0.0
    for _ in range(workload.num_requests):
        rate = 1.0
        if workload.diurnal_amplitude:
            rate += workload.diurnal_amplitude * math.sin(
                2.0 * math.pi * clock / workload.diurnal_period_us + phase
            )
        clock += (
            rng.expovariate(1.0) * workload.mean_interarrival_us / rate
        )
        draw = rng.random()
        if draw < cum_read and live:
            key = live[_pick_index(
                rng, len(live), workload.key_zipf_s, workload.favor_latest
            )]
            yield KVRequest(clock, KVOp.GET, key)
        elif draw < cum_update and live:
            key = live[_pick_index(
                rng, len(live), workload.key_zipf_s, workload.favor_latest
            )]
            yield KVRequest(
                clock, KVOp.PUT, key,
                value_bytes=_draw_size(workload, rng),
                content_id=content.draw(rng),
            )
        elif draw < cum_insert or not live:
            key = next_key
            next_key += 1
            live.append(key)
            yield KVRequest(
                clock, KVOp.PUT, key,
                value_bytes=_draw_size(workload, rng),
                content_id=content.draw(rng),
            )
        elif draw < cum_delete:
            index = _pick_index(
                rng, len(live), workload.key_zipf_s, latest=False,
            )
            key = live[index]
            live[index] = live[-1]   # swap-pop: O(1), deterministic
            live.pop()
            yield KVRequest(clock, KVOp.DELETE, key)
        else:
            key = live[_pick_index(
                rng, len(live), workload.key_zipf_s, workload.favor_latest
            )]
            yield KVRequest(
                clock, KVOp.SCAN, key,
                scan_length=1 + rng.randrange(workload.scan_length_max),
            )


# -- multi-tenant composition ------------------------------------------


def interleave_kv_tenants(
    tenants: Sequence[Iterable[KVRequest]],
    key_space: int,
    content_space: int = TENANT_CONTENT_SPACE,
    share_contents: bool = False,
) -> Iterator[KVRequest]:
    """Merge per-tenant KV streams into one arrival-ordered stream with
    private key and content namespaces.

    Same contract as the block layer's
    :func:`~repro.traces.transforms.interleave_tenants` (post collision
    fix): a tenant key or content id that does not fit its private space
    raises — lazily, at the offending request — rather than silently
    aliasing another tenant's namespace.  ``share_contents=True`` keeps
    content ids unshifted, modelling tenants with genuinely common data
    (shared images/base layers) where cross-tenant revival is real.
    """
    if key_space <= 0:
        raise ValueError("key_space must be positive")
    if content_space <= 0:
        raise ValueError("content_space must be positive")

    def shifted(
        stream: Iterable[KVRequest], index: int
    ) -> Iterator[KVRequest]:
        for request in stream:
            if isinstance(request.key, int):
                if request.key >= key_space:
                    raise ValueError(
                        f"tenant {index} key {request.key} does not fit "
                        f"its private key space ({key_space})"
                    )
                key = request.key + index * key_space
            else:
                key = f"tenant{index}/{request.key}"
            content_id = request.content_id
            if request.op is KVOp.PUT and not share_contents:
                if content_id >= content_space:
                    raise ValueError(
                        f"tenant {index} content id {content_id} does not "
                        f"fit its private namespace ({content_space}); "
                        "raise content_space or pass share_contents=True"
                    )
                content_id = content_id + index * content_space
            yield replace(request, key=key, content_id=content_id)

    return iter(heapq.merge(
        *(shifted(stream, index) for index, stream in enumerate(tenants)),
        key=lambda request: request.arrival_us,
    ))


# -- public streams ----------------------------------------------------


def load_stream(workload: KVWorkload) -> Iterator[KVRequest]:
    """The initial-population phase: every tenant's keys inserted once."""
    if workload.tenants == 1:
        return _tenant_load(workload, 0)
    return interleave_kv_tenants(
        [_tenant_load(workload, t) for t in range(workload.tenants)],
        key_space=workload.tenant_key_space,
    )


def txn_stream(workload: KVWorkload) -> Iterator[KVRequest]:
    """The measured transaction phase."""
    if workload.tenants == 1:
        return _tenant_txns(workload, 0)
    return interleave_kv_tenants(
        [_tenant_txns(workload, t) for t in range(workload.tenants)],
        key_space=workload.tenant_key_space,
    )


# -- the zoo -----------------------------------------------------------

KV_WORKLOADS: Dict[str, KVWorkload] = {
    "ycsb-a": KVWorkload(
        "ycsb-a", read_prop=0.5, update_prop=0.5, seed=101,
    ),
    "ycsb-b": KVWorkload(
        "ycsb-b", read_prop=0.95, update_prop=0.05, seed=102,
    ),
    "ycsb-c": KVWorkload(
        "ycsb-c", read_prop=1.0, seed=103,
    ),
    "ycsb-d": KVWorkload(
        "ycsb-d", read_prop=0.95, insert_prop=0.05, favor_latest=True,
        seed=104,
    ),
    "ycsb-e": KVWorkload(
        "ycsb-e", scan_prop=0.95, insert_prop=0.05, scan_length_max=24,
        seed=105,
    ),
    "trim-heavy": KVWorkload(
        "trim-heavy", read_prop=0.30, insert_prop=0.35, delete_prop=0.35,
        value_sizes=(128, 512, 1536, 4096),
        value_size_weights=(35.0, 35.0, 20.0, 10.0),
        seed=106,
    ),
    "diurnal": KVWorkload(
        "diurnal", read_prop=0.45, update_prop=0.45, insert_prop=0.05,
        delete_prop=0.05, tenants=3, diurnal_amplitude=0.6,
        num_keys=1_200, num_requests=7_000,   # per tenant
        seed=107,
    ),
}


def kv_workload(name: str) -> KVWorkload:
    try:
        return KV_WORKLOADS[name]
    except KeyError:
        raise ValueError(
            f"unknown KV workload {name!r}; choose from "
            f"{sorted(KV_WORKLOADS)}"
        ) from None

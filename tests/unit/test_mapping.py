"""Unit tests for the LPN-to-PPN mapping table."""

import pytest

from repro.ftl.mapping import POPULARITY_MAX, MappingTable


class TestForwardMapping:
    def test_map_and_lookup(self):
        table = MappingTable()
        table.map(5, 100)
        assert table.lookup(5) == 100

    def test_unmapped_returns_none(self):
        assert MappingTable().lookup(5) is None

    def test_double_map_refused(self):
        table = MappingTable()
        table.map(5, 100)
        with pytest.raises(RuntimeError):
            table.map(5, 200)

    def test_unmap_returns_ppn(self):
        table = MappingTable()
        table.map(5, 100)
        assert table.unmap(5) == 100
        assert table.lookup(5) is None

    def test_unmap_missing_returns_none(self):
        assert MappingTable().unmap(5) is None

    def test_remap_after_unmap(self):
        table = MappingTable()
        table.map(5, 100)
        table.unmap(5)
        table.map(5, 200)
        assert table.lookup(5) == 200


class TestReverseMapping:
    def test_refcount_single(self):
        table = MappingTable()
        table.map(5, 100)
        assert table.refcount(100) == 1
        assert table.lpns_of(100) == {5}

    def test_many_to_one(self):
        """Dedup: several LPNs share one physical page."""
        table = MappingTable()
        table.map(1, 100)
        table.map(2, 100)
        table.map(3, 100)
        assert table.refcount(100) == 3
        table.unmap(2)
        assert table.refcount(100) == 2
        assert table.lpns_of(100) == {1, 3}

    def test_remap_ppn_moves_all_lpns(self):
        table = MappingTable()
        table.map(1, 100)
        table.map(2, 100)
        moved = table.remap_ppn(100, 200)
        assert moved == 2
        assert table.lookup(1) == 200
        assert table.lookup(2) == 200
        assert table.refcount(100) == 0
        assert table.refcount(200) == 2

    def test_remap_unreferenced_ppn_is_noop(self):
        table = MappingTable()
        assert table.remap_ppn(100, 200) == 0

    def test_mapped_lpn_count(self):
        table = MappingTable()
        table.map(1, 100)
        table.map(2, 100)
        assert table.mapped_lpn_count() == 2

    def test_invariants(self):
        table = MappingTable()
        for lpn in range(10):
            table.map(lpn, 100 + lpn % 3)
        table.unmap(4)
        table.check_invariants()


class TestPopularityByte:
    def test_default_zero(self):
        assert MappingTable().popularity(7) == 0

    def test_bump_saturates_at_one_byte(self):
        table = MappingTable()
        for _ in range(300):
            table.bump_popularity(7)
        assert table.popularity(7) == POPULARITY_MAX == 255

    def test_set_clamps(self):
        table = MappingTable()
        table.set_popularity(7, 999)
        assert table.popularity(7) == 255
        table.set_popularity(7, -5)
        assert table.popularity(7) == 0

    def test_popularity_survives_unmap(self):
        """The point of the byte: popularity outlives any single mapping."""
        table = MappingTable()
        table.map(7, 100)
        table.bump_popularity(7)
        table.unmap(7)
        assert table.popularity(7) == 1

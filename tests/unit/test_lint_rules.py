"""Per-rule fixtures for :mod:`repro.lint`: every code fires and stays quiet.

Each rule gets (at least) one seeded-violation fixture and one
counter-fixture exercising the rule's allowance (the sanctioned module,
the seeded generator, the ``sorted(...)`` wrapper, ...).  A meta-test at
the bottom asserts the fixture table covers every registered code, so a
new rule cannot land without a fixture proving it fires.
"""

import textwrap

import pytest

from repro.lint import LintEngine, all_codes


def lint_sources(tmp_path, files, select=None):
    """Lint an in-memory {relpath: source} tree rooted at ``tmp_path``."""
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    engine = LintEngine(select=select, package_root=str(tmp_path))
    return engine.run([str(tmp_path)])


def codes_of(result):
    return sorted({v.code for v in result.violations})


# ---------------------------------------------------------------------------
# det.wallclock
# ---------------------------------------------------------------------------

WALLCLOCK_BAD = {
    "repro/sim/hot.py": """
        import time

        def stamp():
            return time.time()
    """,
}

def test_wallclock_fires_outside_obs(tmp_path):
    result = lint_sources(tmp_path, WALLCLOCK_BAD, select=["det.wallclock"])
    assert codes_of(result) == ["det.wallclock"]
    (violation,) = result.violations
    assert violation.line == 5  # dedented fixture keeps its leading newline
    assert violation.context == "stamp"


def test_wallclock_catches_aliases_and_from_imports(tmp_path):
    result = lint_sources(tmp_path, {
        "repro/sim/a.py": """
            from time import perf_counter

            def f():
                return perf_counter()
        """,
        "repro/sim/b.py": """
            import time as t

            def g():
                return t.monotonic()
        """,
        "repro/sim/c.py": """
            from datetime import datetime

            def h():
                return datetime.now()
        """,
    }, select=["det.wallclock"])
    assert len(result.violations) == 3


def test_wallclock_allowed_in_obs_and_perf(tmp_path):
    result = lint_sources(tmp_path, {
        "repro/obs/tracer.py": """
            import time

            def span():
                return time.perf_counter()
        """,
        "repro/perf/bench.py": """
            import time

            def wall():
                return time.time()
        """,
    }, select=["det.wallclock"])
    assert result.clean


# ---------------------------------------------------------------------------
# det.global-random
# ---------------------------------------------------------------------------

def test_global_random_fires(tmp_path):
    result = lint_sources(tmp_path, {
        "repro/traces/bad.py": """
            import random

            def draw():
                return random.randint(0, 7)
        """,
    }, select=["det.global-random"])
    assert codes_of(result) == ["det.global-random"]


def test_global_random_from_import_and_shuffle(tmp_path):
    result = lint_sources(tmp_path, {
        "repro/traces/bad.py": """
            from random import shuffle

            def mix(items):
                shuffle(items)
        """,
    }, select=["det.global-random"])
    assert codes_of(result) == ["det.global-random"]


def test_seeded_random_instances_allowed(tmp_path):
    result = lint_sources(tmp_path, {
        "repro/traces/good.py": """
            import random

            def stream(seed):
                rng = random.Random(seed)
                return rng.randint(0, 7)
        """,
    }, select=["det.global-random"])
    assert result.clean


# ---------------------------------------------------------------------------
# det.set-iter
# ---------------------------------------------------------------------------

def test_set_iteration_into_append_fires(tmp_path):
    result = lint_sources(tmp_path, {
        "repro/core/bad.py": """
            def collect(items):
                live = {x for x in items}
                out = []
                for x in live:
                    out.append(x)
                return out
        """,
    }, select=["det.set-iter"])
    assert codes_of(result) == ["det.set-iter"]


def test_list_of_set_and_keys_fire(tmp_path):
    result = lint_sources(tmp_path, {
        "repro/core/bad.py": """
            def a(items):
                return list(set(items))

            def b(mapping, sink):
                for key in mapping.keys():
                    sink.append(key)
        """,
    }, select=["det.set-iter"])
    assert len(result.violations) == 2


def test_listcomp_over_set_fires(tmp_path):
    result = lint_sources(tmp_path, {
        "repro/core/bad.py": """
            def squares(items):
                dead = set(items)
                return [x * x for x in dead]
        """,
    }, select=["det.set-iter"])
    assert codes_of(result) == ["det.set-iter"]


def test_sorted_wrapper_and_order_free_consumers_allowed(tmp_path):
    result = lint_sources(tmp_path, {
        "repro/core/good.py": """
            def canonical(items):
                dead = set(items)
                out = []
                for x in sorted(dead):
                    out.append(x)
                total = sum(x for x in dead)
                biggest = max(dead)
                return out, total, biggest, sorted(dead)
        """,
    }, select=["det.set-iter"])
    assert result.clean


def test_rebinding_to_sorted_clears_taint(tmp_path):
    result = lint_sources(tmp_path, {
        "repro/core/good.py": """
            def canonical(items):
                dead = set(items)
                dead = sorted(dead)
                return [x for x in dead]
        """,
    }, select=["det.set-iter"])
    assert result.clean


# ---------------------------------------------------------------------------
# det.environ
# ---------------------------------------------------------------------------

def test_environ_fires_outside_config(tmp_path):
    result = lint_sources(tmp_path, {
        "repro/ftl/bad.py": """
            import os

            def knob():
                return os.environ.get("REPRO_FAST")
        """,
    }, select=["det.environ"])
    assert codes_of(result) == ["det.environ"]


def test_getenv_fires_too(tmp_path):
    result = lint_sources(tmp_path, {
        "repro/ftl/bad.py": """
            import os

            def knob():
                return os.getenv("REPRO_FAST")
        """,
    }, select=["det.environ"])
    assert codes_of(result) == ["det.environ"]


def test_environ_allowed_in_config_and_trace_cache(tmp_path):
    result = lint_sources(tmp_path, {
        "repro/flash/config.py": """
            import os

            DEBUG = os.environ.get("REPRO_DEBUG")
        """,
        "repro/perf/trace_cache.py": """
            import os

            DISK = os.environ.get("REPRO_TRACE_CACHE")
        """,
    }, select=["det.environ"])
    assert result.clean


# ---------------------------------------------------------------------------
# layer.*
# ---------------------------------------------------------------------------

def test_core_purity_fires(tmp_path):
    result = lint_sources(tmp_path, {
        "repro/core/bad.py": """
            from repro.sim.engine import EventEngine

            def f():
                return EventEngine
        """,
    }, select=["layer.core-purity"])
    assert codes_of(result) == ["layer.core-purity"]


def test_core_purity_catches_lazy_imports(tmp_path):
    result = lint_sources(tmp_path, {
        "repro/core/bad.py": """
            def f():
                from repro.experiments import runner
                return runner
        """,
    }, select=["layer.core-purity"])
    assert codes_of(result) == ["layer.core-purity"]


def test_core_importing_stdlib_and_core_allowed(tmp_path):
    result = lint_sources(tmp_path, {
        "repro/core/good.py": """
            import hashlib
            from repro.core.other import helper

            def f():
                return hashlib, helper
        """,
        "repro/core/other.py": """
            def helper():
                return 1
        """,
    }, select=["layer.core-purity"])
    assert result.clean


def test_no_experiments_fires_for_sim_and_ftl(tmp_path):
    result = lint_sources(tmp_path, {
        "repro/sim/bad.py": """
            def f():
                from repro.experiments.runner import run_system
                return run_system
        """,
        "repro/ftl/bad.py": """
            from repro.experiments import config
        """,
    }, select=["layer.no-experiments"])
    assert len(result.violations) == 2
    assert codes_of(result) == ["layer.no-experiments"]


def test_core_purity_covers_fleet(tmp_path):
    result = lint_sources(tmp_path, {
        "repro/core/bad.py": """
            from repro.fleet import FleetSpec

            def f():
                return FleetSpec
        """,
    }, select=["layer.core-purity"])
    assert codes_of(result) == ["layer.core-purity"]


def test_no_experiments_covers_fleet(tmp_path):
    result = lint_sources(tmp_path, {
        "repro/sim/bad.py": """
            def f():
                from repro.fleet import run_fleet
                return run_fleet
        """,
        "repro/ftl/bad.py": """
            from repro.fleet.ring import HashRing
        """,
    }, select=["layer.no-experiments"])
    assert len(result.violations) == 2
    assert codes_of(result) == ["layer.no-experiments"]


def test_no_experiments_covers_api(tmp_path):
    result = lint_sources(tmp_path, {
        "repro/sim/bad.py": """
            from repro.api import record_from_run
        """,
    }, select=["layer.no-experiments"])
    assert codes_of(result) == ["layer.no-experiments"]


def test_no_serve_fires_below_the_cli(tmp_path):
    result = lint_sources(tmp_path, {
        "repro/fleet/bad.py": """
            def f():
                from repro.serve import ServeServer
                return ServeServer
        """,
        "repro/api/bad.py": """
            from repro.serve.session import TenantSession
        """,
    }, select=["layer.no-serve"])
    assert len(result.violations) == 2
    assert codes_of(result) == ["layer.no-serve"]


def test_cli_and_serve_itself_may_import_serve(tmp_path):
    result = lint_sources(tmp_path, {
        "repro/cli.py": """
            def f():
                from repro.serve import run_server
                return run_server
        """,
        "repro/serve/manager.py": """
            from repro.serve.session import TenantSession

            def g():
                return TenantSession
        """,
    }, select=["layer.no-serve"])
    assert result.clean


def test_fleet_may_import_harness_and_device_layers(tmp_path):
    result = lint_sources(tmp_path, {
        "repro/fleet/good.py": """
            from repro.experiments.device import Device
            from repro.sim.metrics import RunResult

            def f():
                return Device, RunResult
        """,
    }, select=["layer.no-experiments", "layer.core-purity"])
    assert result.clean


def test_type_checking_imports_exempt(tmp_path):
    result = lint_sources(tmp_path, {
        "repro/sim/good.py": """
            from typing import TYPE_CHECKING

            if TYPE_CHECKING:
                from repro.experiments.config import RunConfig

            def f(config: "RunConfig"):
                return config
        """,
    }, select=["layer.no-experiments"])
    assert result.clean


def test_import_cycle_detected(tmp_path):
    result = lint_sources(tmp_path, {
        "cyclepkg/__init__.py": "",
        "cyclepkg/a.py": """
            from cyclepkg import b

            def fa():
                return b
        """,
        "cyclepkg/b.py": """
            from cyclepkg import a

            def fb():
                return a
        """,
    }, select=["layer.cycle"])
    assert codes_of(result) == ["layer.cycle"]
    (violation,) = result.violations
    assert "cyclepkg.a -> cyclepkg.b" in violation.message or \
        "cyclepkg.b -> cyclepkg.a" in violation.message


def test_lazy_import_breaks_cycle(tmp_path):
    result = lint_sources(tmp_path, {
        "cyclepkg/__init__.py": "",
        "cyclepkg/a.py": """
            from cyclepkg import b

            def fa():
                return b
        """,
        "cyclepkg/b.py": """
            def fb():
                from cyclepkg import a
                return a
        """,
    }, select=["layer.cycle"])
    assert result.clean


def test_three_module_cycle_reported_once(tmp_path):
    result = lint_sources(tmp_path, {
        "pkg/__init__.py": "",
        "pkg/a.py": "from pkg import b\n",
        "pkg/b.py": "from pkg import c\n",
        "pkg/c.py": "from pkg import a\n",
    }, select=["layer.cycle"])
    assert len(result.violations) == 1
    assert "pkg.a -> pkg.b -> pkg.c" in result.violations[0].message


# ---------------------------------------------------------------------------
# proto.*
# ---------------------------------------------------------------------------

POOL_FIXTURE_PREAMBLE = """
    from abc import ABC, abstractmethod

    class PoolBase(ABC):
        @abstractmethod
        def lookup_for_write(self, fp, now): ...

        @abstractmethod
        def insert_garbage(self, fp, ppn, now, popularity=1, lpn=None): ...

        def tracked_items(self):
            raise NotImplementedError
"""


def test_pool_missing_surface_fires(tmp_path):
    result = lint_sources(tmp_path, {
        "repro/core/pools.py": POOL_FIXTURE_PREAMBLE + """
            class BadPool(PoolBase):
                def lookup_for_write(self, fp, now):
                    return None

                def insert_garbage(self, fp, ppn, now, popularity=1, lpn=None):
                    return []
        """,
    }, select=["proto.pool-surface"])
    assert codes_of(result) == ["proto.pool-surface"]
    (violation,) = result.violations
    assert "BadPool" in violation.message
    assert "tracked_items" in violation.message


def test_pool_stub_body_does_not_satisfy_surface(tmp_path):
    result = lint_sources(tmp_path, {
        "repro/core/pools.py": """
            class SneakyPool:
                def lookup_for_write(self, fp, now):
                    return None

                def insert_garbage(self, fp, ppn, now, popularity=1, lpn=None):
                    return []

                def discard_ppn(self, fp, ppn):
                    pass

                def clear_volatile(self):
                    pass

                def tracked_ppn_count(self):
                    pass

                def tracked_items(self):
                    pass

                def __len__(self):
                    return 0

                def __contains__(self, fp):
                    return False
        """,
    }, select=["proto.pool-surface"])
    # the structural trigger catches it, and the stubbed methods do not
    # count as concrete definitions
    assert codes_of(result) == ["proto.pool-surface"]


def test_pool_inheriting_full_surface_passes(tmp_path):
    full_pool = """
        class GoodPool(PoolBase):
            def lookup_for_write(self, fp, now):
                return None

            def insert_garbage(self, fp, ppn, now, popularity=1, lpn=None):
                return []

            def discard_ppn(self, fp, ppn):
                return False

            def clear_volatile(self):
                self._entries = {}

            def tracked_ppn_count(self):
                return 0

            def tracked_items(self):
                return iter(())

            def __len__(self):
                return 0

            def __contains__(self, fp):
                return False

        class DerivedPool(GoodPool):
            def lookup_for_write(self, fp, now):
                return 7
    """
    result = lint_sources(tmp_path, {
        "repro/core/pools.py": POOL_FIXTURE_PREAMBLE + full_pool,
    }, select=["proto.pool-surface"])
    assert result.clean


def test_ftl_subclass_missing_hooks_fires(tmp_path):
    result = lint_sources(tmp_path, {
        "repro/ftl/bad.py": """
            class BaseFTL:
                def relocate_page(self, old_ppn, new_ppn):
                    return None

                def erase_cleanup(self, block_global, invalid_ppns):
                    return None

                def check_invariants(self):
                    return None

            class LeakyFTL(BaseFTL):
                def _on_page_death(self, ppn, fp, lpn):
                    self.extra = ppn
        """,
    }, select=["proto.ftl-hooks"])
    assert codes_of(result) == ["proto.ftl-hooks"]
    (violation,) = result.violations
    for hook in ("relocate_page", "erase_cleanup", "check_invariants"):
        assert hook in violation.message


def test_ftl_subclass_with_hooks_passes(tmp_path):
    result = lint_sources(tmp_path, {
        "repro/ftl/good.py": """
            class BaseFTL:
                def relocate_page(self, old_ppn, new_ppn):
                    return None

            class CarefulFTL(BaseFTL):
                def _on_page_death(self, ppn, fp, lpn):
                    self.extra = ppn

                def relocate_page(self, old_ppn, new_ppn):
                    return None

                def erase_cleanup(self, block_global, invalid_ppns):
                    return None

                def check_invariants(self):
                    return None
        """,
    }, select=["proto.ftl-hooks"])
    assert result.clean


# ---------------------------------------------------------------------------
# frozen.*
# ---------------------------------------------------------------------------

def test_frozen_setattr_outside_post_init_fires(tmp_path):
    result = lint_sources(tmp_path, {
        "repro/experiments/bad.py": """
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class Config:
                scale: float = 1.0

                def bump(self):
                    object.__setattr__(self, "scale", self.scale * 2)
        """,
    }, select=["frozen.setattr"])
    assert codes_of(result) == ["frozen.setattr"]
    assert result.violations[0].context == "Config.bump"


def test_frozen_setattr_in_post_init_allowed(tmp_path):
    result = lint_sources(tmp_path, {
        "repro/experiments/good.py": """
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class Config:
                scale: float = 1.0

                def __post_init__(self):
                    object.__setattr__(self, "scale", float(self.scale))
        """,
    }, select=["frozen.setattr"])
    assert result.clean


def test_spec_picklable_fires_on_callable_field(tmp_path):
    result = lint_sources(tmp_path, {
        "repro/perf/spec.py": """
            from dataclasses import dataclass
            from typing import Callable, Optional

            @dataclass(frozen=True)
            class RunSpec:
                workload: str
                observer_factory: Optional[Callable[[], object]] = None
        """,
    }, select=["frozen.spec-picklable"])
    assert codes_of(result) == ["frozen.spec-picklable"]
    assert "observer_factory" in result.violations[0].message


def test_spec_picklable_accepts_scalars_and_dataclasses(tmp_path):
    result = lint_sources(tmp_path, {
        "repro/perf/spec.py": """
            from dataclasses import dataclass
            from typing import Dict, Optional, Tuple

            @dataclass(frozen=True)
            class FaultConfig:
                seed: int = 0
                program_failure_prob: float = 0.0

            @dataclass(frozen=True)
            class RunSpec:
                workload: str
                system: str
                scale: float = 0.25
                seed: Optional[int] = None
                faults: Optional[FaultConfig] = None
                tags: Tuple[str, ...] = ()
                extras: Dict[str, int] = None
        """,
    }, select=["frozen.spec-picklable"])
    assert result.clean


def test_spec_picklable_handles_string_annotations(tmp_path):
    result = lint_sources(tmp_path, {
        "repro/perf/spec.py": """
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class RunSpec:
                workload: "str"
                sampler: "TimeSeriesSampler" = None
        """,
    }, select=["frozen.spec-picklable"])
    assert codes_of(result) == ["frozen.spec-picklable"]
    assert "TimeSeriesSampler" in result.violations[0].message


# ---------------------------------------------------------------------------
# flow.taint-digest
# ---------------------------------------------------------------------------

def test_taint_digest_fires_across_calls(tmp_path):
    result = lint_sources(tmp_path, {
        "repro/perf/bad.py": """
            import time

            def result_digest(value):
                return value

            def stamp():
                return time.perf_counter()

            def record():
                return result_digest(stamp())
        """,
    }, select=["flow.taint-digest"])
    assert codes_of(result) == ["flow.taint-digest"]
    (violation,) = result.violations
    # Anchored at the source, with the flow chain in the message.
    assert violation.context == "stamp"
    assert "result_digest" in violation.message
    assert "->" in violation.message


def test_taint_digest_three_hop_chain_det_rules_miss(tmp_path):
    """The whole point of the interprocedural pass: the wall clock is
    *sanctioned* where it is read (repro.perf, allowlisted by
    ``det.wallclock``), and the digest call three hops away never
    touches a clock itself — so every per-file ``det.*`` rule stays
    quiet while the taint pass follows the value across modules."""
    sources = {
        "repro/perf/clock.py": """
            import time

            def now():
                return time.perf_counter()
        """,
        "repro/traces/transform.py": """
            from repro.perf.clock import now

            def stamp_ops(ops):
                started = now()
                return [(started, op) for op in ops]
        """,
        "repro/experiments/record.py": """
            from repro.traces.transform import stamp_ops

            def result_digest(value):
                return value

            def record(ops):
                return result_digest(stamp_ops(ops))
        """,
    }
    det = lint_sources(
        tmp_path, sources,
        select=["det.wallclock", "det.environ", "det.global-random",
                "det.set-iter"],
    )
    assert det.clean
    flow = lint_sources(tmp_path, sources, select=["flow.taint-digest"])
    assert codes_of(flow) == ["flow.taint-digest"]
    (violation,) = flow.violations
    assert violation.path.endswith("repro/perf/clock.py")
    assert violation.context == "now"
    assert "stamp_ops" in violation.message
    assert "result_digest" in violation.message


def test_taint_digest_quiet_for_seeded_values(tmp_path):
    result = lint_sources(tmp_path, {
        "repro/perf/ok.py": """
            def result_digest(value):
                return value

            def record(seed):
                return result_digest(seed * 3)
        """,
    }, select=["flow.taint-digest"])
    assert result.clean


# ---------------------------------------------------------------------------
# flow.hot-effect
# ---------------------------------------------------------------------------

def test_hot_effect_fires_on_print_under_device_step(tmp_path):
    result = lint_sources(tmp_path, {
        "repro/sim/bad.py": """
            class Device:
                def step(self, now):
                    self._tick(now)

                def _tick(self, now):
                    print("tick", now)
        """,
    }, select=["flow.hot-effect"])
    assert codes_of(result) == ["flow.hot-effect"]
    (violation,) = result.violations
    assert violation.context == "Device._tick"
    assert "Device.step" in violation.message


def test_hot_effect_quiet_outside_the_hot_cone_and_in_obs(tmp_path):
    result = lint_sources(tmp_path, {
        "repro/sim/ok.py": """
            class Device:
                def step(self, now):
                    return now + 1

                def debug_dump(self):
                    print("cold path, never called from step")
        """,
        "repro/obs/taps.py": """
            class Device:
                def step(self, now):
                    print("diagnostic layer is allowed to record")
        """,
    }, select=["flow.hot-effect"])
    assert result.clean


# ---------------------------------------------------------------------------
# flow.blocking-async
# ---------------------------------------------------------------------------

def test_blocking_async_fires_on_sleep_in_serve_coroutine(tmp_path):
    result = lint_sources(tmp_path, {
        "repro/serve/bad.py": """
            import time

            def drain():
                time.sleep(0.1)

            async def handle(session):
                drain()
        """,
    }, select=["flow.blocking-async"])
    assert codes_of(result) == ["flow.blocking-async"]
    (violation,) = result.violations
    assert violation.context == "drain"
    assert "handle" in violation.message


def test_blocking_async_quiet_outside_serve(tmp_path):
    result = lint_sources(tmp_path, {
        "repro/fleet/ok.py": """
            import time

            async def helper():
                time.sleep(0.1)
        """,
    }, select=["flow.blocking-async"])
    assert result.clean


# ---------------------------------------------------------------------------
# flow.spec-pickle
# ---------------------------------------------------------------------------

def test_spec_pickle_fires_transitively(tmp_path):
    """``frozen.spec-picklable`` validates RunSpec's own fields only;
    the flow pass walks the reference closure and finds the Callable
    one dataclass hop away."""
    sources = {
        "repro/perf/bad.py": """
            from dataclasses import dataclass
            from typing import Callable

            @dataclass(frozen=True)
            class Sampler:
                hook: Callable

            @dataclass(frozen=True)
            class RunSpec:
                workload: str
                sampler: Sampler = None
        """,
    }
    frozen = lint_sources(tmp_path, sources, select=["frozen.spec-picklable"])
    assert frozen.clean
    result = lint_sources(tmp_path, sources, select=["flow.spec-pickle"])
    assert codes_of(result) == ["flow.spec-pickle"]
    (violation,) = result.violations
    assert violation.context == "Sampler"
    assert "RunSpec -> Sampler" in violation.message


def test_spec_pickle_quiet_for_picklable_closure(tmp_path):
    result = lint_sources(tmp_path, {
        "repro/perf/ok.py": """
            from dataclasses import dataclass
            from typing import Optional, Tuple

            @dataclass(frozen=True)
            class Inner:
                values: Tuple[int, ...] = ()

            @dataclass(frozen=True)
            class RunSpec:
                workload: str
                inner: Optional[Inner] = None
        """,
    }, select=["flow.spec-pickle"])
    assert result.clean


# ---------------------------------------------------------------------------
# suppression
# ---------------------------------------------------------------------------

def test_inline_disable_suppresses_exact_code(tmp_path):
    result = lint_sources(tmp_path, {
        "repro/sim/hot.py": """
            import time

            def stamp():
                return time.time()  # lint: disable=det.wallclock
        """,
    }, select=["det.wallclock"])
    assert result.clean
    assert result.suppressed == 1


def test_inline_disable_wrong_code_does_not_suppress(tmp_path):
    result = lint_sources(tmp_path, {
        "repro/sim/hot.py": """
            import time

            def stamp():
                return time.time()  # lint: disable=det.environ
        """,
    }, select=["det.wallclock"])
    assert codes_of(result) == ["det.wallclock"]


def test_disable_can_name_several_codes(tmp_path):
    result = lint_sources(tmp_path, {
        "repro/sim/hot.py": """
            import os
            import time

            def stamp():
                return time.time(), os.getenv("X")  # lint: disable=det.wallclock,det.environ
        """,
    }, select=["det.wallclock", "det.environ"])
    assert result.clean
    assert result.suppressed == 2


# ---------------------------------------------------------------------------
# meta: every registered code has a firing fixture above
# ---------------------------------------------------------------------------

FIXTURES_BY_CODE = {
    "det.wallclock": test_wallclock_fires_outside_obs,
    "det.global-random": test_global_random_fires,
    "det.set-iter": test_set_iteration_into_append_fires,
    "det.environ": test_environ_fires_outside_config,
    "layer.core-purity": test_core_purity_fires,
    "layer.no-experiments": test_no_experiments_fires_for_sim_and_ftl,
    "layer.no-serve": test_no_serve_fires_below_the_cli,
    "layer.cycle": test_import_cycle_detected,
    "proto.pool-surface": test_pool_missing_surface_fires,
    "proto.ftl-hooks": test_ftl_subclass_missing_hooks_fires,
    "frozen.setattr": test_frozen_setattr_outside_post_init_fires,
    "frozen.spec-picklable": test_spec_picklable_fires_on_callable_field,
    "flow.taint-digest": test_taint_digest_fires_across_calls,
    "flow.hot-effect": test_hot_effect_fires_on_print_under_device_step,
    "flow.blocking-async": test_blocking_async_fires_on_sleep_in_serve_coroutine,
    "flow.spec-pickle": test_spec_pickle_fires_transitively,
}


def test_every_rule_code_has_a_firing_fixture():
    assert sorted(FIXTURES_BY_CODE) == all_codes()


@pytest.mark.parametrize("code", sorted(FIXTURES_BY_CODE))
def test_rule_exits_nonzero_on_its_fixture(code, tmp_path, capsys):
    """The CLI contract: a seeded violation for every code -> exit 1."""
    import repro.cli as cli

    sources = {
        "det.wallclock": WALLCLOCK_BAD,
        "det.global-random": {
            "repro/traces/bad.py": "import random\nx = random.random()\n",
        },
        "det.set-iter": {
            "repro/core/bad.py": "def f(s):\n    return list(set(s))\n",
        },
        "det.environ": {
            "repro/ftl/bad.py": "import os\nx = os.environ.get('A')\n",
        },
        "layer.core-purity": {
            "repro/core/bad.py": "from repro.ftl import ftl\n",
        },
        "layer.no-experiments": {
            "repro/ftl/bad.py": "from repro.experiments import runner\n",
        },
        "layer.no-serve": {
            "repro/fleet/bad.py": "from repro.serve import protocol\n",
        },
        "layer.cycle": {
            "p/__init__.py": "",
            "p/a.py": "from p import b\n",
            "p/b.py": "from p import a\n",
        },
        "proto.pool-surface": {
            "repro/core/bad.py": (
                "class P:\n"
                "    def lookup_for_write(self, fp, now):\n"
                "        return None\n"
                "    def insert_garbage(self, fp, ppn, now):\n"
                "        return []\n"
            ),
        },
        "proto.ftl-hooks": {
            "repro/ftl/bad.py": (
                "class BaseFTL:\n"
                "    def relocate_page(self, a, b):\n"
                "        return None\n"
                "class F(BaseFTL):\n"
                "    def write(self, lpn, fp):\n"
                "        return None\n"
            ),
        },
        "frozen.setattr": {
            "repro/experiments/bad.py": (
                "class C:\n"
                "    def poke(self):\n"
                "        object.__setattr__(self, 'x', 1)\n"
            ),
        },
        "frozen.spec-picklable": {
            "repro/perf/bad.py": (
                "from dataclasses import dataclass\n"
                "from typing import Callable\n"
                "@dataclass\n"
                "class RunSpec:\n"
                "    hook: Callable\n"
            ),
        },
        "flow.taint-digest": {
            "repro/perf/bad.py": (
                "import time\n"
                "def result_digest(value):\n"
                "    return value\n"
                "def record():\n"
                "    return result_digest(time.perf_counter())\n"
            ),
        },
        "flow.hot-effect": {
            "repro/sim/bad.py": (
                "class Device:\n"
                "    def step(self, now):\n"
                "        print('tick')\n"
            ),
        },
        "flow.blocking-async": {
            "repro/serve/bad.py": (
                "import time\n"
                "async def handle():\n"
                "    time.sleep(0.1)\n"
            ),
        },
        "flow.spec-pickle": {
            "repro/perf/bad.py": (
                "from dataclasses import dataclass\n"
                "from typing import Callable\n"
                "@dataclass\n"
                "class Inner:\n"
                "    hook: Callable\n"
                "@dataclass\n"
                "class RunSpec:\n"
                "    inner: Inner = None\n"
            ),
        },
    }[code]
    for rel, text in sources.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(text))
    rc = cli.main([
        "lint", str(tmp_path),
        "--no-baseline",
        "--select", code,
        "--package-root", str(tmp_path),
    ])
    capsys.readouterr()
    assert rc == 1

"""Keyed operations and deterministic key/content mixing.

The KV layer speaks its own request language — GET/PUT/DELETE/SCAN over
string or integer keys with byte-sized values — and translates it into
the simulator's 4KB page operations (:class:`~repro.sim.request.IORequest`).
This module holds the request type plus the deterministic integer mixing
everything above the page layer uses to derive ``value_id`` content
identities.  Python's builtin ``hash`` is banned here (string hashing is
randomised per process, which would break digest determinism across
runs and worker processes); keys mix through SHA-256 / splitmix64
instead.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from enum import Enum
from typing import Union

__all__ = ["KVOp", "KVRequest", "Key", "key_to_int", "mix64"]

#: A KV key: integers (orderable, scannable) or strings (hashed).
Key = Union[int, str]

_MASK64 = (1 << 64) - 1


def mix64(x: int) -> int:
    """The splitmix64 finaliser: a deterministic 64-bit bijection.

    Used to spread structured integers (key ranks, content sequence
    numbers, page indexes) over the ``value_id`` space so distinct KV
    contents never alias the block-trace content universe by accident.
    """
    x &= _MASK64
    x ^= x >> 30
    x = (x * 0xBF58476D1CE4E5B9) & _MASK64
    x ^= x >> 27
    x = (x * 0x94D049BB133111EB) & _MASK64
    x ^= x >> 31
    return x


def key_to_int(key: Key) -> int:
    """A deterministic 64-bit integer identity for a key.

    Integer keys map through :func:`mix64`; string keys through SHA-256
    (never ``hash()``, which is per-process randomised for strings).
    """
    if isinstance(key, bool) or not isinstance(key, (int, str)):
        raise TypeError(f"keys are int or str, not {type(key).__name__}")
    if isinstance(key, int):
        if key < 0:
            raise ValueError("integer keys must be non-negative")
        return mix64(key)
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class KVOp(Enum):
    GET = "G"
    PUT = "P"
    DELETE = "D"
    SCAN = "S"


@dataclass(frozen=True, slots=True)
class KVRequest:
    """One keyed operation.

    ``value_bytes``/``content_id`` describe the value a PUT carries
    (``content_id`` is the KV analogue of the block traces' ``value_id``:
    two PUTs with the same content id write identical bytes, which is
    what value-locality revival feeds on).  ``scan_length`` bounds a SCAN
    (int keys only: the following keys in key order).
    """

    arrival_us: float
    op: KVOp
    key: Key
    value_bytes: int = 0
    content_id: int = 0
    scan_length: int = 0

    def __post_init__(self) -> None:
        if self.arrival_us < 0:
            raise ValueError("arrival_us must be non-negative")
        if self.op is KVOp.PUT and self.value_bytes <= 0:
            raise ValueError("PUT requires value_bytes > 0")
        if self.op is KVOp.SCAN and self.scan_length <= 0:
            raise ValueError("SCAN requires scan_length > 0")

"""Content-aware deduplicating FTL (CAFTL / value-locality style).

Reimplements the deduplicated SSD the paper compares against and composes
with (Sections V and VII): a fingerprint store maps each *live* value to
the single physical page holding it, the LPN→PPN table becomes many-to-one,
and a physical page dies only when its last logical pointer is removed.

A write whose content is already live is serviced by pointer manipulation
alone (a *dedup hit*).  When constructed with a dead-value pool the class
becomes the paper's DVP+Dedup system: writes missing the live store still
get a chance to revive a garbage page before programming flash — the
window Figure 13 illustrates (from the value's death at t3 to its rebirth
at t4, which dedup alone cannot capture).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core.dvp import DeadValuePool
from ..core.hashing import Fingerprint
from ..flash.config import SSDConfig
from .ftl import BaseFTL, WriteOutcome

__all__ = ["DedupFTL"]


class DedupFTL(BaseFTL):
    """Page-mapping FTL with inline chunk-level deduplication."""

    def __init__(
        self,
        config: SSDConfig,
        pool: Optional[DeadValuePool] = None,
        popularity_aware_gc: bool = False,
        gc_weight: float = 1.0,
        wear_levelling: bool = False,
        verify_hits: bool = False,
    ):
        super().__init__(
            config,
            pool=pool,
            popularity_aware_gc=popularity_aware_gc,
            gc_weight=gc_weight,
            wear_levelling=wear_levelling,
            verify_hits=verify_hits,
        )
        #: Live fingerprint store: value → the one PPN holding it.
        self._live_index: Dict[Fingerprint, int] = {}

    @property
    def content_aware(self) -> bool:
        # Dedup hashes every write even without a dead-value pool.
        return True

    def live_value_count(self) -> int:
        """Distinct values currently live on flash."""
        return len(self._live_index)

    def live_ppn_of(self, fp: Fingerprint) -> Optional[int]:
        return self._live_index.get(fp)

    # ------------------------------------------------------------------
    # Write path: live store first, then (optionally) the dead-value pool
    # ------------------------------------------------------------------

    def _handle_write(
        self, lpn: int, fp: Fingerprint, outcome: WriteOutcome
    ) -> None:
        live = self._live_index.get(fp)
        if live is not None:
            # Live-value dedup hit: pointer manipulation only.  The hash is
            # checked *before* invalidating the old mapping, so rewriting
            # identical content in place is a pure no-op.
            if self.verify_hits:
                outcome.verify_read_ppn = live
                self.counters.flash_reads += 1
            if self.mapping.lookup(lpn) != live:
                self._invalidate_lpn(lpn)
                self.mapping.map(lpn, live)
            self.counters.dedup_hits += 1
            outcome.dedup_hit = True
            return
        self._invalidate_lpn(lpn)
        self._service_write(lpn, fp, outcome)
        new_home = (
            outcome.revived_ppn
            if outcome.revived_ppn is not None
            else outcome.program_ppn
        )
        if new_home is not None:
            self._live_index[fp] = new_home

    # ------------------------------------------------------------------
    # Death and relocation keep the live index coherent
    # ------------------------------------------------------------------

    def _on_page_death(self, ppn: int, fp: Fingerprint, lpn: int) -> None:
        if self._live_index.get(fp) == ppn:
            del self._live_index[fp]
        super()._on_page_death(ppn, fp, lpn)

    def relocate_page(self, old_ppn: int, new_ppn: int) -> None:
        fp = self._ppn_fp.get(old_ppn)
        super().relocate_page(old_ppn, new_ppn)
        if fp is not None and self._live_index.get(fp) == old_ppn:
            self._live_index[fp] = new_ppn

    def erase_cleanup(self, block_global: int, invalid_ppns: List[int]) -> None:
        # Garbage pages are never in the live index (they were removed at
        # death), so the base cleanup suffices; kept explicit for clarity.
        super().erase_cleanup(block_global, invalid_ppns)

    def check_invariants(self) -> None:
        super().check_invariants()
        from ..flash.block import PageState

        for fp, ppn in self._live_index.items():
            assert self.array.state_of(ppn) is PageState.VALID, (
                f"live index points at non-valid PPN {ppn}"
            )
            assert self._ppn_fp.get(ppn) == fp, (
                f"live index fingerprint mismatch at PPN {ppn}"
            )

"""Determinism: serial, parallel and cached-prefill paths are bit-identical.

These are the guarantees the whole perf layer rests on (ISSUE 2): same
profile + seed yields identical traces, and a matrix run yields digest-
identical :class:`RunResult`s no matter which execution path produced it.
"""

import pytest

from repro.experiments.replication import paired_improvement, replicate
from repro.experiments.runner import (
    ExperimentContext,
    RunConfig,
    run_matrix,
    run_system,
)
from repro.perf.parallel import run_specs
from repro.perf.spec import RunSpec, execute_spec, result_digest
from repro.perf.trace_cache import TraceCache
from repro.traces.synthetic import generate_trace

from ..conftest import make_profile

# Tiny but non-degenerate: two workload shapes, three systems covering
# both FTL families.  web/trans keep total_pages small (cold_region_factor
# 2.0 / 1.5) so prefill stays cheap at this scale.
SCALE = 0.004
WORKLOADS = ("web", "trans")
SYSTEMS = ("baseline", "mq-dvp", "dedup")


def _matrix_digests(results):
    return {
        (w, s): result_digest(results[w][s])
        for w in results
        for s in results[w]
    }


class TestTraceDeterminism:
    def test_same_profile_same_trace(self):
        profile = make_profile()
        assert generate_trace(profile) == generate_trace(profile)

    def test_cache_preserves_trace_content(self):
        profile = make_profile()
        assert list(TraceCache().get(profile)) == generate_trace(profile)


class TestRunDeterminism:
    def test_execute_spec_matches_manual_run(self):
        spec = RunSpec("web", "mq-dvp", scale=SCALE)
        manual = run_system(
            "mq-dvp",
            ExperimentContext.for_workload("web", SCALE),
            RunConfig(scale=SCALE),
        )
        assert result_digest(execute_spec(spec)) == result_digest(manual)

    def test_repeated_runs_identical(self):
        spec = RunSpec("trans", "dedup", scale=SCALE)
        assert result_digest(execute_spec(spec)) == result_digest(
            execute_spec(spec)
        )

    def test_prefill_cache_does_not_change_results(self):
        spec = RunSpec("web", "mq-dvp", scale=SCALE)
        cold = run_system(
            "mq-dvp",
            ExperimentContext.for_workload("web", SCALE),
            RunConfig(scale=SCALE, reuse_prefill=False),
        )
        # Prime the family snapshot via baseline, then run the real cell
        # through the restore path.
        execute_spec(RunSpec("web", "baseline", scale=SCALE))
        warm = execute_spec(spec)
        assert result_digest(cold) == result_digest(warm)

    def test_seed_override_changes_results(self):
        base = execute_spec(RunSpec("web", "baseline", scale=SCALE))
        reseeded = execute_spec(
            RunSpec("web", "baseline", scale=SCALE, seed=99)
        )
        assert result_digest(base) != result_digest(reseeded)


class TestParallelDeterminism:
    def test_serial_vs_parallel_specs(self):
        specs = [
            RunSpec(w, s, scale=SCALE) for w in WORKLOADS for s in SYSTEMS
        ]
        serial = [result_digest(r) for r in run_specs(specs, jobs=1)]
        parallel = [result_digest(r) for r in run_specs(specs, jobs=2)]
        assert serial == parallel

    def test_serial_vs_parallel_matrix(self):
        serial = run_matrix(
            WORKLOADS, SYSTEMS, RunConfig(scale=SCALE, jobs=1)
        )
        parallel = run_matrix(
            WORKLOADS, SYSTEMS, RunConfig(scale=SCALE, jobs=2)
        )
        assert _matrix_digests(serial) == _matrix_digests(parallel)
        # Ordered collection: nested dict layout matches the request.
        assert tuple(parallel) == WORKLOADS
        for workload in WORKLOADS:
            assert tuple(parallel[workload]) == SYSTEMS

    def test_parallel_replicate_matches_serial(self):
        kwargs = dict(
            workload="web",
            system="baseline",
            metric="flash_writes",
            seeds=(1, 2),
            scale=SCALE,
        )
        assert replicate(jobs=1, **kwargs).samples == replicate(
            jobs=2, **kwargs
        ).samples

    def test_parallel_paired_improvement_matches_serial(self):
        kwargs = dict(
            workload="trans",
            system="mq-dvp",
            metric="flash_writes",
            seeds=(1, 2),
            scale=SCALE,
        )
        serial = paired_improvement(jobs=1, **kwargs)
        parallel = paired_improvement(jobs=2, **kwargs)
        assert serial.samples == parallel.samples


class TestMatrixWiring:
    def test_observer_requires_serial(self):
        with pytest.raises(ValueError, match="jobs=1"):
            run_matrix(
                ("web",),
                ("baseline",),
                RunConfig(scale=SCALE, jobs=2),
                observer_factory=lambda w, s: object(),
            )

    def test_observer_factory_wired_per_cell(self):
        from repro.obs import TimeSeriesSampler

        samplers = {}

        def factory(workload, system):
            sampler = TimeSeriesSampler(interval_requests=50)
            samplers[(workload, system)] = sampler
            return sampler

        run_matrix(
            ("web",), ("baseline", "mq-dvp"), RunConfig(scale=SCALE),
            observer_factory=factory,
        )
        assert set(samplers) == {("web", "baseline"), ("web", "mq-dvp")}
        for sampler in samplers.values():
            assert sampler.sample_count > 0

    def test_queue_depth_reaches_cells(self):
        deep = run_matrix(("web",), ("baseline",), RunConfig(scale=SCALE))
        shallow = run_matrix(
            ("web",), ("baseline",), RunConfig(scale=SCALE, queue_depth=1)
        )
        assert result_digest(deep["web"]["baseline"]) != result_digest(
            shallow["web"]["baseline"]
        )

"""Unit tests for the LRU and LFU building blocks."""

import pytest

from repro.core.policies import LFUCache, LRUCache


class TestLRUBasics:
    def test_put_get(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        assert cache.get("a") == 1

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            LRUCache(0)

    def test_get_missing_returns_none(self):
        assert LRUCache(2).get("x") is None

    def test_eviction_order_is_lru(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        evicted = cache.put("c", 3)
        assert evicted == ("a", 1)
        assert "a" not in cache

    def test_get_refreshes_recency(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")
        evicted = cache.put("c", 3)
        assert evicted == ("b", 2)

    def test_peek_does_not_refresh(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.peek("a")
        evicted = cache.put("c", 3)
        assert evicted == ("a", 1)

    def test_put_existing_updates_value_no_eviction(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.put("a", 10) is None
        assert cache.get("a") == 10

    def test_pop(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        assert cache.pop("a") == 1
        assert cache.pop("a") is None
        assert len(cache) == 0

    def test_pop_lru(self):
        cache = LRUCache(3)
        for i, k in enumerate("abc"):
            cache.put(k, i)
        assert cache.pop_lru() == ("a", 0)

    def test_lru_key(self):
        cache = LRUCache(3)
        assert cache.lru_key() is None
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.lru_key() == "a"

    def test_items_iteration_cold_to_hot(self):
        cache = LRUCache(3)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")
        assert [k for k, _ in cache.items_lru_to_mru()] == ["b", "a"]


class TestLFUBasics:
    def test_put_get(self):
        cache = LFUCache(2)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.frequency("a") == 2  # put + get

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            LFUCache(0)

    def test_evicts_least_frequent(self):
        cache = LFUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")
        evicted = cache.put("c", 3)
        assert evicted == ("b", 2)

    def test_lru_tiebreak_among_equal_frequency(self):
        cache = LFUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        evicted = cache.put("c", 3)  # a and b both freq 1; a is older
        assert evicted == ("a", 1)

    def test_frequency_of_missing_is_zero(self):
        assert LFUCache(2).frequency("x") == 0

    def test_put_existing_bumps_frequency(self):
        cache = LFUCache(2)
        cache.put("a", 1)
        cache.put("a", 2)
        assert cache.frequency("a") == 2
        assert cache.get("a") == 2

    def test_pop_removes(self):
        cache = LFUCache(2)
        cache.put("a", 1)
        assert cache.pop("a") == 1
        assert "a" not in cache
        assert cache.pop("a") is None

    def test_eviction_after_pop_consistent(self):
        cache = LFUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.pop("a")
        cache.put("c", 3)
        assert cache.put("d", 4) in (("b", 2), ("c", 3))
        assert len(cache) == 2

    def test_lfu_never_ages(self):
        """A once-hot entry pins its slot forever — the flaw Section II-B
        ascribes to LFU and the reason MQ adds expiration."""
        cache = LFUCache(2)
        cache.put("hot", 1)
        for _ in range(10):
            cache.get("hot")
        cache.put("b", 2)
        for newcomer in "cdefg":
            evicted = cache.put(newcomer, 0)
            assert evicted is not None
            assert evicted[0] != "hot"

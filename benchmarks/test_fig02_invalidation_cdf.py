"""Figure 2: CDF of invalidation counts (mail).

Paper: only ~30% of values written during execution are still live at the
end; the rest have been invalidated at least once — garbage pages are the
majority.
"""

from repro.analysis.report import render_series
from repro.experiments.figures import fig02_invalidation_cdf

from .conftest import emit


def test_fig02_invalidation_cdf(benchmark, scale):
    result = benchmark.pedantic(
        lambda: fig02_invalidation_cdf(scale), rounds=1, iterations=1
    )
    points = result.cdf[:15] + result.cdf[-1:]
    emit(render_series(
        {"P(invalidations <= x)": points},
        title=(
            "Figure 2: CDF of invalidation counts (mail)\n"
            f"live at end: {result.live_value_frac:.1%}   "
            f"never invalidated: {result.never_invalidated_frac:.1%}"
        ),
    ))
    # Shape: the majority of values have died at least once.
    assert result.never_invalidated_frac < 0.5
    assert result.live_value_frac < 0.6
    assert result.cdf[-1][1] == 1.0

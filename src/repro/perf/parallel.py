"""Process-pool fan-out over run specs with deterministic collection.

``run_specs`` is the single entry point the matrix, replication and CLI
layers share.  Results come back **in spec order** regardless of which
worker finished first (``Executor.map`` preserves input order), and each
cell is a pure function of its spec, so ``jobs=N`` is observably identical
to ``jobs=1`` — the determinism tests compare digests across both paths.

Workers are plain module-level functions (picklable by reference).  Two
parent-side prewarms run before the pool spawns so workers never repeat
shared setup:

* traces for the distinct profiles are generated once into the trace
  cache, and
* prefill snapshots for the distinct (family, config, profile) triples
  are captured once into the prefill cache —

under the default ``fork`` start method on Linux the children inherit
both warm caches copy-on-write and skip generation *and* the per-page
prefill loop entirely.  (Under ``spawn`` each worker redoes the work —
results are identical either way, it only costs time; this is why the
first fan-out used to run *slower* than serial: every worker paid the
prefill that the serial path amortised across cells.)

Cells are dispatched in contiguous chunks (one chunk per worker when the
spec list divides evenly) rather than one task per cell: a worker runs
its whole chunk in-process, so its local caches stay warm across the
chunk's cells and per-task dispatch overhead is paid per chunk.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import List, Optional, Sequence, Tuple

from ..sim.metrics import RunResult
from .snapshot import default_prefill_cache
from .spec import RunSpec, execute_spec, execute_spec_timed
from .trace_cache import default_trace_cache

__all__ = ["pool_chunksize", "resolve_jobs", "run_specs", "run_specs_timed"]


def resolve_jobs(jobs: Optional[int], tasks: Optional[int] = None) -> int:
    """Normalise a ``--jobs`` value: ``None``/``0`` means all cores.

    With ``tasks`` the result is additionally capped at the task count —
    a fleet of 4 long-lived shards can never keep more than 4 workers
    busy, so asking for 16 must not fork 12 idle processes.
    """
    if jobs is None or jobs == 0:
        jobs = os.cpu_count() or 1
    elif jobs < 0:
        raise ValueError("jobs must be >= 0")
    if tasks is not None and tasks > 0:
        jobs = min(jobs, tasks)
    return jobs


def pool_chunksize(task_count: int, workers: int) -> int:
    """Contiguous tasks per worker dispatch (at least 1).

    Floor division, deliberately: the old ceil division produced
    *oversized* chunks whenever the task count was not a multiple of the
    worker count — 6 cells over 4 workers became 3 chunks of 2, leaving
    one worker idle for the whole run.  That was tolerable for 8 tiny
    matrix cells but ruinous for the fleet's long-lived shards, where one
    idle worker is a whole shard-lifetime of lost parallelism.  Floor
    keeps at least ``workers`` dispatches whenever ``task_count >=
    workers`` (6 over 4 → chunksize 1 → six dispatches, everyone works)
    and still amortises dispatch overhead when the division is exact.
    """
    if task_count <= 0 or workers <= 0:
        return 1
    return max(1, task_count // workers)


def _prewarm_traces(specs: Sequence[RunSpec]) -> None:
    """Generate each distinct trace once in the parent process."""
    cache = default_trace_cache()
    seen = set()
    for spec in specs:
        profile = spec.profile()
        key = (profile.name, profile.seed, spec.scale)
        if key not in seen:
            seen.add(key)
            cache.get(profile)


def _prewarm_prefills(specs: Sequence[RunSpec]) -> None:
    """Capture each distinct family prefill snapshot once in the parent.

    Runs after :func:`_prewarm_traces` (contexts hit the warm trace
    cache).  Forked workers inherit the snapshots and restore by copy
    instead of each repeating the per-page prefill loop — the fix for
    the parallel leg benchmarking *slower* than serial.
    """
    cache = default_prefill_cache()
    for spec in specs:
        context = spec.context()
        cache.warm(
            spec.system,
            context.config,
            context.profile,
            spec.paper_pool_entries,
        )


def _run_spec_worker(spec: RunSpec) -> RunResult:
    return execute_spec(spec)


def _run_spec_timed_worker(spec: RunSpec) -> Tuple[RunResult, float]:
    return execute_spec_timed(spec)


def run_specs(
    specs: Sequence[RunSpec], jobs: Optional[int] = 1
) -> List[RunResult]:
    """Execute ``specs``, returning results in spec order.

    ``jobs=1`` (the default) runs serially in-process — no pool, no
    pickling, observability intact.  ``jobs=None``/``0`` uses every core.
    An explicit ``jobs>1`` always uses the pool (the determinism tests
    rely on ``jobs=2`` actually exercising the parallel path).
    """
    jobs = resolve_jobs(jobs)
    if jobs == 1 or len(specs) <= 1:
        return [execute_spec(spec) for spec in specs]
    _prewarm_traces(specs)
    _prewarm_prefills(specs)
    workers = min(jobs, len(specs))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(
            pool.map(
                _run_spec_worker,
                specs,
                chunksize=pool_chunksize(len(specs), workers),
            )
        )


def run_specs_timed(
    specs: Sequence[RunSpec], jobs: Optional[int] = 1
) -> List[Tuple[RunResult, float]]:
    """Like :func:`run_specs` but pairs each result with its cell's
    wall-clock seconds (as measured inside the worker)."""
    jobs = resolve_jobs(jobs)
    if jobs == 1 or len(specs) <= 1:
        return [execute_spec_timed(spec) for spec in specs]
    _prewarm_traces(specs)
    _prewarm_prefills(specs)
    workers = min(jobs, len(specs))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(
            pool.map(
                _run_spec_timed_worker,
                specs,
                chunksize=pool_chunksize(len(specs), workers),
            )
        )

"""Fleet-level aggregation: merged latency, fleet WA, imbalance, digests.

A fleet run produces one :class:`~repro.sim.metrics.RunResult` per shard;
:class:`FleetResult` is the fleet view over them.  Latency percentiles
merge the shards' exact sample sets (never averages of percentiles —
a p99 of per-shard p99s is not the fleet p99).  Counter aggregates sum
across shards: write amplification and revival rate are ratios of fleet
totals, again not means of per-shard ratios.

``shard_digests`` carries each shard's
:func:`~repro.perf.spec.result_digest` in shard order; the fleet digest
hashes their concatenation.  These are the bit-identity oracle for the
fleet determinism tests and the tracked fleet bench cell: ``jobs=1`` and
``jobs=N`` must mint identical digest tuples.

``export_jsonl`` writes the per-shard and fleet records through the
:mod:`repro.obs` JSONL sink, so fleet output flows through the same
exporter surface as single-drive observability samples.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, Sequence, Tuple

from ..sim.metrics import LatencyStats, RunResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..obs.export import JsonlWriter
    from .fleet import FleetSpec

__all__ = ["FleetResult", "PoolModeComparison", "aggregate_fleet"]


def _merged(stats: Sequence[LatencyStats]) -> LatencyStats:
    out = LatencyStats()
    for part in stats:
        out = out.merged_with(part)
    return out


@dataclass(frozen=True)
class FleetResult:
    """Everything one fleet run produced, in shard order."""

    spec: "FleetSpec"
    shard_results: Tuple[RunResult, ...]
    #: Effective worker count the run used (1 = serial path); bench
    #: reporting uses it to carry the serial-fallback marker through.
    jobs: int
    #: :func:`~repro.perf.spec.result_digest` per shard, in shard order.
    shard_digests: Tuple[str, ...]

    # -- identity ------------------------------------------------------

    @property
    def fleet_digest(self) -> str:
        """Digest of the ordered shard digests — the fleet's identity."""
        payload = "\n".join(self.shard_digests).encode("ascii")
        return hashlib.sha256(payload).hexdigest()

    # -- latency (merged exact samples, never percentile-of-percentiles)

    @property
    def reads(self) -> LatencyStats:
        return _merged([r.reads for r in self.shard_results])

    @property
    def writes(self) -> LatencyStats:
        return _merged([r.writes for r in self.shard_results])

    @property
    def all_requests(self) -> LatencyStats:
        return self.reads.merged_with(self.writes)

    @property
    def mean_latency_us(self) -> float:
        return self.all_requests.mean

    @property
    def p50_latency_us(self) -> float:
        return self.all_requests.percentile(50)

    @property
    def p99_latency_us(self) -> float:
        return self.all_requests.p99

    # -- counter aggregates (ratios of totals, not means of ratios) ----

    def _total(self, name: str) -> int:
        return sum(getattr(r.counters, name) for r in self.shard_results)

    @property
    def host_writes(self) -> int:
        return self._total("host_writes")

    @property
    def host_reads(self) -> int:
        return self._total("host_reads")

    @property
    def flash_programs(self) -> int:
        """Aggregate flash programs (host data + GC relocations) — the
        pool-mode comparison's figure of merit."""
        return self._total("total_programs")

    @property
    def erases(self) -> int:
        return self._total("gc_erases")

    @property
    def write_amplification(self) -> float:
        """Fleet WA: total flash programs per host write."""
        writes = self.host_writes
        return self.flash_programs / writes if writes else 0.0

    @property
    def revival_rate(self) -> float:
        """Fraction of host writes short-circuited by a revived page."""
        writes = self.host_writes
        return self._total("short_circuits") / writes if writes else 0.0

    # -- imbalance -----------------------------------------------------

    @property
    def shard_requests(self) -> Tuple[int, ...]:
        """Host requests each shard serviced, in shard order."""
        return tuple(
            r.counters.host_writes + r.counters.host_reads
            for r in self.shard_results
        )

    @property
    def imbalance_cv(self) -> float:
        """Coefficient of variation of per-shard request counts."""
        counts = self.shard_requests
        mean = sum(counts) / len(counts)
        if mean == 0.0:
            return 0.0
        variance = sum((c - mean) ** 2 for c in counts) / len(counts)
        return math.sqrt(variance) / mean

    @property
    def imbalance_max_over_mean(self) -> float:
        """Hottest shard's load relative to the mean (1.0 = even)."""
        counts = self.shard_requests
        mean = sum(counts) / len(counts)
        return max(counts) / mean if mean else 0.0

    # -- reporting -----------------------------------------------------

    def summary(self) -> Dict[str, Any]:
        """Flat dict for reports and JSON dumps."""
        return {
            "workload": self.spec.workload,
            "system": self.spec.system,
            "shards": self.spec.shards,
            "pool_mode": self.spec.pool_mode,
            "jobs": self.jobs,
            "host_writes": self.host_writes,
            "host_reads": self.host_reads,
            "flash_programs": self.flash_programs,
            "erases": self.erases,
            "write_amplification": self.write_amplification,
            "revival_rate": self.revival_rate,
            "mean_latency_us": self.mean_latency_us,
            "p50_latency_us": self.p50_latency_us,
            "p99_latency_us": self.p99_latency_us,
            "imbalance_cv": self.imbalance_cv,
            "imbalance_max_over_mean": self.imbalance_max_over_mean,
            "fleet_digest": self.fleet_digest,
        }

    def export_jsonl(self, writer: "JsonlWriter") -> int:
        """Write one unified ``repro.api/v1`` record per shard plus the
        fleet aggregate record; returns the record count.  ``writer`` is
        a :class:`repro.obs.JsonlWriter` (or any sink with a ``write``
        method)."""
        from ..api import records_from_fleet  # runtime: api sits above

        records = records_from_fleet(self)
        for record in records:
            writer.write(record.to_dict())
        return len(records)


def aggregate_fleet(
    spec: "FleetSpec", results: Sequence[RunResult], jobs: int
) -> FleetResult:
    """Package per-shard results (already in shard order) as a fleet."""
    from ..perf.spec import result_digest

    return FleetResult(
        spec=spec,
        shard_results=tuple(results),
        jobs=jobs,
        shard_digests=tuple(result_digest(r) for r in results),
    )


@dataclass(frozen=True)
class PoolModeComparison:
    """Shared-vs-per-drive pool comparison over the same fleet spec."""

    per_drive: FleetResult
    shared: FleetResult

    @property
    def per_drive_programs(self) -> int:
        return self.per_drive.flash_programs

    @property
    def shared_programs(self) -> int:
        return self.shared.flash_programs

    @property
    def programs_saved(self) -> int:
        """Programs a fleet-wide shared pool could save (upper bound)."""
        return self.per_drive_programs - self.shared_programs

    @property
    def percent_saved(self) -> float:
        if self.per_drive_programs == 0:
            return 0.0
        return 100.0 * self.programs_saved / self.per_drive_programs

    def summary(self) -> Dict[str, Any]:
        return {
            "per_drive_programs": self.per_drive_programs,
            "shared_programs": self.shared_programs,
            "programs_saved": self.programs_saved,
            "percent_saved": self.percent_saved,
            "per_drive": self.per_drive.summary(),
            "shared": self.shared.summary(),
        }

"""Property-based tests for trace transforms and generators.

Two contracts from the transforms module docstring, checked over random
inputs rather than hand-picked traces:

1. every transform's output is in arrival order whenever its input is —
   the simulator's event loop assumes non-decreasing arrivals, so an
   order-breaking transform corrupts every downstream latency number;
2. generation is deterministic under reseeding — the same profile (seed
   included) always yields the identical stream, and the lazy stream
   matches the materialised list, so digests are reproducible whether a
   trace is replayed from memory or regenerated on the fly.
"""

from dataclasses import replace

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.request import IORequest, OpType
from repro.traces.profiles import PROFILES
from repro.traces.synthetic import SyntheticTraceGenerator
from repro.traces.transforms import (
    filter_ops,
    interleave_tenants,
    merge_traces,
    scale_time,
    shift_lpns,
    take,
    window,
    with_trims,
)

#: Bounds chosen so interleave_tenants' namespace validation passes and
#: the traces stay multi-tenant-composable.
MAX_LPN = 63
MAX_VALUE = 255


def arrival_ordered_traces(max_size=40):
    """Traces that honour the non-decreasing-arrival invariant, built
    from deltas so hypothesis can shrink without breaking the order."""

    def build(rows):
        requests, clock = [], 0.0
        for delta, op, lpn, value_id in rows:
            clock += delta
            requests.append(
                IORequest(
                    arrival_us=clock, op=op, lpn=lpn, value_id=value_id
                )
            )
        return requests

    return st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=1e4, allow_nan=False),
            st.sampled_from([OpType.READ, OpType.WRITE, OpType.TRIM]),
            st.integers(min_value=0, max_value=MAX_LPN),
            st.integers(min_value=0, max_value=MAX_VALUE),
        ),
        max_size=max_size,
    ).map(build)


def assert_arrival_ordered(trace):
    arrivals = [request.arrival_us for request in trace]
    assert arrivals == sorted(arrivals)


class TestTransformsPreserveArrivalOrder:
    @given(
        trace=arrival_ordered_traces(),
        factor=st.floats(min_value=0.01, max_value=100.0),
        start=st.floats(min_value=0.0, max_value=1e5),
        span=st.floats(min_value=1.0, max_value=1e5),
        count=st.integers(min_value=0, max_value=50),
        offset=st.integers(min_value=0, max_value=1000),
        every=st.integers(min_value=1, max_value=7),
        op=st.sampled_from([OpType.READ, OpType.WRITE, OpType.TRIM]),
    )
    @settings(max_examples=80)
    def test_every_single_input_transform(
        self, trace, factor, start, span, count, offset, every, op
    ):
        for output in (
            scale_time(trace, factor),
            window(trace, start, start + span),
            take(trace, count),
            filter_ops(trace, op),
            shift_lpns(trace, offset),
            with_trims(trace, every),
        ):
            assert_arrival_ordered(list(output))

    @given(traces=st.lists(arrival_ordered_traces(max_size=20), max_size=4))
    @settings(max_examples=60)
    def test_merge_traces(self, traces):
        assert_arrival_ordered(list(merge_traces(*traces)))

    @given(tenants=st.lists(arrival_ordered_traces(max_size=20), max_size=3))
    @settings(max_examples=60)
    def test_interleave_tenants(self, tenants):
        out = interleave_tenants(
            tenants,
            pages_per_tenant=MAX_LPN + 1,
            value_space=MAX_VALUE + 1,
        )
        assert_arrival_ordered(out)
        # Interleaving is a merge: nothing is dropped or invented.
        assert len(out) == sum(len(tenant) for tenant in tenants)

    @given(
        trace=arrival_ordered_traces(),
        factor=st.floats(min_value=0.01, max_value=100.0),
        every=st.integers(min_value=1, max_value=7),
    )
    @settings(max_examples=60)
    def test_composition_stays_ordered(self, trace, factor, every):
        """Transforms chain (the way experiments actually use them)."""
        out = list(with_trims(scale_time(trace, factor), every))
        assert_arrival_ordered(out)


class TestGeneratorDeterminism:
    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        name=st.sampled_from(sorted(PROFILES)),
    )
    @settings(max_examples=12, deadline=None)
    def test_reseeded_profile_regenerates_identically(self, seed, name):
        """Same profile + same seed = the same stream, every time; the
        lazy stream and the materialised list agree request-for-request."""
        profile = replace(PROFILES[name].scaled(0.002), seed=seed)
        generator = SyntheticTraceGenerator(profile)
        first = list(generator.stream())
        second = list(generator.stream())
        assert first == second
        assert SyntheticTraceGenerator(profile).generate() == first
        assert_arrival_ordered(first)

    @given(seed=st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=12, deadline=None)
    def test_reseeding_changes_only_the_seeded_draws(self, seed):
        """A reseed yields a different (but internally deterministic)
        stream of the same length — the shape comes from the profile,
        the randomness from the seed."""
        base = PROFILES["mail"].scaled(0.002)
        a = SyntheticTraceGenerator(replace(base, seed=seed)).generate()
        b = SyntheticTraceGenerator(
            replace(base, seed=seed + 1)
        ).generate()
        assert len(a) == len(b) == base.num_requests
        assert a != b

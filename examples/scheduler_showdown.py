#!/usr/bin/env python3
"""Scheduler showdown: can smarter scheduling replace garbage revival?

Runs the mail workload through the *event-driven* device model under four
configurations — FIFO vs read-priority chip scheduling, each with and
without the MQ dead-value pool — plus a background-GC baseline, and prints
latency, write traffic and chip-utilisation statistics for each.

The point: read-priority scheduling attacks the *symptom* (requests stuck
behind programs/erases), while the dead-value pool removes the *cause*
(the writes themselves) — and only the pool also buys back erases, i.e.
device lifetime.  Background GC is shown too: under sustained load it can
even backfire (it does extra collection that collides with arrivals),
whereas it shines when real idle time exists (see
benchmarks/test_ablation_background_gc.py at the default scale).

Run:  python examples/scheduler_showdown.py
"""

from repro.analysis.report import render_table
from repro.analysis.utilization import utilisation_report
from repro.core.dvp import MQDeadValuePool
from repro.experiments.runner import (
    ExperimentContext,
    prefill,
    scaled_pool_entries,
)
from repro.ftl.ftl import BaseFTL
from repro.sim.background import BackgroundGCSSD
from repro.sim.des_ssd import EventDrivenSSD

SCALE = 0.1
WORKLOAD = "mail"


def build_ftl(context, with_pool):
    if with_pool:
        entries = scaled_pool_entries(200_000, SCALE)
        return BaseFTL(
            context.config, pool=MQDeadValuePool(entries),
            popularity_aware_gc=True,
        )
    return BaseFTL(context.config)


def main():
    context = ExperimentContext.for_workload(WORKLOAD, SCALE)
    print(f"workload: {WORKLOAD} at scale {SCALE} "
          f"({len(context.trace)} requests)\n")

    configurations = [
        ("fifo / baseline", "fifo", False, False),
        ("read-prio / baseline", "read-priority", False, False),
        ("bg-gc / baseline", "fifo", False, True),
        ("fifo / mq-dvp", "fifo", True, False),
        ("read-prio / mq-dvp", "read-priority", True, False),
    ]
    rows = []
    for label, policy, with_pool, background in configurations:
        ftl = build_ftl(context, with_pool)
        prefill(ftl, context.profile)
        if background:
            device = BackgroundGCSSD(ftl, background_watermark=5)
            result = device.run(context.trace)
        else:
            device = EventDrivenSSD(ftl, chip_policy=policy)
            result = device.run(context.trace)
        usage = utilisation_report(device)
        rows.append((
            label,
            f"{result.reads.mean:.0f}",
            f"{result.writes.mean:.0f}",
            f"{result.flash_writes}",
            f"{result.erases}",
            f"{usage.mean_chip_utilisation:.2f}",
        ))
    print(render_table(
        ["configuration", "read mean (us)", "write mean (us)",
         "flash writes", "erases", "chip util"],
        rows,
        title="Scheduling vs revival (event-driven model unless bg-gc):",
    ))
    print("\n-> read-priority fixes read queueing but leaves write traffic"
          "\n   and wear untouched; background GC trades foreground stalls"
          "\n   for extra erases (and backfires under sustained load); the"
          "\n   dead-value pool removes the writes themselves and still"
          "\n   composes with better scheduling.")


if __name__ == "__main__":
    main()

"""Property-fuzz for the correctness harness.

Two directions:

* **soundness** — random host streams (writes, reads, TRIMs), with and
  without fault injection and mid-stream crash recovery, drive a fully
  checked FTL (tight audit interval + lockstep oracle) and must produce
  zero violations: the checker may not cry wolf on healthy executions;
* **completeness** — after a random healthy prefix, one deliberate
  corruption from a catalog of seeded bugs is planted, and the audit
  must report that corruption's named violation kind: the checker may
  not sleep through the bug classes it exists to catch.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.check import InvariantChecker, InvariantViolation, OracleFTL, audit
from repro.core.dvp import MQDeadValuePool
from repro.core.hashing import fingerprint_of_value as fp
from repro.faults.model import FaultConfig, FaultModel
from repro.faults.recovery import crash_and_recover
from repro.flash.config import SSDConfig
from repro.ftl.ftl import BaseFTL


def fuzz_config() -> SSDConfig:
    return SSDConfig(
        channels=2, chips_per_channel=1, dies_per_chip=1, planes_per_die=1,
        blocks_per_plane=12, pages_per_block=8, overprovision=0.2,
    )


LOGICAL = fuzz_config().logical_pages

# (op, lpn, value): op 0 = write, 1 = read, 2 = trim.  Small value space
# forces fingerprint collisions, hence pool hits and revivals.
operations = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=2),
        st.integers(min_value=0, max_value=min(30, LOGICAL - 1)),
        st.integers(min_value=0, max_value=10),
    ),
    max_size=300,
)


def checked_ftl(oracle: bool = True) -> BaseFTL:
    ftl = BaseFTL(fuzz_config(), pool=MQDeadValuePool(24))
    ftl.attach_checker(InvariantChecker(
        interval=17, oracle=OracleFTL() if oracle else None,
    ))
    return ftl


def drive(ftl: BaseFTL, stream) -> None:
    for op, lpn, value in stream:
        if ftl.read_only:
            break
        if op == 0:
            ftl.write(lpn, fp(value))
        elif op == 1:
            ftl.read(lpn)
        else:
            ftl.trim(lpn)


class TestSoundness:
    @settings(max_examples=40, deadline=None)
    @given(stream=operations)
    def test_random_streams_are_violation_free(self, stream):
        ftl = checked_ftl()
        drive(ftl, stream)
        assert audit(ftl) == []

    @settings(max_examples=25, deadline=None)
    @given(stream=operations, seed=st.integers(min_value=0, max_value=99))
    def test_faulted_streams_are_violation_free(self, stream, seed):
        ftl = checked_ftl()
        ftl.attach_faults(FaultModel(FaultConfig(
            seed=seed,
            program_failure_prob=0.02,
            erase_failure_prob=0.02,
            read_error_prob=0.02,
        )))
        drive(ftl, stream)
        assert audit(ftl) == []

    @settings(max_examples=15, deadline=None)
    @given(stream=operations, crash_at=st.integers(min_value=1, max_value=299))
    def test_crash_recovery_mid_stream_is_violation_free(
        self, stream, crash_at
    ):
        ftl = checked_ftl()
        drive(ftl, stream[:crash_at])
        crash_and_recover(ftl)
        # The oracle needs no crash notification: recovery preserves the
        # host-visible contents exactly (verified inside crash_and_recover).
        drive(ftl, stream[crash_at:])
        assert audit(ftl) == []


def corrupt_pool_orphan(ftl):
    free_ppn = next(
        ppn for ppn in range(ftl.config.total_pages)
        if ftl.array.state_of(ppn).name == "FREE"
    )
    ftl.pool.insert_garbage(fp(987654), free_ppn, now=0, popularity=1)
    return "pool.orphan-ppn"


def corrupt_double_valid(ftl):
    ppn = next(iter(ftl._garbage_pop_of_ppn), None)
    if ppn is None:
        return None
    ftl.array.revive(ppn)
    return "array.unmapped-valid"


def corrupt_leak_free_block(ftl):
    for blocks in ftl.allocator.free_blocks:
        if blocks:
            blocks.pop()
            return "allocator.leaked-block"
    return None


def corrupt_skew_counter(ftl):
    ftl.array.invalid_pages += 1
    return "array.accounting"


def corrupt_forge_trim(ftl):
    # Highest mapped LPN: never LPN 0, which the live-checker test
    # overwrites next (a fresh copy would out-sequence the forged trim).
    lpn = max(ftl.mapping.forward_items(), default=None)
    if lpn is None:
        return None
    ftl._oob_seq += 1
    ftl._oob_trims[lpn] = ftl._oob_seq
    return "oob.trim-order"


CORRUPTIONS = [
    corrupt_pool_orphan,
    corrupt_double_valid,
    corrupt_leak_free_block,
    corrupt_skew_counter,
    corrupt_forge_trim,
]


class TestCompleteness:
    @settings(max_examples=40, deadline=None)
    @given(
        stream=operations,
        which=st.integers(min_value=0, max_value=len(CORRUPTIONS) - 1),
    )
    def test_seeded_corruption_is_detected(self, stream, which):
        ftl = BaseFTL(fuzz_config(), pool=MQDeadValuePool(24))
        drive(ftl, stream)
        expected = CORRUPTIONS[which](ftl)
        if expected is None:  # corruption not plantable in this state
            return
        found = {violation.kind for violation in audit(ftl)}
        assert expected in found, (
            f"{CORRUPTIONS[which].__name__} went undetected "
            f"(found only {sorted(found)})"
        )

    @pytest.mark.parametrize("corruption", CORRUPTIONS)
    def test_live_checker_raises(self, corruption):
        """The attached checker surfaces each corruption as a hard
        failure on the next audited host operation."""
        ftl = BaseFTL(fuzz_config(), pool=MQDeadValuePool(24))
        # Distinct values across consecutive overwrites of an LPN, so
        # dead pages stay in the pool instead of being revived at once.
        for i in range(160):
            ftl.write(i % 12, fp(i % 48))
        expected = corruption(ftl)
        assert expected is not None
        ftl.attach_checker(InvariantChecker(interval=1))
        with pytest.raises(InvariantViolation):
            ftl.write(0, fp(555))

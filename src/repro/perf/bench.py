"""Tracked matrix benchmark: times canonical runs, emits BENCH_matrix.json.

The harness runs one canonical slice of the evaluation matrix twice from
cold caches — once serially with per-cell timings, once fanned out over
worker processes — verifies the two paths produced digest-identical
:class:`~repro.sim.metrics.RunResult`s, and writes a JSON report.  The
report is committed (``BENCH_matrix.json`` at the repo root, refreshed by
``make bench``), so the perf trajectory of the engine is tracked in git
history from this PR onward.

Timings are wall-clock and machine-dependent; the *speedup* and the
``identical_results`` flag are the portable signals.  Where a process
pool cannot win — a single-core box, or cells so short that fork and
pickling overheads dominate — the harness runs the second leg serially
and marks the report ``serial_fallback: true`` instead of committing a
sub-1× speedup.  A fast matrix is not a parallelism failure; a slow
pool would be, so that case is made explicit rather than silent.
"""

from __future__ import annotations

import datetime
import json
import os
import platform
import time
from typing import Dict, List, Optional, Sequence

from .parallel import resolve_jobs, run_specs, run_specs_timed
from .snapshot import default_prefill_cache
from .spec import RunSpec, result_digest
from .trace_cache import default_trace_cache

__all__ = [
    "BENCH_SCHEMA",
    "CANONICAL_WORKLOADS",
    "CANONICAL_SYSTEMS",
    "DEFAULT_BENCH_SCALE",
    "DEFAULT_FLEET_SHARDS",
    "DEFAULT_FLEET_SCALE",
    "FLEET_BENCH_WORKLOAD",
    "FLEET_BENCH_SYSTEM",
    "DEFAULT_KV_SCALE",
    "KV_BENCH_WORKLOADS",
    "KV_BENCH_SYSTEM",
    "run_benchmark",
    "run_fleet_benchmark",
    "run_kv_benchmark",
    "write_benchmark",
]

BENCH_SCHEMA = "repro.perf.bench_matrix/v1"

#: The canonical slice: a heavy-dedup trace (mail), a popularity-skewed
#: one (web) and the deepest cold region (desktop), against the paper's
#: baseline, its headline system and the dedup comparison point.
CANONICAL_WORKLOADS = ("mail", "web", "desktop")
CANONICAL_SYSTEMS = ("baseline", "mq-dvp", "dedup")

#: Canonical benchmark scale — small enough to finish in seconds per
#: cell, large enough that run time dwarfs process-pool overhead.
DEFAULT_BENCH_SCALE = 0.05

#: Mean per-cell serial seconds below which the pool leg is not worth
#: its fork/pickle overhead and the harness falls back to serial.
SERIAL_FALLBACK_THRESHOLD_S = 0.2

#: The tracked fleet cell: the heaviest-dedup workload on the headline
#: system, sharded 4 ways.  The scale is chosen GC-bound (hundreds of
#: erases at 0.2 on mail/mq-dvp) with per-shard serial time well above
#: :data:`SERIAL_FALLBACK_THRESHOLD_S`, so on a ≥4-core runner the
#: long-lived-shard fan-out must show a real speedup (the bench gate
#: requires ≥2× at jobs≥4) rather than measuring fork overhead.
FLEET_BENCH_WORKLOAD = "mail"
FLEET_BENCH_SYSTEM = "mq-dvp"
DEFAULT_FLEET_SHARDS = 4
DEFAULT_FLEET_SCALE = 0.2

#: The tracked KV ablation cells: the update-heavy and read-mostly YCSB
#: mixes on the headline system, each paired with its pool-off
#: counterpart.  What the section tracks is the *revival delta under a
#: keyed interface* — the KV layer's raison d'être — plus the usual
#: serial/parallel digest identity of the KV engine.
KV_BENCH_WORKLOADS = ("ycsb-a", "ycsb-b")
KV_BENCH_SYSTEM = "mq-dvp"
DEFAULT_KV_SCALE = 0.5


def _clear_caches() -> None:
    """Cold-start both process caches so timings include all setup."""
    default_trace_cache().clear()
    default_prefill_cache().clear()


def _calibrate(repeats: int = 3) -> float:
    """Best-of-``repeats`` seconds for a fixed pure-Python workload.

    Shared boxes and throttled containers drift by 1.5×+ between
    sessions, which would swamp any absolute-seconds regression gate.
    This loop exercises the interpreter the way the simulator does
    (dict stores, int arithmetic, list indexing); the gate divides both
    reports' cell timings by their calibration so it compares simulator
    *work*, not machine speed of the day.
    """
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        table = {}
        acc = 0
        slots = list(range(1024))
        # Sized to take roughly one bench cell (~0.2 s): a much shorter
        # loop can catch a turbo/cache burst the cells cannot sustain,
        # skewing the normalization.
        for i in range(500_000):
            table[i & 1023] = i
            acc += i ^ (i >> 3)
            slots[i & 1023] = acc & 65535
        best = min(best, time.perf_counter() - start)
    return best


def run_benchmark(
    workloads: Sequence[str] = CANONICAL_WORKLOADS,
    systems: Sequence[str] = CANONICAL_SYSTEMS,
    scale: float = DEFAULT_BENCH_SCALE,
    paper_pool_entries: int = 200_000,
    jobs: Optional[int] = None,
    serial_repeats: int = 3,
) -> Dict:
    """Time the canonical matrix serially and in parallel; return the report.

    ``jobs=None`` uses every core for the parallel leg.  Both legs start
    from cold in-memory caches; the serial leg records per-cell seconds
    (best of ``serial_repeats`` cold legs — the noise-stable statistic
    the regression gate compares), the parallel leg records end-to-end
    wall time.  Digests of every cell are compared across legs —
    ``identical_results`` must be true.

    When the pool cannot plausibly win (one core, or cells cheaper than
    :data:`SERIAL_FALLBACK_THRESHOLD_S` on average), the second leg runs
    serially too and the report carries ``serial_fallback: true``.
    """
    jobs = resolve_jobs(jobs)
    specs = [
        RunSpec(
            workload=workload,
            system=system,
            paper_pool_entries=paper_pool_entries,
            scale=scale,
        )
        for workload in workloads
        for system in systems
    ]

    _clear_caches()
    serial_start = time.perf_counter()
    serial = run_specs_timed(specs, jobs=1)
    serial_seconds = time.perf_counter() - serial_start
    # Per-cell times are best-of-N over identical cold legs: single-shot
    # 0.2 s timings jitter ±20% on shared boxes, which would false-fire
    # the harness's 15% regression gate.  The min is the stable statistic.
    cell_seconds = [seconds for _, seconds in serial]
    for _ in range(max(serial_repeats, 1) - 1):
        _clear_caches()
        repeat = run_specs_timed(specs, jobs=1)
        cell_seconds = [
            min(best, seconds)
            for best, (_, seconds) in zip(cell_seconds, repeat)
        ]

    serial_fallback = (
        jobs == 1
        or (os.cpu_count() or 1) == 1
        or serial_seconds / len(specs) < SERIAL_FALLBACK_THRESHOLD_S
    )
    _clear_caches()
    parallel_start = time.perf_counter()
    parallel = run_specs(specs, jobs=1 if serial_fallback else jobs)
    parallel_seconds = time.perf_counter() - parallel_start

    serial_digests = [result_digest(result) for result, _ in serial]
    parallel_digests = [result_digest(result) for result in parallel]

    from ..api import record_from_run

    cells: List[Dict] = []
    for spec, (result, _), seconds, digest in zip(
        specs, serial, cell_seconds, serial_digests
    ):
        cells.append(
            {
                "workload": spec.workload,
                "system": spec.system,
                "paper_pool_entries": spec.paper_pool_entries,
                "serial_seconds": round(seconds, 6),
                "requests": result.reads.count + result.writes.count,
                "digest": digest,
                # The cell's outcome in the unified repro.api/v1 shape.
                # The regression gate ignores it (timing keys above stay
                # authoritative), so older reports remain comparable.
                "record": record_from_run(
                    result, kind="bench.cell", digest=digest
                ).to_dict(),
            }
        )

    return {
        "schema": BENCH_SCHEMA,
        "timestamp": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
        "scale": scale,
        "jobs": jobs,
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cells": cells,
        "calibration_seconds": round(_calibrate(), 6),
        "serial_seconds": round(serial_seconds, 6),
        "parallel_seconds": round(parallel_seconds, 6),
        "serial_fallback": serial_fallback,
        # Under fallback both legs ran serially: their ratio is timing
        # noise, not a parallel speedup, so none is recorded.
        "speedup": round(serial_seconds / parallel_seconds, 3)
        if parallel_seconds > 1e-6 and not serial_fallback
        else None,
        "identical_results": serial_digests == parallel_digests,
    }


def run_fleet_benchmark(
    shards: int = DEFAULT_FLEET_SHARDS,
    jobs: Optional[int] = None,
    scale: float = DEFAULT_FLEET_SCALE,
    workload: str = FLEET_BENCH_WORKLOAD,
    system: str = FLEET_BENCH_SYSTEM,
) -> Dict:
    """Time the fleet cell serially and fanned out; return its report.

    Unlike the matrix leg (many short cells), the fleet leg is ``shards``
    *long-lived* drives: one worker per shard, each replaying its whole
    slice of the trace.  Serial and parallel legs must mint identical
    per-shard digest tuples; the shared-vs-per-drive pool comparison
    rides along (aggregate flash programs under both modes), reusing the
    serial run as the per-drive data point.

    The same fallback rule as the matrix applies: on a single core, with
    ``jobs=1``, or when a shard is too cheap to amortise a fork, the
    second leg runs serially and the section is marked
    ``serial_fallback`` rather than recording a meaningless ratio.
    """
    from dataclasses import replace as dc_replace

    from ..fleet import FleetSpec, run_fleet

    jobs = resolve_jobs(jobs, tasks=shards)
    spec = FleetSpec(
        workload=workload, system=system, shards=shards, scale=scale
    )

    _clear_caches()
    serial_start = time.perf_counter()
    serial = run_fleet(spec, jobs=1)
    serial_seconds = time.perf_counter() - serial_start

    serial_fallback = (
        jobs == 1
        or (os.cpu_count() or 1) == 1
        or serial_seconds / shards < SERIAL_FALLBACK_THRESHOLD_S
    )
    _clear_caches()
    parallel_start = time.perf_counter()
    parallel = run_fleet(spec, jobs=1 if serial_fallback else jobs)
    parallel_seconds = time.perf_counter() - parallel_start

    # Pool-mode comparison point: same fleet, shared budget (the
    # fleet-wide-pool upper bound).  Untimed — the warm trace cache is
    # fine here — and run with the same effective jobs as the second leg.
    shared = run_fleet(
        dc_replace(spec, pool_mode="shared"),
        jobs=1 if serial_fallback else jobs,
    )

    return {
        "workload": workload,
        "system": system,
        "shards": shards,
        "scale": scale,
        "jobs": parallel.jobs,
        "serial_seconds": round(serial_seconds, 6),
        "parallel_seconds": round(parallel_seconds, 6),
        "serial_fallback": serial_fallback,
        "speedup": round(serial_seconds / parallel_seconds, 3)
        if parallel_seconds > 1e-6 and not serial_fallback
        else None,
        "identical_results": serial.shard_digests == parallel.shard_digests,
        "shard_digests": list(serial.shard_digests),
        "fleet_digest": serial.fleet_digest,
        "requests": serial.host_writes + serial.host_reads,
        "write_amplification": round(serial.write_amplification, 6),
        "revival_rate": round(serial.revival_rate, 6),
        "imbalance_cv": round(serial.imbalance_cv, 6),
        "pool_modes": {
            "per-drive": serial.flash_programs,
            "shared": shared.flash_programs,
        },
    }


def run_kv_benchmark(
    workloads: Sequence[str] = KV_BENCH_WORKLOADS,
    system: str = KV_BENCH_SYSTEM,
    scale: float = DEFAULT_KV_SCALE,
    jobs: Optional[int] = None,
) -> Dict:
    """Time the KV ablation cells serially and fanned out; return the
    section.

    Each workload runs twice — pool on (``system``) and its
    :data:`~repro.ftl.dvp_ftl.POOL_OFF_SYSTEM` counterpart — so the
    tracked numbers are the keyed revival rate and the flash writes the
    pool saves, not just wall time.  The serial and parallel legs must
    mint identical digest lists (``identical_results``), the same
    engine-determinism contract as the matrix and fleet sections.
    """
    from ..kv import KVSpec, run_kv_specs

    specs = []
    for workload in workloads:
        on = KVSpec(workload=workload, system=system, scale=scale)
        specs.extend([on, on.pool_off()])
    jobs = resolve_jobs(jobs, tasks=len(specs))

    serial_start = time.perf_counter()
    serial = []
    cell_seconds = []
    for spec in specs:
        cell_start = time.perf_counter()
        serial.append(run_kv_specs([spec], jobs=1)[0])
        cell_seconds.append(time.perf_counter() - cell_start)
    serial_seconds = time.perf_counter() - serial_start

    serial_fallback = (
        jobs == 1
        or (os.cpu_count() or 1) == 1
        or serial_seconds / len(specs) < SERIAL_FALLBACK_THRESHOLD_S
    )
    parallel_start = time.perf_counter()
    parallel = run_kv_specs(specs, jobs=1 if serial_fallback else jobs)
    parallel_seconds = time.perf_counter() - parallel_start

    serial_digests = [kv.digest for kv in serial]
    parallel_digests = [kv.digest for kv in parallel]

    cells: List[Dict] = []
    for index, workload in enumerate(workloads):
        on, off = serial[2 * index], serial[2 * index + 1]
        on_writes = (on.result.counters.programs
                     + on.result.counters.gc_relocations)
        off_writes = (off.result.counters.programs
                      + off.result.counters.gc_relocations)
        cells.append({
            "workload": workload,
            "system": system,
            "system_off": off.spec.system,
            "serial_seconds": round(
                cell_seconds[2 * index] + cell_seconds[2 * index + 1], 6
            ),
            "requests": (
                on.result.reads.count + on.result.writes.count
            ),
            "digest_on": on.digest,
            "digest_off": off.digest,
            "revival_rate": round(on.revival_rate, 6),
            "write_amplification_on": round(on.write_amplification, 6),
            "write_amplification_off": round(off.write_amplification, 6),
            "flash_writes_saved": off_writes - on_writes,
        })

    return {
        "system": system,
        "scale": scale,
        "jobs": jobs,
        "serial_seconds": round(serial_seconds, 6),
        "parallel_seconds": round(parallel_seconds, 6),
        "serial_fallback": serial_fallback,
        "speedup": round(serial_seconds / parallel_seconds, 3)
        if parallel_seconds > 1e-6 and not serial_fallback
        else None,
        "identical_results": serial_digests == parallel_digests,
        "cells": cells,
    }


def write_benchmark(
    path: str = "BENCH_matrix.json",
    fleet_shards: Optional[int] = None,
    fleet_scale: float = DEFAULT_FLEET_SCALE,
    kv: bool = False,
    kv_scale: float = DEFAULT_KV_SCALE,
    **kwargs,
) -> Dict:
    """Run the benchmark and write the report to ``path``; returns it.

    ``fleet_shards`` (``None`` = skip) appends the tracked fleet section
    to the report; ``kv`` appends the tracked KV ablation section.  Both
    extra legs run with the matrix leg's ``jobs``.
    """
    report = run_benchmark(**kwargs)
    if fleet_shards is not None:
        report["fleet"] = run_fleet_benchmark(
            shards=fleet_shards,
            jobs=kwargs.get("jobs"),
            scale=fleet_scale,
        )
    if kv:
        report["kv"] = run_kv_benchmark(
            jobs=kwargs.get("jobs"), scale=kv_scale,
        )
    with open(path, "w") as f:
        json.dump(report, f, indent=2, sort_keys=True)
        f.write("\n")
    return report

"""Perf-tracking harness: see harness.py and repro.perf.bench."""

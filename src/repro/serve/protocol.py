"""The serve wire protocol: line-delimited JSON over a stream socket.

Every message is one JSON object on one line, tagged with ``type``.
Client → server::

    {"type": "open", "tenant": "t1", "workload": "mail",
     "system": "mq-dvp", "scale": 0.05, "shards": 1, ...}
    {"type": "io", "t": 12.5, "op": "W", "lpn": 42, "value": 7}
    {"type": "flush"}      # step buffered requests, reply metrics
    {"type": "close"}      # finish the session, reply the final record
    {"type": "detach"}     # keep the session (checkpointed), reply bye
    {"type": "ping"}
    {"type": "shutdown"}   # ask the server to drain and exit

``io`` lines reuse the JSONL trace record shape verbatim
(:func:`repro.traces.jsonl.record_of_request`), so a trace file *is* a
valid request stream — and they are deliberately **not** acknowledged:
the server does not read the next line until the previous message is
fully processed, so TCP flow control is the per-tenant backpressure.
``flush`` is the acknowledgement barrier — its ``metrics`` reply proves
every prior ``io`` line was serviced.

Server → client replies are tagged the same way: ``opened``,
``metrics``, ``result``, ``bye``, ``pong``, ``error``, ``draining``.
``metrics``/``result`` carry a ``record`` field holding a
``repro.api/v1`` :class:`~repro.api.ResultRecord` dict — the same
unified schema every other surface in the repo emits.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional, Sequence

__all__ = [
    "PROTOCOL_VERSION",
    "CLIENT_TYPES",
    "SERVER_TYPES",
    "ProtocolError",
    "encode_message",
    "decode_message",
]

#: Carried in ``opened`` replies; readers refuse unknown versions.
PROTOCOL_VERSION = 1

CLIENT_TYPES = (
    "open", "io", "flush", "close", "detach", "ping", "shutdown",
)
SERVER_TYPES = (
    "opened", "metrics", "result", "bye", "pong", "error", "draining",
)


class ProtocolError(ValueError):
    """A malformed or out-of-place protocol message."""


def encode_message(message: Dict[str, Any]) -> bytes:
    """One wire line (JSON + newline) for ``message``."""
    return (
        json.dumps(message, separators=(",", ":"), sort_keys=True) + "\n"
    ).encode("utf-8")


def decode_message(
    line: bytes, allowed: Optional[Sequence[str]] = None
) -> Dict[str, Any]:
    """Parse one wire line; raises :class:`ProtocolError` on bad input.

    ``allowed`` restricts the accepted ``type`` tags — the server passes
    :data:`CLIENT_TYPES`, the client :data:`SERVER_TYPES` — so a peer
    speaking a different vocabulary fails loudly instead of being
    half-understood.
    """
    try:
        obj = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"invalid JSON line: {exc}") from None
    if not isinstance(obj, dict):
        raise ProtocolError("expected a JSON object")
    kind = obj.get("type")
    if not isinstance(kind, str):
        raise ProtocolError("missing message type")
    if allowed is not None and kind not in allowed:
        raise ProtocolError(f"unexpected message type {kind!r}")
    return obj

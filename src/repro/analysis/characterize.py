"""Section II characterisation: the trace analyses behind Figures 1–6.

These functions replay a trace against the idealised logical store of
:class:`~repro.core.lifecycle.LifecycleTracker` (no flash, no timing — the
paper does the same: "these studies are done by analyzing the traces") and
reduce the per-value statistics to exactly the series the paper plots:

* :func:`reuse_opportunity` — Figure 1: probability an incoming write can
  be serviced from garbage, with an infinite buffer, before and after
  deduplication;
* :func:`invalidation_cdf` — Figure 2: CDF of per-value invalidation
  counts and the fraction of values still live at the end;
* :func:`value_cdfs` — Figure 3: cumulative shares of writes,
  invalidations and rebirths over values sorted by write count;
* :func:`lifecycle_intervals` — Figure 4: creation→death and
  death→rebirth distances (in writes) and rebirth counts, by popularity;
* :func:`pool_write_study` / :func:`lru_pool_sweep` — Figure 5: writes
  surviving an LRU dead-value pool of varying capacity vs the infinite
  pool;
* :func:`lru_miss_breakdown` — Figure 6: average pool misses per value
  popularity degree, where a *miss* is a write the infinite pool would
  have short-circuited but the bounded pool could not.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple

from ..core.dvp import DeadValuePool, LRUDeadValuePool
from ..core.hashing import Fingerprint
from ..core.lifecycle import LifecycleTracker
from ..sim.request import IORequest, OpType
from .cdf import bucket_means, empirical_cdf

__all__ = [
    "run_lifecycle",
    "ReuseOpportunity",
    "reuse_opportunity",
    "InvalidationCDF",
    "invalidation_cdf",
    "ValueCDFs",
    "value_cdfs",
    "LifecycleIntervals",
    "lifecycle_intervals",
    "PoolStudyResult",
    "pool_write_study",
    "lru_pool_sweep",
    "lru_miss_breakdown",
]


def run_lifecycle(
    trace: Iterable[IORequest], dedup: bool = False
) -> LifecycleTracker:
    """Replay a trace through the idealised lifecycle model."""
    tracker = LifecycleTracker(dedup=dedup)
    for request in trace:
        if request.op is OpType.WRITE:
            tracker.on_write(request.lpn, request.value_id)
        else:
            tracker.on_read(request.lpn, request.value_id)
    return tracker


# ----------------------------------------------------------------------
# Figure 1
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ReuseOpportunity:
    """P(incoming write reusable from garbage), infinite buffer."""

    workload: str
    without_dedup: float
    with_dedup: float


def reuse_opportunity(
    trace: Sequence[IORequest], workload: str = ""
) -> ReuseOpportunity:
    """Figure 1 for one trace(-day): reuse probability w/ and w/o dedup."""
    plain = run_lifecycle(trace, dedup=False)
    deduped = run_lifecycle(trace, dedup=True)
    return ReuseOpportunity(
        workload=workload,
        without_dedup=plain.reuse_probability(),
        with_dedup=deduped.reuse_probability(),
    )


# ----------------------------------------------------------------------
# Figure 2
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class InvalidationCDF:
    """CDF of invalidation counts plus the live-value fraction."""

    cdf: List[Tuple[int, float]]
    never_invalidated_frac: float  # values with 0 invalidations
    live_value_frac: float         # values still live at end of trace


def invalidation_cdf(tracker: LifecycleTracker) -> InvalidationCDF:
    counts = [v.invalidations for v in tracker.iter_value_stats()]
    cdf = empirical_cdf(counts)
    total = len(counts)
    never = sum(1 for c in counts if c == 0) / total if total else 0.0
    live = tracker.live_value_count() / total if total else 0.0
    return InvalidationCDF(
        cdf=cdf, never_invalidated_frac=never, live_value_frac=live
    )


# ----------------------------------------------------------------------
# Figure 3
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ValueCDFs:
    """Cumulative shares over values sorted by write count (descending).

    Each series maps a value-fraction x (0..1] to the fraction of the
    metric's total mass carried by the top x of values — the form in which
    Figure 3 shows "20% of values account for 80% of writes".
    """

    fractions: List[float]
    write_share: List[float]
    invalidation_share: List[float]
    rebirth_share: List[float]

    def share_at(self, series: str, fraction: float) -> float:
        data = getattr(self, f"{series}_share")
        for f, s in zip(self.fractions, data):
            if f >= fraction:
                return s
        return data[-1] if data else 0.0


def value_cdfs(
    tracker: LifecycleTracker, points: int = 50
) -> ValueCDFs:
    stats = sorted(
        tracker.iter_value_stats(), key=lambda v: v.writes, reverse=True
    )
    if not stats:
        return ValueCDFs([], [], [], [])
    writes = [v.writes for v in stats]
    invalidations = [v.invalidations for v in stats]
    rebirths = [v.rebirths for v in stats]

    def shares(series: List[int]) -> Tuple[List[float], List[float]]:
        total = sum(series) or 1
        fractions: List[float] = []
        cumshare: List[float] = []
        running = 0
        n = len(series)
        step = max(1, n // points)
        for i, value in enumerate(series, start=1):
            running += value
            if i % step == 0 or i == n:
                fractions.append(i / n)
                cumshare.append(running / total)
        return fractions, cumshare

    fractions, write_share = shares(writes)
    _, invalidation_share = shares(invalidations)
    _, rebirth_share = shares(rebirths)
    return ValueCDFs(
        fractions=fractions,
        write_share=write_share,
        invalidation_share=invalidation_share,
        rebirth_share=rebirth_share,
    )


# ----------------------------------------------------------------------
# Figure 4
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class LifecycleIntervals:
    """Per-popularity-degree means of the life-cycle timing metrics."""

    creation_to_death: Dict[int, float]   # Figure 4a
    death_to_rebirth: Dict[int, float]    # Figure 4b
    rebirth_counts: Dict[int, float]      # Figure 4c


def lifecycle_intervals(
    tracker: LifecycleTracker, num_buckets: int = 20
) -> LifecycleIntervals:
    c2d: List[Tuple[int, float]] = []
    d2r: List[Tuple[int, float]] = []
    rebirths: List[Tuple[int, float]] = []
    for stats in tracker.iter_value_stats():
        degree = stats.writes
        mean_c2d = stats.mean_creation_to_death
        if mean_c2d is not None:
            c2d.append((degree, mean_c2d))
        mean_d2r = stats.mean_death_to_rebirth
        if mean_d2r is not None:
            d2r.append((degree, mean_d2r))
        rebirths.append((degree, float(stats.rebirths)))
    return LifecycleIntervals(
        creation_to_death=bucket_means(c2d, num_buckets),
        death_to_rebirth=bucket_means(d2r, num_buckets),
        rebirth_counts=bucket_means(rebirths, num_buckets),
    )


# ----------------------------------------------------------------------
# Figures 5 and 6: bounded-pool replays (no flash, trace-analysis only)
# ----------------------------------------------------------------------


@dataclass
class PoolStudyResult:
    """Outcome of replaying a trace's writes through one dead-value pool."""

    workload: str
    pool_label: str
    total_writes: int = 0
    short_circuited: int = 0
    #: writes the infinite pool would also have had to program
    compulsory_programs: int = 0
    #: per-value capacity misses (write reusable ideally, missed here)
    capacity_misses_by_value: Dict[int, int] = field(default_factory=dict)

    @property
    def serviced_writes(self) -> int:
        """Writes that still had to be programmed (Figure 5's y-axis)."""
        return self.total_writes - self.short_circuited

    @property
    def capacity_miss_total(self) -> int:
        return sum(self.capacity_misses_by_value.values())


def pool_write_study(
    trace: Iterable[IORequest],
    pool: DeadValuePool,
    workload: str = "",
    pool_label: str = "",
) -> PoolStudyResult:
    """Replay a trace's writes through ``pool``, counting short-circuits.

    Mirrors the paper's Section III-A methodology: pure trace analysis with
    an idealised logical store.  Alongside the bounded pool we keep the
    infinite-pool accounting (per-value dead-copy counts), so every lookup
    can be classified as hit, *capacity miss* (the ideal pool had a dead
    copy — Figure 6's misses) or compulsory program.
    """
    result = PoolStudyResult(workload=workload, pool_label=pool_label)
    content: Dict[int, int] = {}
    ideal_dead: Dict[int, int] = {}
    next_token = 0  # stands in for a PPN
    write_clock = 0
    for request in trace:
        if request.op is not OpType.WRITE:
            continue
        write_clock += 1
        result.total_writes += 1
        lpn, value_id = request.lpn, request.value_id
        old = content.get(lpn)
        if old is not None:
            ideal_dead[old] = ideal_dead.get(old, 0) + 1
            pool.insert_garbage(
                Fingerprint(old), next_token, write_clock, lpn=lpn
            )
            next_token += 1
        content[lpn] = value_id
        hit = pool.lookup_for_write(Fingerprint(value_id), write_clock)
        ideally_reusable = ideal_dead.get(value_id, 0) > 0
        if ideally_reusable:
            ideal_dead[value_id] -= 1
        if hit is not None:
            result.short_circuited += 1
        elif ideally_reusable:
            misses = result.capacity_misses_by_value
            misses[value_id] = misses.get(value_id, 0) + 1
        else:
            result.compulsory_programs += 1
    return result


def lru_pool_sweep(
    trace: Sequence[IORequest],
    sizes: Sequence[int],
    workload: str = "",
) -> Dict[str, PoolStudyResult]:
    """Figure 5: serviced writes for LRU pools of several sizes + infinite."""
    from ..core.dvp import InfiniteDeadValuePool

    results: Dict[str, PoolStudyResult] = {}
    for size in sizes:
        label = f"lru-{size}"
        results[label] = pool_write_study(
            trace, LRUDeadValuePool(size), workload, label
        )
    results["infinite"] = pool_write_study(
        trace, InfiniteDeadValuePool(), workload, "infinite"
    )
    return results


def lru_miss_breakdown(
    trace: Sequence[IORequest],
    pool_size: int,
    num_buckets: int = 20,
    workload: str = "",
) -> Dict[int, float]:
    """Figure 6: average capacity misses per value-popularity degree."""
    study = pool_write_study(
        trace, LRUDeadValuePool(pool_size), workload, f"lru-{pool_size}"
    )
    write_counts: Dict[int, int] = {}
    for request in trace:
        if request.op is OpType.WRITE:
            write_counts[request.value_id] = (
                write_counts.get(request.value_id, 0) + 1
            )
    samples: List[Tuple[int, float]] = []
    for value_id, degree in write_counts.items():
        misses = study.capacity_misses_by_value.get(value_id, 0)
        samples.append((degree, float(misses)))
    return bucket_means(samples, num_buckets)

"""Ablation: adaptive MQ capacity (the paper's stated future work).

Section V-A footnote 5 plans "dynamically tuning the total capacity for
MQ".  This benchmark gives the adaptive pool a quarter of the fixed pool's
budget as its starting point (same budget as ceiling) and compares the
outcome: the adaptive variant should recover most of the fixed pool's
revivals while averaging a smaller resident size on low-pressure
workloads.
"""

from repro.analysis.report import render_table
from repro.experiments.figures import EvaluationMatrix

from .conftest import emit


def test_ablation_adaptive_capacity(benchmark, matrix: EvaluationMatrix):
    workloads = ("mail", "desktop")

    def compute():
        out = {}
        for workload in workloads:
            out[workload] = {
                "mq-dvp": matrix.run(workload, "mq-dvp"),
                "adaptive-dvp": matrix.run(workload, "adaptive-dvp"),
            }
        return out

    results = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = []
    for workload, per_system in results.items():
        for system, result in per_system.items():
            rows.append((
                workload, system,
                result.counters.short_circuits,
                result.flash_writes,
            ))
    emit(render_table(
        ["workload", "system", "revivals", "flash writes"], rows,
        title="Ablation: fixed vs adaptive MQ pool capacity "
              "(adaptive starts at 1/4 of the budget)",
    ))
    for workload, per_system in results.items():
        fixed = per_system["mq-dvp"]
        adaptive = per_system["adaptive-dvp"]
        # The adaptive pool recovers the large majority of the fixed
        # pool's benefit despite starting four times smaller.
        assert adaptive.counters.short_circuits >= (
            0.7 * fixed.counters.short_circuits
        )

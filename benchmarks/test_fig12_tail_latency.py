"""Figure 12: percentage of tail (99th percentile) latency improvement.

Paper: very similar trend to the mean-latency figure; 22% reduction on
average across reads and writes, up to 43.1%.
"""

from repro.analysis.report import render_bars
from repro.experiments.comparison import mean_improvement
from repro.experiments.figures import fig12_tail_latency

from .conftest import emit


def test_fig12_tail_latency(benchmark, matrix):
    results = benchmark.pedantic(
        lambda: fig12_tail_latency(matrix), rounds=1, iterations=1
    )
    mean_tail = mean_improvement(results)
    emit(render_bars(
        results,
        title=(
            "Figure 12: p99 latency improvement vs baseline (%) "
            f"(mean: {mean_tail:.1f}%; paper: 22% mean, up to 43.1%)"
        ),
    ))
    # Shape: positive overall, mail at or near the top.
    assert mean_tail > 5.0
    top = max(results.values())
    assert results["mail"] >= 0.8 * top
